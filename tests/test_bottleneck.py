"""Tests for the bottleneck/roofline analysis (Fig 5's reasoning)."""

import pytest

from repro.accelerator import GNNerator
from repro.config.platforms import gnnerator_config
from repro.config.workload import WorkloadSpec
from repro.eval.bottleneck import BottleneckReport, analyze_bottleneck
from repro.eval.harness import Harness


def run_and_analyze(spec: WorkloadSpec):
    harness = Harness()
    config = gnnerator_config()
    accelerator = GNNerator(config)
    program = accelerator.compile(harness.graph(spec.dataset),
                                  harness.model(spec),
                                  params=harness.params(spec))
    result = accelerator.simulate(program)
    return analyze_bottleneck(program, result, config)


class TestBottleneckReport:
    def test_binding_resource_selection(self):
        report = BottleneckReport(achieved_cycles=100,
                                  dram_bound_cycles=90,
                                  graph_compute_bound_cycles=10,
                                  dense_compute_bound_cycles=50)
        assert report.binding_resource == "feature-memory-bandwidth"
        assert report.best_bound_cycles == 90
        assert report.overlap_efficiency == pytest.approx(0.9)

    def test_overlap_efficiency_capped(self):
        report = BottleneckReport(achieved_cycles=50,
                                  dram_bound_cycles=90,
                                  graph_compute_bound_cycles=0,
                                  dense_compute_bound_cycles=0)
        assert report.overlap_efficiency == 1.0

    def test_zero_cycles(self):
        report = BottleneckReport(achieved_cycles=0, dram_bound_cycles=1,
                                  graph_compute_bound_cycles=0,
                                  dense_compute_bound_cycles=0)
        assert report.overlap_efficiency == 0.0

    def test_describe(self):
        report = BottleneckReport(achieved_cycles=100,
                                  dram_bound_cycles=90,
                                  graph_compute_bound_cycles=10,
                                  dense_compute_bound_cycles=50)
        assert "bound by" in report.describe()


class TestFig5Reasoning:
    """The analysis must reproduce Fig 5's logic on real workloads."""

    def test_small_hidden_is_bandwidth_bound(self):
        spec = WorkloadSpec(dataset="citeseer", network="gcn",
                            hidden_dim=16)
        report = run_and_analyze(spec)
        assert report.binding_resource == "feature-memory-bandwidth"

    def test_large_hidden_is_dense_bound(self):
        spec = WorkloadSpec(dataset="citeseer", network="gcn",
                            hidden_dim=1024)
        report = run_and_analyze(spec)
        assert report.binding_resource == "dense-engine-compute"

    def test_bounds_never_exceed_achieved_by_much(self):
        """Lower bounds must actually be lower bounds (small tolerance
        for rounding in the DMA burst model)."""
        spec = WorkloadSpec(dataset="cora", network="gcn")
        report = run_and_analyze(spec)
        assert report.best_bound_cycles <= report.achieved_cycles * 1.01

    def test_pipeline_overlap_is_good(self):
        """The double-buffered token pipeline should land close to the
        binding resource's lower bound."""
        spec = WorkloadSpec(dataset="cora", network="gcn")
        report = run_and_analyze(spec)
        assert report.overlap_efficiency > 0.7
