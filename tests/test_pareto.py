"""Unit tests for multi-objective dominance and Pareto extraction."""

import pytest

from repro.dse.pareto import (
    dominated_count,
    dominates,
    pareto_front,
    pareto_indices,
)


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates((1, 1), (2, 2))

    def test_better_on_one_equal_on_rest(self):
        assert dominates((1, 2), (2, 2))
        assert dominates((2, 1), (2, 2))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((3, 3), (3, 3))

    def test_tradeoff_does_not_dominate(self):
        assert not dominates((1, 5), (5, 1))
        assert not dominates((5, 1), (1, 5))

    def test_asymmetric(self):
        assert dominates((1, 1, 1), (1, 1, 2))
        assert not dominates((1, 1, 2), (1, 1, 1))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="differ in length"):
            dominates((1, 2), (1, 2, 3))

    def test_empty_vectors_raise(self):
        with pytest.raises(ValueError, match="empty"):
            dominates((), ())


class TestFrontier2D:
    def test_single_point_is_the_frontier(self):
        assert pareto_indices([(4, 2)]) == [0]

    def test_empty_input(self):
        assert pareto_indices([]) == []
        assert dominated_count([]) == 0

    def test_classic_staircase(self):
        # Frontier is the (1,4)-(2,2)-(4,1) staircase; (3,3) and (5,5)
        # sit behind it.
        points = [(1, 4), (3, 3), (2, 2), (5, 5), (4, 1)]
        assert pareto_indices(points) == [0, 2, 4]
        assert pareto_front(points) == [(1, 4), (2, 2), (4, 1)]
        assert dominated_count(points) == 2

    def test_all_dominated_by_one(self):
        points = [(0, 0), (1, 1), (2, 2), (3, 3)]
        assert pareto_indices(points) == [0]
        assert dominated_count(points) == 3

    def test_exact_duplicates_all_stay(self):
        points = [(1, 2), (1, 2), (0, 9)]
        assert pareto_indices(points) == [0, 1, 2]

    def test_duplicates_of_a_dominated_point_all_fall(self):
        points = [(2, 2), (2, 2), (1, 1)]
        assert pareto_indices(points) == [2]

    def test_ties_on_one_axis(self):
        # (1,3) and (1,2): same first objective, second decides.
        points = [(1, 3), (1, 2)]
        assert pareto_indices(points) == [1]


class TestFrontier3D:
    def test_tradeoff_triangle_survives(self):
        points = [(1, 9, 9), (9, 1, 9), (9, 9, 1)]
        assert pareto_indices(points) == [0, 1, 2]

    def test_interior_point_falls(self):
        points = [(1, 9, 9), (9, 1, 9), (9, 9, 1), (9, 9, 9)]
        assert pareto_indices(points) == [0, 1, 2]

    def test_dominance_needs_all_three_axes(self):
        # (2,2,9) beats nobody: each of the others wins one axis.
        points = [(1, 3, 3), (3, 1, 3), (2, 2, 9)]
        assert pareto_indices(points) == [0, 1, 2]

    def test_mixed_duplicates_and_dominated(self):
        points = [(1, 1, 1), (1, 1, 1), (2, 1, 1), (0, 5, 5)]
        assert pareto_indices(points) == [0, 1, 3]
        assert dominated_count(points) == 1
