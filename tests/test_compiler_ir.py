"""Unit tests for the IR, residency state machines, and Program."""

import pytest

from repro.compiler.ir import (
    AccumWritebackOp,
    CompileError,
    DmaOp,
    GemmOp,
    InitAccumulatorOp,
    op_bytes,
    op_cycles,
)
from repro.compiler.program import Program
from repro.compiler.residency import (
    DstBufferState,
    EdgeBufferLru,
    LruResidency,
    OutBufferState,
    SrcBufferState,
)
from repro.config.workload import DST_STATIONARY
from repro.graph.traversal import (
    dst_stationary_order,
    simulate_residency,
    src_stationary_order,
)
from repro.models.zoo import build_network


def dma(**kwargs) -> DmaOp:
    defaults = dict(unit="graph.fetch", direction="load", num_bytes=100,
                    array="x", rows=(0, 10), dims=(0, 4),
                    purpose="src-features")
    defaults.update(kwargs)
    return DmaOp(**defaults)


class TestOps:
    def test_dma_validation(self):
        with pytest.raises(CompileError):
            dma(direction="sideways")
        with pytest.raises(CompileError):
            dma(num_bytes=-1)

    def test_init_mode_validation(self):
        with pytest.raises(CompileError):
            InitAccumulatorOp(unit="graph.compute", layer=0, stage=0,
                              rows=(0, 1), dims=(0, 1), acc_array="a",
                              src_array="", mode="random", cycles=1)

    def test_signal_wait_mutation(self):
        op = dma()
        op.add_signal("t1")
        op.add_wait("t2")
        assert op.signal == ("t1",) and op.wait == ("t2",)

    def test_op_bytes_and_cycles(self):
        assert op_bytes(dma(num_bytes=77)) == 77
        wb = AccumWritebackOp(unit="graph.writeback", layer=0, stage=0,
                              rows=(0, 4), dims=(0, 4), acc_array="a",
                              num_bytes=55, partial=False)
        assert op_bytes(wb) == 55
        gemm = GemmOp(unit="dense.compute", layer=0, stage=1, rows=(0, 4),
                      src_array="a", src_dims=(0, 4), weight_rows=(0, 4),
                      out_array="o", accumulate=False, m=4, k=4, n=2,
                      cycles=99)
        assert op_cycles(gemm) == 99
        assert op_bytes(gemm) == 0
        assert op_cycles(dma()) == 0


class TestSrcBuffer:
    def test_hit_and_miss(self):
        state = SrcBufferState()
        assert state.access("h", 0, 0) is True
        assert state.access("h", 0, 0) is False
        assert state.access("h", 1, 0) is True
        assert state.access("h", 0, 0) is True  # evicted
        assert state.loads == 3 and state.hits == 1

    def test_block_is_part_of_key(self):
        state = SrcBufferState()
        state.access("h", 0, 0)
        assert state.access("h", 0, 1) is True

    def test_invalidate(self):
        state = SrcBufferState()
        state.access("h", 0, 0)
        state.invalidate()
        assert state.access("h", 0, 0) is True


class TestDstBuffer:
    @pytest.mark.parametrize("side", [1, 2, 3, 5])
    @pytest.mark.parametrize("order_fn", [dst_stationary_order,
                                          src_stationary_order])
    def test_matches_residency_replay(self, side, order_fn):
        """The compiler's state machine must agree with the analytical
        replay — the bridge between Table I and emitted DMAs."""
        visits = {(col, 0): side for col in range(side)}
        state = DstBufferState(visits)
        spills = reloads = inits = finals = 0
        for _row, col in order_fn(side):
            action = state.access(col, 0)
            spills += action.spill_previous is not None
            reloads += action.reload
            inits += action.init
            finals += state.visit_done(col, 0)
        replay = simulate_residency(order_fn(side), side)
        assert reloads == replay.dst_loads
        assert spills + finals == replay.dst_stores
        assert inits == side
        assert finals == side
        assert state.unfinished() == []

    def test_over_visit_rejected(self):
        state = DstBufferState({(0, 0): 1})
        state.access(0, 0)
        state.visit_done(0, 0)
        with pytest.raises(CompileError):
            state.visit_done(0, 0)

    def test_unplanned_column_rejected(self):
        state = DstBufferState({(0, 0): 1})
        with pytest.raises(CompileError):
            state.access(5, 0)


class TestLruResidency:
    def test_eviction_order(self):
        lru = LruResidency(100)
        assert lru.access("a", 40)
        assert lru.access("b", 40)
        assert not lru.access("a", 40)  # hit refreshes a
        assert lru.access("c", 40)  # evicts b (LRU)
        assert lru.access("b", 40)  # miss again
        assert lru.hits == 1 and lru.loads == 4

    def test_oversized_entry_rejected(self):
        lru = LruResidency(10, name="edge buffer")
        with pytest.raises(CompileError, match="edge buffer"):
            lru.access("x", 11)

    def test_edge_buffer_subclass(self):
        buf = EdgeBufferLru(64)
        assert buf.access((0, 0), 64)
        assert not buf.access((0, 0), 64)


class TestOutBuffer:
    def test_non_spilling_only_tracks_first(self):
        state = OutBufferState(spilling=False, visits={0: 2, 1: 2})
        first = state.access(0)
        assert first.first and not first.reload
        state.visit_done(0)
        again = state.access(0)
        assert not again.first and not again.reload
        assert again.spill_previous is None

    def test_spilling_round_trip(self):
        state = OutBufferState(spilling=True, visits={0: 2, 1: 2})
        state.access(0)
        state.visit_done(0)
        action = state.access(1)
        assert action.spill_previous == 0  # 0 still has visits left
        state.visit_done(1)
        back = state.access(0)
        assert back.reload and not back.first
        assert state.visit_done(0)

    def test_finished_interval_not_spilled(self):
        state = OutBufferState(spilling=True, visits={0: 1, 1: 1})
        state.access(0)
        assert state.visit_done(0)  # final
        action = state.access(1)
        assert action.spill_previous is None


class TestProgram:
    def make_program(self) -> Program:
        model = build_network("gcn", 8, 2)
        from repro.models.layers import init_parameters
        return Program(graph_name="g", model=model,
                       params=init_parameters(model),
                       traversal=DST_STATIONARY, feature_block=4,
                       num_nodes=10)

    def test_emit_and_order(self):
        program = self.make_program()
        op = program.emit(dma())
        assert program.queues["graph.fetch"] == [op]
        assert program.order == [op]

    def test_emit_unknown_unit(self):
        program = self.make_program()
        with pytest.raises(CompileError):
            program.emit(dma(unit="psychic.fetch"))

    def test_declare_array_conflict(self):
        program = self.make_program()
        program.declare_array("x", 8)
        program.declare_array("x", 8)  # same dim fine
        with pytest.raises(CompileError):
            program.declare_array("x", 9)
        with pytest.raises(CompileError):
            program.declare_array("y", 0)

    def test_traffic_accounting(self):
        program = self.make_program()
        program.emit(dma(num_bytes=100, purpose="src-features"))
        program.emit(dma(num_bytes=50, purpose="edges"))
        program.emit(AccumWritebackOp(
            unit="graph.writeback", layer=0, stage=0, rows=(0, 4),
            dims=(0, 4), acc_array="a", num_bytes=25, partial=False))
        by_purpose = program.dram_bytes_by_purpose()
        assert by_purpose["src-features"] == 100
        assert by_purpose["edges"] == 50
        assert by_purpose["agg-writeback"] == 25
        assert program.total_dram_bytes == 175

    def test_describe(self):
        text = self.make_program().describe()
        assert "gcn" in text and "dst-stationary" in text
