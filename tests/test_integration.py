"""End-to-end integration tests across the full stack.

These tie everything together: datasets -> models -> compiler ->
functional runtime AND timing simulation, plus the cross-cutting claims
the paper's evaluation rests on (blocking reduces traffic and time;
producer flexibility; baselines ordered sensibly).
"""

import numpy as np
import pytest

from repro.accelerator import GNNerator
from repro.baselines.gpu import GpuModel
from repro.baselines.hygcn import HyGCNModel
from repro.compiler.runtime import run_functional
from repro.compiler.validation import validate_program
from repro.config.platforms import gnnerator_config
from repro.config.workload import WorkloadSpec
from repro.eval.harness import Harness
from repro.graph.datasets import load_dataset
from repro.models.layers import init_parameters
from repro.models.reference import reference_forward
from repro.models.zoo import build_network


class TestFullStackOnCora:
    """Real dataset, real platform configuration."""

    @pytest.fixture(scope="class")
    def cora(self):
        return load_dataset("cora")

    def test_functional_on_real_dataset(self, cora):
        """Compiled execution matches reference on the real Cora graph
        (full 1433-dim features, blocked)."""
        model = build_network("gcn", cora.feature_dim, 7)
        params = init_parameters(model, seed=0)
        accelerator = GNNerator(gnnerator_config(feature_block=64))
        program = accelerator.compile(cora, model, params=params)
        validate_program(program)
        expected = reference_forward(model, cora, params)
        actual = run_functional(program, cora)
        np.testing.assert_allclose(actual, expected, rtol=1e-3, atol=1e-3)

    def test_timing_on_real_dataset(self, cora):
        model = build_network("gcn", cora.feature_dim, 7)
        result = GNNerator(gnnerator_config()).run(cora, model)
        # Sanity window: hundreds of microseconds at 1 GHz / 256 GB/s.
        assert 10_000 < result.cycles < 10_000_000
        assert result.total_dram_bytes > cora.feature_bytes

    @pytest.mark.parametrize("network", ["gcn", "graphsage",
                                         "graphsage-pool"])
    def test_all_networks_simulate(self, cora, network):
        model = build_network(network, cora.feature_dim, 7)
        result = GNNerator(gnnerator_config()).run(cora, model)
        assert result.cycles > 0


class TestFullScaleFunctional:
    """Compiled == reference on every Table II dataset at full size —
    the strongest end-to-end correctness statement in the suite."""

    @pytest.mark.parametrize("dataset,classes,network", [
        ("citeseer", 6, "graphsage"),
        ("pubmed", 3, "gcn"),
    ])
    def test_real_dataset_equivalence(self, dataset, classes, network):
        graph = load_dataset(dataset)
        model = build_network(network, graph.feature_dim, classes)
        params = init_parameters(model, seed=0)
        program = GNNerator(gnnerator_config()).compile(graph, model,
                                                        params=params)
        validate_program(program)
        expected = reference_forward(model, graph, params)
        actual = run_functional(program, graph)
        np.testing.assert_allclose(actual, expected, rtol=1e-3,
                                   atol=1e-3)


class TestPaperClaims:
    """Qualitative claims of the evaluation, asserted as invariants."""

    harness = Harness()

    def test_blocking_reduces_dram_traffic_on_citeseer(self):
        spec = WorkloadSpec(dataset="citeseer", network="gcn")
        blocked = self.harness.gnnerator_result(spec)
        unblocked = self.harness.gnnerator_result(spec.with_block(None))
        assert blocked.total_dram_bytes < 0.5 * unblocked.total_dram_bytes
        assert blocked.cycles < unblocked.cycles

    def test_blocking_neutral_for_pool(self):
        """Fig 3: gsage-max bars identical with/without blocking."""
        spec = WorkloadSpec(dataset="cora", network="graphsage-pool")
        blocked = self.harness.gnnerator_seconds(spec)
        unblocked = self.harness.gnnerator_seconds(spec.with_block(None))
        assert blocked == pytest.approx(unblocked, rel=0.15)

    def test_accelerator_beats_gpu_everywhere(self):
        """Fig 3: every workload's blocked bar exceeds 1x."""
        for dataset in ("cora", "citeseer", "pubmed"):
            for network in ("gcn", "graphsage", "graphsage-pool"):
                spec = WorkloadSpec(dataset=dataset, network=network)
                lat = self.harness.all_platforms(spec)
                assert lat.speedup_blocked > 1.0, spec.label

    def test_gpu_slowest_on_small_graphs(self):
        spec = WorkloadSpec(dataset="cora", network="gcn")
        lat = self.harness.all_platforms(spec)
        assert lat.gpu_seconds > lat.hygcn_seconds
        assert lat.gpu_seconds > lat.gnnerator_seconds

    def test_block32_underutilises_dense_engine(self):
        """Fig 4: B=32 (< array width 64) is slower than B=64."""
        spec = WorkloadSpec(dataset="cora", network="gcn")
        b64 = self.harness.gnnerator_seconds(spec.with_block(64))
        b32 = self.harness.gnnerator_seconds(spec.with_block(32))
        assert b32 > b64

    def test_feature_bandwidth_helps_small_hidden(self):
        """Fig 5: 2x DRAM bandwidth pays off at hidden dim 16."""
        from repro.config.platforms import next_generation_variants
        spec = WorkloadSpec(dataset="cora", network="gcn", hidden_dim=16)
        base = self.harness.gnnerator_seconds(spec)
        variant = next_generation_variants()["more-feature-bandwidth"]
        faster = self.harness.gnnerator_seconds(spec, variant)
        assert base / faster > 1.2

    def test_dense_compute_helps_large_hidden(self):
        """Fig 5: 2x Dense Engine pays off at hidden dim 1024."""
        from repro.config.platforms import next_generation_variants
        spec = WorkloadSpec(dataset="citeseer", network="gcn",
                            hidden_dim=1024)
        base = self.harness.gnnerator_seconds(spec)
        variant = next_generation_variants()["more-dense-compute"]
        faster = self.harness.gnnerator_seconds(spec, variant)
        assert base / faster > 1.3

    def test_hygcn_sparsity_elimination_orthogonal(self):
        """Sec VI-A: disabling HyGCN's elimination slows it on citeseer."""
        citeseer = load_dataset("citeseer")
        model = build_network("gcn", citeseer.feature_dim, 6)
        from repro.config.platforms import hygcn_config
        with_elim = HyGCNModel(hygcn_config(True)).run(citeseer, model)
        without = HyGCNModel(hygcn_config(False)).run(citeseer, model)
        assert without.cycles > 1.4 * with_elim.cycles


class TestCrossPlatformConsistency:
    def test_same_work_different_models(self):
        """All three platform models agree on *what* is computed: FLOP
        counts from the kernel accounting match the model's stage math."""
        from repro.models.accounting import model_flops
        graph = load_dataset("cora")
        model = build_network("gcn", graph.feature_dim, 7)
        flops = model_flops(model, graph)
        # Layer 1 GEMM dominates: 2 * N * D * H.
        lower_bound = 2 * graph.num_nodes * graph.feature_dim * 16
        assert flops > lower_bound

    def test_gpu_and_hygcn_scale_with_dataset(self):
        gpu = GpuModel()
        hygcn = HyGCNModel()
        small = load_dataset("cora")
        large = load_dataset("pubmed")
        model_s = build_network("gcn", small.feature_dim, 7)
        model_l = build_network("gcn", large.feature_dim, 3)
        assert gpu.run(large, model_l).seconds > \
            gpu.run(small, model_s).seconds * 0.5
        assert hygcn.run(large, model_l).seconds > \
            hygcn.run(small, model_s).seconds
