"""Tests for the telemetry spine (``repro.obs``): spans, the metric
registry + Prometheus round-trip, hardware-probe derivation, Perfetto
export, and — the load-bearing property — that enabling telemetry
never moves a cycle count and that both kernels emit identical probe
streams."""

from __future__ import annotations

import json
import threading
from pathlib import Path

import pytest

from repro.accelerator import GNNerator
from repro.models.layers import init_parameters
from repro.models.zoo import NETWORK_NAMES, build_network
from repro.obs import (
    HwProbe,
    JsonLogger,
    MetricRegistry,
    NullTracer,
    SpanTracer,
    bin_windows,
    build_trace,
    parse_prometheus,
    profile_workload,
    render_profile,
    render_prometheus,
    series_sum,
    set_tracer,
    span,
    summarize_probe,
    tracing,
    validate_trace_events,
    write_perfetto,
)
from repro.obs.metrics import MetricError
from repro.obs.spans import NULL_TRACER, get_tracer
from tests.conftest import make_tiny_config
from tests.test_differential import (
    CYCLE_GOLDEN_PATH,
    FEATURE_DIM,
    GRAPH_CASES,
    NUM_CLASSES,
)


# ---------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------
class TestSpans:
    def test_default_tracer_is_null_and_shared(self):
        assert get_tracer() is NULL_TRACER
        # The no-op span is one shared object, not per-call allocation.
        assert span("anything") is span("other", attr=1)

    def test_nesting_records_depth_and_parent(self):
        tracer = SpanTracer()
        with tracing(tracer):
            with span("outer"):
                with span("inner", layer=2):
                    pass
                with span("inner"):
                    pass
        by_name = {}
        for record in tracer.spans:
            by_name.setdefault(record.name, []).append(record)
        (outer,) = by_name["outer"]
        inners = by_name["inner"]
        assert outer.depth == 0 and outer.parent == -1
        assert all(r.depth == 1 and r.parent == outer.uid
                   for r in inners)
        assert inners[0].attrs == {"layer": 2}
        # Children complete first but parent timing still encloses them.
        assert outer.start_s <= inners[0].start_s
        assert outer.end_s >= inners[-1].end_s

    def test_tracing_restores_previous_tracer(self):
        before = get_tracer()
        with tracing():
            assert isinstance(get_tracer(), SpanTracer)
        assert get_tracer() is before

    def test_tracing_restores_on_exception(self):
        before = get_tracer()
        with pytest.raises(RuntimeError):
            with tracing():
                raise RuntimeError("boom")
        assert get_tracer() is before

    def test_threads_get_independent_stacks(self):
        tracer = SpanTracer()
        barrier = threading.Barrier(2)

        def work(name):
            with tracer.span(name):
                barrier.wait(timeout=5)

        threads = [threading.Thread(target=work, args=(f"t{i}",))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Concurrent roots on different threads: both depth 0.
        assert sorted(r.name for r in tracer.spans) == ["t0", "t1"]
        assert all(r.depth == 0 and r.parent == -1
                   for r in tracer.spans)

    def test_by_name_aggregates(self):
        tracer = SpanTracer()
        with tracing(tracer):
            for _ in range(3):
                with span("phase"):
                    pass
        agg = tracer.by_name()
        assert agg["phase"]["count"] == 3
        assert agg["phase"]["total_s"] >= 0.0
        assert agg["phase"]["depth"] == 0

    def test_null_tracer_span_is_reentrant(self):
        tracer = NullTracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass  # no state, no stack, nothing to corrupt

    def test_set_tracer_roundtrip(self):
        tracer = SpanTracer()
        set_tracer(tracer)
        try:
            with span("x"):
                pass
            assert [r.name for r in tracer.spans] == ["x"]
        finally:
            set_tracer(NULL_TRACER)


# ---------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------
class TestMetrics:
    def test_counter_requires_prefix_and_suffix(self):
        registry = MetricRegistry()
        with pytest.raises(MetricError, match="repro_"):
            registry.counter("requests_total", "no prefix")
        with pytest.raises(MetricError, match="_total"):
            registry.counter("repro_requests", "no suffix")

    def test_counter_rejects_negative_and_bad_labels(self):
        registry = MetricRegistry()
        counter = registry.counter("repro_x_total", "x",
                                   labels=("kind",))
        counter.inc(kind="a")
        with pytest.raises(MetricError):
            counter.inc(-1, kind="a")
        with pytest.raises(MetricError):
            counter.inc(other="a")

    def test_registration_is_idempotent_but_typed(self):
        registry = MetricRegistry()
        a = registry.counter("repro_x_total", "x")
        assert registry.counter("repro_x_total", "x") is a
        with pytest.raises(MetricError, match="already registered"):
            registry.gauge("repro_x_total", "x")

    def test_render_parse_roundtrip(self):
        registry = MetricRegistry()
        counter = registry.counter("repro_hits_total", "hits",
                                   labels=("layer",))
        counter.inc(3, layer="memo")
        counter.inc(layer="store")
        registry.gauge("repro_depth", "queue depth").set(7)
        hist = registry.histogram("repro_lat_seconds", "latency",
                                  buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        text = render_prometheus(registry)
        assert text.endswith("\n")
        parsed = parse_prometheus(text)
        assert parsed[("repro_hits_total", (("layer", "memo"),))] == 3
        assert parsed[("repro_depth", ())] == 7
        # Cumulative buckets: le="0.1" -> 1, le="1.0" -> 2, +Inf -> 3.
        assert parsed[("repro_lat_seconds_bucket",
                       (("le", "0.1"),))] == 1
        assert parsed[("repro_lat_seconds_bucket",
                       (("le", "1"),))] == 2
        assert parsed[("repro_lat_seconds_bucket",
                       (("le", "+Inf"),))] == 3
        assert parsed[("repro_lat_seconds_count", ())] == 3
        assert parsed[("repro_lat_seconds_sum", ())] == pytest.approx(
            5.55)
        assert series_sum(parsed, "repro_hits_total") == 4

    def test_callback_instruments_read_at_scrape_time(self):
        registry = MetricRegistry()
        source = {"value": 1}
        registry.counter("repro_src_total", "src",
                         fn=lambda: source["value"])
        registry.counter(
            "repro_layered_total", "layered", labels=("layer",),
            fn=lambda: {("a",): 1.0, ("b",): 2.0})
        first = parse_prometheus(render_prometheus(registry))
        source["value"] = 5
        second = parse_prometheus(render_prometheus(registry))
        assert first[("repro_src_total", ())] == 1
        assert second[("repro_src_total", ())] == 5
        assert series_sum(second, "repro_layered_total") == 3.0

    def test_series_value_exact_lookup(self):
        from repro.obs import series_value

        registry = MetricRegistry()
        gauge = registry.gauge("repro_tasks", "tasks",
                               labels=("state",))
        gauge.set(3, state="pending")
        gauge.set(7, state="done")
        parsed = parse_prometheus(render_prometheus(registry))
        assert series_value(parsed, "repro_tasks", state="done") == 7
        assert series_value(parsed, "repro_tasks", state="pending") == 3
        with pytest.raises(KeyError, match="known label sets"):
            series_value(parsed, "repro_tasks", state="leased")
        with pytest.raises(KeyError, match="no sample"):
            series_value(parsed, "repro_nonexistent")

    @pytest.mark.parametrize("bad", [
        "repro_x_total",              # sample line without a value
        "repro_x_total{le=0.1} 1",    # unquoted label value
        "repro_x_total{le=\"1\" 1",   # unterminated label set
        "repro x 1 2 3 garbage",      # malformed name
        "repro_x_total one",          # non-numeric value
    ])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(MetricError):
            parse_prometheus(bad)


class TestJsonLogger:
    def test_emits_one_sorted_json_line(self):
        import io

        buf = io.StringIO()
        logger = JsonLogger(level="info", stream=buf)
        logger.info("request", b=2, a=1)
        (line,) = buf.getvalue().splitlines()
        record = json.loads(line)
        assert record["event"] == "request"
        assert record["a"] == 1 and record["b"] == 2
        assert record["level"] == "info"

    def test_threshold_drops_lower_levels(self):
        import io

        buf = io.StringIO()
        logger = JsonLogger(level="warning", stream=buf)
        logger.debug("x")
        logger.info("y")
        logger.error("z")
        assert len(buf.getvalue().splitlines()) == 1

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            JsonLogger(level="verbose")


# ---------------------------------------------------------------------
# Hardware-telemetry derivation
# ---------------------------------------------------------------------
def _simulated_probe(network="gcn", case="random-0", block=4):
    graph = GRAPH_CASES[case]()
    model = build_network(network, FEATURE_DIM, NUM_CLASSES,
                          hidden_dim=8)
    params = init_parameters(model, seed=7)
    accelerator = GNNerator(make_tiny_config(block))
    program = accelerator.compile(graph, model, params=params,
                                  feature_block=block)
    probe = HwProbe()
    result = accelerator.simulate(program, probe=probe)
    return accelerator, program, probe, result


class TestHwtel:
    def test_summary_matches_result_accounting(self):
        _, _, probe, result = _simulated_probe()
        summary = summarize_probe(probe, result.cycles)
        # Compute busy windows reconstruct the kernels' busy counters.
        expected_busy = {unit: cycles for unit, cycles
                         in result.unit_busy_cycles.items() if cycles}
        assert summary["unit_busy_cycles"] == expected_busy
        # DRAM bytes reconstruct the per-unit traffic accounting.
        total = (summary["dram_read_bytes"]
                 + summary["dram_write_bytes"])
        assert total == result.total_dram_bytes
        assert summary["dram_busy_cycles"] == result.dram_busy_cycles
        assert summary["queue_peak"] >= 1

    def test_windows_conserve_events(self):
        _, _, probe, result = _simulated_probe()
        windows = bin_windows(probe, result.cycles, num_windows=7)
        assert len(windows) == 7
        assert windows[0]["start"] == 0
        assert windows[-1]["end"] == result.cycles
        summary = summarize_probe(probe, result.cycles)
        window_busy: dict[str, float] = {}
        for window in windows:
            for unit, cycles in window["busy_cycles"].items():
                window_busy[unit] = window_busy.get(unit, 0) + cycles
        for unit, cycles in summary["unit_busy_cycles"].items():
            assert window_busy[unit] == pytest.approx(cycles)
        read = sum(w["dram_read_bytes"] for w in windows)
        write = sum(w["dram_write_bytes"] for w in windows)
        assert read == pytest.approx(summary["dram_read_bytes"])
        assert write == pytest.approx(summary["dram_write_bytes"])
        assert max(w["queue_peak"] for w in windows) == \
            summary["queue_peak"]

    def test_empty_probe_summarizes_to_zeroes(self):
        probe = HwProbe()
        summary = summarize_probe(probe, 100)
        assert summary["unit_busy_cycles"] == {}
        assert summary["dram_bytes_per_cycle"] == 0
        assert summary["queue_peak"] == 0
        assert bin_windows(probe, 100, num_windows=3)[0][
            "dram_read_bytes"] == 0


# ---------------------------------------------------------------------
# Cycle neutrality + cross-kernel probe equivalence (the §4 obligation)
# ---------------------------------------------------------------------
#: A structurally diverse subset; the full grid runs in
#: test_differential's goldens, this pins telemetry against it.
PROBE_CASES = ("random-0", "hub", "duplicate-edges", "self-loops-only",
               "edgeless")


@pytest.mark.parametrize("network", NETWORK_NAMES)
class TestTelemetryNeutrality:
    def _program(self, network, case):
        graph = GRAPH_CASES[case]()
        model = build_network(network, FEATURE_DIM, NUM_CLASSES,
                              hidden_dim=8)
        params = init_parameters(model, seed=7)
        accelerator = GNNerator(make_tiny_config(4))
        return accelerator, accelerator.compile(
            graph, model, params=params, feature_block=4)

    def test_probe_never_changes_cycles(self, network):
        goldens = json.loads(CYCLE_GOLDEN_PATH.read_text())
        for case in PROBE_CASES:
            accelerator, program = self._program(network, case)
            bare = accelerator.simulate(program).cycles
            probed = accelerator.simulate(program,
                                          probe=HwProbe()).cycles
            probed_event = accelerator.simulate(
                program, coalesce=False, probe=HwProbe()).cycles
            golden = goldens[network][case]["blocked"]
            assert bare == probed == probed_event == golden, (
                f"{network}/{case}: telemetry moved the cycle count")

    def test_kernels_emit_identical_probe_streams(self, network):
        for case in PROBE_CASES:
            accelerator, program = self._program(network, case)
            coalesced, event = HwProbe(), HwProbe()
            accelerator.simulate(program, probe=coalesced)
            accelerator.simulate(program, coalesce=False, probe=event)
            assert sorted(coalesced.busy) == sorted(event.busy), (
                f"{network}/{case}: busy streams differ")
            assert sorted(coalesced.dram) == sorted(event.dram), (
                f"{network}/{case}: dram streams differ")
            assert sorted(coalesced.queue) == sorted(event.queue), (
                f"{network}/{case}: queue streams differ")

    def test_span_tracing_never_changes_cycles(self, network):
        accelerator, program = self._program(network, "random-1")
        bare = accelerator.simulate(program).cycles
        with tracing() as tracer:
            traced = accelerator.simulate(program).cycles
        assert traced == bare
        assert any(r.name == "simulate" for r in tracer.spans)


# ---------------------------------------------------------------------
# Perfetto export
# ---------------------------------------------------------------------
class TestPerfetto:
    def _payload(self):
        _, _, probe, result = _simulated_probe()
        tracer = SpanTracer()
        with tracing(tracer):
            with span("load"):
                with span("compile"):
                    pass
        return build_trace(spans=tracer, probe=probe,
                           frequency_ghz=result.frequency_ghz,
                           total_cycles=result.cycles)

    def test_build_trace_is_valid(self):
        payload = self._payload()
        assert validate_trace_events(payload) == []
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert {"X", "M", "C"} <= phases
        pids = {e["pid"] for e in payload["traceEvents"]}
        assert pids == {1, 2}

    def test_slice_timestamps_monotonic_per_track(self):
        payload = self._payload()
        last: dict[tuple, float] = {}
        for event in payload["traceEvents"]:
            if event["ph"] != "X":
                continue
            track = (event["pid"], event["tid"])
            assert event["ts"] >= last.get(track, 0.0)
            last[track] = event["ts"]

    def test_validator_catches_defects(self):
        assert validate_trace_events({}) == ["traceEvents is not a list"]
        bad = {"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": 1},
            {"name": "n", "ph": "X", "pid": 1, "tid": 1, "ts": -1,
             "dur": 1},
            {"name": "n", "ph": "X", "pid": 1, "tid": 1, "ts": 5},
            {"name": "n", "ph": "X", "pid": 1, "tid": 1, "ts": 2,
             "dur": 1},
            {"name": "n", "ph": "Z", "pid": 1, "tid": 1, "ts": 0},
            {"name": "n", "ph": "C", "pid": 1, "tid": 1, "ts": 0},
        ]}
        problems = "\n".join(validate_trace_events(bad))
        assert "missing 'name'" in problems
        assert "bad ts" in problems
        assert "bad dur" in problems
        assert "goes backwards" in problems
        assert "unknown phase" in problems
        assert "counter without args" in problems

    def test_write_perfetto_roundtrip(self, tmp_path):
        _, _, probe, result = _simulated_probe()
        out = write_perfetto(tmp_path / "trace.json", probe=probe,
                             frequency_ghz=result.frequency_ghz,
                             total_cycles=result.cycles)
        payload = json.loads(Path(out).read_text())
        assert validate_trace_events(payload) == []
        assert payload["traceEvents"]

    def test_write_perfetto_refuses_invalid(self, tmp_path,
                                            monkeypatch):
        import repro.obs.perfetto as perfetto

        monkeypatch.setattr(
            perfetto, "build_trace",
            lambda **kwargs: {"traceEvents": [{"ph": "X"}]})
        with pytest.raises(ValueError, match="invalid trace"):
            perfetto.write_perfetto(tmp_path / "bad.json")

    def test_sim_ops_win_over_probe_busy(self):
        probe = HwProbe()
        probe.busy.append(("graph.compute", 0, 10))
        payload = build_trace(
            probe=probe,
            sim_ops=[("graph.compute", "agg shard(0,0)", 0, 10)])
        names = [e["name"] for e in payload["traceEvents"]
                 if e["ph"] == "X"]
        assert names == ["agg shard(0,0)"]


# ---------------------------------------------------------------------
# Profile
# ---------------------------------------------------------------------
class TestProfile:
    def test_profile_workload_payload(self):
        payload = profile_workload("tiny", "gcn", seed=7)
        assert payload["workload"] == "tiny-gcn"
        assert payload["cycles"] > 0
        assert {"load", "compile", "simulate"} <= set(payload["phases"])
        assert payload["compile_tier"] in ("memo", "store", "compiled")
        assert payload["hottest_shards"]
        top = payload["hottest_shards"]
        assert top == sorted(top, key=lambda e: -e["cycles"])
        assert payload["dram"]["total_cycles"] == payload["cycles"]
        # Profiling must report the same cycle count as a bare run.
        from repro.config.platforms import gnnerator_config
        from repro.config.workload import WorkloadSpec
        from repro.eval.harness import Harness

        harness = Harness(seed=7, program_store=None)
        spec = WorkloadSpec(dataset="tiny", network="gcn")
        bare = GNNerator(gnnerator_config(
            feature_block=spec.feature_block)).simulate(
                harness.gnnerator_program(spec)).cycles
        assert payload["cycles"] == bare

    def test_render_profile_mentions_phases_and_shards(self):
        payload = profile_workload("tiny", "gat", seed=7, top_k=2)
        text = render_profile(payload)
        assert "host phases" in text
        assert "hottest shards" in text
        assert "compile" in text
        assert len(payload["hottest_shards"]) <= 2
