"""Tests for the extension features: sparsity elimination (Sec VI-A's
"orthogonal optimisation") and the energy model."""

import dataclasses

import numpy as np
import pytest

from repro.accelerator import GNNerator
from repro.compiler.ir import DmaOp
from repro.compiler.lowering import compile_workload
from repro.compiler.runtime import run_functional
from repro.compiler.validation import validate_program
from repro.config.platforms import gnnerator_config
from repro.eval.energy import (
    EnergyReport,
    estimate_energy,
    gpu_energy_joules,
    hygcn_energy_joules,
)
from repro.graph.datasets import load_dataset
from repro.graph.generators import erdos_renyi
from repro.models.layers import init_parameters
from repro.models.reference import reference_forward
from repro.models.zoo import build_network
from tests.conftest import make_tiny_config


class TestSparsityElimination:
    @pytest.fixture(scope="class")
    def graph(self):
        return erdos_renyi(80, 400, feature_dim=20, seed=6)

    def elim_config(self, block):
        config = make_tiny_config(block)
        return dataclasses.replace(config, sparsity_elimination=True)

    def test_functional_equivalence_preserved(self, graph):
        """Elimination only changes DMA sizes, never results."""
        model = build_network("gcn", 20, 5)
        params = init_parameters(model, seed=1)
        expected = reference_forward(model, graph, params)
        program = compile_workload(graph, model, self.elim_config(None),
                                   params=params, feature_block=None)
        validate_program(program)
        actual = run_functional(program, graph)
        np.testing.assert_allclose(actual, expected, rtol=1e-3, atol=1e-3)

    def test_reduces_unblocked_source_traffic(self, graph):
        """On a multi-shard unblocked grid, gathering distinct sources
        beats streaming whole intervals — HyGCN's citeseer trick."""
        model = build_network("gcn", 20, 5)

        def src_bytes(config):
            program = compile_workload(graph, model, config,
                                       feature_block=None)
            return sum(op.num_bytes for op in program.order
                       if isinstance(op, DmaOp)
                       and op.purpose == "src-features")

        plain = src_bytes(make_tiny_config(None))
        eliminated = src_bytes(self.elim_config(None))
        assert eliminated < plain

    def test_gather_bytes_match_distinct_counts(self, graph):
        model = build_network("gcn", 20, 5)
        config = self.elim_config(None)
        program = compile_workload(graph, model, config,
                                   feature_block=None)
        grid = program.grids[(0, 0)]
        gathers = [op for op in program.order
                   if isinstance(op, DmaOp)
                   and op.label.startswith("gather:")
                   and op.array == "h.in"]  # layer 0's grid
        assert gathers
        for op in gathers:
            _, row, col, _ = op.label.split(":")
            shard = grid.shard(int(row), int(col))
            distinct = len(np.unique(shard.src))
            width = op.dims[1] - op.dims[0]
            assert op.num_bytes == distinct * width * 4

    def test_full_dataset_run(self):
        """End-to-end on citeseer, the dataset elimination targets."""
        citeseer = load_dataset("citeseer")
        model = build_network("gcn", citeseer.feature_dim, 6)
        plain_cfg = gnnerator_config(feature_block=None)
        elim_cfg = dataclasses.replace(plain_cfg,
                                       sparsity_elimination=True)
        plain = GNNerator(plain_cfg).run(citeseer, model,
                                         feature_block=None)
        elim = GNNerator(elim_cfg).run(citeseer, model,
                                       feature_block=None)
        assert elim.total_dram_bytes < plain.total_dram_bytes
        assert elim.cycles < plain.cycles


class TestEnergyModel:
    @pytest.fixture(scope="class")
    def run(self):
        graph = load_dataset("cora")
        model = build_network("gcn", graph.feature_dim, 7)
        accelerator = GNNerator(gnnerator_config())
        program = accelerator.compile(graph, model)
        result = accelerator.simulate(program)
        return program, result

    def test_components_positive(self, run):
        program, result = run
        report = estimate_energy(program, result)
        assert report.compute_pj > 0
        assert report.sram_pj > 0
        assert report.dram_pj > 0
        assert report.total_pj == pytest.approx(
            report.compute_pj + report.sram_pj + report.dram_pj
            + report.idle_pj)

    def test_dram_dominates_memory_bound_run(self, run):
        """cora-gcn is DRAM-bound; its energy should be too."""
        program, result = run
        report = estimate_energy(program, result)
        assert report.dram_pj > report.compute_pj

    def test_accelerator_beats_gpu_energy(self, run):
        """The headline accelerator argument: orders less energy."""
        program, result = run
        report = estimate_energy(program, result)
        gpu_joules = gpu_energy_joules(result.seconds * 7)  # ~7x slower
        assert report.total_joules < gpu_joules / 10

    def test_power_sanity(self, run):
        """Average power should land in accelerator territory (< 20 W)."""
        program, result = run
        report = estimate_energy(program, result)
        power = report.average_power_w(result.seconds)
        assert 0.1 < power < 20.0

    def test_envelopes(self):
        assert gpu_energy_joules(1.0) == pytest.approx(250.0)
        assert hygcn_energy_joules(1.0) == pytest.approx(6.7)
        assert EnergyReport().average_power_w(0) == 0.0

    def test_describe(self, run):
        program, result = run
        text = estimate_energy(program, result).describe()
        assert "uJ" in text and "dram" in text
