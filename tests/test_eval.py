"""Tests for the harness, experiment reproductions, and reports."""

import pytest

from repro.config.workload import WorkloadSpec
from repro.eval.experiments import (
    FIG3_PAPER,
    fig4_workloads,
    table1_dataflow_costs,
    table5_hygcn,
)
from repro.eval.harness import Harness, geometric_mean
from repro.eval.report import (
    format_table,
    render_table1,
    render_table5,
)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestHarness:
    def test_graph_cached(self):
        harness = Harness()
        assert harness.graph("cora") is harness.graph("cora")

    def test_graph_cache_not_shared_between_instances(self):
        """Dataset caching is per harness (no module-level lru_cache
        leaking across instances/seeds)."""
        a, b = Harness(), Harness(seed=1)
        a.graph("cora")
        assert "cora" in a._datasets
        assert "cora" not in b._datasets

    def test_params_cached_per_workload(self):
        harness = Harness()
        spec = WorkloadSpec(dataset="cora", network="gcn")
        assert harness.params(spec) is harness.params(spec)
        other = spec.with_hidden_dim(32)
        assert harness.params(other) is not harness.params(spec)

    def test_model_dimensions_from_dataset(self):
        harness = Harness()
        spec = WorkloadSpec(dataset="citeseer", network="gcn")
        model = harness.model(spec)
        assert model.in_dim == 3703 and model.out_dim == 6

    def test_all_platforms_speedups(self):
        harness = Harness()
        spec = WorkloadSpec(dataset="cora", network="gcn")
        lat = harness.all_platforms(spec)
        assert lat.gpu_seconds > 0
        assert lat.speedup_blocked == pytest.approx(
            lat.gpu_seconds / lat.gnnerator_seconds)
        assert lat.speedup_over_hygcn == pytest.approx(
            lat.hygcn_seconds / lat.gnnerator_seconds)


class TestExperimentShapes:
    """Fast shape checks; full paper-vs-measured lives in the benches."""

    def test_fig3_paper_reference_complete(self):
        labels = {"cora-gcn", "cora-gsage", "cora-gsage-max",
                  "citeseer-gcn", "citeseer-gsage", "citeseer-gsage-max",
                  "pub-gcn", "pub-gsage", "pub-gsage-max", "Gmean"}
        assert set(FIG3_PAPER) == labels

    def test_fig4_suite_contains_wider_hidden(self):
        specs = fig4_workloads()
        assert len(specs) == 15
        assert any(s.hidden_dim == 128 for s in specs)

    def test_table1_matches_analytics(self):
        rows = table1_dataflow_costs(dataset="cora", feature_block=None)
        assert len(rows) == 2
        for row in rows:
            assert row.matches, f"{row.order} diverged from Table I"
        src, dst = rows
        assert src.order == "src-stationary"
        # src-stationary spills partials; dst-stationary does not.
        assert src.compiled_partial_bytes > 0
        assert dst.compiled_partial_bytes == 0

    def test_table5_rows(self):
        rows = table5_hygcn()
        assert [r.dataset for r in rows] == ["cora", "citeseer", "pubmed"]
        for row in rows:
            assert row.speedup_blocked > 0

    def test_table5_blocking_wins_everywhere(self):
        """The paper's Table V claim: with blocking GNNerator beats
        HyGCN on every dataset; without, HyGCN wins on Citeseer."""
        rows = {r.dataset: r for r in table5_hygcn()}
        for row in rows.values():
            assert row.speedup_blocked > 1.0
        assert rows["citeseer"].speedup_no_blocking < 1.0


class TestReports:
    def test_format_table_alignment(self):
        text = format_table([{"a": "1", "bb": "22"},
                             {"a": "333", "bb": "4"}], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_empty(self):
        assert format_table([], title="empty") == "empty"

    def test_render_table1(self):
        text = render_table1(table1_dataflow_costs(dataset="cora",
                                                   feature_block=None))
        assert "Table I" in text and "src-stationary" in text

    def test_render_table5(self):
        text = render_table5(table5_hygcn())
        assert "HyGCN" in text and "cora" in text
