"""Unit tests for 2-D grid sharding."""

import numpy as np
import pytest

from repro.config.accelerator import EDGE_BYTES, GraphEngineConfig
from repro.graph.generators import erdos_renyi, powerlaw_graph, star_graph
from repro.graph.graph import Graph, GraphError
from repro.graph.partition import (
    NodeInterval,
    ShardGrid,
    plan_interval_size,
    plan_shards,
)


def materialized_scatter(graph: Graph, interval: int) -> dict:
    """The pre-streaming scatter, kept verbatim as the reference: sort
    by (row bin, col bin, dst) with ``np.lexsort`` and *copy* each
    shard's arrays out of the sorted edge list."""
    num_intervals = -(-max(graph.num_nodes, 1) // interval)
    src_bin = graph.src // interval
    dst_bin = graph.dst // interval
    order = np.lexsort((graph.dst, dst_bin, src_bin))
    src_sorted = graph.src[order]
    dst_sorted = graph.dst[order]
    keys = src_bin[order] * num_intervals + dst_bin[order]
    shards = {}
    boundaries = np.flatnonzero(np.diff(keys)) + 1
    for segment in np.split(np.arange(keys.size), boundaries):
        if segment.size == 0:
            continue
        key = int(keys[segment[0]])
        shards[divmod(key, num_intervals)] = (
            src_sorted[segment].copy(), dst_sorted[segment].copy(),
            order[segment].copy())
    return shards


class TestStreamedScatterEquivalence:
    """The streaming grid must reproduce the materialized scatter
    shard by shard — same cells, same edges, same order, same edge-id
    mapping (the order GAT's baked coefficients align through)."""

    CASES = [
        (lambda: erdos_renyi(60, 300, feature_dim=8, seed=5), 16),
        (lambda: erdos_renyi(500, 4000, feature_dim=8, seed=9), 37),
        (lambda: star_graph(40), 7),
        (lambda: erdos_renyi(200, 1500, feature_dim=8, seed=1), 1),
        # A reduced-scale power-law multigraph — duplicate edges, hub
        # columns, the structure the million-edge datasets scale up.
        (lambda: powerlaw_graph(400, 3000, feature_dim=8, seed=2), 48),
    ]

    @pytest.mark.parametrize("case", range(len(CASES)))
    def test_shard_by_shard_identical(self, case):
        build, interval = self.CASES[case]
        graph = build()
        grid = ShardGrid(graph, interval)
        reference = materialized_scatter(graph, interval)
        keys = {(s.row, s.col) for s in grid.nonempty_shards()}
        assert keys == set(reference)
        for shard in grid.iter_shards():
            ref_src, ref_dst, ref_ids = reference[(shard.row, shard.col)]
            assert np.array_equal(shard.src, ref_src)
            assert np.array_equal(shard.dst, ref_dst)
            assert np.array_equal(shard.edge_ids, ref_ids)
        grid.validate()

    def test_shards_are_views_not_copies(self):
        """The memory contract: shard arrays alias the grid's shared
        sorted arrays (O(|E|) total, not O(|E|) per copy)."""
        graph = erdos_renyi(200, 1500, feature_dim=8, seed=1)
        grid = ShardGrid(graph, 48)
        for shard in grid.iter_shards():
            assert shard.src.base is grid._src_sorted
            assert shard.dst.base is grid._dst_sorted
            assert shard.edge_ids.base is grid._order

    def test_iter_shards_streams_in_row_col_order(self):
        graph = erdos_renyi(100, 800, feature_dim=8, seed=4)
        grid = ShardGrid(graph, 17)
        keys = [(s.row, s.col) for s in grid.iter_shards()]
        assert keys == sorted(keys)
        assert sum(s.num_edges for s in grid.iter_shards()) == 800


class TestNodeInterval:
    def test_size_and_contains(self):
        interval = NodeInterval(index=0, start=10, stop=20)
        assert interval.size == 10
        assert interval.contains(np.array([10, 19])).all()
        assert not interval.contains(np.array([9, 20])).any()

    def test_rejects_inverted(self):
        with pytest.raises(GraphError):
            NodeInterval(index=0, start=5, stop=2)


class TestShardGrid:
    def test_every_edge_in_exactly_one_shard(self, small_graph):
        grid = ShardGrid(small_graph, interval_size=16)
        grid.validate()
        recovered = set()
        for shard in grid.nonempty_shards():
            for u, v in zip(shard.src.tolist(), shard.dst.tolist()):
                recovered.add((u, v))
        original = set(zip(small_graph.src.tolist(),
                           small_graph.dst.tolist()))
        assert recovered == original

    def test_grid_side(self, small_graph):
        grid = ShardGrid(small_graph, interval_size=16)
        assert grid.grid_side == 4  # ceil(60 / 16)
        assert grid.num_edges == small_graph.num_edges

    def test_shard_bounds(self, small_graph):
        grid = ShardGrid(small_graph, interval_size=16)
        for shard in grid.nonempty_shards():
            assert shard.src_interval.contains(shard.src).all()
            assert shard.dst_interval.contains(shard.dst).all()

    def test_local_ids(self):
        g = Graph(6, [0, 3, 5], [3, 4, 1])
        grid = ShardGrid(g, interval_size=3)
        shard = grid.shard(1, 1)  # edge (3, 4)
        assert shard.local_src.tolist() == [0]
        assert shard.local_dst.tolist() == [1]

    def test_edges_sorted_by_dst_within_shard(self, medium_graph):
        grid = ShardGrid(medium_graph, interval_size=100)
        for shard in grid.nonempty_shards():
            assert (np.diff(shard.dst) >= 0).all()

    def test_edge_ids_alignment(self, small_graph):
        grid = ShardGrid(small_graph, interval_size=16)
        for shard in grid.nonempty_shards():
            assert np.array_equal(small_graph.src[shard.edge_ids],
                                  shard.src)
            assert np.array_equal(small_graph.dst[shard.edge_ids],
                                  shard.dst)

    def test_empty_cell_returns_empty_shard(self):
        g = Graph(4, [0], [1])
        grid = ShardGrid(g, interval_size=2)
        assert grid.shard(1, 0).num_edges == 0

    def test_out_of_range_shard(self):
        g = Graph(4, [0], [1])
        grid = ShardGrid(g, interval_size=2)
        with pytest.raises(GraphError):
            grid.shard(5, 0)

    def test_rejects_bad_interval(self, small_graph):
        with pytest.raises(GraphError):
            ShardGrid(small_graph, interval_size=0)

    def test_single_shard_when_interval_covers(self, small_graph):
        grid = ShardGrid(small_graph, interval_size=1000)
        assert grid.grid_side == 1
        assert grid.shard(0, 0).num_edges == small_graph.num_edges


class TestPlanning:
    def test_interval_size_formula(self):
        config = GraphEngineConfig()
        block = 64
        per_node = block * 4
        expected = min(config.usable_src_bytes // per_node,
                       config.usable_dst_bytes // per_node)
        assert plan_interval_size(config, block) == expected

    def test_smaller_block_bigger_interval(self):
        """The dimension-blocking lever: halving B doubles capacity."""
        config = GraphEngineConfig()
        assert (plan_interval_size(config, 32)
                == 2 * plan_interval_size(config, 64))

    def test_rejects_block_too_large(self):
        config = GraphEngineConfig(src_feature_buffer_bytes=64,
                                   dst_feature_buffer_bytes=64,
                                   edge_buffer_bytes=64)
        with pytest.raises(GraphError):
            plan_interval_size(config, 1024)

    def test_plan_shards_respects_edge_buffer(self):
        graph = erdos_renyi(64, 600, feature_dim=8, seed=3)
        config = GraphEngineConfig(
            num_gpes=2, simd_width=2,
            src_feature_buffer_bytes=64 * 8 * 2,  # whole graph fits
            dst_feature_buffer_bytes=64 * 8 * 2,
            edge_buffer_bytes=100 * EDGE_BYTES * 2)  # 100 edges max
        grid = plan_shards(graph, config, block=8)
        assert grid.max_shard_edges <= 100
        grid.validate()

    def test_plan_shards_single_when_everything_fits(
            self, small_graph, default_config):
        grid = plan_shards(small_graph, default_config.graph, block=8)
        assert grid.grid_side == 1
