"""Coverage for report renderers, energy breakdown, and edge paths not
reached by the main suites."""

import numpy as np
import pytest

from repro.eval.experiments import (
    Fig3Result,
    Fig3Row,
    Fig4Point,
    Fig5Row,
)
from repro.eval.report import render_fig3, render_fig4, render_fig5


class TestRenderers:
    def test_render_fig3(self):
        result = Fig3Result(rows=[
            Fig3Row(label="cora-gcn", speedup_blocked=7.0,
                    speedup_no_blocking=4.9, paper_blocked=7.5,
                    paper_no_blocking=3.8),
            Fig3Row(label="Gmean", speedup_blocked=4.9,
                    speedup_no_blocking=3.0, paper_blocked=8.0,
                    paper_no_blocking=4.2),
        ])
        text = render_fig3(result)
        assert "cora-gcn" in text and "7.0x" in text and "7.5x" in text
        assert result.gmean_row.label == "Gmean"

    def test_render_fig3_missing_paper_value(self):
        result = Fig3Result(rows=[
            Fig3Row(label="x", speedup_blocked=1.0,
                    speedup_no_blocking=1.0)])
        assert "-" in render_fig3(result)

    def test_render_fig4(self):
        text = render_fig4([Fig4Point(block=32, slowdown=1.4),
                            Fig4Point(block=64, slowdown=1.0)])
        assert "1.40x" in text and "B" in text

    def test_render_fig5(self):
        rows = [Fig5Row(label="Cora-16",
                        speedups={"more-dense-compute": 1.1})]
        text = render_fig5(rows)
        assert "Cora-16" in text and "1.10x" in text


class TestEnergyBreakdown:
    def test_breakdown_by_op_kind(self):
        from repro.accelerator import GNNerator
        from repro.eval.energy import estimate_energy
        from repro.graph.generators import erdos_renyi
        from repro.models.zoo import build_network
        from tests.conftest import make_tiny_config

        graph = erdos_renyi(40, 200, feature_dim=12, seed=2)
        model = build_network("gcn", 12, 4)
        accelerator = GNNerator(make_tiny_config(4))
        program = accelerator.compile(graph, model)
        result = accelerator.simulate(program)
        report = estimate_energy(program, result)
        assert "GemmOp" in report.breakdown
        assert "ShardAggregateOp" in report.breakdown
        assert sum(report.breakdown.values()) == pytest.approx(
            report.compute_pj + report.sram_pj
            - result.total_dram_bytes * 0.6, rel=1e-6)


class TestKernelEdgePaths:
    def test_any_of_with_pre_triggered(self):
        from repro.sim.kernel import Environment
        env = Environment()
        done = env.event()
        done.trigger("early")
        combo = env.any_of([done, env.timeout(100)])
        assert combo.triggered and combo.value == "early"

    def test_run_until_exact_boundary(self):
        from repro.sim.kernel import Environment
        env = Environment()
        fired = []

        def proc(env):
            yield env.timeout(30)
            fired.append(env.now)

        env.process(proc(env))
        env.run(until=30)
        assert fired == [30]

    def test_store_wakes_waiting_putter_on_get(self):
        from repro.sim.kernel import Environment
        from repro.sim.queues import Store
        env = Environment()
        store = Store(env, capacity=1)
        order = []

        def producer(env):
            yield store.put("a")
            order.append("put-a")
            yield store.put("b")
            order.append("put-b")

        def consumer(env):
            yield env.timeout(5)
            item = yield store.get()
            order.append(f"got-{item}")
            item = yield store.get()
            order.append(f"got-{item}")

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        # put-b unblocks at the same instant got-a happens (t=5) and the
        # freshly-admitted putter is scheduled first (FIFO determinism).
        assert order == ["put-a", "put-b", "got-a", "got-b"]

    def test_direct_handoff_when_getter_waits(self):
        from repro.sim.kernel import Environment
        from repro.sim.queues import Store
        env = Environment()
        store = Store(env, capacity=1)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append(item)

        def producer(env):
            yield env.timeout(3)
            yield store.put("direct")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == ["direct"]


class TestDeepNetworks:
    """Functional equivalence holds for deeper stacks and odd shapes."""

    def test_four_layer_gcn(self):
        from repro.compiler.lowering import compile_workload
        from repro.compiler.runtime import run_functional
        from repro.graph.generators import erdos_renyi
        from repro.models.layers import init_parameters
        from repro.models.reference import reference_forward
        from repro.models.zoo import build_network
        from tests.conftest import make_tiny_config

        graph = erdos_renyi(40, 200, feature_dim=10, seed=3)
        model = build_network("graphsage", 10, 3, hidden_dim=6,
                              num_hidden_layers=3)
        params = init_parameters(model, seed=4)
        program = compile_workload(graph, model, make_tiny_config(4),
                                   params=params, feature_block=4)
        expected = reference_forward(model, graph, params)
        actual = run_functional(program, graph)
        np.testing.assert_allclose(actual, expected, rtol=2e-3, atol=1e-3)

    def test_pool_with_custom_pool_dim(self):
        from repro.compiler.lowering import compile_workload
        from repro.compiler.runtime import run_functional
        from repro.graph.generators import erdos_renyi
        from repro.models.graphsage_pool import graphsage_pool_layer
        from repro.models.layers import init_parameters
        from repro.models.reference import reference_forward
        from repro.models.stages import GNNModel
        from tests.conftest import make_tiny_config

        graph = erdos_renyi(30, 120, feature_dim=9, seed=5)
        layer = graphsage_pool_layer(9, 4, pool_dim=7)
        model = GNNModel(name="pool7", layers=(layer,))
        params = init_parameters(model, seed=6)
        program = compile_workload(graph, model, make_tiny_config(3),
                                   params=params, feature_block=3)
        expected = reference_forward(model, graph, params)
        actual = run_functional(program, graph)
        np.testing.assert_allclose(actual, expected, rtol=2e-3, atol=1e-3)

    def test_wide_hidden_functional(self):
        """Hidden dim wider than any buffer-friendly block."""
        from repro.compiler.lowering import compile_workload
        from repro.compiler.runtime import run_functional
        from repro.graph.generators import erdos_renyi
        from repro.models.layers import init_parameters
        from repro.models.reference import reference_forward
        from repro.models.zoo import build_network
        from tests.conftest import make_tiny_config

        graph = erdos_renyi(20, 80, feature_dim=5, seed=7)
        model = build_network("gcn", 5, 2, hidden_dim=64)
        params = init_parameters(model, seed=8)
        program = compile_workload(graph, model, make_tiny_config(8),
                                   params=params, feature_block=8)
        expected = reference_forward(model, graph, params)
        actual = run_functional(program, graph)
        np.testing.assert_allclose(actual, expected, rtol=2e-3, atol=1e-3)
