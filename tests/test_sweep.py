"""Tests for the parallel sweep engine: plans, cache, scheduler,
runner, and the ``sweep`` CLI subcommand."""

import json
import os

import pytest

from repro.cli import main
from repro.config.workload import WorkloadSpec
from repro.eval.experiments import fig3_speedups, table1_dataflow_costs
from repro.eval.harness import Harness
from repro.sweep import (
    DatasetCache,
    NullCache,
    ResultCache,
    SweepError,
    SweepPlan,
    SweepPlanError,
    SweepPoint,
    SweepRunner,
    build_plan,
    cache_key,
    code_version_hash,
    fig3_plan,
    fig4_plan,
    fig5_plan,
    point_for,
    smoke_plan,
    table1_plan,
    table5_plan,
)

CORA_GCN = WorkloadSpec(dataset="cora", network="gcn")


@pytest.fixture(scope="module")
def smoke_result():
    """One shared serial run of the smoke plan for result-shape tests."""
    return SweepRunner().run(smoke_plan())


# ---------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------
class TestPlans:
    def test_fig3_plan_covers_all_platforms(self):
        plan = fig3_plan()
        assert len(plan) == 36  # 9 workloads x 4 platform points
        platforms = {p.platform for p in plan}
        assert platforms == {"gnnerator", "gpu", "hygcn"}

    def test_fig4_plan_always_includes_baseline(self):
        plan = fig4_plan(blocks=(128,))
        blocks = {p.feature_block for p in plan}
        assert blocks == {64, 128}

    def test_fig5_plan_has_dense_autotune_candidates(self):
        plan = fig5_plan(hidden_dims=(16,))
        dense = [p for p in plan if p.variant == "more-dense-compute"]
        assert {p.variant_block for p in dense} == {None, 64}

    def test_plans_deduplicate_points(self):
        point = point_for(CORA_GCN)
        plan = SweepPlan("dup", (point, point))
        assert len(plan) == 1

    def test_point_validates_eagerly(self):
        with pytest.raises(SweepPlanError):
            SweepPoint(dataset="cora", network="gcn", platform="tpu")
        with pytest.raises(SweepPlanError):
            SweepPoint(dataset="cora", network="gcn", metric="flops")
        with pytest.raises(SweepPlanError):
            SweepPoint(dataset="cora", network="gcn", platform="gpu",
                       variant="more-graph-memory")
        with pytest.raises(ValueError, match="hidden_dim"):
            SweepPoint(dataset="cora", network="gcn", hidden_dim=0)

    def test_baseline_platform_points_are_normalised(self):
        """GPU/HyGCN latencies ignore dataflow knobs, so their points
        collapse onto one cache entry."""
        a = point_for(CORA_GCN, "gpu")
        b = point_for(CORA_GCN.with_block(None), "gpu")
        assert a == b

    def test_build_plan_registry(self):
        for name in ("fig3", "fig4", "fig5", "table1", "table5",
                     "smoke", "all"):
            assert len(build_plan(name)) > 0
        with pytest.raises(SweepPlanError):
            build_plan("fig9")

    def test_build_plan_seeds_every_point(self):
        plan = build_plan("smoke", seed=7)
        assert all(p.seed == 7 for p in plan)


# ---------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------
class TestResultCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        key = cache.key_for(point_for(CORA_GCN).payload())
        assert cache.get(key) is None
        cache.put(key, {"schema": 1, "status": "ok",
                        "metrics": {"seconds": 1.5}})
        record = cache.get(key)
        assert record["metrics"]["seconds"] == 1.5
        assert cache.stats == {"hits": 1, "misses": 1}

    def test_key_changes_with_config(self):
        base = point_for(CORA_GCN).payload()
        other = point_for(CORA_GCN.with_block(32)).payload()
        assert cache_key(base, "v1") != cache_key(other, "v1")

    def test_key_changes_with_code_version(self):
        payload = point_for(CORA_GCN).payload()
        assert cache_key(payload, "v1") != cache_key(payload, "v2")

    def test_key_changes_with_seed(self):
        a = point_for(CORA_GCN).payload()
        b = point_for(CORA_GCN, seed=1).payload()
        assert cache_key(a, "v1") != cache_key(b, "v1")

    def test_corrupt_entry_is_dropped(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        key = cache.key_for(point_for(CORA_GCN).payload())
        cache.put(key, {"schema": 1, "status": "ok", "metrics": {}})
        path = cache._path(key)
        path.write_text("{not json")
        assert cache.get(key) is None
        assert not path.exists()

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        for block in (16, 32):
            key = cache.key_for(point_for(CORA_GCN.with_block(block))
                                .payload())
            cache.put(key, {"schema": 1, "status": "ok", "metrics": {}})
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_code_version_hash_is_stable(self):
        assert code_version_hash() == code_version_hash()
        assert len(code_version_hash()) == 64

    def test_code_version_tracks_source_edits(self, tmp_path):
        """A long-lived process that edits source must get a fresh code
        hash from the next ResultCache it constructs (regression: the
        hash used to be ``lru_cache``d for the process lifetime)."""
        code = tmp_path / "code"
        code.mkdir()
        module = code / "module.py"
        module.write_text("VALUE = 1\n")
        first = ResultCache(tmp_path / "cache", code_root=code)
        module.write_text("VALUE = 2\n")
        second = ResultCache(tmp_path / "cache", code_root=code)
        assert first.code_version != second.code_version
        payload = point_for(CORA_GCN).payload()
        assert first.key_for(payload) != second.key_for(payload)

    def test_code_version_fast_path_reuses_digest(self, tmp_path):
        """Unchanged trees hit the mtime/size snapshot fast path."""
        code = tmp_path / "code"
        code.mkdir()
        (code / "module.py").write_text("VALUE = 1\n")
        assert (ResultCache(tmp_path / "a", code_root=code).code_version
                == ResultCache(tmp_path / "b", code_root=code)
                .code_version)

    def test_get_tolerates_concurrent_removal(self, tmp_path,
                                              monkeypatch):
        """Two workers racing on a corrupt entry: the loser's
        ``os.remove`` fails because the winner already dropped the file
        — that must read as a miss, never an exception."""
        import repro.sweep.cache as cache_module

        cache = ResultCache(tmp_path, code_version="v1")
        key = cache.key_for(point_for(CORA_GCN).payload())
        cache.put(key, {"schema": 1, "status": "ok", "metrics": {}})
        path = cache._path(key)
        path.write_text('{"schema": 1, "status"')  # truncated write

        real_remove = os.remove

        def racing_remove(target):
            real_remove(target)  # the sibling worker wins the race...
            real_remove(target)  # ...and ours raises FileNotFoundError

        monkeypatch.setattr(cache_module.os, "remove", racing_remove)
        assert cache.get(key) is None
        assert not path.exists()

    def test_put_failure_leaves_no_partial_file(self, tmp_path,
                                                monkeypatch):
        cache = ResultCache(tmp_path, code_version="v1")
        key = cache.key_for(point_for(CORA_GCN).payload())

        class Unserialisable:
            pass

        with pytest.raises(TypeError):
            cache.put(key, {"schema": 1, "bad": Unserialisable()})
        leftovers = [p for p in tmp_path.rglob("*") if p.is_file()]
        assert leftovers == []
        assert cache.get(key) is None


class TestDatasetCache:
    def test_caches_per_instance(self):
        calls = []

        def loader(name):
            calls.append(name)
            return object()

        cache = DatasetCache(loader=loader)
        assert cache.get("cora") is cache.get("cora")
        assert calls == ["cora"]
        other = DatasetCache(loader=loader)
        other.get("cora")
        assert calls == ["cora", "cora"]


# ---------------------------------------------------------------------
# Runner: caching behaviour
# ---------------------------------------------------------------------
class TestRunnerCaching:
    PLAN = SweepPlan("mini", (
        point_for(CORA_GCN),
        point_for(CORA_GCN, "hygcn"),
    ))

    def test_cold_then_warm(self, tmp_path):
        cold = SweepRunner(cache=ResultCache(tmp_path)).run(self.PLAN)
        assert cold.ok and cold.misses == 2 and cold.hits == 0
        warm = SweepRunner(cache=ResultCache(tmp_path)).run(self.PLAN)
        assert warm.ok and warm.misses == 0 and warm.hits == 2
        assert all(r.cached for r in warm.results)
        for point in self.PLAN:
            assert (warm.seconds_for(point)
                    == cold.seconds_for(point))

    def test_config_change_invalidates(self, tmp_path):
        runner = SweepRunner(cache=ResultCache(tmp_path))
        runner.run(self.PLAN)
        changed = SweepPlan("mini32", (point_for(CORA_GCN.with_block(32)),))
        result = SweepRunner(cache=ResultCache(tmp_path)).run(changed)
        assert result.misses == 1 and result.hits == 0

    def test_code_change_invalidates(self, tmp_path):
        SweepRunner(cache=ResultCache(tmp_path, code_version="a")) \
            .run(self.PLAN)
        rerun = SweepRunner(cache=ResultCache(tmp_path, code_version="b")) \
            .run(self.PLAN)
        assert rerun.misses == 2 and rerun.hits == 0

    def test_null_cache_never_persists(self, tmp_path):
        cache = NullCache()
        first = SweepRunner(cache=cache).run(self.PLAN)
        second = SweepRunner(cache=cache).run(self.PLAN)
        assert first.misses == second.misses == 2
        assert not any(r.cached for r in second.results)


# ---------------------------------------------------------------------
# Runner: scheduling, determinism, failure isolation
# ---------------------------------------------------------------------
class TestScheduling:
    def test_parallel_matches_serial_exactly(self, tmp_path):
        plan = smoke_plan()
        serial = SweepRunner(jobs=1).run(plan)
        parallel = SweepRunner(jobs=4).run(plan)
        assert serial.ok and parallel.ok
        for point in plan:
            assert (serial.result_for(point).metrics
                    == parallel.result_for(point).metrics)

    def test_results_preserve_plan_order(self, smoke_result):
        assert ([r.point for r in smoke_result.results]
                == list(smoke_plan().points))

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_failure_is_isolated_per_point(self, jobs):
        plan = SweepPlan("faulty", (
            point_for(CORA_GCN),
            SweepPoint(dataset="no-such-dataset", network="gcn"),
            point_for(CORA_GCN, "hygcn"),
        ))
        result = SweepRunner(jobs=jobs).run(plan)
        statuses = [r.status for r in result.results]
        assert statuses == ["ok", "error", "ok"]
        assert result.errors == 1
        bad = result.results[1]
        assert "no-such-dataset" in bad.error
        with pytest.raises(SweepError):
            result.metrics_for(bad.point)

    def test_failed_points_are_not_cached(self, tmp_path):
        plan = SweepPlan("faulty", (
            SweepPoint(dataset="no-such-dataset", network="gcn"),))
        cache = ResultCache(tmp_path)
        SweepRunner(cache=cache).run(plan)
        assert len(cache) == 0
        rerun = SweepRunner(cache=ResultCache(tmp_path)).run(plan)
        assert rerun.misses == 1

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)

    def test_truncated_cache_entries_recompute_under_jobs_4(self,
                                                            tmp_path):
        """Half-written records (e.g. a worker killed mid-write before
        atomic puts) must read as misses for every one of 4 workers and
        be healed by the rerun's puts."""
        plan = smoke_plan()
        seed_cache = ResultCache(tmp_path, code_version="v1")
        for point in plan:
            key = seed_cache.key_for(point.payload())
            path = seed_cache._path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text('{"schema": 1, "metr')  # truncated record
        result = SweepRunner(
            jobs=4, cache=ResultCache(tmp_path, code_version="v1")
        ).run(plan)
        assert result.ok
        assert result.hits == 0 and result.misses == len(plan)
        warm = SweepRunner(
            cache=ResultCache(tmp_path, code_version="v1")).run(plan)
        assert warm.ok and warm.hits == len(plan) and warm.misses == 0


# ---------------------------------------------------------------------
# Result serialisation
# ---------------------------------------------------------------------
class TestSweepResult:
    def test_to_json_shape(self, smoke_result):
        data = json.loads(smoke_result.to_json())
        assert data["plan"] == "smoke"
        assert data["errors"] == 0
        assert data["cache"] == {"hits": 0, "misses": 6}
        assert len(data["points"]) == 6
        first = data["points"][0]
        assert first["status"] == "ok"
        assert first["metrics"]["seconds"] > 0
        assert first["point"]["dataset"] == "cora"

    def test_to_csv_shape(self, smoke_result):
        lines = smoke_result.to_csv().strip().splitlines()
        assert len(lines) == 7  # header + 6 points
        assert lines[0].startswith("label,dataset,network,platform")
        assert "cora,gcn,gnnerator" in lines[1]

    def test_unknown_point_raises(self, smoke_result):
        with pytest.raises(KeyError):
            smoke_result.result_for(point_for(
                WorkloadSpec(dataset="pubmed", network="gcn")))


# ---------------------------------------------------------------------
# Experiments route through the engine
# ---------------------------------------------------------------------
class TestExperimentsIntegration:
    def test_fig3_via_cached_runner_is_identical(self, tmp_path):
        """A cached, sharded fig3 equals the default serial path —
        the engine changes wall-clock, never numbers."""
        serial = fig3_speedups()
        cached = fig3_speedups(
            runner=SweepRunner(jobs=2, cache=ResultCache(tmp_path)))
        warm = fig3_speedups(
            runner=SweepRunner(cache=ResultCache(tmp_path)))
        for a, b, c in zip(serial.rows, cached.rows, warm.rows):
            assert a.speedup_blocked == b.speedup_blocked
            assert a.speedup_blocked == c.speedup_blocked
            assert a.speedup_no_blocking == c.speedup_no_blocking

    def test_table1_traffic_points_skip_simulation(self):
        plan = table1_plan(dataset="cora")
        assert all(p.metric == "traffic" for p in plan)
        rows = table1_dataflow_costs(dataset="cora", feature_block=None)
        assert all(row.matches for row in rows)

    def test_table5_plan_omits_gpu(self):
        assert all(p.platform != "gpu" for p in table5_plan())

    def test_shared_harness_is_reused(self):
        harness = Harness()
        runner = SweepRunner(harness=harness)
        runner.run(SweepPlan("one", (point_for(CORA_GCN),)))
        assert "cora" in harness._datasets

    def test_seeded_harness_is_honoured(self):
        """A caller-supplied harness with a non-default seed must
        actually compute the points (plan points are re-seeded to
        match, as the serial path historically did)."""
        from repro.eval.experiments import table5_hygcn

        harness = Harness(seed=5)
        table5_hygcn(harness=harness)
        assert "cora" in harness._datasets


# ---------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------
class TestSweepCli:
    def test_sweep_json_output_file(self, tmp_path, capsys):
        out = tmp_path / "smoke.json"
        assert main(["sweep", "smoke", "--cache-dir",
                     str(tmp_path / "cache"), "--format", "json",
                     "--output", str(out)]) == 0
        data = json.loads(out.read_text())
        assert data["plan"] == "smoke" and data["errors"] == 0
        summary = capsys.readouterr().out
        assert "6 points" in summary and str(out) in summary

    def test_sweep_warm_rerun_recomputes_nothing(self, tmp_path, capsys):
        args = ["sweep", "smoke", "--cache-dir", str(tmp_path / "cache"),
                "--jobs", "2", "--format", "json"]
        assert main(args) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["cache"]["misses"] == 6
        assert main(args) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["cache"] == {"hits": 6, "misses": 0}
        assert ([p["metrics"] for p in cold["points"]]
                == [p["metrics"] for p in warm["points"]])

    def test_sweep_no_cache_leaves_no_files(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["sweep", "smoke", "--no-cache", "--cache-dir",
                     str(cache_dir), "--format", "csv"]) == 0
        assert not cache_dir.exists()
        out = capsys.readouterr().out
        assert out.startswith("label,")

    def test_sweep_table_format(self, tmp_path, capsys):
        assert main(["sweep", "smoke", "--cache-dir",
                     str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "Sweep — smoke" in out and "cora-gcn" in out

    def test_sweep_rejects_unknown_plan(self):
        with pytest.raises(SystemExit):
            main(["sweep", "fig9"])

    def test_sweep_rejects_bad_jobs(self):
        with pytest.raises(SystemExit):
            main(["sweep", "smoke", "--jobs", "0"])

    def test_sweep_exit_code_on_point_failure(self, monkeypatch, capsys):
        faulty = SweepPlan("faulty", (
            SweepPoint(dataset="no-such-dataset", network="gcn"),))
        monkeypatch.setattr("repro.cli.build_plan",
                            lambda name, seed=0, networks=None: faulty)
        assert main(["sweep", "smoke", "--no-cache"]) == 1
        assert "error" in capsys.readouterr().out
