"""Coalesced kernel == process kernel, cycle for cycle.

The coalesced replay (:mod:`repro.sim.coalesce`) carries a docstring
proof of order-equivalence; these tests are the empirical lock. Every
zoo network over every differential graph shape — blocked and
unblocked, both traversals — must produce *exactly* the same cycle
count, busy-cycle accounting, and DRAM traffic through both kernels.
"""

from __future__ import annotations

import pytest

from repro.accelerator import GNNerator
from repro.config.workload import DST_STATIONARY, SRC_STATIONARY
from repro.models.layers import init_parameters
from repro.models.zoo import NETWORK_NAMES, build_network
from repro.sim.coalesce import DeadlockSuspension, build_plan, run_plan
from repro.sim.kernel import SimulationError
from tests.conftest import make_tiny_config
from tests.test_differential import FEATURE_DIM, GRAPH_CASES, NUM_CLASSES


def _both_kernels(network: str, graph, feature_block, traversal):
    model = build_network(network, FEATURE_DIM, NUM_CLASSES, hidden_dim=8)
    params = init_parameters(model, seed=7)
    accelerator = GNNerator(make_tiny_config(feature_block))
    program = accelerator.compile(graph, model, params=params,
                                  traversal=traversal,
                                  feature_block=feature_block)
    return (accelerator.simulate(program),
            accelerator.simulate(program, coalesce=False))


@pytest.mark.parametrize("network", NETWORK_NAMES)
@pytest.mark.parametrize("graph_case", sorted(GRAPH_CASES))
@pytest.mark.parametrize("feature_block,traversal", [
    (4, DST_STATIONARY), (4, SRC_STATIONARY), (None, DST_STATIONARY)])
def test_kernels_agree_exactly(network, graph_case, feature_block,
                               traversal):
    fast, slow = _both_kernels(network, GRAPH_CASES[graph_case](),
                               feature_block, traversal)
    assert fast.cycles == slow.cycles
    assert fast.unit_busy_cycles == slow.unit_busy_cycles
    assert fast.dram_bytes_by_unit == slow.dram_bytes_by_unit
    assert fast.dram_bytes_by_purpose == slow.dram_bytes_by_purpose
    assert fast.dram_busy_cycles == slow.dram_busy_cycles
    assert fast.num_operations == slow.num_operations


class TestPlan:
    def _program(self, config=None):
        graph = GRAPH_CASES["random-0"]()
        model = build_network("gcn", FEATURE_DIM, NUM_CLASSES,
                              hidden_dim=8)
        config = config or make_tiny_config(4)
        return config, GNNerator(config).compile(
            graph, model, params=init_parameters(model, seed=7),
            feature_block=4)

    def test_plan_is_cached_per_dram_config(self):
        config, program = self._program()
        assert program.coalesced_plan(config.dram) is \
            program.coalesced_plan(config.dram)

    def test_plan_prebuilt_at_compile_time(self):
        """compile_workload pays the chain build so simulate doesn't."""
        config, program = self._program()
        assert config.dram in program._coalesced_plans

    def test_different_dram_config_builds_fresh_plan(self):
        import dataclasses

        config, program = self._program()
        other = dataclasses.replace(config.dram,
                                    burst_latency_cycles=13)
        plan = program.coalesced_plan(other)
        assert plan is not program.coalesced_plan(config.dram)
        # and the cycles actually move with the latency change
        fast = GNNerator(dataclasses.replace(
            config, dram=other)).simulate(program)
        assert fast.cycles != GNNerator(config).simulate(program).cycles

    def test_static_accounting_matches_program(self):
        config, program = self._program()
        plan = program.coalesced_plan(config.dram)
        assert plan.unit_busy_cycles == program.compute_cycles_by_unit()

    def test_deadlocked_plan_raises_with_stuck_units(self):
        config, program = self._program()
        program.queues["dense.fetch"][0].add_wait("never")
        plan = build_plan(program.queues, config.dram)
        with pytest.raises(DeadlockSuspension) as excinfo:
            run_plan(plan)
        assert "dense.fetch" in excinfo.value.stuck

    def test_unit_stuck_on_its_final_action_is_reported(self):
        """A unit blocked on the last action before its END sentinel
        shares a finished unit's pc — the stuck list must still name
        it (regression: it used to report 'unfinished units: []')."""
        from repro.compiler.ir import Operation

        config = make_tiny_config(4)
        queues = {"graph.fetch": [Operation(unit="graph.fetch",
                                            wait=("never",))]}
        plan = build_plan(queues, config.dram)
        with pytest.raises(DeadlockSuspension) as excinfo:
            run_plan(plan)
        assert excinfo.value.stuck == ["graph.fetch"]

    def test_tracer_forces_process_kernel(self):
        from repro.sim.trace import Tracer

        config, program = self._program()
        accelerator = GNNerator(config)
        traced = accelerator.simulate(program, tracer=Tracer())
        assert traced.cycles == accelerator.simulate(program).cycles
        with pytest.raises(SimulationError, match="coalesce=False"):
            accelerator.simulate(program, tracer=Tracer(),
                                 coalesce=True)
