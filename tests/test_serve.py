"""Tests for the ``repro serve`` daemon: protocol validation, the
coalescing work queue, the HTTP surface, atomic benchmark writes, and
the SIGTERM drain path (subprocess)."""

from __future__ import annotations

import io
import json
import math
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.serve import (
    JobExpired,
    ProtocolError,
    QueueClosed,
    QueueFull,
    ServeState,
    WorkQueue,
    make_server,
    parse_request,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


# ---------------------------------------------------------------------
# HTTP plumbing helpers (in-process daemon)
# ---------------------------------------------------------------------
@pytest.fixture()
def daemon(tmp_path):
    """A live in-process daemon on a free port; yields (state, base)."""
    state = ServeState(seed=0, workers=2, depth=8, cache_dir=None,
                       request_timeout_s=60.0)
    # Hermetic: no repo-level .program-cache reads/writes from tests.
    state.harness.program_store = None
    # Capture structured logs instead of spraying pytest's stderr;
    # tests read them back through state.logger._stream.
    state.logger._stream = io.StringIO()
    httpd = make_server(state, "127.0.0.1", 0)
    thread = threading.Thread(target=httpd.serve_forever,
                              kwargs={"poll_interval": 0.02},
                              daemon=True)
    thread.start()
    try:
        yield state, f"http://127.0.0.1:{httpd.server_address[1]}"
    finally:
        state.queue.stop(drain=False, timeout=5.0)
        httpd.shutdown()
        httpd.server_close()


def _post(url: str, body: dict, timeout: float = 60.0):
    """(status, payload, headers); HTTP error statuses are data."""
    request = urllib.request.Request(
        url, data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode()), \
                dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode()), \
            dict(exc.headers)


def _get(url: str, timeout: float = 10.0):
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


# ---------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------
class TestProtocol:
    def test_run_defaults(self):
        request = parse_request("run", {"dataset": "tiny",
                                        "network": "gcn"})
        assert request.block == 64
        assert request.hidden_dim == 16
        assert request.overrides == ()

    def test_key_is_stable_and_discriminating(self):
        a = parse_request("run", {"dataset": "tiny", "network": "gcn"})
        b = parse_request("run", {"dataset": "tiny", "network": "gcn"})
        c = parse_request("run", {"dataset": "tiny", "network": "gcn",
                                  "block": 32})
        assert a.key() == b.key()
        assert a.key() != c.key()

    def test_unknown_dataset_rejected_eagerly(self):
        with pytest.raises(ProtocolError, match="dataset"):
            parse_request("run", {"dataset": "nope", "network": "gcn"})

    def test_unknown_network_rejected_eagerly(self):
        with pytest.raises(ProtocolError, match="network"):
            parse_request("run", {"dataset": "tiny", "network": "rnn"})

    def test_bad_override_path_rejected_eagerly(self):
        with pytest.raises(ProtocolError):
            parse_request("run", {"dataset": "tiny", "network": "gcn",
                                  "overrides": {"dense.bogus": 4}})

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown"):
            parse_request("run", {"dataset": "tiny", "network": "gcn",
                                  "blokc": 32})

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(ProtocolError, match="endpoint"):
            parse_request("simulate", {})

    def test_sweep_plan_validated(self):
        with pytest.raises(ProtocolError, match="plan"):
            parse_request("sweep", {"plan": "not-a-plan"})


# ---------------------------------------------------------------------
# Work queue
# ---------------------------------------------------------------------
class TestWorkQueue:
    def test_identical_keys_coalesce_to_one_execution(self):
        queue = WorkQueue(workers=1, depth=8)
        gate = threading.Event()
        calls = []

        def work():
            gate.wait(5.0)
            calls.append(1)
            return "done"

        job1, coalesced1 = queue.submit(("k",), work)
        # Worker may already be running job1; an identical submit must
        # attach to it either way (inflight covers queued AND running).
        job2, coalesced2 = queue.submit(("k",), work)
        assert not coalesced1 and coalesced2
        assert job2 is job1
        assert job1.waiters == 2
        gate.set()
        assert job1.event.wait(5.0)
        assert job1.result == "done"
        assert calls == [1]
        assert queue.stats()["coalesced"] == 1
        queue.stop(timeout=5.0)

    def test_full_queue_rejects_with_retry_after(self):
        queue = WorkQueue(workers=1, depth=1)
        gate = threading.Event()
        running = threading.Event()

        def block():
            running.set()
            gate.wait(5.0)

        queue.submit(("running",), block)
        assert running.wait(5.0)  # occupies the worker, not the queue
        queue.submit(("queued",), lambda: None)
        with pytest.raises(QueueFull) as excinfo:
            queue.submit(("rejected",), lambda: None)
        assert excinfo.value.retry_after >= 1
        assert queue.stats()["rejected_429"] == 1
        gate.set()
        queue.stop(timeout=5.0)

    def test_worker_survives_job_exception(self):
        queue = WorkQueue(workers=1, depth=4)

        def boom():
            raise RuntimeError("kaput")

        job, _ = queue.submit(("bad",), boom)
        assert job.event.wait(5.0)
        assert isinstance(job.error, RuntimeError)
        ok, _ = queue.submit(("good",), lambda: 42)
        assert ok.event.wait(5.0)
        assert ok.result == 42
        stats = queue.stats()
        assert stats["errors"] == 1 and stats["completed"] == 1
        assert queue.stop(timeout=5.0)

    def test_stop_drains_accepted_work(self):
        queue = WorkQueue(workers=1, depth=8)
        gate = threading.Event()
        jobs = [queue.submit((i,), lambda i=i: gate.wait(5.0) and i
                             or i)[0]
                for i in range(4)]
        gate.set()
        assert queue.stop(drain=True, timeout=10.0)
        assert all(job.event.is_set() for job in jobs)
        assert queue.stats()["completed"] == 4
        with pytest.raises(QueueClosed):
            queue.submit(("late",), lambda: None)

    def test_stop_without_drain_fails_pending_jobs(self):
        queue = WorkQueue(workers=1, depth=8)
        gate = threading.Event()
        running = threading.Event()

        def block():
            running.set()
            gate.wait(5.0)

        queue.submit(("running",), block)
        assert running.wait(5.0)
        pending, _ = queue.submit(("pending",), lambda: "never")
        gate.set()
        assert queue.stop(drain=False, timeout=10.0)
        assert pending.event.is_set()
        assert isinstance(pending.error, QueueClosed)


# ---------------------------------------------------------------------
# HTTP surface
# ---------------------------------------------------------------------
class TestHttpSurface:
    def test_healthz_and_stats(self, daemon):
        _, base = daemon
        status, payload = _get(f"{base}/healthz")
        assert (status, payload) == (200, {"status": "ok"})
        status, stats = _get(f"{base}/stats")
        assert status == 200
        assert stats["queue"]["workers"] == 2
        assert set(stats["requests"]) == {"run", "sweep", "dse", "perf"}
        assert "full_lowerings" in stats["caches"]

    def test_run_matches_direct_simulation(self, daemon):
        state, base = daemon
        status, payload, _ = _post(f"{base}/run",
                                   {"dataset": "tiny",
                                    "network": "gcn"})
        assert status == 200
        from repro.config.workload import WorkloadSpec

        direct = state.harness.gnnerator_result(
            WorkloadSpec(dataset="tiny", network="gcn"))
        assert payload["result"]["cycles"] == direct.cycles
        assert payload["result"]["workload"] == "tiny-gcn"
        assert payload["coalesced"] is False

    def test_unknown_endpoint_404(self, daemon):
        _, base = daemon
        status, payload, _ = _post(f"{base}/simulate", {})
        assert status == 404
        assert "unknown endpoint" in payload["error"]

    def test_invalid_json_400(self, daemon):
        _, base = daemon
        request = urllib.request.Request(
            f"{base}/run", data=b"{not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_invalid_request_400(self, daemon):
        _, base = daemon
        status, payload, _ = _post(f"{base}/run",
                                   {"dataset": "nope",
                                    "network": "gcn"})
        assert status == 400
        assert "dataset" in payload["error"]

    def test_executor_failure_maps_to_500(self, daemon):
        state, base = daemon

        def boom(request):
            raise RuntimeError("executor exploded")

        state.executors["run"] = boom
        status, payload, _ = _post(f"{base}/run",
                                   {"dataset": "tiny",
                                    "network": "gcn"})
        assert status == 500
        assert "executor exploded" in payload["error"]

    def test_429_with_retry_after_when_queue_full(self, tmp_path):
        state = ServeState(seed=0, workers=1, depth=1, cache_dir=None)
        state.harness.program_store = None
        gate = threading.Event()
        running = threading.Event()
        real = state.executors["run"]

        def gated(request):
            running.set()
            gate.wait(10.0)
            return real(request)

        state.executors["run"] = gated
        httpd = make_server(state, "127.0.0.1", 0)
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        thread = threading.Thread(target=httpd.serve_forever,
                                  kwargs={"poll_interval": 0.02},
                                  daemon=True)
        thread.start()
        try:
            responses = []

            def fire(block):
                responses.append(_post(f"{base}/run",
                                       {"dataset": "tiny",
                                        "network": "gcn",
                                        "block": block}))

            # Distinct keys so nothing coalesces: one runs (gated), one
            # queues (fills depth=1), the third must bounce with 429.
            t1 = threading.Thread(target=fire, args=(64,))
            t1.start()
            assert running.wait(10.0)
            t2 = threading.Thread(target=fire, args=(32,))
            t2.start()
            deadline = time.monotonic() + 10.0
            while (state.queue.stats()["pending"] < 1
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            status, payload, headers = _post(f"{base}/run",
                                             {"dataset": "tiny",
                                              "network": "gcn",
                                              "block": 16})
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert payload["retry_after_s"] >= 1
            gate.set()
            t1.join(30.0)
            t2.join(30.0)
            assert [s for s, _, _ in responses] == [200, 200]
        finally:
            gate.set()
            state.queue.stop(drain=False, timeout=5.0)
            httpd.shutdown()
            httpd.server_close()

    def test_draining_queue_maps_to_503(self, daemon):
        state, base = daemon
        state.queue.stop(drain=False, timeout=5.0)
        status, payload, _ = _post(f"{base}/run",
                                   {"dataset": "tiny",
                                    "network": "gcn"})
        assert status == 503


# ---------------------------------------------------------------------
# Observability: /metrics, request ids, structured logs, cache tiers
# ---------------------------------------------------------------------
def _get_text(url: str, timeout: float = 10.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.read().decode(), dict(resp.headers)


def _log_lines(state) -> list[dict]:
    return [json.loads(line)
            for line in state.logger._stream.getvalue().splitlines()]


class TestObservability:
    def test_metrics_is_valid_prometheus_with_core_series(self, daemon):
        from repro.obs.metrics import parse_prometheus, series_sum

        state, base = daemon
        assert _post(f"{base}/run", {"dataset": "tiny",
                                     "network": "gcn"})[0] == 200
        status, text, headers = _get_text(f"{base}/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        parsed = parse_prometheus(text)  # raises on malformed text
        # Queue instruments mirror /stats.
        assert ("repro_queue_depth", ()) in parsed
        assert ("repro_queue_coalesced_total", ()) in parsed
        assert series_sum(parsed, "repro_queue_completed_total") >= 1
        # One sample per cache layer, both directions.
        for field in ("repro_cache_hits_total",
                      "repro_cache_misses_total"):
            layers = {dict(labels)["layer"]
                      for (name, labels) in parsed if name == field}
            assert layers == {"harness-memo", "dataset-disk",
                              "result-cache"}
        assert series_sum(parsed, "repro_full_lowerings_total") >= 1
        # The latency histogram observed the POST above.
        assert series_sum(parsed, "repro_request_latency_seconds_count",
                          endpoint="run") >= 1
        assert series_sum(parsed,
                          "repro_request_queue_wait_seconds_count") >= 1
        assert series_sum(parsed, "repro_requests_total",
                          endpoint="run", status="200") >= 1
        assert parsed[("repro_uptime_seconds", ())] >= 0

    def test_program_store_layer_appears_when_enabled(self, tmp_path):
        from repro.compiler.store import ProgramStore

        state = ServeState(seed=0, workers=1, depth=4, cache_dir=None)
        state.harness.program_store = ProgramStore(tmp_path / "ps")
        state.logger._stream = io.StringIO()
        try:
            text = state.render_metrics()
            assert 'layer="program-store"' in text
        finally:
            state.queue.stop(drain=False, timeout=5.0)

    def test_every_response_carries_a_request_id(self, daemon):
        state, base = daemon
        _, ok_payload, _ = _post(f"{base}/run", {"dataset": "tiny",
                                                 "network": "gcn"})
        _, notfound, _ = _post(f"{base}/simulate", {})
        _, bad, _ = _post(f"{base}/run", {"dataset": "nope",
                                          "network": "gcn"})
        ids = [p["request_id"] for p in (ok_payload, notfound, bad)]
        assert all(rid.startswith("req-") for rid in ids)
        assert len(set(ids)) == 3, "request ids must be unique"

    def test_run_response_reports_cache_tier(self, daemon):
        _, base = daemon
        _, first, _ = _post(f"{base}/run", {"dataset": "tiny",
                                            "network": "gcn"})
        _, second, _ = _post(f"{base}/run", {"dataset": "tiny",
                                             "network": "gcn"})
        assert first["result"]["cache_tier"] == "compiled"
        assert second["result"]["cache_tier"] == "memo"

    def test_structured_logs_join_request_to_outcome(self, daemon):
        state, base = daemon
        status, payload, _ = _post(f"{base}/run", {"dataset": "tiny",
                                                   "network": "gcn"})
        assert status == 200
        lines = _log_lines(state)
        (entry,) = [line for line in lines
                    if line.get("event") == "request"
                    and line.get("request_id") == payload["request_id"]]
        assert entry["endpoint"] == "run"
        assert entry["status"] == 200
        assert entry["cache_tier"] == "compiled"
        assert entry["queue_wait_ms"] >= 0
        assert entry["service_ms"] >= 0
        assert entry["coalesced"] is False
        assert entry["level"] == "info"

    def test_executor_failure_logs_error_with_request_id(self, daemon):
        state, base = daemon

        def boom(request):
            raise RuntimeError("executor exploded")

        state.executors["run"] = boom
        status, payload, _ = _post(f"{base}/run", {"dataset": "tiny",
                                                   "network": "gcn"})
        assert status == 500
        assert payload["request_id"].startswith("req-")
        (entry,) = [line for line in _log_lines(state)
                    if line.get("request_id") == payload["request_id"]]
        assert entry["level"] == "error"
        assert "executor exploded" in entry["error"]

    def test_429_carries_request_id_and_retry_after_log(self, tmp_path):
        state = ServeState(seed=0, workers=1, depth=1, cache_dir=None)
        state.harness.program_store = None
        state.logger._stream = io.StringIO()
        gate = threading.Event()
        running = threading.Event()
        real = state.executors["run"]

        def gated(request):
            running.set()
            gate.wait(10.0)
            return real(request)

        state.executors["run"] = gated
        httpd = make_server(state, "127.0.0.1", 0)
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        thread = threading.Thread(target=httpd.serve_forever,
                                  kwargs={"poll_interval": 0.02},
                                  daemon=True)
        thread.start()
        fired = []
        try:
            t1 = threading.Thread(target=lambda: fired.append(_post(
                f"{base}/run", {"dataset": "tiny", "network": "gcn",
                                "block": 64})))
            t1.start()
            assert running.wait(10.0)
            t2 = threading.Thread(target=lambda: fired.append(_post(
                f"{base}/run", {"dataset": "tiny", "network": "gcn",
                                "block": 32})))
            t2.start()
            deadline = time.monotonic() + 10.0
            while (state.queue.stats()["pending"] < 1
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            status, payload, _ = _post(f"{base}/run",
                                       {"dataset": "tiny",
                                        "network": "gcn",
                                        "block": 16})
            assert status == 429
            assert payload["request_id"].startswith("req-")
            gate.set()
            t1.join(30.0)
            t2.join(30.0)
            (entry,) = [line for line in _log_lines(state)
                        if line.get("status") == 429]
            assert entry["request_id"] == payload["request_id"]
            assert entry["retry_after_s"] >= 1
            assert entry["level"] == "warning"
        finally:
            gate.set()
            state.queue.stop(drain=False, timeout=5.0)
            httpd.shutdown()
            httpd.server_close()

    def test_log_level_threshold_filters_debug_http_lines(self, tmp_path):
        state = ServeState(seed=0, workers=1, depth=4, cache_dir=None,
                           log_level="debug")
        state.harness.program_store = None
        state.logger._stream = io.StringIO()
        httpd = make_server(state, "127.0.0.1", 0)
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        thread = threading.Thread(target=httpd.serve_forever,
                                  kwargs={"poll_interval": 0.02},
                                  daemon=True)
        thread.start()
        try:
            assert _get(f"{base}/healthz")[0] == 200
            events = {line["event"] for line in _log_lines(state)}
            # At debug the stdlib per-connection lines come through.
            assert "http" in events
        finally:
            state.queue.stop(drain=False, timeout=5.0)
            httpd.shutdown()
            httpd.server_close()


# ---------------------------------------------------------------------
# Coalescing end to end (the acceptance criterion)
# ---------------------------------------------------------------------
class TestCoalescing:
    def test_identical_concurrent_requests_compile_once(self, daemon):
        """8 identical concurrent requests → exactly ONE full lowering
        and 8 bit-identical responses (counter-asserted, like the CI
        smoke job does via /stats)."""
        from repro.compiler.lowering import full_lowering_count

        state, base = daemon
        gate = threading.Event()
        real = state.executors["run"]

        def gated(request):
            gate.wait(30.0)
            return real(request)

        state.executors["run"] = gated
        before = full_lowering_count()
        results = []
        lock = threading.Lock()

        def fire():
            outcome = _post(f"{base}/run", {"dataset": "tiny",
                                            "network": "gcn"})
            with lock:
                results.append(outcome)

        threads = [threading.Thread(target=fire) for _ in range(8)]
        for thread in threads:
            thread.start()
        # Let every request reach the queue while the executor is
        # gated, so all 8 are in flight together.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            stats = state.queue.stats()
            if stats["submitted"] + stats["coalesced"] >= 8:
                break
            time.sleep(0.01)
        gate.set()
        for thread in threads:
            thread.join(60.0)
        assert len(results) == 8
        assert all(status == 200 for status, _, _ in results)
        bodies = {json.dumps(payload["result"], sort_keys=True)
                  for _, payload, _ in results}
        assert len(bodies) == 1, "coalesced responses must be identical"
        assert full_lowering_count() - before == 1
        stats = state.queue.stats()
        assert stats["coalesced"] >= 1
        # /stats mirrors the counter CI asserts on.
        _, served = _get(f"{base}/stats")
        assert served["caches"]["full_lowerings"] \
            == full_lowering_count()

    def test_warm_repeat_request_compiles_nothing(self, daemon):
        from repro.compiler.lowering import full_lowering_count

        _, base = daemon
        status, _, _ = _post(f"{base}/run", {"dataset": "tiny",
                                             "network": "gcn"})
        assert status == 200
        before = full_lowering_count()
        status, payload, _ = _post(f"{base}/run", {"dataset": "tiny",
                                                   "network": "gcn"})
        assert status == 200
        assert full_lowering_count() == before
        assert payload["result"]["cycles"] > 0


# ---------------------------------------------------------------------
# Atomic benchmark writes (repro perf / loadtest --output)
# ---------------------------------------------------------------------
class TestAtomicBenchmarkWrite:
    def test_failed_write_preserves_existing_baseline(self, tmp_path):
        """A serialisation failure mid-write must leave the previous
        baseline intact and no temp litter (the old plain write_text
        truncated the target first)."""
        from repro.eval.hostperf import write_benchmark

        target = tmp_path / "BENCH_host.json"
        target.write_text('{"workloads": {"keep": "me"}}\n')
        with pytest.raises(TypeError):
            write_benchmark({"workloads": object()}, target)
        assert json.loads(target.read_text()) == {
            "workloads": {"keep": "me"}}
        assert list(tmp_path.glob(".*tmp")) == []

    def test_failed_replace_cleans_up_tmp(self, tmp_path, monkeypatch):
        from repro.eval import hostperf

        target = tmp_path / "BENCH_host.json"
        target.write_text('{"old": true}\n')

        def broken_replace(src, dst):
            raise OSError("disk detached mid-publish")

        monkeypatch.setattr(hostperf.os, "replace", broken_replace)
        with pytest.raises(OSError, match="mid-publish"):
            hostperf.write_benchmark({"new": True}, target)
        assert json.loads(target.read_text()) == {"old": True}
        assert list(tmp_path.glob(".*tmp")) == []

    def test_successful_write_round_trips(self, tmp_path):
        from repro.eval.hostperf import load_benchmark, write_benchmark

        target = tmp_path / "BENCH_serve.json"
        payload = {"meta": {"python": "x"}, "workloads": {}}
        write_benchmark(payload, target)
        assert load_benchmark(target)["meta"] == {"python": "x"}
        assert list(tmp_path.glob(".*tmp")) == []


# ---------------------------------------------------------------------
# Loadtest harness
# ---------------------------------------------------------------------
class TestLoadtest:
    def test_loadtest_reports_latency_and_zero_lowerings_warm(
            self, daemon, tmp_path):
        from repro.serve.loadtest import (
            run_loadtest,
            write_serve_benchmark,
        )

        _, base = daemon
        # Warm: first request pays the one compile.
        assert _post(f"{base}/run", {"dataset": "tiny",
                                     "network": "gcn"})[0] == 200
        payload = run_loadtest(base, requests=12, rate=200.0,
                               concurrency=4, seed=7)
        assert payload["counts"]["ok"] == 12
        assert payload["counts"]["errors"] == 0
        assert payload["latency_ms"]["p50"] > 0
        assert payload["latency_ms"]["p99"] >= payload["latency_ms"]["p50"]
        assert payload["stats_delta"]["full_lowerings"] == 0
        assert payload["stats_delta"]["completed"] >= 1
        # The Prometheus scrape delta tells the same warm-burst story.
        metrics = payload["metrics_delta"]
        assert metrics["requests_ok"] == 12
        assert metrics["full_lowerings"] == 0
        assert metrics["latency_observations"] == 12
        assert metrics["cache_hits"]["harness-memo"] >= 1
        out = tmp_path / "BENCH_serve.json"
        write_serve_benchmark(payload, out)
        written = json.loads(out.read_text())
        assert written["counts"]["ok"] == 12
        assert written["metrics_delta"]["requests_ok"] == 12

    def test_loadtest_unreachable_daemon_raises(self):
        from repro.serve.loadtest import LoadTestError, run_loadtest

        with pytest.raises(LoadTestError, match="cannot reach"):
            run_loadtest("http://127.0.0.1:9", requests=1)

    def test_percentile_nearest_rank(self):
        from repro.serve.loadtest import percentile

        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 99) == 4.0
        assert percentile([5.0], 50) == 5.0
        with pytest.raises(ValueError):
            percentile([], 50)


# ---------------------------------------------------------------------
# Daemon lifecycle (subprocess, real signals)
# ---------------------------------------------------------------------
class TestDaemonLifecycle:
    def _spawn(self, tmp_path, *extra):
        env = dict(os.environ,
                   PYTHONPATH=str(REPO_ROOT / "src"),
                   REPRO_PROGRAM_CACHE=str(tmp_path / "ps"),
                   REPRO_DATASET_CACHE=str(tmp_path / "ds"))
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "1", "--cache-dir",
             str(tmp_path / "sweep"), *extra],
            cwd=tmp_path, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)

    def _wait_ready(self, process) -> str:
        line = process.stdout.readline()
        assert "serving on http://" in line, (
            f"daemon did not come up: {line!r}")
        return line.split("http://", 1)[1].split()[0].rstrip("/")

    def test_sigterm_drains_inflight_then_exits_zero(self, tmp_path):
        process = self._spawn(tmp_path)
        try:
            address = self._wait_ready(process)
            status, payload, _ = _post(f"http://{address}/run",
                                       {"dataset": "tiny",
                                        "network": "gcn"},
                                       timeout=120.0)
            assert status == 200 and payload["result"]["cycles"] > 0
            process.send_signal(signal.SIGTERM)
            out, _ = process.communicate(timeout=60.0)
            assert process.returncode == 0, out
            assert "drained cleanly" in out
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()

    def test_sigint_exits_130(self, tmp_path):
        process = self._spawn(tmp_path)
        try:
            self._wait_ready(process)
            process.send_signal(signal.SIGINT)
            out, _ = process.communicate(timeout=60.0)
            assert process.returncode == 130, out
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()


# ---------------------------------------------------------------------
# Retry-After cold start + request deadlines (ISSUE satellites)
# ---------------------------------------------------------------------
class TestRetryAfterColdStart:
    """Before any job completes there is no service-time history; the
    estimate must still scale with the backlog via the documented
    default instead of collapsing to the 1-second floor."""

    def test_cold_estimate_scales_with_backlog(self):
        queue = WorkQueue(workers=1, depth=8)
        gate = threading.Event()
        running = threading.Event()

        def block():
            running.set()
            gate.wait(10.0)

        try:
            queue.submit(("running",), block)
            assert running.wait(10.0)
            assert not queue._durations  # genuinely cold
            one = queue.retry_after_estimate()
            for i in range(3):
                queue.submit((f"q{i}",), lambda: None)
            four = queue.retry_after_estimate()
            default = WorkQueue._DEFAULT_SERVICE_S
            assert one == math.ceil(1 * default)
            assert four == math.ceil(4 * default)
            assert four > one  # backlog-sensitive, not floored
        finally:
            gate.set()
            queue.stop(timeout=10.0)

    def test_real_history_replaces_the_default(self):
        queue = WorkQueue(workers=1, depth=8)
        try:
            job, _ = queue.submit(("fast",), lambda: None)
            assert job.event.wait(5.0)
            deadline = time.monotonic() + 5.0
            while not queue._durations and time.monotonic() < deadline:
                time.sleep(0.01)
            assert queue._durations
            # An (empty) backlog estimated from ~0s history hits the
            # 1s floor rather than the 2s cold default.
            assert queue.retry_after_estimate() == 1
        finally:
            queue.stop(timeout=10.0)


class TestRequestDeadlines:
    def test_timeout_s_validation(self):
        base = {"dataset": "tiny", "network": "gcn"}
        ok = parse_request("run", dict(base, timeout_s=2.5))
        assert ok.timeout_s == 2.5
        assert parse_request("run", dict(base)).timeout_s is None
        for bad in (0, -1, True, "soon", [1]):
            with pytest.raises(ProtocolError, match="timeout_s"):
                parse_request("run", dict(base, timeout_s=bad))

    def test_timeout_s_accepted_by_every_endpoint(self):
        bodies = {
            "run": {"dataset": "tiny", "network": "gcn"},
            "sweep": {"plan": "smoke"},
            "dse": {},
            "perf": {},
        }
        for endpoint, body in bodies.items():
            request = parse_request(endpoint,
                                    dict(body, timeout_s=1.0))
            assert request.timeout_s == 1.0

    def test_timeout_s_is_not_part_of_the_coalescing_key(self):
        body = {"dataset": "tiny", "network": "gcn"}
        patient = parse_request("run", dict(body, timeout_s=60.0))
        hurried = parse_request("run", dict(body, timeout_s=0.5))
        forever = parse_request("run", body)
        assert patient.key() == hurried.key() == forever.key()

    def test_queued_job_past_deadline_expires_unexecuted(self):
        queue = WorkQueue(workers=1, depth=8)
        gate = threading.Event()
        running = threading.Event()
        executed = []

        def block():
            running.set()
            gate.wait(10.0)

        try:
            queue.submit(("running",), block)
            assert running.wait(10.0)
            job, _ = queue.submit(("stale",),
                                  lambda: executed.append(1),
                                  timeout_s=0.02)
            time.sleep(0.1)  # deadline passes while still queued
            gate.set()
            assert job.event.wait(10.0)
            assert isinstance(job.error, JobExpired)
            assert executed == []
            assert queue.stats()["expired_504"] == 1
        finally:
            gate.set()
            queue.stop(timeout=10.0)

    def test_started_job_runs_to_completion_despite_deadline(self):
        queue = WorkQueue(workers=1, depth=8)
        gate = threading.Event()
        running = threading.Event()

        def slow():
            running.set()
            gate.wait(10.0)
            return "finished"

        try:
            job, _ = queue.submit(("slow",), slow, timeout_s=0.02)
            assert running.wait(10.0)  # started before the deadline
            time.sleep(0.1)
            gate.set()
            assert job.event.wait(10.0)
            assert job.error is None and job.result == "finished"
            assert queue.stats()["expired_504"] == 0
        finally:
            gate.set()
            queue.stop(timeout=10.0)

    def test_coalesced_waiters_keep_the_most_patient_deadline(self):
        queue = WorkQueue(workers=1, depth=8)
        gate = threading.Event()
        running = threading.Event()

        def block():
            running.set()
            gate.wait(10.0)

        try:
            queue.submit(("running",), block)
            assert running.wait(10.0)
            job, _ = queue.submit(("shared",), lambda: "v",
                                  timeout_s=1.0)
            first = job.deadline
            assert first is not None
            same, coalesced = queue.submit(("shared",), lambda: "v",
                                           timeout_s=60.0)
            assert coalesced and same is job
            assert job.deadline > first  # extended, never shortened
            _, again = queue.submit(("shared",), lambda: "v",
                                    timeout_s=0.001)
            assert again
            assert job.deadline > first  # impatient waiter can't clip
            queue.submit(("shared",), lambda: "v")  # no timeout at all
            assert job.deadline is None
        finally:
            gate.set()
            queue.stop(timeout=10.0)

    def test_drain_answers_expired_backlog_with_504_not_compute(self):
        queue = WorkQueue(workers=1, depth=8)
        gate = threading.Event()
        running = threading.Event()
        executed = []

        def block():
            running.set()
            gate.wait(10.0)

        try:
            queue.submit(("running",), block)
            assert running.wait(10.0)
            stale, _ = queue.submit(("stale",),
                                    lambda: executed.append(1),
                                    timeout_s=0.02)
            time.sleep(0.1)
            gate.set()
            assert queue.stop(drain=True, timeout=10.0)
            assert isinstance(stale.error, JobExpired)
            assert executed == []
            assert queue.stats()["expired_504"] == 1
        finally:
            gate.set()

    def test_http_504_with_metric_when_deadline_passes_in_queue(
            self, tmp_path):
        from repro.obs.metrics import parse_prometheus, series_value

        state = ServeState(seed=0, workers=1, depth=4, cache_dir=None)
        state.harness.program_store = None
        gate = threading.Event()
        running = threading.Event()
        real = state.executors["run"]

        def gated(request):
            running.set()
            gate.wait(10.0)
            return real(request)

        state.executors["run"] = gated
        httpd = make_server(state, "127.0.0.1", 0)
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        thread = threading.Thread(target=httpd.serve_forever,
                                  kwargs={"poll_interval": 0.02},
                                  daemon=True)
        thread.start()
        try:
            responses = []

            def fire(block, timeout_s):
                body = {"dataset": "tiny", "network": "gcn",
                        "block": block}
                if timeout_s is not None:
                    body["timeout_s"] = timeout_s
                responses.append(_post(f"{base}/run", body,
                                       timeout=60.0))

            t1 = threading.Thread(target=fire, args=(64, None))
            t1.start()
            assert running.wait(10.0)  # occupies the only worker
            t2 = threading.Thread(target=fire, args=(32, 0.05))
            t2.start()
            deadline = time.monotonic() + 10.0
            while (state.queue.stats()["pending"] < 1
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            time.sleep(0.1)  # let the queued request's deadline lapse
            gate.set()
            t1.join(60.0)
            t2.join(60.0)
            by_status = {status: payload
                         for status, payload, _ in responses}
            assert set(by_status) == {200, 504}
            assert "expired" in by_status[504]["error"]
            assert state.queue.stats()["expired_504"] == 1
            status, text, _ = _get_text(f"{base}/metrics")
            assert status == 200
            parsed = parse_prometheus(text)
            assert series_value(
                parsed, "repro_queue_expired_total") == 1
        finally:
            gate.set()
            state.queue.stop(drain=False, timeout=5.0)
            httpd.shutdown()
            httpd.server_close()
