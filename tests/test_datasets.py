"""Unit tests for the dataset registry (Table II)."""

import numpy as np
import pytest

from repro.graph import datasets as datasets_module
from repro.graph.datasets import (
    DATASET_CACHE_ENV,
    DATASETS,
    _dataset_cache_load,
    _dataset_cache_path,
    _dataset_cache_store,
    dataset_stats,
    dataset_table,
    load_dataset,
)
from repro.graph.graph import GraphError

TABLE2 = {
    "cora": (2708, 10556, 1433),
    "citeseer": (3327, 9104, 3703),
    "pubmed": (19717, 88648, 500),
    # Not in the paper: the CI/DSE smoke dataset.
    "tiny": (64, 256, 32),
    # Not in the paper: the million-edge scale-up workloads, pinned to
    # the published sizes of Flickr (GraphSAINT) and Reddit.
    "flickr": (89250, 899756, 500),
    "reddit-s": (232965, 11606920, 602),
}


class TestRegistry:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_stats_match_table2(self, name):
        stats = dataset_stats(name)
        nodes, edges, dim = TABLE2[name]
        assert stats.num_nodes == nodes
        assert stats.num_edges == edges
        assert stats.feature_dim == dim

    def test_sizes_match_table2_column(self):
        # Paper reports 15.6 / 49 / 40.5 MB for fp32 features.
        assert dataset_stats("cora").feature_megabytes == pytest.approx(
            15.5, abs=0.2)
        assert dataset_stats("citeseer").feature_megabytes == pytest.approx(
            49.3, abs=0.4)
        assert dataset_stats("pubmed").feature_megabytes == pytest.approx(
            39.4, abs=1.2)

    def test_unknown_dataset_lists_names(self):
        with pytest.raises(GraphError, match="cora"):
            dataset_stats("imaginary")

    def test_table_rendering_shows_paper_datasets_only(self):
        rows = dataset_table()
        assert len(rows) == 3
        assert rows[0]["Dataset"] == "CORA"
        assert all(row["Dataset"] != "TINY" for row in rows)


class TestLoading:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_synthetic_matches_published_counts(self, name):
        graph = load_dataset(name)
        stats = dataset_stats(name)
        assert graph.num_nodes == stats.num_nodes
        assert graph.num_edges == stats.num_edges
        assert graph.feature_dim == stats.feature_dim

    def test_loads_are_cached(self):
        assert load_dataset("cora") is load_dataset("cora")

    def test_symmetrised(self):
        graph = load_dataset("cora")
        pairs = set(zip(graph.src.tolist(), graph.dst.tolist()))
        sample = list(pairs)[:200]
        assert all((v, u) in pairs for u, v in sample)

    def test_disk_cache_roundtrip_is_exact(self, tmp_path, monkeypatch):
        """A graph served from the persistent npz cache is structurally
        identical to a fresh synthesis (same edges, same features)."""
        monkeypatch.setenv(DATASET_CACHE_ENV, str(tmp_path))
        fresh = datasets_module._synthesize.__wrapped__("tiny")
        path = _dataset_cache_path(dataset_stats("tiny"), 53)
        assert path is not None and path.exists()
        cached = _dataset_cache_load(path, dataset_stats("tiny"))
        assert cached is not None
        assert np.array_equal(cached.src, fresh.src)
        assert np.array_equal(cached.dst, fresh.dst)
        assert np.array_equal(cached.features, fresh.features)

    def test_disk_cache_corrupt_file_is_a_miss(self, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv(DATASET_CACHE_ENV, str(tmp_path))
        stats = dataset_stats("tiny")
        path = _dataset_cache_path(stats, 53)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not an npz archive")
        assert _dataset_cache_load(path, stats) is None
        graph = datasets_module._synthesize.__wrapped__("tiny")
        assert graph.num_nodes == stats.num_nodes

    def test_disk_cache_rejects_mismatched_stats(self, tmp_path):
        """An entry whose stored graph no longer matches the published
        statistics (e.g. stale after a registry change) is a miss."""
        stats = dataset_stats("tiny")
        wrong = datasets_module.DatasetStats(
            name="tiny", num_nodes=stats.num_nodes,
            num_edges=stats.num_edges, feature_dim=stats.feature_dim,
            num_classes=stats.num_classes,
            feature_density=stats.feature_density)
        path = tmp_path / "entry.npz"
        graph = load_dataset("tiny")
        _dataset_cache_store(path, graph)
        bigger = datasets_module.DatasetStats(
            name="tiny", num_nodes=stats.num_nodes + 1,
            num_edges=stats.num_edges, feature_dim=stats.feature_dim,
            num_classes=stats.num_classes,
            feature_density=stats.feature_density)
        assert _dataset_cache_load(path, wrong) is not None
        assert _dataset_cache_load(path, bigger) is None

    def test_disk_cache_truncated_entry_is_a_miss(self, tmp_path,
                                                  monkeypatch):
        """A truncated structure npz — a crashed writer, a torn disk —
        must read as a miss and be re-synthesised, mirroring
        ``ResultCache.get``'s any-read-error-is-a-miss contract."""
        monkeypatch.setenv(DATASET_CACHE_ENV, str(tmp_path))
        stats = dataset_stats("tiny")
        datasets_module._synthesize.__wrapped__("tiny")
        path = _dataset_cache_path(stats, 53)
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 2])
        assert _dataset_cache_load(path, stats) is None
        graph = datasets_module._synthesize.__wrapped__("tiny")
        assert graph.num_nodes == stats.num_nodes
        # ...and the store path healed the entry for the next reader.
        assert _dataset_cache_load(path, stats) is not None

    def test_disk_cache_truncated_features_sidecar_is_a_miss(
            self, tmp_path, monkeypatch):
        """Same for the features ``.npy`` sidecar — including the
        memory-mapped load path, where a short file must never reach
        the point of faulting past EOF."""
        monkeypatch.setenv(DATASET_CACHE_ENV, str(tmp_path))
        monkeypatch.setattr(datasets_module, "LARGE_DATASETS",
                            ("tiny",))  # force the mmap path
        stats = dataset_stats("tiny")
        datasets_module._synthesize.__wrapped__("tiny")
        path = _dataset_cache_path(stats, 53)
        sidecar = datasets_module._features_path(path)
        blob = sidecar.read_bytes()
        sidecar.write_bytes(blob[:len(blob) // 2])
        assert _dataset_cache_load(path, stats) is None
        sidecar.unlink()  # missing sidecar entirely is a miss too
        assert _dataset_cache_load(path, stats) is None

    def test_large_dataset_features_are_memory_mapped(self, tmp_path,
                                                      monkeypatch):
        """Datasets in LARGE_DATASETS load their features as read-only
        memmaps: no second in-memory copy, and accidental mutation of
        the shared cache graph raises instead of corrupting."""
        monkeypatch.setenv(DATASET_CACHE_ENV, str(tmp_path))
        monkeypatch.setattr(datasets_module, "LARGE_DATASETS",
                            ("tiny",))
        fresh = datasets_module._synthesize.__wrapped__("tiny")
        stats = dataset_stats("tiny")
        path = _dataset_cache_path(stats, 53)
        cached = _dataset_cache_load(path, stats)
        assert cached is not None
        base = cached.features.base
        assert isinstance(base, np.memmap) or isinstance(
            cached.features, np.memmap)
        assert np.array_equal(cached.features, fresh.features)
        with pytest.raises((ValueError, OSError)):
            cached.features[0, 0] = 99.0

    def test_disk_cache_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv(DATASET_CACHE_ENV, "off")
        assert _dataset_cache_path(dataset_stats("tiny"), 53) is None

    def test_planetoid_files_preferred(self, tmp_path):
        """A real .content/.cites pair under data_dir overrides synthesis."""
        content = tmp_path / "cora.content"
        cites = tmp_path / "cora.cites"
        content.write_text(
            "p1 1 0 1 classA\n"
            "p2 0 1 0 classB\n"
            "p3 1 1 1 classA\n")
        cites.write_text("p1 p2\np2 p3\nunknown p1\n")
        graph = load_dataset("cora", data_dir=str(tmp_path))
        assert graph.num_nodes == 3
        assert graph.feature_dim == 3
        # Two parseable citations, symmetrised.
        assert graph.num_edges == 4
