"""Unit tests for the codebase contract linter.

Each rule is fed synthetic sources under fake package-relative paths —
one that violates the contract and one that honours it — plus a final
check that the real tree is clean (the CI gate).
"""

import ast
from pathlib import Path

from repro.analysis.lint import (
    SourceFile,
    lint_repo,
    lint_source,
    rule_atomic_writes,
    rule_layering,
    rule_locked_memo_mutation,
    rule_metric_naming,
    rule_no_wallclock_in_kernel,
    rule_probe_gated_purity,
)


def src(rel: str, text: str) -> SourceFile:
    return SourceFile(path=Path("/dev/null"), rel=rel,
                      tree=ast.parse(text))


def rules_of(findings):
    return [finding.rule for finding in findings]


class TestNoWallclock:
    def test_flags_time_import_in_sim(self):
        findings = list(rule_no_wallclock_in_kernel(
            src("sim/kernel.py", "import time\nfrom random import random\n")))
        assert len(findings) == 2
        assert all(f.rule == "no-wallclock-in-kernel" for f in findings)

    def test_flags_compiler_runtime(self):
        findings = list(rule_no_wallclock_in_kernel(
            src("compiler/runtime.py", "import datetime\n")))
        assert len(findings) == 1

    def test_allows_time_elsewhere(self):
        assert not list(rule_no_wallclock_in_kernel(
            src("eval/hostperf.py", "import time\n")))
        assert not list(rule_no_wallclock_in_kernel(
            src("sim/kernel.py", "import heapq\nfrom collections import deque\n")))


class TestProbeGatedPurity:
    def test_flags_scheduler_mutation_under_guard(self):
        findings = list(rule_probe_gated_purity(src("sim/kernel.py", """
def run(probe=None):
    state = []
    if probe is not None:
        state.append(1)
""")))
        assert rules_of(findings) == ["probe-gated-purity"]

    def test_flags_foreign_call_under_flag_guard(self):
        findings = list(rule_probe_gated_purity(src("engines/executor.py", """
def run(probe=None):
    rec = probe is not None
    if rec:
        launch_missiles()
""")))
        assert rules_of(findings) == ["probe-gated-purity"]

    def test_allows_probe_rooted_recording(self):
        assert not list(rule_probe_gated_purity(src("sim/memory.py", """
def run(probe=None):
    rec = probe is not None
    if rec:
        probe_busy = probe.busy
        meta_idx = [0] * 4
    if rec:
        index = meta_idx[0]
        meta_idx[0] = index + 1
        probe_busy.append((index, 1))
        probe.dram.append(index)
""")))


class TestAtomicWrites:
    def test_flags_bare_write(self):
        findings = list(rule_atomic_writes(src("sweep/cache.py", """
def save(path, text):
    with open(path, "w") as fh:
        fh.write(text)
""")))
        assert rules_of(findings) == ["atomic-writes"]

    def test_allows_tmp_plus_replace(self):
        assert not list(rule_atomic_writes(src("sweep/cache.py", """
import os
def save(path, text, tmp):
    with open(tmp, "w") as fh:
        fh.write(text)
    os.replace(tmp, path)
""")))

    def test_allows_tmp_plus_exclusive_link(self):
        # The exclusive-create publish (queue manifest): link a fully
        # written tmp into place, EEXIST = lost the creation race.
        assert not list(rule_atomic_writes(src("sweep/cache.py", """
import os
def publish(path, text, tmp):
    with open(tmp, "w") as fh:
        fh.write(text)
    os.link(tmp, path)
    os.unlink(tmp)
""")))

    def test_reads_are_fine(self):
        assert not list(rule_atomic_writes(src("sweep/cache.py", """
def load(path):
    with open(path) as fh:
        return fh.read()
""")))

    def test_non_cache_modules_exempt(self):
        assert not list(rule_atomic_writes(src("eval/report.py", """
def save(path, text):
    open(path, "w").write(text)
""")))


class TestLockedMemoMutation:
    def test_flags_unlocked_mutation(self):
        findings = list(rule_locked_memo_mutation(
            src("graph/partition.py", """
def grid_lock(graph):
    return _GRID_LOCKS.setdefault(graph, object())
""")))
        assert rules_of(findings) == ["locked-memo-mutation"]

    def test_allows_mutation_under_lock(self):
        assert not list(rule_locked_memo_mutation(
            src("graph/partition.py", """
def grid_lock(graph):
    with _GRID_LOCKS_GUARD:
        return _GRID_LOCKS.setdefault(graph, object())
""")))

    def test_init_exempt(self):
        assert not list(rule_locked_memo_mutation(src("eval/harness.py", """
class Harness:
    def __init__(self):
        self._params = {}
""")))

    def test_flags_self_attr_outside_lock(self):
        findings = list(rule_locked_memo_mutation(src("eval/harness.py", """
class Harness:
    def compile(self, key):
        self._params[key] = 1
""")))
        assert rules_of(findings) == ["locked-memo-mutation"]


class TestMetricNaming:
    def test_flags_raw_instrument_import(self):
        findings = list(rule_metric_naming(src("serve/server.py", """
from repro.obs.metrics import Counter
""")))
        assert rules_of(findings) == ["metric-naming"]

    def test_allows_registry_and_obs_itself(self):
        assert not list(rule_metric_naming(src("serve/server.py", """
from repro.obs.metrics import MetricRegistry, render_prometheus
from collections import Counter
""")))
        assert not list(rule_metric_naming(src("obs/__init__.py", """
from repro.obs.metrics import Counter, Gauge
""")))


class TestLayering:
    def test_flags_upward_import(self):
        findings = list(rule_layering(src("config/accelerator.py", """
from repro.eval.harness import Harness
""")))
        assert rules_of(findings) == ["layering"]

    def test_sim_may_see_ir_but_not_compiler(self):
        assert not list(rule_layering(src("sim/coalesce.py", """
from repro.compiler.ir import UNITS
from repro.engines.controller import DOUBLE_BUFFER_CREDITS
""")))
        findings = list(rule_layering(src("sim/coalesce.py", """
from repro.compiler.lowering import compile_workload
""")))
        assert rules_of(findings) == ["layering"]

    def test_function_level_and_type_checking_exempt(self):
        assert not list(rule_layering(src("compiler/lowering.py", """
from typing import TYPE_CHECKING
if TYPE_CHECKING:
    from repro.analysis.verify import VerifyReport

def compile():
    from repro.analysis.verify import verify_program
    return verify_program
""")))

    def test_unknown_package_must_declare(self):
        findings = list(rule_layering(src("newpkg/core.py", "import os\n")))
        assert rules_of(findings) == ["layering"]
        assert "no layering entry" in findings[0].message

    def test_entry_points_unrestricted(self):
        assert not list(rule_layering(src("cli.py", """
from repro.eval.harness import Harness
from repro.dse.engine import run_dse
""")))


class TestDriver:
    def test_lint_source_aggregates_rules(self):
        findings = lint_source(src("sim/kernel.py", """
import time

def run(probe=None):
    if probe is not None:
        global_counter.append(1)
"""))
        assert set(rules_of(findings)) == {"no-wallclock-in-kernel",
                                           "probe-gated-purity"}

    def test_repo_is_clean(self):
        assert lint_repo() == []
