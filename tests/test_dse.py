"""Tests for the design-space exploration subsystem: overrides,
spaces, strategies, the engine, determinism, and the ``dse`` CLI."""

import dataclasses
import json
import random

import pytest

from repro.cli import main
from repro.config.accelerator import (
    ConfigError,
    DenseEngineConfig,
    DramConfig,
    GNNeratorConfig,
    GraphEngineConfig,
)
from repro.config.overrides import (
    apply_overrides,
    freeze_overrides,
    knob_paths,
    overrides_between,
)
from repro.config.platforms import (
    gnnerator_config,
    next_generation_variants,
)
from repro.config.workload import WorkloadSpec
from repro.dse import (
    Budget,
    DseEngine,
    DseError,
    EvolutionarySearch,
    GridSearch,
    Knob,
    RandomSearch,
    build_strategy,
    dse_csv,
    render_dse,
)
from repro.dse.space import DesignSpace
from repro.sweep import NullCache, ResultCache, SweepPoint, SweepRunner
from repro.sweep.plan import METRIC_DSE, SweepPlanError

TINY_GCN = WorkloadSpec(dataset="tiny", network="gcn")


def tiny_space() -> DesignSpace:
    """A 3x2x2 space cheap enough for exhaustive smoke searches."""
    return DesignSpace((
        Knob("dense.rows", (32, 64, 128)),
        Knob("graph.num_gpes", (16, 32)),
        Knob("dram.bandwidth_bytes_per_s", (128e9, 256e9)),
    ))


def make_engine(strategy, cache=None, jobs=1,
                budget=Budget(area_mm2=20.0)) -> DseEngine:
    runner = SweepRunner(jobs=jobs,
                         cache=cache if cache is not None else NullCache())
    return DseEngine(tiny_space(), strategy, [TINY_GCN], runner,
                     budget=budget)


# ---------------------------------------------------------------------
# Config overrides
# ---------------------------------------------------------------------
class TestOverrides:
    def test_apply_and_nesting(self):
        config = apply_overrides(gnnerator_config(), {
            "dense.rows": 128,
            "graph.num_gpes": 64,
            "dram.bandwidth_bytes_per_s": 512e9,
            "feature_block": 32,
        })
        assert config.dense.rows == 128
        assert config.dense.cols == 64  # untouched
        assert config.graph.num_gpes == 64
        assert config.dram.bandwidth_bytes_per_s == 512e9
        assert config.feature_block == 32

    def test_unknown_paths_rejected(self):
        with pytest.raises(ConfigError, match="unknown knob"):
            apply_overrides(gnnerator_config(), {"dense.rowz": 8})
        with pytest.raises(ConfigError, match="unknown config section"):
            apply_overrides(gnnerator_config(), {"alu.rows": 8})
        with pytest.raises(ConfigError, match="top-level"):
            apply_overrides(gnnerator_config(), {"name": 3})

    def test_int_fields_coerce_integral_floats_only(self):
        config = apply_overrides(gnnerator_config(), {"dense.rows": 32.0})
        assert config.dense.rows == 32 and isinstance(
            config.dense.rows, int)
        with pytest.raises(ConfigError, match="integer"):
            apply_overrides(gnnerator_config(), {"dense.rows": 32.5})

    def test_non_numeric_values_rejected(self):
        with pytest.raises(ConfigError, match="numeric"):
            apply_overrides(gnnerator_config(), {"dense.rows": "big"})
        with pytest.raises(ConfigError, match="numeric"):
            apply_overrides(gnnerator_config(), {"dense.rows": True})

    def test_freeze_is_canonical(self):
        a = freeze_overrides({"b.x": 1, "a.y": 2})
        b = freeze_overrides([("a.y", 2), ("b.x", 1)])
        assert a == b == (("a.y", 2), ("b.x", 1))

    def test_knob_paths_cover_all_sections(self):
        paths = knob_paths()
        assert "feature_block" in paths
        assert "dense.rows" in paths
        assert "graph.simd_width" in paths
        assert "dram.bandwidth_bytes_per_s" in paths
        assert "dense.dataflow" not in paths  # non-numeric

    def test_inexpressible_differences_raise(self):
        base = gnnerator_config()
        with pytest.raises(ConfigError, match="non-numeric"):
            overrides_between(base, dataclasses.replace(
                base, dense=dataclasses.replace(base.dense,
                                                dataflow="ws")))
        with pytest.raises(ConfigError, match="non-numeric"):
            overrides_between(base, dataclasses.replace(
                base, sparsity_elimination=True))
        with pytest.raises(ConfigError, match="feature_block=None"):
            overrides_between(base, base.with_feature_block(None))

    def test_variants_round_trip_through_overrides(self):
        """Every Fig 5 variant is expressible as overrides that rebuild
        an equivalent config (modulo the cosmetic name)."""
        base = gnnerator_config()
        for name, variant in next_generation_variants(base).items():
            rebuilt = apply_overrides(base, overrides_between(base,
                                                              variant))
            assert dataclasses.replace(rebuilt, name=variant.name) \
                == variant, name


# ---------------------------------------------------------------------
# ConfigError coverage for degenerate DSE candidates
# ---------------------------------------------------------------------
class TestDegenerateConfigs:
    def test_zero_sized_buffer_split(self):
        # 4 B nominal, but the double-buffered half holds 2 B < one
        # fp32 element: must be a clear ConfigError, not a deadlock.
        with pytest.raises(ConfigError, match="double-buffer"):
            GraphEngineConfig(src_feature_buffer_bytes=4)
        with pytest.raises(ConfigError, match="double-buffer"):
            GraphEngineConfig(edge_buffer_bytes=8)
        with pytest.raises(ConfigError, match="double-buffer"):
            DenseEngineConfig(weight_buffer_bytes=4)

    def test_zero_bandwidth(self):
        with pytest.raises(ConfigError, match="bandwidth"):
            DramConfig(bandwidth_bytes_per_s=0)

    def test_zero_frequency(self):
        with pytest.raises(ConfigError, match="frequency"):
            DenseEngineConfig(frequency_ghz=0)
        with pytest.raises(ConfigError, match="frequency"):
            GraphEngineConfig(frequency_ghz=-1)
        with pytest.raises(ConfigError, match="frequency"):
            DramConfig(frequency_ghz=0.0)

    def test_block_overflowing_a_scratchpad_half(self):
        # A 512-dim block needs 2048 B/node; half of a 2048 B buffer
        # holds 1024 B. Previously this died deep in shard planning.
        graph = GraphEngineConfig(src_feature_buffer_bytes=2048,
                                  dst_feature_buffer_bytes=2048)
        with pytest.raises(ConfigError, match="shrink the block"):
            GNNeratorConfig(graph=graph, feature_block=512)
        # The same split is fine with a block that fits.
        GNNeratorConfig(graph=graph, feature_block=64)

    def test_degenerate_candidates_reported_not_raised(self):
        """Mid-search, a degenerate candidate becomes an 'invalid'
        evaluation carrying the ConfigError message."""
        space = DesignSpace((
            Knob("dram.bandwidth_bytes_per_s", (0, 256e9)),))
        engine = DseEngine(space, GridSearch(), [TINY_GCN],
                           SweepRunner(cache=NullCache()))
        result = engine.run()
        by_status = {e.status for e in result.evaluations}
        assert by_status == {"ok", "invalid"}
        bad = [e for e in result.evaluations if e.status == "invalid"]
        assert len(bad) == 1
        assert "bandwidth" in bad[0].message


# ---------------------------------------------------------------------
# Design space
# ---------------------------------------------------------------------
class TestDesignSpace:
    def test_size_and_grid(self):
        space = tiny_space()
        assert space.size == 12
        grid = list(space.grid())
        assert len(grid) == 12
        assert len({space.freeze(c) for c in grid}) == 12

    def test_unknown_knob_path_rejected_at_space_build(self):
        with pytest.raises(ConfigError, match="unknown knob paths"):
            DesignSpace((Knob("dense.rowz", (1, 2)),))

    def test_duplicate_knob_values_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            Knob("dense.rows", (32, 32))

    def test_sample_is_seed_deterministic(self):
        space = tiny_space()
        a = [space.sample(random.Random(5)) for _ in range(4)]
        b = [space.sample(random.Random(5)) for _ in range(4)]
        assert a == b

    def test_mutate_moves_exactly_one_knob_one_rung(self):
        space = tiny_space()
        start = {"dense.rows": 64, "graph.num_gpes": 16,
                 "dram.bandwidth_bytes_per_s": 128e9}
        rng = random.Random(3)
        for _ in range(30):
            child = space.mutate(start, rng)
            changed = [path for path in start
                       if child[path] != start[path]]
            assert len(changed) == 1
            knob = space.knob(changed[0])
            delta = abs(knob.index_of(child[changed[0]])
                        - knob.index_of(start[changed[0]]))
            assert delta == 1

    def test_mutate_at_ladder_end_moves_inward(self):
        space = DesignSpace((Knob("dense.rows", (32, 64)),))
        rng = random.Random(0)
        for value in (32, 64):
            child = space.mutate({"dense.rows": value}, rng)
            assert child["dense.rows"] != value

    def test_with_knob_replaces_and_appends(self):
        space = tiny_space().with_knob("dense.rows", (8, 16))
        assert space.knob("dense.rows").values == (8, 16)
        space = space.with_knob("graph.simd_width", (16,))
        assert space.knob("graph.simd_width").values == (16,)


# ---------------------------------------------------------------------
# Sweep integration: points that carry config overrides
# ---------------------------------------------------------------------
class TestDsePoints:
    def test_overrides_are_canonicalised(self):
        a = SweepPoint(dataset="tiny", network="gcn", metric=METRIC_DSE,
                       config_overrides=(("graph.num_gpes", 16),
                                         ("dense.rows", 32)))
        b = SweepPoint(dataset="tiny", network="gcn", metric=METRIC_DSE,
                       config_overrides=(("dense.rows", 32),
                                         ("graph.num_gpes", 16)))
        assert a == b
        assert a.config_overrides == (("dense.rows", 32),
                                      ("graph.num_gpes", 16))

    def test_cache_keys_distinguish_candidates(self):
        from repro.sweep import cache_key

        base = SweepPoint(dataset="tiny", network="gcn",
                          metric=METRIC_DSE)
        cand = SweepPoint(dataset="tiny", network="gcn",
                          metric=METRIC_DSE,
                          config_overrides=(("dense.rows", 32),))
        assert cache_key(base.payload(), "v") \
            != cache_key(cand.payload(), "v")
        assert base.label != cand.label

    def test_payload_is_json_able(self):
        point = SweepPoint(dataset="tiny", network="gcn",
                           metric=METRIC_DSE,
                           config_overrides=(("dense.rows", 32),))
        json.dumps(point.payload())

    def test_degenerate_overrides_fail_at_plan_time(self):
        with pytest.raises(ConfigError):
            SweepPoint(dataset="tiny", network="gcn",
                       config_overrides=(("dram.bandwidth_bytes_per_s",
                                          0),))

    def test_overrides_restricted_to_gnnerator(self):
        with pytest.raises(SweepPlanError, match="gnnerator"):
            SweepPoint(dataset="tiny", network="gcn", platform="gpu",
                       config_overrides=(("dense.rows", 32),))
        with pytest.raises(SweepPlanError, match="variant"):
            SweepPoint(dataset="tiny", network="gcn",
                       variant="more-graph-memory",
                       config_overrides=(("dense.rows", 32),))
        with pytest.raises(SweepPlanError, match="gnnerator"):
            SweepPoint(dataset="tiny", network="gcn", platform="hygcn",
                       metric=METRIC_DSE)

    def test_dse_metric_bundles_all_objectives(self):
        from repro.eval.harness import Harness
        from repro.sweep.runner import evaluate_point

        point = SweepPoint(dataset="tiny", network="gcn",
                           metric=METRIC_DSE,
                           config_overrides=(("dense.rows", 32),))
        metrics = evaluate_point(point, Harness())
        for key in ("cycles", "seconds", "area_mm2", "energy_pj",
                    "avg_power_w", "edp_js", "total_dram_bytes"):
            assert key in metrics, key
        # 32x64 MACs + 1024 lanes + 30 MiB SRAM under the area model.
        assert metrics["area_mm2"] == pytest.approx(
            (32 * 64 + 1024) * 5e-4 + 30 * 0.4)


# ---------------------------------------------------------------------
# Engine + strategies
# ---------------------------------------------------------------------
class TestEngineSmoke:
    def test_grid_search_full_coverage(self):
        result = make_engine(GridSearch()).run()
        assert result.num_candidates == 12
        assert result.num_invalid == 0 and result.num_errors == 0
        assert result.frontier

    def test_frontier_is_feasible_and_undominated(self):
        from repro.dse.pareto import dominates

        result = make_engine(RandomSearch(samples=8, seed=1)).run()
        assert result.frontier
        evaluated = [e for e in result.evaluations if e.ok]
        for member in result.frontier:
            assert member.feasible
            assert member.objectives["area_mm2"] <= 20.0
            assert not any(dominates(other.vector(), member.vector())
                           for other in evaluated)

    def test_budget_marks_infeasible(self):
        result = make_engine(GridSearch(),
                             budget=Budget(area_mm2=10.0)).run()
        over = [e for e in result.evaluations
                if e.ok and not e.feasible]
        assert over, "a 10 mm^2 budget must exclude some designs"
        assert all("area" in v for e in over for v in e.violations)
        assert all(e.objectives["area_mm2"] <= 10.0
                   for e in result.frontier)

    def test_impossible_budget_empties_the_frontier(self):
        result = make_engine(GridSearch(),
                             budget=Budget(area_mm2=0.001)).run()
        assert result.frontier == []
        assert result.num_infeasible == result.num_candidates

    def test_duplicate_candidates_collapse(self):
        engine = make_engine(RandomSearch(samples=64, seed=0))
        result = engine.run()
        frozen = [e.overrides for e in result.evaluations]
        assert len(frozen) == len(set(frozen)) <= 12

    def test_empty_workloads_rejected(self):
        with pytest.raises(DseError, match="workload"):
            DseEngine(tiny_space(), GridSearch(), [],
                      SweepRunner(cache=NullCache()))

    def test_grid_cap_enforced(self):
        with pytest.raises(ConfigError, match="max-candidates"):
            make_engine(GridSearch(max_candidates=4)).run()

    def test_custom_space_base_shapes_the_evaluated_configs(self):
        """Candidates must be measured on the space's base, not the
        Table IV default (area reflects the base's 128-row array)."""
        base = gnnerator_config()
        big = dataclasses.replace(
            base, dense=dataclasses.replace(base.dense, rows=128))
        space = DesignSpace((Knob("graph.num_gpes", (16, 32)),), big)
        engine = DseEngine(space, GridSearch(), [TINY_GCN],
                           SweepRunner(cache=NullCache()))
        result = engine.run()
        default_area = (64 * 64 + 32 * 32) * 5e-4 + 30 * 0.4
        for evaluation in result.evaluations:
            assert evaluation.ok
            assert evaluation.objectives["area_mm2"] > default_area

    def test_engine_and_strategy_are_reusable(self):
        engine = make_engine(
            EvolutionarySearch(population=4, generations=3, seed=9))
        a = engine.run()
        b = engine.run()
        assert TestDeterminism.comparable(a) \
            == TestDeterminism.comparable(b)
        assert a.num_candidates > 4  # later generations actually ran

    def test_build_strategy_registry(self):
        assert build_strategy("grid").name == "grid"
        assert build_strategy("random").name == "random"
        assert build_strategy("evolutionary").name == "evolutionary"
        with pytest.raises(ConfigError, match="unknown strategy"):
            build_strategy("annealing")


class TestDeterminism:
    @staticmethod
    def comparable(result) -> dict:
        blob = result.to_dict()
        blob.pop("elapsed_s")
        blob.pop("cache")
        for entry in blob["evaluations"] + blob["frontier"]:
            entry.pop("cached")
        return blob

    @pytest.mark.parametrize("strategy_factory", [
        lambda: RandomSearch(samples=6, seed=11),
        lambda: EvolutionarySearch(population=4, generations=3, seed=11),
    ])
    def test_reruns_are_bit_identical(self, strategy_factory):
        a = make_engine(strategy_factory()).run()
        b = make_engine(strategy_factory()).run()
        assert self.comparable(a) == self.comparable(b)

    def test_jobs_levels_are_bit_identical(self):
        serial = make_engine(
            EvolutionarySearch(population=4, generations=2, seed=3)).run()
        parallel = make_engine(
            EvolutionarySearch(population=4, generations=2, seed=3),
            jobs=2).run()
        assert self.comparable(serial) == self.comparable(parallel)

    def test_seeds_change_the_search(self):
        a = make_engine(RandomSearch(samples=6, seed=0)).run()
        b = make_engine(RandomSearch(samples=6, seed=1)).run()
        assert [e.overrides for e in a.evaluations] \
            != [e.overrides for e in b.evaluations]


class TestCacheReuse:
    def test_warm_rerun_recomputes_nothing(self, tmp_path):
        cache_dir = tmp_path / "dse-cache"
        cold = make_engine(RandomSearch(samples=6, seed=2),
                           cache=ResultCache(cache_dir)).run()
        assert cold.cache_misses > 0
        warm = make_engine(RandomSearch(samples=6, seed=2),
                           cache=ResultCache(cache_dir)).run()
        assert warm.cache_misses == 0
        assert warm.cache_hits == cold.cache_misses
        assert all(e.cached for e in warm.evaluations if e.ok)
        assert TestDeterminism.comparable(warm) \
            == TestDeterminism.comparable(cold)

    def test_evolutionary_shares_cache_across_generations(self, tmp_path):
        """Children that revisit a parent's design are pure hits."""
        cache_dir = tmp_path / "dse-cache"
        engine = make_engine(
            EvolutionarySearch(population=4, generations=3, seed=5),
            cache=ResultCache(cache_dir))
        engine.run()
        warm = make_engine(
            EvolutionarySearch(population=4, generations=3, seed=5),
            cache=ResultCache(cache_dir)).run()
        assert warm.cache_misses == 0


class TestFig5Check:
    @pytest.fixture(scope="class")
    def checked(self):
        engine = make_engine(GridSearch(), budget=Budget())
        result = engine.run()
        engine.check_fig5(result)
        return result

    def test_references_present(self, checked):
        names = [c.name for c in checked.fig5]
        assert names == ["baseline", "more-graph-memory",
                         "more-dense-compute", "more-feature-bandwidth"]

    def test_reference_evaluations_are_ok(self, checked):
        assert all(c.evaluation.ok for c in checked.fig5)

    def test_dominators_really_dominate(self, checked):
        from repro.dse.pareto import dominates

        frontier = {e.label: e for e in checked.frontier}
        for check in checked.fig5:
            for label in check.dominated_by:
                assert dominates(frontier[label].vector(),
                                 check.evaluation.vector())

    def test_frontier_stays_undominated_by_references(self):
        """A reference design that beats a frontier member evicts it
        (the published-frontier invariant covers fig5 points too)."""
        from repro.dse.pareto import dominates

        engine = make_engine(RandomSearch(samples=10, seed=6),
                             budget=Budget())
        result = engine.run()
        engine.check_fig5(result)
        references = [c.evaluation for c in result.fig5
                      if c.evaluation.ok]
        for member in result.frontier:
            assert not any(dominates(ref.vector(), member.vector())
                           for ref in references)


# ---------------------------------------------------------------------
# Reports + CLI
# ---------------------------------------------------------------------
class TestReports:
    @pytest.fixture(scope="class")
    def result(self):
        engine = make_engine(RandomSearch(samples=6, seed=4))
        result = engine.run()
        engine.check_fig5(result)
        return result

    def test_render_mentions_frontier_and_fig5(self, result):
        text = render_dse(result)
        assert "Pareto frontier" in text
        assert "Fig 5" in text
        assert result.summary() in text

    def test_json_round_trips(self, result):
        blob = json.loads(result.to_json())
        assert blob["counts"]["candidates"] == result.num_candidates
        assert len(blob["frontier"]) == len(result.frontier)
        assert blob["objectives"] == ["cycles", "area_mm2", "energy_pj"]

    def test_csv_has_one_row_per_candidate(self, result):
        lines = dse_csv(result).strip().splitlines()
        assert len(lines) == 1 + result.num_candidates
        assert lines[0].startswith("label,status,feasible,on_frontier")


class TestCli:
    def test_dse_command_registered(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["dse", "--strategy", "random", "--budget-area", "20",
             "--networks", "gcn", "--datasets", "tiny"])
        assert callable(args.handler)
        assert args.budget_area == 20.0

    def test_dse_runs_end_to_end(self, tmp_path, capsys):
        argv = ["dse", "--strategy", "random", "--samples", "5",
                "--budget-area", "20", "--networks", "gcn",
                "--datasets", "tiny", "--space", "small",
                "--cache-dir", str(tmp_path / "cache"),
                "--format", "json"]
        assert main(argv) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["frontier"]
        assert all(e["objectives"]["area_mm2"] <= 20.0
                   for e in blob["frontier"])
        # Warm rerun: zero recomputed points, identical frontier.
        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["cache"]["misses"] == 0
        assert [e["objectives"] for e in warm["frontier"]] \
            == [e["objectives"] for e in blob["frontier"]]

    def test_dse_knob_flag_restricts_the_space(self, capsys):
        argv = ["dse", "--strategy", "grid", "--space", "small",
                "--knob", "dense.rows=32", "--knob", "dense.cols=32",
                "--knob", "graph.num_gpes=16",
                "--knob", "dram.bandwidth_bytes_per_s=256e9",
                "--datasets", "tiny", "--no-cache", "--format", "json"]
        assert main(argv) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["counts"]["candidates"] == 1

    def test_dse_exit_code_on_empty_frontier(self, capsys):
        argv = ["dse", "--strategy", "random", "--samples", "3",
                "--datasets", "tiny", "--no-cache",
                "--budget-area", "0.001"]
        assert main(argv) == 1

    def test_configs_shows_derived_models(self, capsys):
        assert main(["configs"]) == 0
        out = capsys.readouterr().out
        assert "Derived models" in out
        assert "pJ/MAC" in out and "W TDP" in out
