"""Unit tests for the functional reference executor (ground truth)."""

import numpy as np
import pytest

from repro.graph.graph import Graph
from repro.models.layers import Parameters, init_parameters
from repro.models.reference import (
    aggregate_reference,
    layer_intermediates,
    reference_forward,
)
from repro.models.stages import (
    AggregateStage,
    ExtractStage,
    GNNLayer,
    GNNModel,
    ModelError,
)
from repro.models.zoo import build_network


def line_graph() -> Graph:
    # 0 -> 1 -> 2
    g = Graph(3, [0, 1], [1, 2])
    g.features = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]],
                          dtype=np.float32)
    return g


class TestAggregateReference:
    def test_plain_sum(self):
        g = line_graph()
        stage = AggregateStage(dim=2, reduce="sum", include_self=False)
        out = aggregate_reference(stage, g, g.features)
        assert out.tolist() == [[0, 0], [1, 2], [3, 4]]

    def test_sum_with_self(self):
        g = line_graph()
        stage = AggregateStage(dim=2, reduce="sum", include_self=True)
        out = aggregate_reference(stage, g, g.features)
        assert out.tolist() == [[1, 2], [4, 6], [8, 10]]

    def test_mean(self):
        g = line_graph()
        stage = AggregateStage(dim=2, normalization="mean")
        out = aggregate_reference(stage, g, g.features)
        # Node 1: (h0 + h1) / (indeg+1 = 2).
        assert out[1].tolist() == [2.0, 3.0]

    def test_sym_matches_dense_formula(self):
        g = line_graph()
        stage = AggregateStage(dim=2, normalization="sym")
        out = aggregate_reference(stage, g, g.features)
        adj = np.zeros((3, 3))
        for u, v in zip(g.src, g.dst):
            adj[v, u] = 1.0
        adj += np.eye(3)
        deg = adj.sum(axis=1)
        norm = adj / np.sqrt(np.outer(deg, deg))
        expected = norm @ g.features
        np.testing.assert_allclose(out, expected, rtol=1e-6)

    def test_max_with_self(self):
        g = line_graph()
        stage = AggregateStage(dim=2, reduce="max", include_self=True)
        out = aggregate_reference(stage, g, g.features)
        assert out.tolist() == [[1, 2], [3, 4], [5, 6]]

    def test_max_without_self_isolated_zero(self):
        g = line_graph()
        stage = AggregateStage(dim=2, reduce="max", include_self=False)
        out = aggregate_reference(stage, g, g.features)
        assert out[0].tolist() == [0.0, 0.0]  # no in-edges
        assert out[1].tolist() == [1.0, 2.0]

    def test_max_without_self_keeps_negative_values(self):
        g = line_graph()
        g.features = -np.abs(g.features)
        stage = AggregateStage(dim=2, reduce="max", include_self=False)
        out = aggregate_reference(stage, g, g.features)
        assert out[1].tolist() == [-1.0, -2.0]  # not clamped to zero

    def test_shape_check(self):
        g = line_graph()
        stage = AggregateStage(dim=3)
        with pytest.raises(ModelError):
            aggregate_reference(stage, g, g.features)

    def test_shape_error_states_expected_and_got(self):
        """The message must carry both full shapes — a truncated
        "got ..." report turns a one-glance fix into a debug session."""
        g = line_graph()
        stage = AggregateStage(dim=5)
        with pytest.raises(ModelError) as excinfo:
            aggregate_reference(stage, g, g.features)
        message = str(excinfo.value)
        assert "(3, 5)" in message      # expected (num_nodes, stage dim)
        assert "(3, 2)" in message      # the full shape actually passed
        assert "expected" in message and "got" in message

    def test_empty_graph_sum(self):
        g = Graph(3, [], [])
        g.features = np.ones((3, 2), dtype=np.float32)
        stage = AggregateStage(dim=2, include_self=False)
        out = aggregate_reference(stage, g, g.features)
        assert (out == 0).all()


class TestReferenceForward:
    def test_identity_network_on_line(self):
        """GCN with identity weights reduces to pure normalisation."""
        g = line_graph()
        layer = GNNLayer(stages=(
            AggregateStage(dim=2, normalization="sym"),
            ExtractStage(in_dim=2, out_dim=2, activation="none",
                         bias=False),
        ))
        model = GNNModel(name="id", layers=(layer,))
        params = Parameters()
        params.set((0, 1), np.eye(2, dtype=np.float32), None)
        out = reference_forward(model, g, params)
        expected = aggregate_reference(layer.stages[0], g, g.features)
        np.testing.assert_allclose(out, expected, rtol=1e-6)

    def test_concat_layer_uses_layer_input(self):
        g = line_graph()
        layer = GNNLayer(stages=(
            AggregateStage(dim=2, normalization="mean"),
            ExtractStage(in_dim=2, out_dim=1, activation="none",
                         bias=False, concat_self=True, self_dim=2),
        ))
        model = GNNModel(name="sage", layers=(layer,))
        params = Parameters()
        # Weight selects only the *self* half of the concat.
        w = np.array([[0.0], [0.0], [1.0], [0.0]], dtype=np.float32)
        params.set((0, 1), w, None)
        out = reference_forward(model, g, params)
        np.testing.assert_allclose(out[:, 0], g.features[:, 0], rtol=1e-6)

    @pytest.mark.parametrize("name", ["gcn", "graphsage", "graphsage-pool"])
    def test_output_shape(self, name, small_graph):
        model = build_network(name, small_graph.feature_dim, 6)
        params = init_parameters(model, seed=3)
        out = reference_forward(model, small_graph, params)
        assert out.shape == (small_graph.num_nodes, 6)
        assert np.isfinite(out).all()

    def test_input_dim_check(self, small_graph):
        model = build_network("gcn", 99, 4)
        with pytest.raises(ModelError):
            reference_forward(model, small_graph,
                              init_parameters(model))

    def test_input_dim_error_states_expected_and_got(self, small_graph):
        model = build_network("gcn", 99, 4)
        with pytest.raises(ModelError) as excinfo:
            reference_forward(model, small_graph, init_parameters(model))
        message = str(excinfo.value)
        assert f"({small_graph.num_nodes}, 99)" in message  # expected
        assert f"({small_graph.num_nodes}, " \
               f"{small_graph.feature_dim})" in message     # got, in full
        assert "expected" in message or "expects" in message
        assert "got" in message

    def test_explicit_features_override(self, small_graph):
        model = build_network("gcn", 8, 4)
        params = init_parameters(model)
        feats = np.random.default_rng(0).standard_normal(
            (small_graph.num_nodes, 8)).astype(np.float32)
        out = reference_forward(model, small_graph, params, features=feats)
        assert out.shape == (small_graph.num_nodes, 4)

    def test_layer_intermediates(self, small_graph):
        model = build_network("gcn", small_graph.feature_dim, 4)
        params = init_parameters(model)
        outs = layer_intermediates(model, small_graph, params)
        assert len(outs) == 2
        assert outs[0].shape == (small_graph.num_nodes, 16)
        np.testing.assert_allclose(
            outs[-1], reference_forward(model, small_graph, params),
            rtol=1e-5)

    def test_deterministic(self, small_graph):
        model = build_network("graphsage", small_graph.feature_dim, 4)
        params = init_parameters(model, seed=11)
        a = reference_forward(model, small_graph, params)
        b = reference_forward(model, small_graph, params)
        assert np.array_equal(a, b)
