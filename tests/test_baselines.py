"""Unit tests for the GPU and HyGCN baseline models."""

import pytest

from repro.baselines.gpu import GpuModel, gpu_latency
from repro.baselines.hygcn import HyGCNModel, hygcn_latency
from repro.config.platforms import hygcn_config
from repro.graph.datasets import load_dataset
from repro.graph.generators import erdos_renyi
from repro.models.accounting import (
    KernelProfile,
    model_bytes,
    model_flops,
    model_kernels,
)
from repro.models.zoo import build_network


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(100, 700, feature_dim=32, seed=4)


class TestAccounting:
    def test_gcn_kernel_sequence(self, graph):
        model = build_network("gcn", 32, 4)
        kernels = model_kernels(model, graph)
        names = [k.name for k in kernels]
        # Per layer: degree-norm, spmm, gemm, bias-act.
        assert len(kernels) == 8
        assert any("spmm" in n for n in names)
        assert any("gemm" in n for n in names)

    def test_pool_has_more_kernels_than_gcn(self, graph):
        gcn = build_network("gcn", 32, 4)
        pool = build_network("graphsage-pool", 32, 4)
        assert (len(model_kernels(pool, graph))
                > len(model_kernels(gcn, graph)))

    def test_gemm_flops_formula(self, graph):
        model = build_network("gcn", 32, 4)
        kernels = model_kernels(model, graph)
        gemm = next(k for k in kernels if k.name == "l0s1/gemm")
        assert gemm.flops == 2 * graph.num_nodes * 32 * 16

    def test_totals_positive(self, graph):
        for name in ("gcn", "graphsage", "graphsage-pool"):
            model = build_network(name, 32, 4)
            assert model_flops(model, graph) > 0
            assert model_bytes(model, graph) > 0

    def test_irregular_bytes_scale_with_edges(self):
        sparse = erdos_renyi(100, 200, feature_dim=32, seed=1)
        dense = erdos_renyi(100, 2000, feature_dim=32, seed=1)
        model = build_network("gcn", 32, 4)

        def irregular(g):
            return sum(k.irregular_read_bytes
                       for k in model_kernels(model, g))

        assert irregular(dense) > irregular(sparse)


class TestGpuModel:
    def test_occupancy_saturates(self):
        gpu = GpuModel()
        assert gpu.occupancy(10 ** 9) == 1.0
        assert gpu.occupancy(0) > 0
        assert gpu.occupancy(100) < gpu.occupancy(10000)

    def test_kernel_time_includes_overhead(self):
        gpu = GpuModel()
        timing = gpu.kernel_time(KernelProfile(name="k", flops=0))
        assert timing.total_s == pytest.approx(
            gpu.config.kernel_overhead_s)

    def test_memory_bound_kernel(self):
        gpu = GpuModel()
        profile = KernelProfile(name="k", irregular_read_bytes=1e9,
                                parallel_rows=10 ** 6)
        timing = gpu.kernel_time(profile)
        expected = 1e9 / (gpu.config.dram_bandwidth_bytes_per_s
                          * gpu.config.gather_efficiency)
        assert timing.memory_s == pytest.approx(expected)

    def test_small_graph_overhead_dominated(self, graph):
        """On citation-scale graphs, dispatch overhead dominates — the
        paper's core argument for an accelerator."""
        model = build_network("gcn", 32, 4)
        result = GpuModel().run(graph, model)
        assert result.overhead_fraction > 0.5

    def test_bigger_graph_longer(self):
        model = build_network("gcn", 16, 4)
        small = erdos_renyi(100, 500, feature_dim=16, seed=2)
        large = erdos_renyi(5000, 50000, feature_dim=16, seed=2)
        assert gpu_latency(large, model) > gpu_latency(small, model)

    def test_describe(self, graph):
        model = build_network("gcn", 32, 4)
        text = GpuModel().run(graph, model).describe()
        assert "kernels" in text


class TestHyGCNModel:
    def test_window_rows_shrink_with_dim(self):
        model = HyGCNModel()
        assert model.window_rows(1000) < model.window_rows(100)

    def test_gather_counts(self, graph):
        model = HyGCNModel()
        gathered, streamed = model.source_gather_rows(graph, 32)
        assert 0 < gathered <= streamed

    def test_gather_brute_force(self):
        """Distinct-source counting matches a direct computation."""
        import numpy as np
        graph = erdos_renyi(50, 200, feature_dim=8, seed=9)
        model = HyGCNModel()
        window = model.window_rows(8)
        expected = 0
        for start in range(0, 50, window):
            mask = (graph.dst >= start) & (graph.dst < start + window)
            expected += len(np.unique(graph.src[mask]))
        gathered, _ = model.source_gather_rows(graph, 8)
        assert gathered == expected

    def test_elimination_helps(self, graph):
        model = build_network("gcn", 32, 4)
        with_elim = hygcn_latency(graph, model, hygcn_config(True))
        without = hygcn_latency(graph, model, hygcn_config(False))
        assert with_elim <= without

    def test_elimination_strongest_on_citeseer(self):
        """Sec VI-A: ~3x on Citeseer vs ~1.1x on Cora — driven by
        Citeseer's huge feature dim producing narrow windows."""
        model16 = build_network("gcn", 3703, 6)
        citeseer = load_dataset("citeseer")
        ratio_citeseer = (
            hygcn_latency(citeseer, model16, hygcn_config(False))
            / hygcn_latency(citeseer, model16, hygcn_config(True)))
        cora = load_dataset("cora")
        model_cora = build_network("gcn", 1433, 7)
        ratio_cora = (
            hygcn_latency(cora, model_cora, hygcn_config(False))
            / hygcn_latency(cora, model_cora, hygcn_config(True)))
        assert ratio_citeseer > ratio_cora

    def test_dense_first_serialises(self, graph):
        """GraphSAGE-Pool pays HyGCN's fixed-producer penalty: its
        phases can't pipeline (Sec I / VII)."""
        pool = build_network("graphsage-pool", 32, 4)
        gcn = build_network("gcn", 32, 4)
        result_pool = HyGCNModel().run(graph, pool)
        result_gcn = HyGCNModel().run(graph, gcn)
        assert result_pool.cycles > result_gcn.cycles

    def test_phase_breakdown(self, graph):
        model = build_network("gcn", 32, 4)
        result = HyGCNModel().run(graph, model)
        assert len(result.phases) == 4  # (agg + comb) x 2 layers
        assert result.elimination_factor >= 1.0
        assert "us" in result.describe()
