"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    citation_network,
    erdos_renyi,
    path_graph,
    preferential_attachment_edges,
    sparse_binary_features,
    star_graph,
)
from repro.graph.graph import GraphError


class TestPreferentialAttachment:
    def test_exact_edge_count(self):
        edges = preferential_attachment_edges(100, 350, seed=1)
        assert edges.shape == (350, 2)

    def test_no_self_loops_or_duplicates(self):
        edges = preferential_attachment_edges(80, 250, seed=2)
        assert (edges[:, 0] != edges[:, 1]).all()
        assert len({tuple(e) for e in edges.tolist()}) == 250

    def test_deterministic(self):
        a = preferential_attachment_edges(50, 120, seed=7)
        b = preferential_attachment_edges(50, 120, seed=7)
        assert np.array_equal(a, b)

    def test_seed_changes_output(self):
        a = preferential_attachment_edges(50, 120, seed=7)
        b = preferential_attachment_edges(50, 120, seed=8)
        assert not np.array_equal(a, b)

    def test_heavy_tail(self):
        """Preferential attachment should concentrate degree on hubs."""
        edges = preferential_attachment_edges(500, 2000, seed=3)
        degrees = np.bincount(edges.ravel(), minlength=500)
        assert degrees.max() > 4 * degrees.mean()

    def test_rejects_impossible(self):
        with pytest.raises(GraphError):
            preferential_attachment_edges(1, 5)
        with pytest.raises(GraphError):
            preferential_attachment_edges(4, 100)  # > n(n-1)/2


class TestSparseFeatures:
    def test_shape_and_binary(self):
        feats = sparse_binary_features(50, 200, density=0.05, seed=1)
        assert feats.shape == (50, 200)
        assert set(np.unique(feats)) <= {0.0, 1.0}

    def test_density_approximate(self):
        feats = sparse_binary_features(200, 1000, density=0.05, seed=1)
        assert feats.mean() == pytest.approx(0.05, rel=0.25)

    def test_no_empty_rows(self):
        feats = sparse_binary_features(300, 40, density=0.001, seed=2)
        assert (feats.sum(axis=1) > 0).all()

    def test_rejects_bad_density(self):
        with pytest.raises(GraphError):
            sparse_binary_features(10, 10, density=0.0)
        with pytest.raises(GraphError):
            sparse_binary_features(10, 10, density=1.5)


class TestCitationNetwork:
    def test_published_statistics(self):
        g = citation_network(200, 700 * 2, feature_dim=64, seed=4)
        assert g.num_nodes == 200
        assert g.num_edges == 1400
        assert g.feature_dim == 64

    def test_symmetric(self):
        g = citation_network(100, 600, feature_dim=8, seed=5)
        pairs = set(zip(g.src.tolist(), g.dst.tolist()))
        assert all((v, u) in pairs for u, v in pairs)

    def test_rejects_odd_edge_count(self):
        with pytest.raises(GraphError):
            citation_network(100, 601, feature_dim=8)


class TestSimpleGenerators:
    def test_erdos_renyi(self):
        g = erdos_renyi(30, 100, feature_dim=6, seed=0)
        assert g.num_edges == 100
        assert (g.src != g.dst).all()
        assert g.feature_dim == 6

    def test_erdos_renyi_rejects_too_many(self):
        with pytest.raises(GraphError):
            erdos_renyi(3, 10)

    def test_star(self):
        g = star_graph(10)
        assert g.num_nodes == 11
        assert (g.dst == 0).all()
        assert g.in_degrees()[0] == 10

    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert g.out_degrees().tolist() == [1, 1, 1, 1, 0]


class TestPowerlawGraph:
    def test_counts_and_no_self_loops(self):
        from repro.graph.generators import powerlaw_graph

        g = powerlaw_graph(300, 2500, feature_dim=12, seed=3)
        assert g.num_nodes == 300
        assert g.num_edges == 2500
        assert (g.src != g.dst).all()
        assert g.features.shape == (300, 12)
        assert g.features.dtype == np.float32

    def test_deterministic_per_seed(self):
        from repro.graph.generators import powerlaw_graph

        a = powerlaw_graph(200, 1500, feature_dim=8, seed=7)
        b = powerlaw_graph(200, 1500, feature_dim=8, seed=7)
        c = powerlaw_graph(200, 1500, feature_dim=8, seed=8)
        assert np.array_equal(a.src, b.src)
        assert np.array_equal(a.dst, b.dst)
        assert np.array_equal(a.features, b.features)
        assert not np.array_equal(a.src, c.src)

    def test_multi_chunk_drawing_is_deterministic(self, monkeypatch):
        """Chunks own independent child RNGs, so a multi-chunk draw is
        a pure function of (seed, parameters, chunk size) — repeated
        multi-chunk syntheses agree edge for edge."""
        import repro.graph.generators as generators

        monkeypatch.setattr(generators, "POWERLAW_CHUNK_EDGES", 256)
        a = generators.powerlaw_graph(150, 1000, feature_dim=4, seed=5)
        b = generators.powerlaw_graph(150, 1000, feature_dim=4, seed=5)
        assert a.num_edges == 1000
        assert np.array_equal(a.src, b.src)
        assert np.array_equal(a.dst, b.dst)

    def test_heavy_tailed_in_degrees(self):
        from repro.graph.generators import powerlaw_graph
        from repro.graph.stats import degree_stats

        g = powerlaw_graph(2000, 40000, feature_dim=4, exponent=1.2,
                           seed=1)
        stats = degree_stats(g, "in")
        assert stats.maximum > 5 * stats.mean
        assert stats.gini > 0.3

    def test_rejects_degenerate_sizes(self):
        from repro.graph.generators import powerlaw_graph

        with pytest.raises(GraphError):
            powerlaw_graph(1, 10, feature_dim=4)
        with pytest.raises(GraphError):
            powerlaw_graph(10, -1, feature_dim=4)


class TestChunkedFeatures:
    def test_matches_shape_density_and_nonempty_rows(self):
        from repro.graph.generators import chunked_binary_features

        features = chunked_binary_features(500, 64, density=0.05, seed=2)
        assert features.shape == (500, 64)
        assert features.dtype == np.float32
        assert (features.sum(axis=1) > 0).all()
        assert 0.02 < features.mean() < 0.09

    def test_multi_chunk_synthesis_is_deterministic(self, monkeypatch):
        """Each row chunk draws from its own child RNG, so a matrix
        spanning many chunks is a pure function of (seed, chunk size)
        and every row stays non-empty across chunk boundaries."""
        import repro.graph.generators as generators

        monkeypatch.setattr(generators, "FEATURE_CHUNK_ROWS", 64)
        first = generators.chunked_binary_features(300, 16, seed=4)
        again = generators.chunked_binary_features(300, 16, seed=4)
        assert np.array_equal(first, again)
        assert (first.sum(axis=1) > 0).all()

    def test_rejects_bad_density(self):
        from repro.graph.generators import chunked_binary_features

        with pytest.raises(GraphError):
            chunked_binary_features(10, 4, density=0.0)
