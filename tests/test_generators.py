"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    citation_network,
    erdos_renyi,
    path_graph,
    preferential_attachment_edges,
    sparse_binary_features,
    star_graph,
)
from repro.graph.graph import GraphError


class TestPreferentialAttachment:
    def test_exact_edge_count(self):
        edges = preferential_attachment_edges(100, 350, seed=1)
        assert edges.shape == (350, 2)

    def test_no_self_loops_or_duplicates(self):
        edges = preferential_attachment_edges(80, 250, seed=2)
        assert (edges[:, 0] != edges[:, 1]).all()
        assert len({tuple(e) for e in edges.tolist()}) == 250

    def test_deterministic(self):
        a = preferential_attachment_edges(50, 120, seed=7)
        b = preferential_attachment_edges(50, 120, seed=7)
        assert np.array_equal(a, b)

    def test_seed_changes_output(self):
        a = preferential_attachment_edges(50, 120, seed=7)
        b = preferential_attachment_edges(50, 120, seed=8)
        assert not np.array_equal(a, b)

    def test_heavy_tail(self):
        """Preferential attachment should concentrate degree on hubs."""
        edges = preferential_attachment_edges(500, 2000, seed=3)
        degrees = np.bincount(edges.ravel(), minlength=500)
        assert degrees.max() > 4 * degrees.mean()

    def test_rejects_impossible(self):
        with pytest.raises(GraphError):
            preferential_attachment_edges(1, 5)
        with pytest.raises(GraphError):
            preferential_attachment_edges(4, 100)  # > n(n-1)/2


class TestSparseFeatures:
    def test_shape_and_binary(self):
        feats = sparse_binary_features(50, 200, density=0.05, seed=1)
        assert feats.shape == (50, 200)
        assert set(np.unique(feats)) <= {0.0, 1.0}

    def test_density_approximate(self):
        feats = sparse_binary_features(200, 1000, density=0.05, seed=1)
        assert feats.mean() == pytest.approx(0.05, rel=0.25)

    def test_no_empty_rows(self):
        feats = sparse_binary_features(300, 40, density=0.001, seed=2)
        assert (feats.sum(axis=1) > 0).all()

    def test_rejects_bad_density(self):
        with pytest.raises(GraphError):
            sparse_binary_features(10, 10, density=0.0)
        with pytest.raises(GraphError):
            sparse_binary_features(10, 10, density=1.5)


class TestCitationNetwork:
    def test_published_statistics(self):
        g = citation_network(200, 700 * 2, feature_dim=64, seed=4)
        assert g.num_nodes == 200
        assert g.num_edges == 1400
        assert g.feature_dim == 64

    def test_symmetric(self):
        g = citation_network(100, 600, feature_dim=8, seed=5)
        pairs = set(zip(g.src.tolist(), g.dst.tolist()))
        assert all((v, u) in pairs for u, v in pairs)

    def test_rejects_odd_edge_count(self):
        with pytest.raises(GraphError):
            citation_network(100, 601, feature_dim=8)


class TestSimpleGenerators:
    def test_erdos_renyi(self):
        g = erdos_renyi(30, 100, feature_dim=6, seed=0)
        assert g.num_edges == 100
        assert (g.src != g.dst).all()
        assert g.feature_dim == 6

    def test_erdos_renyi_rejects_too_many(self):
        with pytest.raises(GraphError):
            erdos_renyi(3, 10)

    def test_star(self):
        g = star_graph(10)
        assert g.num_nodes == 11
        assert (g.dst == 0).all()
        assert g.in_degrees()[0] == 10

    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert g.out_degrees().tolist() == [1, 1, 1, 1, 0]
