"""Regression test: Ctrl-C against a running ProcessPoolScheduler must
kill the worker processes and exit 130 — not block until every queued
point finishes (the old ``pool.map`` inside ``with`` behaviour, whose
``__exit__`` waited on workers the interrupt never reached)."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Runs a pool whose workers block near-forever; spawn re-imports this
#: script as ``__mp_main__``, so the worker fn must live at module
#: level of the script itself.
DRIVER = """\
import os
import sys
import time

sys.path.insert(0, {src!r})


class Point:
    # Just enough surface for the scheduler's preload/seed plumbing.
    dataset = "no-such-dataset"
    seed = 0


def block_until_killed(point):
    token = os.path.join({tokens!r}, f"worker-{{os.getpid()}}.tok")
    open(token, "w").close()
    time.sleep(600)  # far beyond the test timeout: must be terminated


if __name__ == "__main__":
    from repro.sweep.runner import ProcessPoolScheduler

    scheduler = ProcessPoolScheduler(jobs=2,
                                     worker_fn=block_until_killed)
    print("pool-starting", flush=True)
    try:
        scheduler.run([Point() for _ in range(8)])
    except KeyboardInterrupt:
        sys.exit(130)
    sys.exit(0)
"""


def _wait_for(predicate, timeout: float, message: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(message)


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def test_sigint_kills_workers_and_exits_130(tmp_path):
    tokens = tmp_path / "tokens"
    tokens.mkdir()
    script = tmp_path / "driver.py"
    script.write_text(DRIVER.format(src=str(REPO_ROOT / "src"),
                                    tokens=str(tokens)))
    process = subprocess.Popen([sys.executable, str(script)],
                               cwd=tmp_path, stdout=subprocess.PIPE,
                               stderr=subprocess.STDOUT, text=True)
    try:
        # Wait until at least one spawned worker is provably inside the
        # blocking call, then interrupt the parent.
        _wait_for(lambda: any(tokens.iterdir()), timeout=60.0,
                  message="no worker ever started")
        process.send_signal(signal.SIGINT)
        out, _ = process.communicate(timeout=30.0)
        assert process.returncode == 130, out
        # The workers were mid-sleep(600); the scheduler must have
        # terminated them rather than letting them run to completion.
        pids = [int(path.stem.split("-")[1])
                for path in tokens.iterdir()]
        assert pids
        for pid in pids:
            _wait_for(lambda pid=pid: not _alive(pid), timeout=15.0,
                      message=f"worker {pid} outlived the interrupt")
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()


def test_scheduler_still_returns_results_normally():
    """The cancellable-futures rewrite must keep plan-order results
    byte-identical to the old pool.map path."""
    from repro.sweep.plan import build_plan
    from repro.sweep.runner import ProcessPoolScheduler

    points = build_plan("smoke").points
    serial = ProcessPoolScheduler(jobs=1).run(points)
    pooled = ProcessPoolScheduler(jobs=2).run(points)
    assert [r.point for r in pooled] == [r.point for r in serial]
    assert [r.metrics for r in pooled] == [r.metrics for r in serial]
    assert all(r.ok for r in pooled)
