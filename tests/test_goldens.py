"""Golden regression fixtures for the Fig-3 speedup grids.

The synthetic datasets and every platform model are deterministic, so
the Fig-3 speedups are too — any drift means a semantic change to the
compiler, the simulator, or a baseline model. These tests pin the full
grid (paper trio + zoo extensions) against small JSON goldens and fail
with a readable per-workload diff when numbers move.

To regenerate after an *intentional* modelling change::

    REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_goldens.py

then review the JSON diff like any other code change.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.config.workload import EXTENSION_NETWORKS
from repro.eval.experiments import fig3_speedups

GOLDEN_PATH = Path(__file__).parent / "goldens" / "fig3_speedups.json"

#: Relative tolerance for golden comparisons. The pipeline is
#: deterministic on one platform; the tolerance only absorbs
#: last-ulp libm differences across BLAS/OS builds.
RTOL = 1e-6


def _compute() -> dict:
    """The golden payload: speedups for the paper grid + extensions."""
    payload: dict[str, dict[str, dict[str, float]]] = {}
    for group, networks in (("fig3", None),
                            ("extensions", EXTENSION_NETWORKS)):
        result = (fig3_speedups() if networks is None
                  else fig3_speedups(networks=networks))
        payload[group] = {
            row.label: {
                "blocked": round(row.speedup_blocked, 9),
                "no_blocking": round(row.speedup_no_blocking, 9),
            }
            for row in result.rows
        }
    return payload


def _diff(expected: dict, actual: dict) -> list[str]:
    """Human-readable drift report: one line per mismatching number."""
    lines = []
    for group in sorted(set(expected) | set(actual)):
        exp_group = expected.get(group, {})
        act_group = actual.get(group, {})
        for label in sorted(set(exp_group) | set(act_group)):
            exp_row = exp_group.get(label)
            act_row = act_group.get(label)
            if exp_row is None:
                lines.append(f"{group}/{label}: NEW (not in golden): "
                             f"{act_row}")
                continue
            if act_row is None:
                lines.append(f"{group}/{label}: MISSING (golden has "
                             f"{exp_row})")
                continue
            for key in ("blocked", "no_blocking"):
                exp_v, act_v = exp_row[key], act_row[key]
                if abs(act_v - exp_v) > RTOL * max(abs(exp_v), 1e-12):
                    ratio = act_v / exp_v if exp_v else float("inf")
                    lines.append(
                        f"{group}/{label}.{key}: expected {exp_v:.9f}, "
                        f"got {act_v:.9f} ({ratio:+.4%} of golden)")
    return lines


def test_fig3_speedups_match_goldens():
    actual = _compute()
    if os.environ.get("REGEN_GOLDENS"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(actual, indent=2,
                                          sort_keys=True) + "\n")
        pytest.skip(f"regenerated {GOLDEN_PATH}")
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"golden file {GOLDEN_PATH} is missing; regenerate with "
            f"REGEN_GOLDENS=1")
    expected = json.loads(GOLDEN_PATH.read_text())
    drift = _diff(expected, actual)
    assert not drift, (
        "Fig-3 speedups drifted from the goldens:\n  "
        + "\n  ".join(drift)
        + "\n(intentional modelling change? regenerate with "
          "REGEN_GOLDENS=1 and review the JSON diff)")


def test_golden_file_is_wellformed():
    """The checked-in golden covers every expected workload label."""
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"golden file {GOLDEN_PATH} is missing; regenerate with "
            f"REGEN_GOLDENS=1")
    expected = json.loads(GOLDEN_PATH.read_text())
    assert set(expected) == {"fig3", "extensions"}
    assert "Gmean" in expected["fig3"]
    assert "Gmean" in expected["extensions"]
    assert {"cora-gat", "cora-gin"} <= set(expected["extensions"])
    for group in expected.values():
        for row in group.values():
            assert set(row) == {"blocked", "no_blocking"}
            assert all(v > 0 for v in row.values())
