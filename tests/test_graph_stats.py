"""Tests for the graph statistics helpers."""

import numpy as np
import pytest

from repro.graph.datasets import load_dataset
from repro.graph.generators import erdos_renyi, star_graph
from repro.graph.graph import Graph
from repro.graph.partition import ShardGrid
from repro.graph.stats import degree_stats, shard_occupancy


class TestDegreeStats:
    def test_star_is_maximally_skewed(self):
        g = star_graph(50)
        stats = degree_stats(g, "in")
        assert stats.maximum == 50
        assert stats.gini > 0.9

    def test_regular_graph_is_even(self):
        # A cycle: every node has in-degree exactly 1.
        n = 20
        g = Graph(n, np.arange(n), (np.arange(n) + 1) % n)
        stats = degree_stats(g, "in")
        assert stats.gini == pytest.approx(0.0, abs=1e-9)
        assert stats.mean == pytest.approx(1.0)

    def test_directions_differ(self):
        g = star_graph(30)
        assert degree_stats(g, "in").maximum == 30
        assert degree_stats(g, "out").maximum == 1

    def test_rejects_bad_direction(self):
        with pytest.raises(ValueError):
            degree_stats(star_graph(3), "sideways")

    def test_synthetic_citation_networks_are_heavy_tailed(self):
        """The generator must reproduce citation-network skew — hubs
        are what stress GPE balance and sparsity elimination."""
        for name in ("cora", "citeseer", "pubmed"):
            stats = degree_stats(load_dataset(name), "in")
            assert stats.maximum > 5 * stats.mean, name
            assert stats.gini > 0.3, name

    def test_describe(self):
        text = degree_stats(star_graph(5), "in").describe()
        assert "gini" in text


class TestShardOccupancy:
    def test_counts(self):
        g = erdos_renyi(40, 200, feature_dim=4, seed=1)
        grid = ShardGrid(g, interval_size=10)
        occ = shard_occupancy(grid)
        assert occ.grid_side == 4
        assert occ.total_cells == 16
        assert 0 < occ.nonempty_cells <= 16
        assert occ.max_edges >= occ.mean_edges

    def test_single_shard(self):
        g = erdos_renyi(40, 200, feature_dim=4, seed=1)
        grid = ShardGrid(g, interval_size=100)
        occ = shard_occupancy(grid)
        assert occ.fill_fraction == 1.0
        assert occ.max_edges == 200

    def test_empty_graph(self):
        grid = ShardGrid(Graph(10, [], []), interval_size=5)
        occ = shard_occupancy(grid)
        assert occ.nonempty_cells == 0
        assert occ.fill_fraction == 0.0
        assert occ.mean_edges == 0.0
