"""Unit tests for synchronisation primitives and memory models."""

import pytest

from repro.config.accelerator import DramConfig
from repro.sim.kernel import Environment, SimulationError
from repro.sim.memory import BusyTracker, DramChannel, Scratchpad
from repro.sim.queues import Resource, Semaphore, Store, TokenTable


class TestResource:
    def test_mutual_exclusion(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def user(env, tag, hold):
            yield res.request()
            log.append((env.now, tag, "in"))
            yield env.timeout(hold)
            res.release()

        env.process(user(env, "a", 5))
        env.process(user(env, "b", 3))
        env.run()
        assert log == [(0, "a", "in"), (5, "b", "in")]

    def test_capacity_two(self):
        env = Environment()
        res = Resource(env, capacity=2)
        entered = []

        def user(env, tag):
            yield res.request()
            entered.append((env.now, tag))
            yield env.timeout(10)
            res.release()

        for tag in "abc":
            env.process(user(env, tag))
        env.run()
        assert entered == [(0, "a"), (0, "b"), (10, "c")]

    def test_release_without_request(self):
        env = Environment()
        res = Resource(env)
        with pytest.raises(SimulationError):
            res.release()

    def test_bad_capacity(self):
        with pytest.raises(SimulationError):
            Resource(Environment(), capacity=0)


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env, capacity=2)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append(item)

        def producer(env):
            yield store.put("x")

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append((env.now, item))

        def producer(env):
            yield env.timeout(7)
            yield store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(7, "late")]

    def test_put_blocks_when_full(self):
        env = Environment()
        store = Store(env, capacity=1)
        times = []

        def producer(env):
            yield store.put(1)
            times.append(env.now)
            yield store.put(2)  # blocks until consumer pops
            times.append(env.now)

        def consumer(env):
            yield env.timeout(9)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert times == [0, 9]

    def test_fifo_order(self):
        env = Environment()
        store = Store(env, capacity=3)
        got = []

        def producer(env):
            for item in (1, 2, 3):
                yield store.put(item)

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == [1, 2, 3]


class TestSemaphoreAndTokens:
    def test_semaphore_counts(self):
        env = Environment()
        sem = Semaphore(env, initial=2)
        entered = []

        def worker(env, tag):
            yield sem.wait()
            entered.append((env.now, tag))
            yield env.timeout(5)
            sem.signal()

        for tag in "abc":
            env.process(worker(env, tag))
        env.run()
        assert entered == [(0, "a"), (0, "b"), (5, "c")]

    def test_semaphore_rejects_negative(self):
        with pytest.raises(SimulationError):
            Semaphore(Environment(), initial=-1)

    def test_token_is_level_sensitive(self):
        """Waiting after the signal must not block (controller reads
        engine *state*, Sec III-C)."""
        env = Environment()
        tokens = TokenTable(env)
        log = []

        def late_waiter(env):
            yield env.timeout(10)
            yield tokens.wait("ready")
            log.append(env.now)

        tokens.signal("ready")
        env.process(late_waiter(env))
        env.run()
        assert log == [10]
        assert tokens.is_signalled("ready")

    def test_token_double_signal_is_noop(self):
        env = Environment()
        tokens = TokenTable(env)
        tokens.signal("t")
        tokens.signal("t")  # no error
        assert tokens.is_signalled("t")

    def test_token_multiple_waiters(self):
        env = Environment()
        tokens = TokenTable(env)
        woken = []

        def waiter(env, tag):
            yield tokens.wait("go")
            woken.append(tag)

        env.process(waiter(env, "a"))
        env.process(waiter(env, "b"))

        def signaller(env):
            yield env.timeout(3)
            tokens.signal("go")

        env.process(signaller(env))
        env.run()
        assert sorted(woken) == ["a", "b"]


class TestDramChannel:
    def test_bandwidth_math(self):
        env = Environment()
        dram = DramChannel(env, DramConfig(bandwidth_bytes_per_s=256e9,
                                           burst_latency_cycles=100))
        done = []

        def mover(env):
            yield from dram.transfer("unit", "read", 2560)
            done.append(env.now)

        env.process(mover(env))
        env.run()
        assert done == [110]  # 10 occupancy + 100 latency
        assert dram.busy_cycles == 10

    def test_requesters_pipeline_latency(self):
        """Occupancy serialises; latency overlaps across requesters."""
        env = Environment()
        dram = DramChannel(env, DramConfig(bandwidth_bytes_per_s=256e9,
                                           burst_latency_cycles=100))
        done = []

        def mover(env, tag):
            yield from dram.transfer(tag, "read", 2560)
            done.append((env.now, tag))

        env.process(mover(env, "a"))
        env.process(mover(env, "b"))
        env.run()
        assert done == [(110, "a"), (120, "b")]

    def test_counters_by_requester(self):
        env = Environment()
        dram = DramChannel(env, DramConfig())

        def mover(env):
            yield from dram.transfer("g", "read", 100)
            yield from dram.transfer("g", "write", 50)
            yield from dram.transfer("d", "read", 25)

        env.process(mover(env))
        env.run()
        assert dram.counter("g").read_bytes == 100
        assert dram.counter("g").write_bytes == 50
        assert dram.counter("g").read_transactions == 1
        assert dram.total_bytes == 175
        assert dram.total_read_bytes == 125

    def test_zero_byte_transfer_free(self):
        env = Environment()
        dram = DramChannel(env, DramConfig())

        def mover(env):
            yield from dram.transfer("u", "read", 0)

        env.process(mover(env))
        env.run()
        assert env.now == 0

    def test_negative_rejected(self):
        env = Environment()
        dram = DramChannel(env, DramConfig())
        with pytest.raises(SimulationError):
            list(dram.transfer("u", "read", -5))

    def test_utilization(self):
        env = Environment()
        dram = DramChannel(env, DramConfig())
        assert dram.utilization(0) == 0.0
        dram.busy_cycles = 50
        assert dram.utilization(100) == pytest.approx(0.5)


class TestScratchpadAndTracker:
    def test_allocation_accounting(self):
        pad = Scratchpad(name="buf", capacity_bytes=100)
        pad.allocate("a", 60)
        pad.allocate("b", 30)
        assert pad.used_bytes == 90 and pad.free_bytes == 10
        pad.free("a")
        assert pad.used_bytes == 30

    def test_overflow_raises(self):
        pad = Scratchpad(name="buf", capacity_bytes=100)
        pad.allocate("a", 80)
        with pytest.raises(SimulationError, match="overflow"):
            pad.allocate("b", 40)

    def test_reallocation_replaces(self):
        pad = Scratchpad(name="buf", capacity_bytes=100)
        pad.allocate("a", 80)
        pad.allocate("a", 50)  # replaces, not adds
        assert pad.used_bytes == 50

    def test_peak_tracking(self):
        pad = Scratchpad(name="buf", capacity_bytes=100)
        pad.allocate("a", 70)
        pad.free("a")
        pad.allocate("b", 10)
        assert pad.peak_bytes == 70

    def test_busy_tracker(self):
        tracker = BusyTracker()
        tracker.record(30)
        tracker.record(20)
        assert tracker.busy_cycles == 50 and tracker.operations == 2
        assert tracker.utilization(100) == pytest.approx(0.5)
        with pytest.raises(SimulationError):
            tracker.record(-1)
