"""Shared fixtures: small graphs and shrunken platform configurations.

The ``tiny_config`` fixture shrinks every on-chip buffer so that even
60-node graphs produce multi-shard grids, dense partial-sum spills and
edge-buffer evictions — the machinery full-size buffers would hide.
"""

from __future__ import annotations

import dataclasses
import os

import pytest
from hypothesis import HealthCheck, settings

from repro.config.accelerator import (
    DenseEngineConfig,
    DramConfig,
    GNNeratorConfig,
    GraphEngineConfig,
)
from repro.graph.generators import erdos_renyi, path_graph, star_graph

# Pin the hypothesis profile so CI is deterministic: ``derandomize``
# derives examples from the test body instead of global entropy, so a
# green CI run stays green until the code (or a strategy) changes.
# Local runs keep exploring fresh examples (the "repro-dev" profile) so
# the fuzz suites don't degrade into a static test set everywhere.
settings.register_profile(
    "repro-ci",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "repro-dev",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-ci" if os.environ.get("CI") else "repro-dev")

# Every compile in the test suite runs the repro.analysis verifier
# pipeline (edge coverage, DMA conservation, channel protocol, token
# liveness, schedulability, plan agreement) — a mis-lowered program
# fails at compile time with a named pass instead of as a cycle drift.
os.environ.setdefault("REPRO_VERIFY", "1")


@pytest.fixture(scope="session")
def small_graph():
    """60 nodes, 300 edges, 20-dim features — multi-shard under tiny
    buffers, single-shard under real ones."""
    return erdos_renyi(60, 300, feature_dim=20, seed=5)


@pytest.fixture(scope="session")
def medium_graph():
    """Bigger random graph for load-bearing integration checks."""
    return erdos_renyi(500, 4000, feature_dim=48, seed=9)


@pytest.fixture()
def tiny_path():
    return path_graph(6, feature_dim=4, seed=1)


@pytest.fixture()
def hub_star():
    return star_graph(40, feature_dim=8, seed=2)


def make_tiny_config(feature_block: int | None = 8) -> GNNeratorConfig:
    """A GNNerator with droplet-sized buffers (forces S > 1 everywhere)."""
    return GNNeratorConfig(
        name="tiny",
        dense=DenseEngineConfig(
            rows=8, cols=8,
            input_buffer_bytes=2048,
            weight_buffer_bytes=2048,
            output_buffer_bytes=512),
        graph=GraphEngineConfig(
            num_gpes=4, simd_width=4,
            src_feature_buffer_bytes=2048,
            dst_feature_buffer_bytes=2048,
            edge_buffer_bytes=1024),
        dram=DramConfig(bandwidth_bytes_per_s=64e9,
                        burst_latency_cycles=10),
        feature_block=feature_block,
    )


@pytest.fixture()
def tiny_config():
    return make_tiny_config()


@pytest.fixture(scope="session")
def default_config():
    return GNNeratorConfig()


def replace(obj, **kwargs):
    """Terse dataclasses.replace re-export for test readability."""
    return dataclasses.replace(obj, **kwargs)
