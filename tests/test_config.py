"""Unit tests for the configuration layer (Table IV encodings)."""

import dataclasses

import pytest

from repro.config.accelerator import (
    MIB,
    ConfigError,
    DenseEngineConfig,
    DramConfig,
    GNNeratorConfig,
    GraphEngineConfig,
)
from repro.config.platforms import (
    GpuConfig,
    gnnerator_config,
    hygcn_config,
    next_generation_variants,
    platform_table,
    rtx_2080_ti_config,
)
from repro.config.workload import (
    WorkloadSpec,
    fig3_workloads,
    fig5_workloads,
)


class TestDenseEngineConfig:
    def test_default_matches_table4(self):
        dense = DenseEngineConfig()
        assert dense.rows == 64 and dense.cols == 64
        # 64x64 MACs * 2 FLOP @ 1 GHz = 8.2 TFLOP/s ("8 for Dense").
        assert dense.peak_flops == pytest.approx(8.192e12)
        assert dense.total_buffer_bytes == 6 * MIB

    def test_scaled_doubles_both_dimensions(self):
        scaled = DenseEngineConfig().scaled(2)
        assert scaled.rows == 128 and scaled.cols == 128
        assert scaled.peak_flops == pytest.approx(4 * 8.192e12)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ConfigError):
            DenseEngineConfig(rows=0)
        with pytest.raises(ConfigError):
            DenseEngineConfig(dataflow="diagonal")
        with pytest.raises(ConfigError):
            DenseEngineConfig(input_buffer_bytes=0)


class TestGraphEngineConfig:
    def test_default_matches_table4(self):
        graph = GraphEngineConfig()
        assert graph.lanes == 1024  # 32 GPEs x 32 lanes
        # 1024 lanes * 2 FLOP @ 1 GHz = 2 TFLOP/s ("2 for Graph").
        assert graph.peak_flops == pytest.approx(2.048e12)
        assert graph.total_buffer_bytes == 24 * MIB

    def test_usable_halves_for_double_buffering(self):
        graph = GraphEngineConfig()
        assert graph.usable_src_bytes == graph.src_feature_buffer_bytes // 2
        assert graph.usable_dst_bytes == graph.dst_feature_buffer_bytes // 2
        assert graph.usable_edge_bytes == graph.edge_buffer_bytes // 2

    def test_scaled_memory(self):
        scaled = GraphEngineConfig().scaled_memory(2)
        assert scaled.total_buffer_bytes == 48 * MIB
        assert scaled.lanes == GraphEngineConfig().lanes  # compute same

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            GraphEngineConfig(num_gpes=0)
        with pytest.raises(ConfigError):
            GraphEngineConfig(edge_buffer_bytes=-1)


class TestDramConfig:
    def test_bytes_per_cycle(self):
        dram = DramConfig()
        assert dram.bytes_per_cycle == pytest.approx(256.0)

    def test_transfer_cycles(self):
        dram = DramConfig(burst_latency_cycles=100)
        assert dram.transfer_cycles(0) == 0
        assert dram.transfer_cycles(256) == 101
        assert dram.transfer_cycles(2560) == 110

    def test_transfer_minimum_one_cycle(self):
        dram = DramConfig(burst_latency_cycles=0)
        assert dram.transfer_cycles(1) == 1

    def test_scaled_bandwidth(self):
        assert DramConfig().scaled(2).bytes_per_cycle == pytest.approx(512)

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            DramConfig(bandwidth_bytes_per_s=0)
        with pytest.raises(ConfigError):
            DramConfig().transfer_cycles(-1)


class TestGNNeratorConfig:
    def test_totals_match_table4(self):
        config = gnnerator_config()
        assert config.peak_flops == pytest.approx(10.24e12)  # "10 TFLOPs"
        assert config.on_chip_bytes == 30 * MIB  # "30 MiB"

    def test_feature_block_override(self):
        config = gnnerator_config(feature_block=None)
        assert config.feature_block is None
        assert config.with_feature_block(128).feature_block == 128

    def test_describe_mentions_engines(self):
        text = gnnerator_config().describe()
        assert "Graph" in text and "Dense" in text

    def test_rejects_nonpositive_block(self):
        with pytest.raises(ConfigError):
            GNNeratorConfig(feature_block=0)


class TestBaselineConfigs:
    def test_gpu_matches_table4(self):
        gpu = rtx_2080_ti_config()
        assert gpu.peak_flops == pytest.approx(13.45e12)
        assert gpu.dram_bandwidth_bytes_per_s == pytest.approx(616e9)

    def test_gpu_rejects_bad_efficiency(self):
        with pytest.raises(ConfigError):
            GpuConfig(gather_efficiency=0.0)
        with pytest.raises(ConfigError):
            GpuConfig(stream_efficiency=1.5)

    def test_hygcn_matches_table4(self):
        hygcn = hygcn_config()
        assert hygcn.agg_peak_flops == pytest.approx(1.024e12)
        assert hygcn.comb_peak_flops == pytest.approx(8.192e12)
        assert hygcn.on_chip_bytes == 24 * MIB

    def test_hygcn_sparsity_toggle(self):
        assert hygcn_config(False).sparsity_elimination is False

    def test_platform_table_has_three_rows(self):
        rows = platform_table()
        assert [r["Platform"] for r in rows] == [
            "RTX 2080 Ti", "GNNerator", "HyGCN"]


class TestNextGenerationVariants:
    def test_three_variants(self):
        variants = next_generation_variants()
        assert set(variants) == {"more-graph-memory", "more-dense-compute",
                                 "more-feature-bandwidth"}

    def test_each_variant_scales_one_resource(self):
        base = gnnerator_config()
        variants = next_generation_variants(base)
        assert (variants["more-graph-memory"].graph.total_buffer_bytes
                == 2 * base.graph.total_buffer_bytes)
        assert (variants["more-dense-compute"].dense.macs
                == 4 * base.dense.macs)
        assert (variants["more-feature-bandwidth"].dram.bytes_per_cycle
                == 2 * base.dram.bytes_per_cycle)

    def test_dense_variant_doubles_feature_block(self):
        variants = next_generation_variants(gnnerator_config())
        assert variants["more-dense-compute"].feature_block == 128
        unblocked = next_generation_variants(
            gnnerator_config(feature_block=None))
        assert unblocked["more-dense-compute"].feature_block is None


class TestWorkloadSpec:
    def test_labels_match_paper_figure(self):
        labels = [spec.label for spec in fig3_workloads()]
        assert labels == [
            "cora-gcn", "cora-gsage", "cora-gsage-max",
            "citeseer-gcn", "citeseer-gsage", "citeseer-gsage-max",
            "pub-gcn", "pub-gsage", "pub-gsage-max"]

    def test_with_block_and_hidden(self):
        spec = WorkloadSpec(dataset="cora", network="gcn")
        assert spec.with_block(None).feature_block is None
        assert spec.with_hidden_dim(128).hidden_dim == 128
        # Original unchanged (frozen dataclass semantics).
        assert spec.feature_block == 64 and spec.hidden_dim == 16

    def test_fig5_workloads_cover_grid(self):
        specs = fig5_workloads()
        assert len(specs) == 9
        assert {s.hidden_dim for s in specs} == {16, 128, 1024}

    def test_rejects_bad_traversal(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(dataset="cora", network="gcn",
                         traversal="diagonal")

    def test_rejects_bad_block(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(dataset="cora", network="gcn", feature_block=0)

    def test_frozen(self):
        spec = WorkloadSpec(dataset="cora", network="gcn")
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.dataset = "citeseer"
