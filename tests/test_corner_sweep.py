"""Exhaustive corner-regime sweep: degenerate graphs x every network x
both traversals x extreme block sizes x sparsity elimination.

Each configuration must compile, validate, match the reference
functionally, and simulate to completion — the robustness bar for a
toolchain someone else will point at their own graphs.
"""

import dataclasses

import numpy as np
import pytest

from repro.accelerator import GNNerator
from repro.compiler.runtime import run_functional
from repro.compiler.validation import validate_program
from repro.config.platforms import gnnerator_config
from repro.config.workload import DST_STATIONARY, SRC_STATIONARY
from repro.graph.generators import erdos_renyi, path_graph, star_graph
from repro.graph.graph import Graph
from repro.models.layers import init_parameters
from repro.models.reference import reference_forward
from repro.models.zoo import build_network


def _one_node() -> Graph:
    graph = Graph(1, [], [], name="one")
    graph.features = np.ones((1, 6), dtype=np.float32)
    return graph


def _no_edges() -> Graph:
    graph = Graph(12, [], [], name="noedges")
    rng = np.random.default_rng(0)
    graph.features = rng.standard_normal((12, 6)).astype(np.float32)
    return graph


GRAPHS = {
    "er": lambda: erdos_renyi(35, 150, feature_dim=11, seed=1),
    "star": lambda: star_graph(30, feature_dim=7, seed=2),
    "path": lambda: path_graph(8, feature_dim=5, seed=3),
    "one-node": _one_node,
    "no-edges": _no_edges,
}


@pytest.fixture(scope="module")
def graphs():
    return {name: build() for name, build in GRAPHS.items()}


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("network", ["gcn", "graphsage",
                                     "graphsage-pool"])
@pytest.mark.parametrize("traversal", [DST_STATIONARY, SRC_STATIONARY])
def test_corner_configurations(graphs, graph_name, network, traversal):
    graph = graphs[graph_name]
    model = build_network(network, graph.feature_dim, 3, hidden_dim=8)
    params = init_parameters(model, seed=1)
    reference = reference_forward(model, graph, params)
    for block in (4, None, 1):
        for elimination in (False, True):
            config = dataclasses.replace(
                gnnerator_config(feature_block=block),
                sparsity_elimination=elimination)
            accelerator = GNNerator(config)
            program = accelerator.compile(graph, model, params=params,
                                          traversal=traversal,
                                          feature_block=block)
            validate_program(program)
            out = run_functional(program, graph)
            np.testing.assert_allclose(out, reference, rtol=2e-3,
                                       atol=1e-3)
            result = accelerator.simulate(program)
            assert result.cycles > 0
