"""Unit tests for the Graph container."""

import numpy as np
import pytest

from repro.graph.graph import Graph, GraphError


def triangle() -> Graph:
    # 0 -> 1, 1 -> 2, 2 -> 0
    return Graph(3, [0, 1, 2], [1, 2, 0], name="tri")


class TestConstruction:
    def test_basic_properties(self):
        g = triangle()
        assert g.num_nodes == 3 and g.num_edges == 3
        assert g.edge_bytes == 3 * 8

    def test_from_edges(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        assert g.num_edges == 2
        assert g.src.tolist() == [0, 2]

    def test_from_edges_empty(self):
        g = Graph.from_edges(3, [])
        assert g.num_edges == 0

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphError):
            Graph(2, [0, 5], [1, 0])
        with pytest.raises(GraphError):
            Graph(2, [0], [-1])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(GraphError):
            Graph(3, [0, 1], [1])

    def test_rejects_negative_nodes(self):
        with pytest.raises(GraphError):
            Graph(-1, [], [])


class TestFeatures:
    def test_feature_roundtrip(self):
        g = triangle()
        g.features = np.ones((3, 5))
        assert g.feature_dim == 5
        assert g.features.dtype == np.float32
        assert g.feature_bytes == 3 * 5 * 4

    def test_missing_features_raise(self):
        g = triangle()
        assert not g.has_features
        with pytest.raises(GraphError):
            _ = g.features

    def test_rejects_wrong_row_count(self):
        g = triangle()
        with pytest.raises(GraphError):
            g.features = np.ones((4, 5))

    def test_rejects_1d(self):
        g = triangle()
        with pytest.raises(GraphError):
            g.features = np.ones(3)


class TestAdjacency:
    def test_csr_csc_consistency(self):
        g = triangle()
        indptr, indices = g.csr
        assert indptr.tolist() == [0, 1, 2, 3]
        assert indices.tolist() == [1, 2, 0]
        indptr_c, indices_c = g.csc
        assert indptr_c.tolist() == [0, 1, 2, 3]
        assert indices_c.tolist() == [2, 0, 1]

    def test_degrees(self):
        g = Graph(3, [0, 0, 1], [1, 2, 2])
        assert g.out_degrees().tolist() == [2, 1, 0]
        assert g.in_degrees().tolist() == [0, 1, 2]

    def test_neighbors(self):
        g = Graph(3, [0, 0, 1], [1, 2, 2])
        assert sorted(g.in_neighbors(2).tolist()) == [0, 1]
        assert sorted(g.out_neighbors(0).tolist()) == [1, 2]
        assert g.in_neighbors(0).size == 0

    def test_csr_cached(self):
        g = triangle()
        assert g.csr is g.csr


class TestTransformations:
    def test_reverse_edges_symmetrises(self):
        g = Graph(3, [0], [1]).with_reverse_edges()
        pairs = set(zip(g.src.tolist(), g.dst.tolist()))
        assert pairs == {(0, 1), (1, 0)}

    def test_reverse_edges_idempotent(self):
        g = triangle().with_reverse_edges()
        again = g.with_reverse_edges()
        assert again.num_edges == g.num_edges

    def test_self_loops_added_once(self):
        g = Graph(2, [0, 0], [0, 1]).with_self_loops()
        pairs = sorted(zip(g.src.tolist(), g.dst.tolist()))
        assert pairs == [(0, 0), (0, 1), (1, 1)]

    def test_without_self_loops(self):
        g = Graph(2, [0, 0], [0, 1]).without_self_loops()
        assert g.num_edges == 1

    def test_edge_subset(self):
        g = triangle()
        sub = g.edge_subset([True, False, True])
        assert sub.num_edges == 2
        with pytest.raises(GraphError):
            g.edge_subset([True])

    def test_transforms_preserve_features(self):
        g = triangle()
        g.features = np.eye(3, 4, dtype=np.float32)
        assert g.with_reverse_edges().has_features
        assert g.with_self_loops().has_features

    def test_duplicate_detection(self):
        assert Graph(2, [0, 0], [1, 1]).has_duplicate_edges()
        assert not triangle().has_duplicate_edges()
