"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.kernel import Environment, SimulationError


class TestTimeouts:
    def test_single_timeout(self):
        env = Environment()
        log = []

        def proc(env):
            yield env.timeout(10)
            log.append(env.now)

        env.process(proc(env))
        env.run()
        assert log == [10]

    def test_sequential_timeouts_accumulate(self):
        env = Environment()
        log = []

        def proc(env):
            yield env.timeout(3)
            yield env.timeout(4)
            log.append(env.now)

        env.process(proc(env))
        env.run()
        assert log == [7]

    def test_parallel_processes_interleave(self):
        env = Environment()
        log = []

        def proc(env, delay, tag):
            yield env.timeout(delay)
            log.append((env.now, tag))

        env.process(proc(env, 5, "b"))
        env.process(proc(env, 2, "a"))
        env.run()
        assert log == [(2, "a"), (5, "b")]

    def test_zero_delay_allowed(self):
        env = Environment()
        done = []

        def proc(env):
            yield env.timeout(0)
            done.append(True)

        env.process(proc(env))
        env.run()
        assert done == [True]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_fifo_at_same_timestamp(self):
        """Events at equal time fire in scheduling order (determinism)."""
        env = Environment()
        log = []

        def proc(env, tag):
            yield env.timeout(5)
            log.append(tag)

        for tag in "abcd":
            env.process(proc(env, tag))
        env.run()
        assert log == list("abcd")


class TestEvents:
    def test_manual_trigger_resumes_waiter(self):
        env = Environment()
        gate = env.event()
        log = []

        def waiter(env):
            value = yield gate
            log.append((env.now, value))

        def opener(env):
            yield env.timeout(4)
            gate.trigger("open")

        env.process(waiter(env))
        env.process(opener(env))
        env.run()
        assert log == [(4, "open")]

    def test_wait_on_already_triggered(self):
        env = Environment()
        gate = env.event()
        gate.trigger(42)
        log = []

        def waiter(env):
            value = yield gate
            log.append(value)

        env.process(waiter(env))
        env.run()
        assert log == [42]

    def test_double_trigger_rejected(self):
        env = Environment()
        gate = env.event()
        gate.trigger()
        with pytest.raises(SimulationError):
            gate.trigger()

    def test_succeed_alias(self):
        env = Environment()
        gate = env.event().succeed("v")
        assert gate.triggered and gate.value == "v"

    def test_all_of(self):
        env = Environment()
        log = []

        def waiter(env, a, b):
            yield env.all_of([a, b])
            log.append(env.now)

        a, b = env.timeout(3), env.timeout(9)
        env.process(waiter(env, a, b))
        env.run()
        assert log == [9]

    def test_any_of(self):
        env = Environment()
        log = []

        def waiter(env, a, b):
            yield env.any_of([a, b])
            log.append(env.now)

        a, b = env.timeout(3), env.timeout(9)
        env.process(waiter(env, a, b))
        env.run()
        assert log == [3]

    def test_all_of_already_triggered(self):
        env = Environment()
        done = env.event()
        done.trigger()
        combo = env.all_of([done])
        assert combo.triggered


class TestProcesses:
    def test_process_is_awaitable_event(self):
        env = Environment()
        log = []

        def child(env):
            yield env.timeout(6)
            return "result"

        def parent(env):
            value = yield env.process(child(env), name="child")
            log.append((env.now, value))

        env.process(parent(env))
        env.run()
        assert log == [(6, "result")]

    def test_yield_non_event_rejected(self):
        env = Environment()

        def bad(env):
            yield 42

        env.process(bad(env))
        with pytest.raises(SimulationError, match="not an Event"):
            env.run()

    def test_run_until_stops_clock(self):
        env = Environment()

        def proc(env):
            yield env.timeout(100)

        p = env.process(proc(env))
        env.run(until=30)
        assert env.now == 30
        assert not p.triggered
        env.run()
        assert p.triggered and env.now == 100

    def test_empty_run(self):
        env = Environment()
        env.run()
        assert env.now == 0
