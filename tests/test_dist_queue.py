"""Tests for the shared-directory work queue (``repro.sweep.dist``):
unit coverage of every transition, crash-window duplicate resolution,
scan-derived stats, and a Hypothesis state machine asserting the lease
lifecycle never loses a point or lets two live workers hold one."""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.sweep.dist import FileQueue, QueueError, Task
from repro.sweep.dist.queue import (
    RECORD_SCHEMA,
    _publish_exclusive,
    _write_json,
)


def _fast_queue(root, **overrides) -> FileQueue:
    """A queue with near-zero backoff so tests never sleep for it."""
    params = dict(lease_ttl_s=60.0, max_attempts=3,
                  backoff_base_s=0.0, backoff_cap_s=0.0)
    params.update(overrides)
    return FileQueue(root, **params)


def _expire(queue: FileQueue, task_id: str) -> None:
    """Backdate a lease's heartbeat past the TTL (simulated death)."""
    stale = time.time() - queue.lease_ttl_s - 1.0
    os.utime(queue.leases_dir / f"{task_id}.json", (stale, stale))


class TestFileQueue:
    def test_enqueue_claim_complete_roundtrip(self, tmp_path):
        queue = _fast_queue(tmp_path)
        assert queue.enqueue("a", {"x": 1})
        assert queue.state_of("a") == "pending"
        task = queue.claim("w1")
        assert task == Task(id="a", payload={"x": 1}, attempts=1)
        assert queue.state_of("a") == "leased"
        queue.complete(task, {"cycles": 7}, worker="w1")
        state, record = queue.result("a")
        assert state == "done"
        assert record["metrics"] == {"cycles": 7}
        assert record["worker"] == "w1"
        assert not (queue.leases_dir / "a.json").exists()

    def test_enqueue_is_idempotent_per_id(self, tmp_path):
        queue = _fast_queue(tmp_path)
        assert queue.enqueue("a", {"x": 1})
        assert not queue.enqueue("a", {"x": 2})  # any state blocks
        task = queue.claim("w1")
        assert task.payload == {"x": 1}
        assert not queue.enqueue("a", {"x": 3})  # leased blocks too

    def test_ensure_reenqueues_only_missing_ids(self, tmp_path):
        queue = _fast_queue(tmp_path)
        queue.enqueue("a", {"x": 1})
        task = queue.claim("w1")
        queue.complete(task, {})
        added = queue.ensure({"a": {"x": 1}, "b": {"x": 2}})
        assert added == 1
        assert queue.state_of("a") == "done"  # not recomputed
        assert queue.state_of("b") == "pending"

    def test_claim_on_empty_queue_returns_none(self, tmp_path):
        assert _fast_queue(tmp_path).claim("w1") is None

    def test_two_claimants_race_exactly_one_wins(self, tmp_path):
        # Same directory opened twice = two worker processes.
        q1 = _fast_queue(tmp_path)
        q2 = FileQueue(tmp_path)
        q1.enqueue("a", {"x": 1})
        first = q1.claim("w1")
        second = q2.claim("w2")
        assert first is not None and second is None

    def test_fail_requeues_with_backoff_then_quarantines(self, tmp_path):
        queue = _fast_queue(tmp_path, max_attempts=2,
                            backoff_base_s=30.0, backoff_cap_s=60.0)
        queue.enqueue("a", {"x": 1})
        task = queue.claim("w1")
        assert queue.fail(task, "boom", worker="w1") == "retry"
        assert queue.state_of("a") == "pending"
        # Backoff: not eligible again until not_before passes.
        assert queue.claim("w1") is None
        record = json.loads(
            (queue.pending_dir / "a.json").read_text())
        record["not_before"] = 0.0
        _write_json(queue.pending_dir / "a.json", record)
        task = queue.claim("w1")
        assert task.attempts == 2
        assert queue.fail(task, "boom again", worker="w1") == "quarantined"
        state, record = queue.result("a")
        assert state == "failed"
        assert record["error"] == "boom again"
        assert record["failures"] == 2

    def test_backoff_delay_is_capped_exponential(self, tmp_path):
        queue = _fast_queue(tmp_path, max_attempts=10,
                            backoff_base_s=1.0, backoff_cap_s=3.0)
        queue.enqueue("a", {"x": 1})
        delays = []
        for _ in range(4):
            record = json.loads(
                (queue.pending_dir / "a.json").read_text())
            record["not_before"] = 0.0
            _write_json(queue.pending_dir / "a.json", record)
            before = time.time()
            queue.fail(queue.claim("w1"), "boom")
            record = json.loads(
                (queue.pending_dir / "a.json").read_text())
            delays.append(record["not_before"] - before)
        # 1, 2 then pinned at the 3s cap (small slack for clock reads).
        assert delays[0] == pytest.approx(1.0, abs=0.2)
        assert delays[1] == pytest.approx(2.0, abs=0.2)
        assert delays[2] == pytest.approx(3.0, abs=0.2)
        assert delays[3] == pytest.approx(3.0, abs=0.2)

    def test_reap_requeues_expired_lease_and_counts_expiry(self, tmp_path):
        queue = _fast_queue(tmp_path, lease_ttl_s=5.0)
        queue.enqueue("a", {"x": 1})
        queue.claim("w1")
        assert queue.reap() == 0  # heartbeat fresh
        _expire(queue, "a")
        assert queue.reap() == 1
        assert queue.state_of("a") == "pending"
        task = queue.claim("w2")  # immediately eligible again
        assert task.attempts == 2
        queue.complete(task, {"cycles": 1}, worker="w2")
        stats = queue.stats()
        assert stats["expiries"] == 1
        assert stats["retries"] == 1

    def test_reap_quarantines_once_claim_budget_is_spent(self, tmp_path):
        queue = _fast_queue(tmp_path, max_attempts=2)
        queue.enqueue("a", {"x": 1})
        queue.claim("w1")
        _expire(queue, "a")
        queue.reap()
        queue.claim("w1")  # attempts == 2 == max_attempts
        _expire(queue, "a")
        queue.reap()
        state, record = queue.result("a")
        assert state == "failed"
        assert "lease expired" in record["error"]
        assert record["expiries"] == 2

    def test_renew_refreshes_heartbeat_and_reports_lost_lease(
            self, tmp_path):
        queue = _fast_queue(tmp_path, lease_ttl_s=5.0)
        queue.enqueue("a", {"x": 1})
        queue.claim("w1")
        _expire(queue, "a")
        assert queue.renew("a")  # heartbeat rescues the expired lease
        assert queue.reap() == 0
        queue.complete(Task("a", {"x": 1}, 1), {})
        assert not queue.renew("a")  # lease gone

    def test_corrupt_pending_file_is_quarantined_on_claim(self, tmp_path):
        queue = _fast_queue(tmp_path)
        queue.enqueue("a", {"x": 1})
        (queue.pending_dir / "b.json").write_text("not json {{{")
        task = queue.claim("w1")
        assert task.id == "a"  # the readable task still claims
        assert queue.claim("w1") is None
        assert queue.stats()["corrupt"] == 1
        # The corrupt file is kept for audit, renamed so no scan
        # matches it, and its id is claimable again via ensure().
        assert not (queue.pending_dir / "b.json").exists()
        assert queue.ensure({"b": {"x": 2}}) == 1

    def test_corrupt_lease_is_quarantined_on_reap(self, tmp_path):
        queue = _fast_queue(tmp_path, lease_ttl_s=5.0)
        queue.enqueue("a", {"x": 1})
        queue.claim("w1")
        (queue.leases_dir / "a.json").write_bytes(b"\x00garbage\x00")
        _expire(queue, "a")
        queue.reap()
        assert queue.state_of("a") is None
        assert queue.stats()["corrupt"] == 1
        assert queue.ensure({"a": {"x": 1}}) == 1  # recovery path

    def test_stale_pending_duplicate_of_done_task_is_deleted(
            self, tmp_path):
        # A crash between complete()'s two steps leaves the task in
        # done/ AND pending/; done must win and the copy must go.
        queue = _fast_queue(tmp_path)
        queue.enqueue("a", {"x": 1})
        task = queue.claim("w1")
        queue.complete(task, {"cycles": 1})
        _write_json(queue.pending_dir / "a.json",
                    queue._base_record("a", {"x": 1}))
        assert queue.states() == {"a": "done"}
        assert queue.claim("w1") is None  # deletes, never re-runs
        assert not (queue.pending_dir / "a.json").exists()
        assert queue.stats()["done"] == 1

    def test_complete_preserves_accumulated_counters(self, tmp_path):
        # Regression: completion used to rebuild the record from
        # scratch, zeroing the expiry/failure history that stats()
        # reconstructs fleet metrics from.
        queue = _fast_queue(tmp_path, lease_ttl_s=5.0)
        queue.enqueue("a", {"x": 1})
        queue.fail(queue.claim("w1"), "boom")
        queue.claim("w2")
        _expire(queue, "a")
        queue.reap()
        task = queue.claim("w3")
        queue.complete(task, {"cycles": 1}, worker="w3")
        _, record = queue.result("a")
        assert record["failures"] == 1
        assert record["expiries"] == 1
        assert record["attempts"] == 3
        stats = queue.stats()
        assert (stats["failures"], stats["expiries"],
                stats["retries"]) == (1, 1, 2)

    def test_claim_adopts_lease_record_after_winning_race(
            self, tmp_path, monkeypatch):
        # Between reading the pending record and winning os.replace, a
        # racer can claim the task, fail it, and re-enqueue it. The
        # eventual winner must adopt the re-enqueued record (the file
        # it just moved), not write back its stale pre-claim copy —
        # otherwise attempts/failures roll back and a poison point can
        # outlive the quarantine budget.
        queue = _fast_queue(tmp_path)
        racer = FileQueue(tmp_path)
        queue.enqueue("a", {"x": 1})
        real_replace = os.replace
        state = {"raced": False}

        def interleaved(src, dst, *args, **kwargs):
            if (not state["raced"]
                    and Path(dst) == queue.leases_dir / "a.json"):
                state["raced"] = True
                task = racer.claim("racer")
                assert racer.fail(task, "transient") == "retry"
            return real_replace(src, dst, *args, **kwargs)

        monkeypatch.setattr(os, "replace", interleaved)
        task = queue.claim("w1")
        assert task.attempts == 2  # racer's claim counted, not erased
        record = json.loads((queue.leases_dir / "a.json").read_text())
        assert record["failures"] == 1

    def test_manifest_is_adopted_by_later_processes(self, tmp_path):
        _fast_queue(tmp_path, lease_ttl_s=7.0, max_attempts=5)
        # A worker attaching with different constructor defaults must
        # adopt the directory's protocol, not fork it.
        other = FileQueue(tmp_path, lease_ttl_s=99.0, max_attempts=1)
        assert other.lease_ttl_s == 7.0
        assert other.max_attempts == 5

    def test_manifest_publish_is_exclusive(self, tmp_path):
        path = tmp_path / "queue.json"
        assert _publish_exclusive(path, {"winner": True})
        assert not _publish_exclusive(path, {"winner": False})
        assert json.loads(path.read_text())["winner"] is True
        assert not list(tmp_path.glob(".*.tmp"))  # tmps cleaned up

    def test_manifest_creation_race_has_single_winner(
            self, tmp_path, monkeypatch):
        # Two processes race to create the queue with different
        # parameters: exactly one manifest may land, and the loser
        # must adopt it — never re-read its own overwritten copy.
        import repro.sweep.dist.queue as queue_module
        real_publish = queue_module._publish_exclusive
        state = {"racing": False}

        def preempted(path, record):
            if not state["racing"]:
                state["racing"] = True
                FileQueue(tmp_path, lease_ttl_s=7.0, max_attempts=5)
            return real_publish(path, record)

        monkeypatch.setattr(queue_module, "_publish_exclusive",
                            preempted)
        loser = FileQueue(tmp_path, lease_ttl_s=99.0, max_attempts=1)
        assert loser.lease_ttl_s == 7.0
        assert loser.max_attempts == 5

    def test_unreadable_manifest_refuses_to_attach(self, tmp_path):
        _fast_queue(tmp_path)
        (tmp_path / "queue.json").write_text("not json {{{")
        with pytest.raises(QueueError, match="unreadable queue manifest"):
            FileQueue(tmp_path)

    def test_open_requires_a_manifest(self, tmp_path):
        with pytest.raises(QueueError, match="no queue manifest"):
            FileQueue.open(tmp_path / "nowhere")
        _fast_queue(tmp_path / "real")
        assert FileQueue.open(tmp_path / "real").max_attempts == 3

    def test_invalid_parameters_rejected(self, tmp_path):
        with pytest.raises(QueueError, match="lease_ttl_s"):
            FileQueue(tmp_path, lease_ttl_s=0.0)
        with pytest.raises(QueueError, match="max_attempts"):
            FileQueue(tmp_path, max_attempts=0)

    def test_close_marker(self, tmp_path):
        queue = _fast_queue(tmp_path)
        assert not queue.is_closed()
        queue.close()
        assert queue.is_closed()
        assert FileQueue(tmp_path).is_closed()

    def test_reopen_clears_close_marker(self, tmp_path):
        queue = _fast_queue(tmp_path)
        queue.close()
        queue.reopen()
        assert not queue.is_closed()
        queue.reopen()  # idempotent when no marker exists
        assert not queue.is_closed()

    def test_orphan_tmp_files_are_invisible_to_scans(self, tmp_path):
        queue = _fast_queue(tmp_path)
        queue.enqueue("a", {"x": 1})
        # A writer that died mid-publish leaves a hidden tmp sibling.
        (queue.pending_dir / ".b.json.123.1.tmp").write_text('{"tru')
        assert queue.states() == {"a": "pending"}
        assert queue.claim("w1").id == "a"
        assert queue.claim("w1") is None
        assert queue.stats()["corrupt"] == 0

    def test_stats_keys_complete_and_zeroed_when_fresh(self, tmp_path):
        stats = _fast_queue(tmp_path).stats()
        assert stats == {"pending": 0, "leased": 0, "done": 0,
                         "failed": 0, "retries": 0, "failures": 0,
                         "expiries": 0, "quarantined": 0, "corrupt": 0}

    def test_wrong_schema_record_reads_as_corrupt(self, tmp_path):
        queue = _fast_queue(tmp_path)
        _write_json(queue.pending_dir / "a.json",
                    {"schema": RECORD_SCHEMA + 1, "point": {}})
        assert queue.claim("w1") is None
        assert queue.stats()["corrupt"] == 1


# ---------------------------------------------------------------------
# Lease-lifecycle state machine (ISSUE satellite): under any
# interleaving of enqueue/claim/complete/fail/expire+reap, every task
# is in exactly one state, no id is ever lost, no two live workers
# hold the same lease, and quarantine happens only after max_attempts.
# ---------------------------------------------------------------------
MAX_ATTEMPTS = 2


class LeaseLifecycle(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.root = Path(tempfile.mkdtemp(prefix="repro-lease-sm-"))
        self.queue = FileQueue(self.root, lease_ttl_s=120.0,
                               max_attempts=MAX_ATTEMPTS,
                               backoff_base_s=0.0, backoff_cap_s=0.0)
        self.counter = 0
        self.model: dict[str, str] = {}       # id -> expected state
        self.attempts: dict[str, int] = {}    # id -> claims so far
        self.held: dict[str, str] = {}        # id -> live worker

    def teardown(self):
        shutil.rmtree(self.root, ignore_errors=True)

    # -- rules --------------------------------------------------------
    @rule()
    def enqueue(self):
        task_id = f"t{self.counter}"
        self.counter += 1
        assert self.queue.enqueue(task_id, {"n": self.counter})
        self.model[task_id] = "pending"
        self.attempts[task_id] = 0

    @rule(worker=st.sampled_from(["w1", "w2"]))
    def claim(self, worker):
        task = self.queue.claim(worker)
        pending = {i for i, s in self.model.items() if s == "pending"}
        if task is None:
            assert not pending, f"claim missed eligible {pending}"
            return
        assert task.id in pending
        assert task.id not in self.held, \
            f"{task.id} double-claimed while {self.held[task.id]} lives"
        self.model[task.id] = "leased"
        self.attempts[task.id] += 1
        assert task.attempts == self.attempts[task.id]
        self.held[task.id] = worker

    @precondition(lambda self: self.held)
    @rule(data=st.data())
    def complete(self, data):
        task_id = data.draw(st.sampled_from(sorted(self.held)), "id")
        task = Task(task_id, {"n": 0}, self.attempts[task_id])
        self.queue.complete(task, {"cycles": 1},
                            worker=self.held.pop(task_id))
        self.model[task_id] = "done"

    @precondition(lambda self: self.held)
    @rule(data=st.data())
    def fail(self, data):
        task_id = data.draw(st.sampled_from(sorted(self.held)), "id")
        task = Task(task_id, {"n": 0}, self.attempts[task_id])
        outcome = self.queue.fail(task, "boom",
                                  worker=self.held.pop(task_id))
        if self.attempts[task_id] >= MAX_ATTEMPTS:
            assert outcome == "quarantined"
            self.model[task_id] = "failed"
        else:
            assert outcome == "retry"
            self.model[task_id] = "pending"

    @precondition(lambda self: self.held)
    @rule(data=st.data())
    def worker_dies_and_lease_expires(self, data):
        task_id = data.draw(st.sampled_from(sorted(self.held)), "id")
        _expire(self.queue, task_id)
        assert self.queue.reap() == 1
        self.held.pop(task_id)
        if self.attempts[task_id] >= MAX_ATTEMPTS:
            self.model[task_id] = "failed"
        else:
            self.model[task_id] = "pending"

    # -- invariants ---------------------------------------------------
    @invariant()
    def no_task_lost_and_exactly_one_state(self):
        assert self.queue.states() == self.model
        # The precedence scan above could mask a duplicate; check the
        # directories raw: each id lives in exactly one of them.
        for task_id in self.model:
            homes = [d for d in (self.queue.pending_dir,
                                 self.queue.leases_dir,
                                 self.queue.done_dir,
                                 self.queue.failed_dir)
                     if (d / f"{task_id}.json").exists()]
            assert len(homes) == 1, f"{task_id} in {homes}"

    @invariant()
    def quarantine_only_after_budget_spent(self):
        for task_id, state in self.model.items():
            if state == "failed":
                assert self.attempts[task_id] >= MAX_ATTEMPTS


TestLeaseLifecycle = LeaseLifecycle.TestCase
TestLeaseLifecycle.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None)
