"""Property-based tests (hypothesis) for the core invariants.

The heavyweight invariant — compiled/blocked/sharded execution equals
the numpy reference — is exercised over *random* graphs, networks, block
sizes and traversal orders, alongside structural invariants of the
sharder, the cost model, and the DES kernel.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compiler.lowering import compile_workload
from repro.compiler.runtime import run_functional
from repro.compiler.validation import validate_program
from repro.config.workload import DST_STATIONARY, SRC_STATIONARY
from repro.dataflow.blocking import BlockPlan
from repro.dataflow.costs import dst_stationary_cost, src_stationary_cost
from repro.graph.generators import erdos_renyi
from repro.graph.graph import Graph
from repro.graph.partition import ShardGrid
from repro.graph.traversal import (
    simulate_residency,
    traversal_order,
)
from repro.models.layers import init_parameters
from repro.models.reference import reference_forward
from repro.models.stages import (
    AggregateStage,
    ExtractStage,
    GNNLayer,
    GNNModel,
)
from repro.models.zoo import build_network
from tests.conftest import make_tiny_config

# Limit example counts: each example compiles and simulates a program.
FAST = settings(max_examples=25,
                suppress_health_check=[HealthCheck.too_slow],
                deadline=None)
SLOW = settings(max_examples=10,
                suppress_health_check=[HealthCheck.too_slow],
                deadline=None)


@st.composite
def random_graphs(draw):
    num_nodes = draw(st.integers(min_value=2, max_value=40))
    max_edges = min(num_nodes * (num_nodes - 1), 120)
    num_edges = draw(st.integers(min_value=0, max_value=max_edges))
    feature_dim = draw(st.integers(min_value=1, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    if num_edges == 0:
        graph = Graph(num_nodes, [], [], name="empty")
        rng = np.random.default_rng(seed)
        graph.features = rng.standard_normal(
            (num_nodes, feature_dim)).astype(np.float32)
        return graph
    return erdos_renyi(num_nodes, num_edges, feature_dim=feature_dim,
                       seed=seed)


class TestShardingProperties:
    @FAST
    @given(graph=random_graphs(),
           interval=st.integers(min_value=1, max_value=50))
    def test_partition_conserves_edges(self, graph, interval):
        grid = ShardGrid(graph, interval_size=interval)
        grid.validate()
        assert grid.num_edges == graph.num_edges
        total = sum(s.num_edges for s in grid.nonempty_shards())
        assert total == graph.num_edges

    @FAST
    @given(graph=random_graphs(),
           interval=st.integers(min_value=1, max_value=50))
    def test_edge_ids_bijective(self, graph, interval):
        grid = ShardGrid(graph, interval_size=interval)
        ids = np.concatenate(
            [s.edge_ids for s in grid.nonempty_shards()]
            or [np.empty(0, np.int64)])
        assert len(np.unique(ids)) == graph.num_edges


class TestTraversalProperties:
    @settings(max_examples=50, deadline=None)
    @given(side=st.integers(min_value=1, max_value=12),
           order_name=st.sampled_from([SRC_STATIONARY, DST_STATIONARY]))
    def test_replay_matches_closed_forms(self, side, order_name):
        replay = simulate_residency(traversal_order(order_name, side),
                                    side)
        cost_fn = (src_stationary_cost if order_name == SRC_STATIONARY
                   else dst_stationary_cost)
        cost = cost_fn(side, 1)
        assert replay.src_loads + replay.dst_loads == cost.read_rows
        assert replay.dst_stores == cost.write_rows

    @settings(max_examples=50, deadline=None)
    @given(side=st.integers(min_value=1, max_value=12))
    def test_orders_cover_grid_once(self, side):
        for name in (SRC_STATIONARY, DST_STATIONARY):
            cells = traversal_order(name, side)
            assert sorted(set(cells)) == [
                (r, c) for r in range(side) for c in range(side)]


class TestBlockPlanProperties:
    @settings(max_examples=100, deadline=None)
    @given(dim=st.integers(min_value=1, max_value=500),
           block=st.integers(min_value=1, max_value=500))
    def test_slices_partition(self, dim, block):
        block = min(block, dim)
        plan = BlockPlan(dim=dim, block=block)
        slices = plan.slices()
        assert len(slices) == plan.num_blocks
        cursor = 0
        for chunk in slices:
            assert chunk.start == cursor
            assert chunk.stop - chunk.start <= block
            cursor = chunk.stop
        assert cursor == dim


@st.composite
def random_aggregate_stages(draw, dim: int) -> AggregateStage:
    """Any aggregation form the stage IR supports, including the
    computed-weight (attention) and ε-scaled-self (GIN) extensions."""
    form = draw(st.sampled_from(
        ["plain", "mean", "sym", "max", "attention", "epsilon"]))
    include_self = draw(st.booleans())
    if form == "mean":
        return AggregateStage(dim=dim, reduce="sum", normalization="mean",
                              include_self=include_self)
    if form == "sym":
        return AggregateStage(dim=dim, reduce="sum", normalization="sym",
                              include_self=include_self)
    if form == "max":
        return AggregateStage(dim=dim, reduce="max",
                              include_self=include_self)
    if form == "attention":
        slope = draw(st.sampled_from([0.0, 0.2, 0.5]))
        return AggregateStage(dim=dim, weighting="attention",
                              include_self=include_self,
                              leaky_slope=slope)
    if form == "epsilon":
        epsilon = draw(st.floats(min_value=-0.9, max_value=2.0,
                                 allow_nan=False, allow_infinity=False))
        return AggregateStage(dim=dim, epsilon=epsilon, include_self=True)
    return AggregateStage(dim=dim, reduce="sum",
                          include_self=include_self)


@st.composite
def random_models(draw) -> GNNModel:
    """Random stage orders / dims / aggregation forms, always dim-valid.

    Patterns cover both producer orders and multi-extract pipelines:
    A=aggregate, E=extract; ``AE`` (GCN-like), ``EA`` (GAT-like),
    ``EAE`` (pool-like, optionally with concat), ``AEE`` (GIN-like).
    """
    in_dim = draw(st.integers(min_value=1, max_value=10))
    num_layers = draw(st.integers(min_value=1, max_value=2))
    layers = []
    current = in_dim
    for layer_index in range(num_layers):
        pattern = draw(st.sampled_from(["AE", "EA", "EAE", "AEE"]))
        out_dim = draw(st.integers(min_value=1, max_value=10))
        mid = draw(st.integers(min_value=1, max_value=10))
        activation = draw(st.sampled_from(["relu", "sigmoid", "none"]))
        concat = draw(st.booleans())
        name = f"rand-l{layer_index}"
        stages: list
        if pattern == "AE":
            stages = [
                draw(random_aggregate_stages(current)),
                ExtractStage(in_dim=current, out_dim=out_dim,
                             activation=activation, concat_self=concat,
                             self_dim=current if concat else 0,
                             name=f"{name}-e0"),
            ]
        elif pattern == "EA":
            stages = [
                ExtractStage(in_dim=current, out_dim=out_dim,
                             activation=activation, name=f"{name}-e0"),
                draw(random_aggregate_stages(out_dim)),
            ]
        elif pattern == "EAE":
            stages = [
                ExtractStage(in_dim=current, out_dim=mid,
                             activation="relu", name=f"{name}-e0"),
                draw(random_aggregate_stages(mid)),
                ExtractStage(in_dim=mid, out_dim=out_dim,
                             activation=activation, concat_self=concat,
                             self_dim=current if concat else 0,
                             name=f"{name}-e1"),
            ]
        else:  # "AEE"
            stages = [
                draw(random_aggregate_stages(current)),
                ExtractStage(in_dim=current, out_dim=mid,
                             activation="relu", name=f"{name}-e0"),
                ExtractStage(in_dim=mid, out_dim=out_dim,
                             activation=activation, name=f"{name}-e1"),
            ]
        layers.append(GNNLayer(name=name, stages=tuple(stages)))
        current = out_dim
    return GNNModel(name="random-model", layers=tuple(layers))


class TestFunctionalEquivalenceProperty:
    """The big one: random workload -> compiled == reference."""

    @SLOW
    @given(graph=random_graphs(),
           network=st.sampled_from(
               ["gcn", "graphsage", "graphsage-pool", "gat", "gin"]),
           block=st.one_of(st.none(), st.integers(min_value=1,
                                                  max_value=16)),
           traversal=st.sampled_from([SRC_STATIONARY, DST_STATIONARY]),
           seed=st.integers(min_value=0, max_value=99))
    def test_compiled_equals_reference(self, graph, network, block,
                                       traversal, seed):
        model = build_network(network, graph.feature_dim, 3, hidden_dim=8)
        params = init_parameters(model, seed=seed)
        config = make_tiny_config(block)
        program = compile_workload(graph, model, config, params=params,
                                   traversal=traversal,
                                   feature_block=block)
        validate_program(program)
        expected = reference_forward(model, graph, params)
        actual = run_functional(program, graph)
        np.testing.assert_allclose(actual, expected, rtol=2e-3, atol=1e-3)


class TestRandomModelProperties:
    """Random *models* (not just zoo networks): lowering round-trips and
    shape invariants hold for any dim-valid stage pipeline."""

    @SLOW
    @given(graph=random_graphs(),
           model_seed=st.integers(min_value=0, max_value=2 ** 16),
           block=st.one_of(st.none(), st.integers(min_value=1,
                                                  max_value=16)),
           traversal=st.sampled_from([SRC_STATIONARY, DST_STATIONARY]),
           data=st.data())
    def test_lowering_round_trips(self, graph, model_seed, block,
                                  traversal, data):
        model = data.draw(random_models())
        if model.in_dim != graph.feature_dim:
            rng = np.random.default_rng(model_seed)
            graph.features = rng.standard_normal(
                (graph.num_nodes, model.in_dim)).astype(np.float32)
        params = init_parameters(model, seed=model_seed % 100)
        program = compile_workload(graph, model, make_tiny_config(block),
                                   params=params, traversal=traversal,
                                   feature_block=block)
        validate_program(program)
        # Round-trip: the program carries the model and per-stage
        # weights of the right shapes.
        assert program.model is model
        for (layer, stage), weights in program.edge_weights.items():
            assert weights.shape == (graph.num_edges,)
            stage_obj = model.layers[layer].stages[stage]
            self_w = program.self_weights[(layer, stage)]
            if stage_obj.include_self:
                assert self_w.shape == (graph.num_nodes,)
            else:
                assert self_w is None
        # Shape invariants: every declared array is (N, dim>0) and the
        # output matches the model's out_dim.
        assert all(dim > 0 for dim in program.arrays.values())
        assert program.arrays[program.output_array] == model.out_dim
        expected = reference_forward(model, graph, params)
        actual = run_functional(program, graph)
        assert actual.shape == (graph.num_nodes, model.out_dim)
        np.testing.assert_allclose(actual, expected, rtol=2e-3, atol=1e-3)


class TestResidencyProperties:
    @settings(max_examples=50, deadline=None)
    @given(capacity=st.integers(min_value=10, max_value=200),
           accesses=st.lists(
               st.tuples(st.integers(min_value=0, max_value=8),
                         st.integers(min_value=1, max_value=10)),
               min_size=1, max_size=60))
    def test_lru_never_exceeds_capacity(self, capacity, accesses):
        from repro.compiler.residency import LruResidency
        lru = LruResidency(capacity)
        for key, size in accesses:
            if size > capacity:
                continue
            lru.access(key, size)
            assert lru.used_bytes <= capacity

    @settings(max_examples=50, deadline=None)
    @given(accesses=st.lists(
        st.tuples(st.integers(min_value=0, max_value=5),
                  st.integers(min_value=0, max_value=3)),
        min_size=1, max_size=40))
    def test_src_buffer_load_iff_key_change(self, accesses):
        from repro.compiler.residency import SrcBufferState
        state = SrcBufferState()
        previous = None
        for interval, block in accesses:
            key = ("h", interval, block)
            loaded = state.access(*key)
            assert loaded == (key != previous)
            previous = key


class TestSemaphoreProperty:
    @settings(max_examples=30, deadline=None)
    @given(initial=st.integers(min_value=1, max_value=4),
           workers=st.integers(min_value=1, max_value=12),
           hold=st.integers(min_value=1, max_value=20))
    def test_concurrency_never_exceeds_credits(self, initial, workers,
                                               hold):
        from repro.sim.kernel import Environment
        from repro.sim.queues import Semaphore
        env = Environment()
        sem = Semaphore(env, initial=initial)
        active = [0]
        peak = [0]

        def worker(env):
            yield sem.wait()
            active[0] += 1
            peak[0] = max(peak[0], active[0])
            yield env.timeout(hold)
            active[0] -= 1
            sem.signal()

        for _ in range(workers):
            env.process(worker(env))
        env.run()
        assert peak[0] <= initial
        assert active[0] == 0


class TestKernelProperties:
    @settings(max_examples=50, deadline=None)
    @given(delays=st.lists(st.integers(min_value=0, max_value=1000),
                           min_size=1, max_size=20))
    def test_clock_reaches_max_delay(self, delays):
        from repro.sim.kernel import Environment
        env = Environment()
        for delay in delays:
            def proc(env, d=delay):
                yield env.timeout(d)
            env.process(proc(env))
        env.run()
        assert env.now == max(delays)

    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(st.floats(min_value=0.01, max_value=1e6),
                           min_size=1, max_size=10))
    def test_geometric_mean_bounds(self, values):
        from repro.eval.harness import geometric_mean
        gm = geometric_mean(values)
        assert min(values) <= gm * (1 + 1e-9)
        assert gm <= max(values) * (1 + 1e-9)
