"""Tests for the persistent compiled-program store and incremental
recompilation (DESIGN.md §6).

Mirrors the ResultCache suite's durability idioms (truncated and
corrupt entries are misses that heal, source edits rotate the key)
and pins the two tentpole guarantees: a warm store means *zero* full
lowerings across fresh harnesses/processes with byte-identical cycles,
and a DSE sweep whose candidates differ mostly in simulate-only knobs
compiles only once per compile-relevant config projection.
"""

from __future__ import annotations

import os
import pickle
import threading

import numpy as np
import pytest

from repro.compiler.lowering import full_lowering_count
from repro.compiler.store import (
    PROGRAM_CACHE_ENV,
    ProgramStore,
    default_program_store,
    program_key_payload,
)
from repro.config.overrides import apply_overrides, compile_relevant_config
from repro.config.platforms import gnnerator_config
from repro.config.workload import WorkloadSpec
from repro.eval.harness import Harness
from repro.graph import datasets as dataset_registry
from repro.graph.datasets import dataset_fingerprint
from repro.graph.partition import plan_shards
from repro.sweep import NullCache, SweepRunner
from repro.sweep.plan import METRIC_DSE, SweepPlan, SweepPoint

TINY_GCN = WorkloadSpec(dataset="tiny", network="gcn", hidden_dim=16)


def fresh_harness(store) -> Harness:
    """A harness modelling a brand-new process: even the dataset memo
    is cold, so its Graph objects (and the per-graph compiler memos
    hanging off them) are fresh."""
    dataset_registry._synthesize.cache_clear()
    return Harness(program_store=store)


def store_key(store: ProgramStore, harness: Harness,
              spec: WorkloadSpec) -> str:
    config, block = harness._resolve_config(spec, None)
    return store.key(program_key_payload(
        dataset_fingerprint=dataset_fingerprint(spec.dataset),
        network=spec.network, hidden_dim=spec.hidden_dim,
        traversal=spec.traversal, feature_block=block,
        params_seed=harness.seed,
        config_projection=compile_relevant_config(config)))


class TestProgramStore:
    def test_warm_store_skips_compile_same_cycles(self, tmp_path):
        store = ProgramStore(tmp_path, code_version="v1")
        cold = fresh_harness(store)
        result_cold = cold.gnnerator_result(TINY_GCN)
        assert store.stats == {"hits": 0, "misses": 1}
        assert len(store) == 1

        lowerings = full_lowering_count()
        warm = fresh_harness(store)
        result_warm = warm.gnnerator_result(TINY_GCN)
        assert full_lowering_count() == lowerings  # zero recompiles
        assert store.stats == {"hits": 1, "misses": 1}
        assert result_warm.cycles == result_cold.cycles
        assert result_warm.seconds == result_cold.seconds

    def test_truncated_entry_is_miss_that_heals(self, tmp_path):
        store = ProgramStore(tmp_path, code_version="v1")
        first = fresh_harness(store)
        result = first.gnnerator_result(TINY_GCN)
        key = store_key(store, first, TINY_GCN)
        path = store._path(key)
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 2])  # killed mid-write

        second = fresh_harness(store)
        healed = second.gnnerator_result(TINY_GCN)
        assert healed.cycles == result.cycles
        assert store.misses == 2  # cold miss + truncated miss
        # The recompile republished a complete entry.
        third = fresh_harness(store)
        assert third.gnnerator_result(TINY_GCN).cycles == result.cycles
        assert store.hits == 1

    def test_corrupt_entry_is_dropped(self, tmp_path):
        store = ProgramStore(tmp_path, code_version="v1")
        harness = fresh_harness(store)
        harness.gnnerator_program(TINY_GCN)
        key = store_key(store, harness, TINY_GCN)
        path = store._path(key)
        path.write_bytes(b"not a pickle")
        assert store.get(key, harness.graph("tiny")) is None
        assert not path.exists()

    def test_get_tolerates_concurrent_removal(self, tmp_path,
                                              monkeypatch):
        """The sibling worker already unlinked the corrupt entry: our
        ``os.remove`` fails, which must still read as a plain miss."""
        import repro.compiler.store as store_module

        store = ProgramStore(tmp_path, code_version="v1")
        harness = fresh_harness(store)
        harness.gnnerator_program(TINY_GCN)
        key = store_key(store, harness, TINY_GCN)
        store._path(key).write_bytes(b"garbage")

        real_remove = os.remove

        def racing_remove(target):
            real_remove(target)
            real_remove(target)  # second unlink raises FileNotFoundError

        monkeypatch.setattr(store_module.os, "remove", racing_remove)
        assert store.get(key, harness.graph("tiny")) is None

    def test_concurrent_writers_last_wins_readable(self, tmp_path):
        store = ProgramStore(tmp_path, code_version="v1")
        harness = fresh_harness(store)
        program = harness.gnnerator_program(TINY_GCN)
        graph = harness.graph("tiny")
        key = store_key(store, harness, TINY_GCN)
        errors = []

        def writer():
            try:
                for _ in range(5):
                    assert store.put(key, program, graph)
                    store.get(key, graph)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        loaded = store.get(key, graph)
        assert loaded is not None
        assert loaded.num_operations == program.num_operations
        # No temp-file litter survives the stampede.
        assert not list(tmp_path.rglob("*.tmp"))

    def test_compiler_source_edit_changes_key(self, tmp_path):
        code = tmp_path / "code"
        code.mkdir()
        module = code / "module.py"
        module.write_text("VALUE = 1\n")
        first = ProgramStore(tmp_path / "store", code_root=code)
        module.write_text("VALUE = 2\n")
        second = ProgramStore(tmp_path / "store", code_root=code)
        assert first.code_version != second.code_version
        payload = program_key_payload(
            dataset_fingerprint="fp", network="gcn", hidden_dim=16,
            traversal="dst", feature_block=64, params_seed=0,
            config_projection=compile_relevant_config(gnnerator_config()))
        assert first.key(payload) != second.key(payload)

    def test_key_ignores_simulate_only_knobs(self):
        store = ProgramStore("unused", code_version="v1")
        base = gnnerator_config(feature_block=64)
        dram_only = apply_overrides(base, {
            "dram.bandwidth_bytes_per_s": 512e9,
            "dram.burst_latency_cycles": 7,
            "graph.frequency_ghz": 1.7,
        })
        compute = apply_overrides(base, {"graph.num_gpes": 16})

        def key_for(config):
            return store.key(program_key_payload(
                dataset_fingerprint="fp", network="gcn", hidden_dim=16,
                traversal="dst", feature_block=64, params_seed=0,
                config_projection=compile_relevant_config(config)))

        assert key_for(base) == key_for(dram_only)
        assert key_for(base) != key_for(compute)

    def test_put_failure_leaves_no_partial_file(self, tmp_path,
                                                monkeypatch):
        import repro.compiler.store as store_module

        store = ProgramStore(tmp_path, code_version="v1")
        harness = fresh_harness(None)
        program = harness.gnnerator_program(TINY_GCN)
        graph = harness.graph("tiny")
        monkeypatch.setattr(store_module.os, "replace",
                            lambda *a: (_ for _ in ()).throw(OSError()))
        assert store.put("ab" * 32, program, graph) is False
        assert len(store) == 0
        assert not list(tmp_path.rglob("*.tmp"))

    def test_refuses_to_cache_foreign_graph(self, tmp_path):
        """A program keyed under the wrong dataset must never be
        persisted — it would deserialize against the wrong graph."""
        store = ProgramStore(tmp_path, code_version="v1")
        harness = fresh_harness(None)
        program = harness.gnnerator_program(TINY_GCN)
        wrong_graph = harness.graph("cora")
        assert store.put("cd" * 32, program, wrong_graph) is False
        assert len(store) == 0

    def test_env_var_controls_default_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv(PROGRAM_CACHE_ENV, str(tmp_path / "ps"))
        store = default_program_store()
        assert store is not None and store.root == tmp_path / "ps"
        assert Harness().program_store.root == tmp_path / "ps"
        for off in ("", "0", "off", "none", " OFF "):
            monkeypatch.setenv(PROGRAM_CACHE_ENV, off)
            assert default_program_store() is None
        monkeypatch.setenv(PROGRAM_CACHE_ENV, "off")
        assert Harness().program_store is None


class TestShardGridPickle:
    def test_roundtrip_rebuilds_sorted_views(self, small_graph,
                                             tiny_config):
        grid = plan_shards(small_graph, tiny_config.graph, block=8)
        clone = pickle.loads(pickle.dumps(grid))
        assert clone.interval_size == grid.interval_size
        assert clone.num_intervals == grid.num_intervals
        np.testing.assert_array_equal(clone._order, grid._order)
        np.testing.assert_array_equal(clone._src_sorted,
                                      grid._src_sorted)
        np.testing.assert_array_equal(clone._dst_sorted,
                                      grid._dst_sorted)
        side = grid.grid_side
        for row in range(side):
            for col in range(side):
                a, b = grid.shard(row, col), clone.shard(row, col)
                assert a.num_edges == b.num_edges
                np.testing.assert_array_equal(a.src, b.src)
                np.testing.assert_array_equal(a.dst, b.dst)


class TestHarnessIncrementalKeying:
    def test_dram_only_variants_share_one_program(self):
        harness = fresh_harness(None)
        base = gnnerator_config(feature_block=TINY_GCN.feature_block)
        before = full_lowering_count()
        p_base = harness.gnnerator_program(TINY_GCN, base)
        variant = apply_overrides(base, {
            "dram.bandwidth_bytes_per_s": 512e9,
            "dram.burst_latency_cycles": 7,
        })
        p_variant = harness.gnnerator_program(TINY_GCN, variant)
        assert p_base is p_variant
        assert full_lowering_count() - before == 1
        # ...and the shared program still simulates each DRAM config
        # with its own coalesced chains.
        r_base = harness.gnnerator_result(TINY_GCN, base)
        r_variant = harness.gnnerator_result(TINY_GCN, variant)
        assert r_base.cycles != r_variant.cycles

    def test_cache_stats_shape(self, tmp_path):
        store = ProgramStore(tmp_path, code_version="v1")
        harness = fresh_harness(store)
        harness.gnnerator_program(TINY_GCN)
        harness.gnnerator_program(TINY_GCN)
        stats = harness.cache_stats()
        assert stats["memo"] == {"hits": 1, "misses": 1}
        assert stats["store"]["misses"] == 1
        assert stats["store"]["root"] == str(tmp_path)
        assert "store" not in fresh_harness(None).cache_stats()


class TestSweepAndDseIntegration:
    def test_jobs_4_workers_share_store_race_safely(self, tmp_path,
                                                    monkeypatch):
        """Eight points sharing one compile key under 4 spawned
        workers: every worker may compile and publish concurrently;
        the run must succeed and leave a healthy, warm store."""
        monkeypatch.setenv(PROGRAM_CACHE_ENV, str(tmp_path / "ps"))
        points = tuple(
            SweepPoint(dataset="tiny", network="gcn", metric=METRIC_DSE,
                       config_overrides=(
                           ("dram.bandwidth_bytes_per_s", bw),))
            for bw in (64e9, 128e9, 192e9, 256e9,
                       320e9, 384e9, 448e9, 512e9))
        result = SweepRunner(jobs=4, cache=NullCache()).run(
            SweepPlan("store-race", points))
        assert result.ok
        cycles = [result.metrics_for(p)["cycles"] for p in points]
        assert len(set(cycles)) > 1  # DRAM knobs did change timing
        store = ProgramStore(tmp_path / "ps")
        assert len(store) == 1  # one compile-relevant projection
        warm = fresh_harness(store)
        warm.gnnerator_program(
            TINY_GCN, gnnerator_config(
                feature_block=TINY_GCN.feature_block))
        assert store.stats == {"hits": 1, "misses": 0}

    def test_dse_200_candidates_at_most_10_lowerings(self, tmp_path,
                                                     monkeypatch):
        """The ISSUE's incremental-recompilation acceptance bar: a
        200-candidate tiny-gcn grid whose knobs are mostly
        simulate-only compiles once per compile-relevant projection
        (here 2 x 2 = 4 times), not once per candidate."""
        from repro.dse import Budget, DseEngine, build_strategy
        from repro.dse.space import DesignSpace, Knob

        monkeypatch.setenv(PROGRAM_CACHE_ENV, str(tmp_path / "ps"))
        space = DesignSpace((
            Knob("dram.bandwidth_bytes_per_s",
                 (128e9, 192e9, 256e9, 384e9, 512e9)),
            Knob("dram.burst_latency_cycles", (25, 50, 100, 200, 400)),
            Knob("dense.rows", (32, 64)),
            Knob("graph.num_gpes", (16, 32)),
            Knob("graph.frequency_ghz", (1.0, 2.0)),
        ))
        assert space.size == 200
        engine = DseEngine(space, build_strategy("grid"), [TINY_GCN],
                           SweepRunner(jobs=1, cache=NullCache()),
                           budget=Budget(), seed=0)
        before = full_lowering_count()
        result = engine.run()
        lowerings = full_lowering_count() - before
        assert len(result.evaluations) == 200
        assert all(e.ok for e in result.evaluations)
        assert result.frontier
        assert lowerings <= 10
        assert lowerings == 4  # exactly one per projection
