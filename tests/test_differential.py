"""Differential harness: compiled runtime == numpy reference, for every
zoo network on every graph shape.

This is the repository's acceptance bar for aggregation semantics: any
network registered in :mod:`repro.models.zoo` is automatically run over
random graphs *and* the degenerate shapes that break naive aggregation
code (isolated nodes, self-loop-only graphs, a single node), with the
compiled, sharded, dimension-blocked runtime compared against
:func:`repro.models.reference.reference_forward` to 1e-5. Adding a new
network to the zoo picks up all of these cases with zero test edits —
replacing the ad-hoc per-model equivalence checks this file supersedes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler.lowering import compile_workload
from repro.compiler.runtime import run_functional
from repro.compiler.validation import validate_program
from repro.config.workload import DST_STATIONARY, SRC_STATIONARY
from repro.graph.generators import erdos_renyi
from repro.graph.graph import Graph
from repro.models.layers import init_parameters
from repro.models.reference import reference_forward
from repro.models.zoo import NETWORK_NAMES, build_network
from tests.conftest import make_tiny_config

#: runtime == reference tolerance (float32 reassociation only).
TOLERANCE = dict(rtol=1e-5, atol=1e-5)

FEATURE_DIM = 9
NUM_CLASSES = 3


def _with_features(graph: Graph, seed: int) -> Graph:
    rng = np.random.default_rng(seed)
    graph.features = rng.standard_normal(
        (graph.num_nodes, FEATURE_DIM)).astype(np.float32)
    return graph


def _isolated_nodes_graph() -> Graph:
    """A sparse cluster plus nodes no edge touches (rows 6..11)."""
    src = [0, 1, 2, 3, 4, 0]
    dst = [1, 2, 3, 4, 5, 5]
    return _with_features(Graph(12, src, dst, name="isolated"), seed=21)


def _self_loop_only_graph() -> Graph:
    """Every edge is a self loop — softmax groups of one, unit shards."""
    loops = np.arange(7, dtype=np.int64)
    return _with_features(Graph(7, loops, loops, name="selfloops"),
                          seed=22)


def _single_node_graph() -> Graph:
    """One node, zero edges — the smallest compilable workload."""
    return _with_features(Graph(1, [], [], name="lonely"), seed=23)


def _random_graph(seed: int) -> Graph:
    sizes = {3: (26, 140), 4: (40, 90), 5: (33, 260)}
    nodes, edges = sizes[seed]
    return erdos_renyi(nodes, edges, feature_dim=FEATURE_DIM, seed=seed)


GRAPH_CASES = {
    "random-0": lambda: _random_graph(3),
    "random-1": lambda: _random_graph(4),
    "random-2": lambda: _random_graph(5),
    "isolated-nodes": _isolated_nodes_graph,
    "self-loops-only": _self_loop_only_graph,
    "single-node": _single_node_graph,
}


@pytest.mark.parametrize("network", NETWORK_NAMES)
@pytest.mark.parametrize("graph_case", sorted(GRAPH_CASES))
class TestDifferential:
    """Every network x every graph shape, blocked + sharded."""

    def _check(self, network: str, graph: Graph, feature_block: int | None,
               traversal: str, seed: int = 7) -> None:
        model = build_network(network, FEATURE_DIM, NUM_CLASSES,
                              hidden_dim=8)
        params = init_parameters(model, seed=seed)
        program = compile_workload(
            graph, model, make_tiny_config(feature_block), params=params,
            traversal=traversal, feature_block=feature_block)
        validate_program(program)
        expected = reference_forward(model, graph, params)
        actual = run_functional(program, graph)
        assert actual.shape == expected.shape
        np.testing.assert_allclose(actual, expected, **TOLERANCE)

    def test_blocked_dst_stationary(self, network, graph_case):
        self._check(network, GRAPH_CASES[graph_case](), feature_block=4,
                    traversal=DST_STATIONARY)

    def test_blocked_src_stationary(self, network, graph_case):
        self._check(network, GRAPH_CASES[graph_case](), feature_block=4,
                    traversal=SRC_STATIONARY)

    def test_unblocked(self, network, graph_case):
        self._check(network, GRAPH_CASES[graph_case](), feature_block=None,
                    traversal=DST_STATIONARY)
