"""Differential harness: compiled runtime == numpy reference, for every
zoo network on every graph shape.

This is the repository's acceptance bar for aggregation semantics: any
network registered in :mod:`repro.models.zoo` is automatically run over
random graphs *and* the degenerate shapes that break naive aggregation
code (isolated nodes, self-loop-only graphs, a single node), with the
compiled, sharded, dimension-blocked runtime compared against
:func:`repro.models.reference.reference_forward` to 1e-5. Adding a new
network to the zoo picks up all of these cases with zero test edits —
replacing the ad-hoc per-model equivalence checks this file supersedes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.accelerator import GNNerator
from repro.compiler.lowering import compile_workload
from repro.compiler.runtime import run_functional
from repro.compiler.validation import validate_program
from repro.config.workload import DST_STATIONARY, SRC_STATIONARY
from repro.graph.generators import erdos_renyi
from repro.graph.graph import Graph
from repro.models.layers import init_parameters
from repro.models.reference import reference_forward
from repro.models.zoo import NETWORK_NAMES, build_network
from tests.conftest import make_tiny_config

#: runtime == reference tolerance (float32 reassociation only).
TOLERANCE = dict(rtol=1e-5, atol=1e-5)

FEATURE_DIM = 9
NUM_CLASSES = 3


def _with_features(graph: Graph, seed: int) -> Graph:
    rng = np.random.default_rng(seed)
    graph.features = rng.standard_normal(
        (graph.num_nodes, FEATURE_DIM)).astype(np.float32)
    return graph


def _isolated_nodes_graph() -> Graph:
    """A sparse cluster plus nodes no edge touches (rows 6..11)."""
    src = [0, 1, 2, 3, 4, 0]
    dst = [1, 2, 3, 4, 5, 5]
    return _with_features(Graph(12, src, dst, name="isolated"), seed=21)


def _self_loop_only_graph() -> Graph:
    """Every edge is a self loop — softmax groups of one, unit shards."""
    loops = np.arange(7, dtype=np.int64)
    return _with_features(Graph(7, loops, loops, name="selfloops"),
                          seed=22)


def _single_node_graph() -> Graph:
    """One node, zero edges — the smallest compilable workload."""
    return _with_features(Graph(1, [], [], name="lonely"), seed=23)


def _edgeless_graph() -> Graph:
    """Many nodes, zero edges — every segment reduction is empty and
    every accumulator must fall back to its init/self term."""
    return _with_features(Graph(10, [], [], name="edgeless"), seed=24)


def _duplicate_edges_graph() -> Graph:
    """A multigraph: repeated (multi-)edges, including a duplicated
    self loop — duplicates must each contribute to sums, softmax
    denominators, and max-reduce segments."""
    src = [0, 0, 0, 1, 1, 2, 2, 2, 3, 3, 4, 4, 4, 5, 5]
    dst = [1, 1, 2, 2, 2, 3, 3, 3, 3, 0, 5, 5, 1, 5, 5]
    return _with_features(Graph(6, src, dst, name="multi"), seed=25)


def _hub_graph() -> Graph:
    """A high-degree hub: every other node feeds node 0 (plus a ring),
    concentrating one destination's edges on a single GPE and one
    accumulator — the worst case for load balance and segment sizes."""
    n = 24
    src = list(range(1, n)) + list(range(n))
    dst = [0] * (n - 1) + [(i + 1) % n for i in range(n)]
    return _with_features(Graph(n, src, dst, name="hub"), seed=26)


def _random_graph(seed: int) -> Graph:
    sizes = {3: (26, 140), 4: (40, 90), 5: (33, 260)}
    nodes, edges = sizes[seed]
    return erdos_renyi(nodes, edges, feature_dim=FEATURE_DIM, seed=seed)


GRAPH_CASES = {
    "random-0": lambda: _random_graph(3),
    "random-1": lambda: _random_graph(4),
    "random-2": lambda: _random_graph(5),
    "isolated-nodes": _isolated_nodes_graph,
    "self-loops-only": _self_loop_only_graph,
    "single-node": _single_node_graph,
    "edgeless": _edgeless_graph,
    "duplicate-edges": _duplicate_edges_graph,
    "hub": _hub_graph,
}


@pytest.mark.parametrize("network", NETWORK_NAMES)
@pytest.mark.parametrize("graph_case", sorted(GRAPH_CASES))
class TestDifferential:
    """Every network x every graph shape, blocked + sharded."""

    def _check(self, network: str, graph: Graph, feature_block: int | None,
               traversal: str, seed: int = 7) -> None:
        model = build_network(network, FEATURE_DIM, NUM_CLASSES,
                              hidden_dim=8)
        params = init_parameters(model, seed=seed)
        program = compile_workload(
            graph, model, make_tiny_config(feature_block), params=params,
            traversal=traversal, feature_block=feature_block)
        validate_program(program)
        expected = reference_forward(model, graph, params)
        actual = run_functional(program, graph)
        assert actual.shape == expected.shape
        np.testing.assert_allclose(actual, expected, **TOLERANCE)

    def test_blocked_dst_stationary(self, network, graph_case):
        self._check(network, GRAPH_CASES[graph_case](), feature_block=4,
                    traversal=DST_STATIONARY)

    def test_blocked_src_stationary(self, network, graph_case):
        self._check(network, GRAPH_CASES[graph_case](), feature_block=4,
                    traversal=SRC_STATIONARY)

    def test_unblocked(self, network, graph_case):
        self._check(network, GRAPH_CASES[graph_case](), feature_block=None,
                    traversal=DST_STATIONARY)


# ---------------------------------------------------------------------
# Large-graph differential: reduced-scale million-edge structure
# ---------------------------------------------------------------------
@pytest.mark.parametrize("network", NETWORK_NAMES)
class TestLargeGraphDifferential:
    """One large-graph case per network at reduced scale.

    The graph is drawn by the same chunked power-law generator that
    synthesises ``flickr``/``reddit-s`` — duplicate multi-edges, hub
    destinations, multi-interval grids under the tiny config — so the
    streamed shard compiler and coalesced simulator face the exact
    structure of the scale-up datasets without their cost. Kept out of
    ``GRAPH_CASES`` so the pinned cycle goldens stay byte-identical.
    """

    def _graph(self) -> Graph:
        from repro.graph.generators import powerlaw_graph

        return powerlaw_graph(350, 2800, feature_dim=FEATURE_DIM,
                              exponent=1.1, seed=13, name="powerlaw-s")

    def test_runtime_matches_reference(self, network):
        graph = self._graph()
        model = build_network(network, FEATURE_DIM, NUM_CLASSES,
                              hidden_dim=8)
        params = init_parameters(model, seed=7)
        program = compile_workload(
            graph, model, make_tiny_config(4), params=params,
            traversal=DST_STATIONARY, feature_block=4)
        validate_program(program)
        # The tiny config must actually shard this graph — otherwise
        # the case exercises nothing the small graphs don't.
        assert max(grid.grid_side for grid in program.grids.values()) > 1
        expected = reference_forward(model, graph, params)
        actual = run_functional(program, graph)
        np.testing.assert_allclose(actual, expected, **TOLERANCE)

    def test_kernels_agree_on_large_structure(self, network):
        graph = self._graph()
        model = build_network(network, FEATURE_DIM, NUM_CLASSES,
                              hidden_dim=8)
        params = init_parameters(model, seed=7)
        accelerator = GNNerator(make_tiny_config(4))
        program = accelerator.compile(graph, model, params=params,
                                      feature_block=4)
        assert accelerator.simulate(program).cycles == \
            accelerator.simulate(program, coalesce=False).cycles


# ---------------------------------------------------------------------
# Cycle goldens: the host-side vectorization must never move a cycle
# ---------------------------------------------------------------------
CYCLE_GOLDEN_PATH = (Path(__file__).parent / "goldens"
                     / "differential_cycles.json")


def _compute_cycles() -> dict:
    """Simulated cycle counts for every (network, graph case) pair,
    blocked and unblocked — integers, compared exactly."""
    payload: dict[str, dict[str, dict[str, int]]] = {}
    for network in NETWORK_NAMES:
        model = build_network(network, FEATURE_DIM, NUM_CLASSES,
                              hidden_dim=8)
        params = init_parameters(model, seed=7)
        payload[network] = {}
        for case in sorted(GRAPH_CASES):
            graph = GRAPH_CASES[case]()
            entry = {}
            for mode, block in (("blocked", 4), ("unblocked", None)):
                accelerator = GNNerator(make_tiny_config(block))
                program = accelerator.compile(graph, model, params=params,
                                              feature_block=block)
                entry[mode] = accelerator.simulate(program).cycles
            payload[network][case] = entry
    return payload


def test_cycles_match_goldens_exactly():
    """Wall-clock optimisations must be cycle-neutral: every (network,
    graph shape) pair's simulated cycle count is pinned exactly."""
    actual = _compute_cycles()
    if os.environ.get("REGEN_GOLDENS"):
        CYCLE_GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        CYCLE_GOLDEN_PATH.write_text(
            json.dumps(actual, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {CYCLE_GOLDEN_PATH}")
    if not CYCLE_GOLDEN_PATH.exists():
        pytest.fail(f"golden file {CYCLE_GOLDEN_PATH} is missing; "
                    f"regenerate with REGEN_GOLDENS=1")
    expected = json.loads(CYCLE_GOLDEN_PATH.read_text())
    drift = []
    for network in sorted(set(expected) | set(actual)):
        exp_net = expected.get(network, {})
        act_net = actual.get(network, {})
        for case in sorted(set(exp_net) | set(act_net)):
            exp_entry = exp_net.get(case)
            act_entry = act_net.get(case)
            if exp_entry != act_entry:
                drift.append(f"{network}/{case}: expected {exp_entry}, "
                             f"got {act_entry}")
    assert not drift, (
        "cycle counts drifted from the goldens (vectorization must "
        "never change cycles, only wall time):\n  " + "\n  ".join(drift)
        + "\n(intentional modelling change? regenerate with "
          "REGEN_GOLDENS=1 and review the JSON diff)")
