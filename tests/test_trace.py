"""Tests for execution tracing and the pipelining claims it verifies."""

import pytest

from repro.accelerator import GNNerator
from repro.graph.generators import erdos_renyi
from repro.models.zoo import build_network
from repro.sim.trace import (
    TraceEvent,
    Tracer,
    overlap_cycles,
    render_gantt,
)
from tests.conftest import make_tiny_config


class TestTracer:
    def test_busy_intervals_merge(self):
        tracer = Tracer()
        tracer.record("u", "a", 0, 10)
        tracer.record("u", "b", 5, 15)
        tracer.record("u", "c", 20, 30)
        assert tracer.busy_intervals("u") == [(0, 15), (20, 30)]

    def test_zero_duration_filtered(self):
        tracer = Tracer()
        tracer.record("u", "stall", 5, 5)
        assert tracer.busy_intervals("u") == []
        assert tracer.first_activity("u") is None

    def test_first_last_activity(self):
        tracer = Tracer()
        tracer.record("u", "a", 3, 7)
        tracer.record("u", "b", 10, 12)
        assert tracer.first_activity("u") == 3
        assert tracer.last_activity("u") == 12

    def test_overlap_cycles(self):
        tracer = Tracer()
        tracer.record("a", "x", 0, 10)
        tracer.record("b", "y", 5, 20)
        assert overlap_cycles(tracer, "a", "b") == 5

    def test_event_duration(self):
        event = TraceEvent(unit="u", label="op", issue=2, complete=9)
        assert event.duration == 7

    def test_render_gantt(self):
        tracer = Tracer()
        tracer.record("alpha", "a", 0, 50)
        tracer.record("beta", "b", 50, 100)
        chart = render_gantt(tracer, width=20)
        lines = chart.splitlines()
        assert len(lines) == 3
        assert "alpha" in lines[1] and "#" in lines[1]

    def test_render_empty(self):
        assert "empty" in render_gantt(Tracer())


class TestPipelineOverlap:
    """The Sec III-C architecture claims, measured from real traces."""

    @pytest.fixture(scope="class")
    def graph(self):
        return erdos_renyi(60, 300, feature_dim=20, seed=5)

    def run_traced(self, graph, network):
        model = build_network(network, 20, 5)
        accelerator = GNNerator(make_tiny_config(8))
        program = accelerator.compile(graph, model)
        tracer = Tracer()
        result = accelerator.simulate(program, tracer=tracer)
        return tracer, result

    def test_graph_first_pipelines_engines(self, graph):
        """GCN (graph-first): the Dense Engine must start consuming
        aggregated blocks before the Graph Engine finishes the model —
        inter-stage parallelism, the controller's whole purpose."""
        tracer, _ = self.run_traced(graph, "gcn")
        dense_start = tracer.first_activity("dense.compute")
        graph_end = tracer.last_activity("graph.compute")
        assert dense_start is not None and graph_end is not None
        assert dense_start < graph_end

    def test_dense_first_order_for_pool(self, graph):
        """GraphSAGE-Pool (dense-first): the Dense Engine produces z
        before the Graph Engine aggregates anything."""
        tracer, _ = self.run_traced(graph, "graphsage-pool")
        dense_start = tracer.first_activity("dense.compute")
        graph_start = tracer.first_activity("graph.compute")
        assert dense_start is not None and graph_start is not None
        assert dense_start <= graph_start

    def test_fetch_overlaps_compute(self, graph):
        """Double buffering: shard prefetch overlaps shard compute."""
        tracer, _ = self.run_traced(graph, "gcn")
        assert overlap_cycles(tracer, "graph.fetch",
                              "graph.compute") > 0

    def test_trace_covers_elapsed_time(self, graph):
        tracer, result = self.run_traced(graph, "gcn")
        horizon = max(e.complete for e in tracer.events)
        assert horizon == result.cycles

    def test_gantt_renders_all_units(self, graph):
        tracer, _ = self.run_traced(graph, "gcn")
        chart = render_gantt(tracer)
        for unit in ("graph.fetch", "graph.compute", "dense.compute"):
            assert unit in chart


class TestTracerEdgeCases:
    def test_touching_intervals_merge(self):
        tracer = Tracer()
        tracer.record("u", "a", 0, 5)
        tracer.record("u", "b", 5, 9)
        assert tracer.busy_intervals("u") == [(0, 9)]

    def test_for_unit_filters(self):
        tracer = Tracer()
        tracer.record("a", "x", 0, 1)
        tracer.record("b", "y", 0, 2)
        assert [e.label for e in tracer.for_unit("a")] == ["x"]
        assert tracer.for_unit("missing") == []

    def test_overlap_of_disjoint_units_is_zero(self):
        tracer = Tracer()
        tracer.record("a", "x", 0, 10)
        tracer.record("b", "y", 10, 20)
        assert overlap_cycles(tracer, "a", "b") == 0
        assert overlap_cycles(tracer, "a", "missing") == 0

    def test_render_zero_length_trace(self):
        tracer = Tracer()
        tracer.record("u", "instant", 0, 0)
        assert "zero-length" in render_gantt(tracer)


class TestTracerTelemetryIntegration:
    """The event-kernel trace and the hardware probe describe the same
    run: tracer compute events reconstruct the probe's busy stream, and
    the trace feeds Perfetto export as labelled slices."""

    def _traced_run(self):
        from repro.obs import HwProbe

        graph = erdos_renyi(40, 160, feature_dim=12, seed=3)
        model = build_network("gcn", 12, 4)
        accelerator = GNNerator(make_tiny_config(8))
        program = accelerator.compile(graph, model)
        tracer = Tracer()
        probe = HwProbe()
        result = accelerator.simulate(program, tracer=tracer,
                                      probe=probe)
        return tracer, probe, result

    def test_trace_and_probe_agree_on_busy_windows(self):
        from collections import Counter

        tracer, probe, result = self._traced_run()
        # Every probe compute window is one retired trace op with the
        # same boundaries (the tracer additionally records DMA, pushes
        # and zero-cycle ops the probe skips).
        traced = Counter((e.unit, e.issue, e.complete)
                         for e in tracer.events)
        probed = Counter(probe.busy)
        assert probed, "probe recorded no compute windows"
        missing = probed - traced
        assert not missing, f"probe windows absent from trace: {missing}"
        # And the probe stream reconstructs the busy accounting.
        busy: dict[str, int] = {}
        for unit, start, end in probe.busy:
            busy[unit] = busy.get(unit, 0) + (end - start)
        for unit, cycles in busy.items():
            assert result.unit_busy_cycles[unit] == cycles

    def test_trace_exports_as_perfetto_slices(self, tmp_path):
        import json

        from repro.obs import validate_trace_events, write_perfetto

        tracer, probe, result = self._traced_run()
        sim_ops = [(e.unit, e.label, e.issue, e.complete)
                   for e in tracer.events]
        out = write_perfetto(tmp_path / "trace.json", probe=probe,
                             sim_ops=sim_ops,
                             frequency_ghz=result.frequency_ghz,
                             total_cycles=result.cycles)
        payload = json.loads(out.read_text())
        assert validate_trace_events(payload) == []
        labels = {e["name"] for e in payload["traceEvents"]
                  if e["ph"] == "X"}
        assert "ShardAggregateOp" in labels and "GemmOp" in labels
