"""Unit tests for the lowering pass (program structure and traffic)."""

import pytest

from repro.compiler.ir import (
    AccumWritebackOp,
    CompileError,
    DmaOp,
    GemmOp,
    InitAccumulatorOp,
    SelfApplyOp,
    ShardAggregateOp,
)
from repro.compiler.lowering import Coverage, compile_workload
from repro.compiler.validation import validate_program
from repro.config.accelerator import ELEM_BYTES
from repro.config.workload import DST_STATIONARY, SRC_STATIONARY
from repro.graph.generators import erdos_renyi
from repro.models.zoo import build_network
from tests.conftest import make_tiny_config


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(60, 300, feature_dim=20, seed=5)


@pytest.fixture(scope="module")
def gcn():
    return build_network("gcn", 20, 5)


class TestCoverage:
    def test_overlap_query(self):
        cover = Coverage(entries=(
            ((0, 10), (0, 4), "t0"),
            ((10, 20), (0, 4), "t1"),
            ((0, 10), (4, 8), "t2"),
        ))
        assert cover.tokens_for((0, 5), (0, 2)) == ("t0",)
        assert cover.tokens_for((5, 15), (0, 4)) == ("t0", "t1")
        assert cover.tokens_for((0, 10), (0, 8)) == ("t0", "t2")
        assert cover.tokens_for((25, 30), (0, 4)) == ()

    def test_boundaries_exclusive(self):
        cover = Coverage(entries=(((0, 10), (0, 4), "t0"),))
        assert cover.tokens_for((10, 20), (0, 4)) == ()
        assert cover.tokens_for((0, 10), (4, 8)) == ()


class TestProgramStructure:
    def test_all_units_populated_for_gcn(self, graph, gcn, tiny_config):
        program = compile_workload(graph, gcn, tiny_config)
        for unit in ("graph.fetch", "graph.compute", "graph.writeback",
                     "dense.fetch", "dense.compute", "dense.store"):
            assert program.queues[unit], f"{unit} queue is empty"

    def test_arrays_declared(self, graph, gcn, tiny_config):
        program = compile_workload(graph, gcn, tiny_config)
        assert program.arrays["h.in"] == 20
        assert program.arrays["l0s0.agg"] == 20
        assert program.arrays["l0s1.out"] == 16
        assert program.output_array == "l1s1.out"

    def test_grids_and_plans_recorded(self, graph, gcn, tiny_config):
        program = compile_workload(graph, gcn, tiny_config)
        assert (0, 0) in program.grids
        assert (0, 0, "main") in program.plans
        assert program.plans[(0, 0, "main")].block == 8

    def test_edge_weights_per_stage(self, graph, gcn, tiny_config):
        program = compile_workload(graph, gcn, tiny_config)
        weights = program.edge_weights[(0, 0)]
        assert weights.shape == (graph.num_edges,)
        assert program.self_weights[(0, 0)] is not None

    def test_validates(self, graph, gcn, tiny_config):
        program = compile_workload(graph, gcn, tiny_config)
        validate_program(program)

    def test_deterministic(self, graph, gcn, tiny_config):
        a = compile_workload(graph, gcn, tiny_config, seed=1)
        b = compile_workload(graph, gcn, tiny_config, seed=1)
        assert a.num_operations == b.num_operations
        assert a.dram_bytes_by_purpose() == b.dram_bytes_by_purpose()


class TestTrafficAccounting:
    def test_src_loads_match_table1_single_block(self, graph, gcn):
        """With one shard grid and unblocked features, source loads must
        equal (S^2 - S + 1) interval loads of B-dim rows (Table I)."""
        config = make_tiny_config(feature_block=None)
        program = compile_workload(graph, gcn, config,
                                   traversal=DST_STATIONARY,
                                   feature_block=None)
        grid = program.grids[(0, 0)]
        side = grid.grid_side
        assert side > 1  # tiny buffers force a real grid
        loads = [op for op in program.order
                 if isinstance(op, DmaOp) and op.purpose == "src-features"
                 and op.array == "h.in"]
        assert len(loads) == side * side - side + 1

    def test_dst_stationary_never_reloads_partials(self, graph, gcn,
                                                   tiny_config):
        program = compile_workload(graph, gcn, tiny_config,
                                   traversal=DST_STATIONARY)
        reloads = [op for op in program.order
                   if isinstance(op, DmaOp)
                   and op.purpose == "dst-partials"]
        assert reloads == []
        partial_spills = [op for op in program.order
                          if isinstance(op, AccumWritebackOp)
                          and op.partial]
        assert partial_spills == []

    def test_src_stationary_spills_and_reloads(self, graph, gcn,
                                               tiny_config):
        program = compile_workload(graph, gcn, tiny_config,
                                   traversal=SRC_STATIONARY)
        spills = [op for op in program.order
                  if isinstance(op, AccumWritebackOp) and op.partial]
        reloads = [op for op in program.order
                   if isinstance(op, DmaOp)
                   and op.purpose == "dst-partials"]
        assert spills and reloads
        # Every reload is covered by an earlier spill of the same bytes.
        assert len(reloads) <= len(spills)

    def test_blocking_reduces_feature_traffic(self, gcn):
        """The headline effect: smaller B -> fewer interval reloads."""
        graph = erdos_renyi(200, 2000, feature_dim=20, seed=7)
        config_b = make_tiny_config(feature_block=4)
        config_n = make_tiny_config(feature_block=None)
        blocked = compile_workload(graph, gcn, config_b, feature_block=4)
        unblocked = compile_workload(graph, gcn, config_n,
                                     feature_block=None)

        def feature_bytes(program):
            return sum(op.num_bytes for op in program.order
                       if isinstance(op, DmaOp)
                       and op.purpose == "src-features")

        assert feature_bytes(blocked) < feature_bytes(unblocked)

    def test_edges_refetched_only_on_eviction(self, graph, gcn):
        config = make_tiny_config(feature_block=8)
        program = compile_workload(graph, gcn, config)
        grid = program.grids[(0, 0)]
        edge_loads = [op for op in program.order
                      if isinstance(op, DmaOp) and op.purpose == "edges"]
        nonempty = len(grid.nonempty_shards())
        # At least one load per non-empty shard; evictions add more.
        assert len(edge_loads) >= nonempty

    def test_weight_loads_cover_all_weights_once_when_resident(
            self, graph, gcn, default_config):
        """With roomy buffers each weight slice loads exactly once."""
        program = compile_workload(graph, gcn, default_config,
                                   feature_block=8)
        weight_bytes = sum(op.num_bytes for op in program.order
                           if isinstance(op, DmaOp)
                           and op.purpose == "weights")
        expected = program.params.total_bytes
        bias_bytes = sum(
            b.nbytes for key in program.params.keys()
            for b in [program.params.bias(*key)] if b is not None)
        assert weight_bytes == expected - bias_bytes


class TestStageLowering:
    def test_self_term_applied_on_diagonal(self, graph, gcn, tiny_config):
        program = compile_workload(graph, gcn, tiny_config)
        self_ops = [op for op in program.order
                    if isinstance(op, SelfApplyOp)]
        grid = program.grids[(0, 0)]
        plan = program.plans[(0, 0, "main")]
        layer0 = [op for op in self_ops if op.layer == 0]
        assert len(layer0) == grid.grid_side * plan.num_blocks

    def test_init_once_per_column_block(self, graph, gcn, tiny_config):
        program = compile_workload(graph, gcn, tiny_config,
                                   traversal=DST_STATIONARY)
        inits = [op for op in program.order
                 if isinstance(op, InitAccumulatorOp) and op.layer == 0]
        grid = program.grids[(0, 0)]
        plan = program.plans[(0, 0, "main")]
        assert len(inits) == grid.grid_side * plan.num_blocks

    def test_pool_network_dense_first(self, graph, tiny_config):
        pool = build_network("graphsage-pool", 20, 5)
        program = compile_workload(graph, pool, tiny_config)
        validate_program(program)
        # Stage 0 extract output feeds stage 1 aggregation.
        assert program.arrays["l0s0.out"] == 16
        assert program.arrays["l0s1.agg"] == 16
        aggs = [op for op in program.order
                if isinstance(op, ShardAggregateOp) and op.layer == 0]
        assert all(op.src_array == "l0s0.out" for op in aggs)

    def test_concat_gemms_split_weight_rows(self, graph, tiny_config):
        sage = build_network("graphsage", 20, 5)
        program = compile_workload(graph, sage, tiny_config)
        gemms = [op for op in program.order
                 if isinstance(op, GemmOp) and op.layer == 0]
        self_parts = [g for g in gemms if g.weight_rows[0] >= 20]
        main_parts = [g for g in gemms if g.weight_rows[1] <= 20]
        assert self_parts and main_parts
        assert all(g.src_array == "h.in" for g in self_parts)
        assert all(g.src_array == "l0s0.agg" for g in main_parts)

    def test_accumulate_flags(self, graph, gcn, tiny_config):
        """Exactly one assigning GEMM per output interval row range."""
        program = compile_workload(graph, gcn, tiny_config)
        first = {}
        for op in program.order:
            if isinstance(op, GemmOp):
                key = (op.layer, op.stage, op.rows)
                if not op.accumulate:
                    assert key not in first, "double assignment"
                    first[key] = op
                else:
                    assert key in first, "accumulate before assign"

    def test_gemm_bytes_match_dims(self, graph, gcn, tiny_config):
        program = compile_workload(graph, gcn, tiny_config)
        for op in program.order:
            if isinstance(op, DmaOp) and op.purpose == "input":
                rows = op.rows[1] - op.rows[0]
                dims = op.dims[1] - op.dims[0]
                assert op.num_bytes == rows * dims * ELEM_BYTES


class TestErrors:
    def test_empty_graph_rejected(self, gcn, tiny_config):
        from repro.graph.graph import Graph
        empty = Graph(0, [], [])
        with pytest.raises(CompileError):
            compile_workload(empty, gcn, tiny_config)

    def test_feature_dim_mismatch(self, graph, tiny_config):
        model = build_network("gcn", 99, 5)
        with pytest.raises(CompileError, match="expects"):
            compile_workload(graph, model, tiny_config)

    def test_weight_row_must_fit(self, graph, tiny_config):
        """A single weight row larger than the weight buffer is fatal."""
        import dataclasses
        config = dataclasses.replace(
            tiny_config,
            dense=dataclasses.replace(tiny_config.dense,
                                      weight_buffer_bytes=8))
        model = build_network("gcn", 20, 5)
        with pytest.raises(CompileError, match="weight"):
            compile_workload(graph, model, config)
