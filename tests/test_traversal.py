"""Unit tests for shard-grid traversal orders and the residency replay.

The key identities (the empirical half of Table I):

* dst-stationary: src loads = S^2 - S + 1, partial reloads = 0,
  writebacks = S;
* src-stationary: src loads = S, partial reloads = (S - 1)^2,
  writebacks = S^2 - S + 1.
"""

import pytest

from repro.config.workload import DST_STATIONARY, SRC_STATIONARY
from repro.graph.graph import GraphError
from repro.graph.traversal import (
    dst_stationary_order,
    serpentine,
    simulate_residency,
    src_stationary_order,
    traversal_order,
)


class TestOrders:
    @pytest.mark.parametrize("side", [1, 2, 3, 5])
    def test_each_cell_visited_once(self, side):
        for order_fn in (src_stationary_order, dst_stationary_order):
            cells = order_fn(side)
            assert len(cells) == side * side
            assert len(set(cells)) == side * side

    def test_src_stationary_rows_contiguous(self):
        order = src_stationary_order(3)
        rows = [row for row, _ in order]
        assert rows == [0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_dst_stationary_cols_contiguous(self):
        order = dst_stationary_order(3)
        cols = [col for _, col in order]
        assert cols == [0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_serpentine_reverses_alternate_rows(self):
        cells = list(serpentine(2, 3))
        assert cells == [(0, 0), (0, 1), (0, 2), (1, 2), (1, 1), (1, 0)]

    def test_s_pattern_boundary_reuse(self):
        """Consecutive shards at a row boundary share the minor index."""
        order = src_stationary_order(4)
        for i in range(len(order) - 1):
            row_a, col_a = order[i]
            row_b, col_b = order[i + 1]
            if row_a != row_b:
                assert col_a == col_b  # the serpentine saving

    def test_dispatch(self):
        assert traversal_order(SRC_STATIONARY, 2) == src_stationary_order(2)
        assert traversal_order(DST_STATIONARY, 2) == dst_stationary_order(2)
        with pytest.raises(GraphError):
            traversal_order("sideways", 2)

    def test_rejects_bad_side(self):
        with pytest.raises(GraphError):
            src_stationary_order(0)
        with pytest.raises(GraphError):
            dst_stationary_order(-1)


class TestResidencyReplay:
    @pytest.mark.parametrize("side", [1, 2, 3, 4, 6, 8])
    def test_dst_stationary_matches_table1(self, side):
        counts = simulate_residency(dst_stationary_order(side), side)
        assert counts.src_loads == side * side - side + 1
        assert counts.dst_loads == 0
        assert counts.dst_stores == side

    @pytest.mark.parametrize("side", [1, 2, 3, 4, 6, 8])
    def test_src_stationary_matches_table1(self, side):
        counts = simulate_residency(src_stationary_order(side), side)
        assert counts.src_loads == side
        assert counts.dst_loads == (side - 1) ** 2
        assert counts.dst_stores == side * side - side + 1

    def test_totals(self):
        counts = simulate_residency(dst_stationary_order(3), 3)
        assert counts.total_reads == counts.src_loads + counts.dst_loads
        assert counts.total_writes == counts.dst_stores

    def test_rejects_out_of_grid(self):
        with pytest.raises(GraphError):
            simulate_residency([(5, 0)], 2)

    def test_every_column_written_back(self):
        """Writebacks must cover all columns regardless of order."""
        for side in (2, 4, 7):
            for order_fn in (src_stationary_order, dst_stationary_order):
                counts = simulate_residency(order_fn(side), side)
                assert counts.dst_stores >= side
