"""Unit tests for the engine cycle models (systolic array, GPEs)."""

import numpy as np
import pytest

from repro.config.accelerator import ConfigError, DenseEngineConfig
from repro.engines.dense.systolic import (
    GemmShape,
    activation_cycles,
    gemm_timing,
    os_gemm_cycles,
    ws_gemm_cycles,
)
from repro.engines.graph.gpe import (
    gpe_edge_distribution,
    gpe_utilization,
    interval_touch_cycles,
    lane_slots,
    max_gpe_edges,
    shard_compute_cycles,
)
from repro.graph.partition import ShardGrid


class TestGemmShapes:
    def test_macs_and_flops(self):
        shape = GemmShape(m=10, k=20, n=5)
        assert shape.macs == 1000 and shape.flops == 2000

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            GemmShape(m=0, k=1, n=1)


class TestWeightStationary:
    def test_single_tile(self):
        # K=64 fits 64 rows, N=16 fits 64 cols -> one tile.
        timing = ws_gemm_cycles(GemmShape(m=1000, k=64, n=16), 64, 64)
        assert timing.tiles == 1
        assert timing.cycles == 64 + 1000 + 64 + 64 - 2

    def test_folds_multiply(self):
        timing = ws_gemm_cycles(GemmShape(m=100, k=130, n=70), 64, 64)
        assert timing.tiles == 3 * 2  # ceil(130/64) * ceil(70/64)

    def test_small_k_underutilises(self):
        """Fig 4's mechanism: B=32 fills half the rows but pays full
        per-tile overheads, so two B=32 passes cost more than one B=64."""
        full = ws_gemm_cycles(GemmShape(m=1000, k=64, n=16), 64, 64)
        half = ws_gemm_cycles(GemmShape(m=1000, k=32, n=16), 64, 64)
        assert 2 * half.cycles > full.cycles
        assert half.utilization < full.utilization

    def test_utilization_bounded(self):
        timing = ws_gemm_cycles(GemmShape(m=10000, k=64, n=64), 64, 64)
        assert 0 < timing.utilization <= 1.0


class TestOutputStationary:
    def test_single_tile(self):
        timing = os_gemm_cycles(GemmShape(m=64, k=500, n=16), 64, 64)
        assert timing.tiles == 1
        assert timing.cycles == 500 + 64 + 64 - 2

    def test_large_k_amortises_fill(self):
        """OS wins the conventional (unblocked) regime: huge K streams
        through pinned outputs."""
        shape = GemmShape(m=64, k=4096, n=16)
        assert (os_gemm_cycles(shape, 64, 64).cycles
                < ws_gemm_cycles(shape, 64, 64).cycles)


class TestAutoDataflow:
    def test_auto_picks_minimum(self):
        config = DenseEngineConfig(dataflow="auto")
        for shape in (GemmShape(m=4096, k=64, n=16),
                      GemmShape(m=64, k=4096, n=16),
                      GemmShape(m=128, k=128, n=128)):
            auto = gemm_timing(shape, config)
            ws = ws_gemm_cycles(shape, config.rows, config.cols)
            os_ = os_gemm_cycles(shape, config.rows, config.cols)
            assert auto.cycles == min(ws.cycles, os_.cycles)

    def test_explicit_dataflows_respected(self):
        shape = GemmShape(m=100, k=100, n=100)
        ws_cfg = DenseEngineConfig(dataflow="ws")
        os_cfg = DenseEngineConfig(dataflow="os")
        assert gemm_timing(shape, ws_cfg).cycles == ws_gemm_cycles(
            shape, 64, 64).cycles
        assert gemm_timing(shape, os_cfg).cycles == os_gemm_cycles(
            shape, 64, 64).cycles

    def test_activation_cycles(self):
        config = DenseEngineConfig()
        assert activation_cycles(100, 16, config) == 100 + 64


class TestGpeModel:
    def test_lane_slots(self):
        assert lane_slots(64, 32) == 2
        assert lane_slots(65, 32) == 3
        assert lane_slots(1, 32) == 1
        assert lane_slots(0, 32) == 0

    def test_distribution_conserves_edges(self, small_graph):
        grid = ShardGrid(small_graph, interval_size=16)
        for shard in grid.nonempty_shards():
            counts = gpe_edge_distribution(shard, 4)
            assert counts.sum() == shard.num_edges

    def test_hub_concentrates_on_one_gpe(self, hub_star):
        """A star graph routes every edge to the hub's GPE — the load
        imbalance the latency model must charge for."""
        grid = ShardGrid(hub_star, interval_size=100)
        shard = grid.nonempty_shards()[0]
        assert max_gpe_edges(shard, 8) == shard.num_edges
        assert gpe_utilization(shard, 8) == pytest.approx(
            np.ceil(shard.num_edges / 8) / shard.num_edges)

    def test_balanced_distribution(self, medium_graph):
        grid = ShardGrid(medium_graph, interval_size=1000)
        shard = grid.nonempty_shards()[0]
        worst = max_gpe_edges(shard, 32)
        ideal = -(-shard.num_edges // 32)
        assert worst >= ideal

    def test_shard_compute_cycles(self, tiny_config):
        config = tiny_config.graph  # 4 GPEs x 4 lanes, depth 4
        assert shard_compute_cycles(0, 8, config) == 0
        assert shard_compute_cycles(10, 8, config) == 4 + 10 * 2

    def test_interval_touch_cycles(self, tiny_config):
        config = tiny_config.graph
        # 100 rows over 4 GPEs = 25 each; width 8 = 2 slots.
        assert interval_touch_cycles(100, 8, config) == 4 + 25 * 2

    def test_empty_shard_distribution(self, small_graph):
        grid = ShardGrid(small_graph, interval_size=16)
        empty = grid.shard(0, 0)
        if empty.num_edges == 0:
            assert gpe_utilization(empty, 4) == 0.0
