"""Hammer tests for the memos the serve daemon shares across request
threads: the Harness compiled-program memo, the per-harness dataset
cache, the per-graph shard-grid memo and the lowering weight memos.

The invariants under concurrency:

* N identical requests → exactly ONE full lowering (the per-key
  compile lock), and everyone gets the *same* Program object.
* N distinct requests → one lowering each, all running in parallel.
* Graph/params objects stay unique per key — the compiler's weight
  memos are WeakKeyDictionaries keyed by *identity*, so a duplicate
  object would silently duplicate work (and, for GAT, the whole
  shadow execution).
* Cycles are bit-identical to a serial run: locking is a host-side
  change and must never move modeled time.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.compiler.lowering import full_lowering_count
from repro.config.workload import WorkloadSpec
from repro.eval.harness import Harness
from repro.sweep.cache import DatasetCache

HAMMER_THREADS = 12


def _hammer(fn, n: int = HAMMER_THREADS) -> list:
    """Run ``fn(i)`` on n threads through a start barrier, so every
    thread hits the guarded section at the same instant."""
    barrier = threading.Barrier(n)
    results: list = [None] * n
    errors: list = []

    def runner(i: int) -> None:
        try:
            barrier.wait(10.0)
            results[i] = fn(i)
        except BaseException as exc:  # surfaced below, with index
            errors.append((i, exc))

    with ThreadPoolExecutor(max_workers=n) as pool:
        list(pool.map(runner, range(n)))
    assert not errors, f"hammer threads failed: {errors}"
    return results


class TestHarnessCompileHammer:
    def test_identical_requests_lower_once(self):
        harness = Harness(program_store=None)
        spec = WorkloadSpec(dataset="tiny", network="gcn")
        before = full_lowering_count()
        programs = _hammer(
            lambda _: harness.gnnerator_program(spec))
        assert full_lowering_count() - before == 1
        # One compilation ⇒ one object: every thread shares it.
        assert all(p is programs[0] for p in programs)
        stats = harness.cache_stats()["memo"]
        assert stats["misses"] == 1
        assert stats["hits"] == HAMMER_THREADS - 1

    def test_distinct_requests_lower_once_each(self):
        harness = Harness(program_store=None)
        blocks = [4, 8, 16, 32]
        specs = [WorkloadSpec(dataset="tiny", network="gcn",
                              feature_block=block)
                 for block in blocks for _ in range(3)]
        before = full_lowering_count()
        programs = _hammer(lambda i: harness.gnnerator_program(specs[i]),
                           n=len(specs))
        assert full_lowering_count() - before == len(blocks)
        by_block: dict[int, set[int]] = {}
        for spec, program in zip(specs, programs):
            by_block.setdefault(spec.feature_block,
                                set()).add(id(program))
        assert all(len(ids) == 1 for ids in by_block.values())

    def test_concurrent_cycles_match_serial_run(self):
        """The §4 invariant under threads: locking changes wall time
        only — concurrent simulations report the exact cycles a fresh
        serial harness computes."""
        spec = WorkloadSpec(dataset="tiny", network="gcn")
        serial = Harness(program_store=None).gnnerator_result(spec)
        harness = Harness(program_store=None)
        results = _hammer(lambda _: harness.gnnerator_result(spec))
        assert {r.cycles for r in results} == {serial.cycles}

    def test_gat_params_identity_preserved(self):
        """params() must hand every thread the same Parameters object:
        the baked-attention memo keys on params identity, so duplicates
        would re-run the GAT shadow execution on a recompile."""
        harness = Harness(program_store=None)
        spec = WorkloadSpec(dataset="tiny", network="gat")
        params = _hammer(lambda _: harness.params(spec))
        assert all(p is params[0] for p in params)


class TestDatasetCacheHammer:
    def test_same_name_loads_once_and_shares_object(self):
        loads: list[str] = []
        load_lock = threading.Lock()

        def loader(name: str):
            with load_lock:
                loads.append(name)
            from repro.graph.datasets import load_dataset

            return load_dataset(name)

        cache = DatasetCache(loader=loader)
        graphs = _hammer(lambda _: cache.get("tiny"))
        assert loads == ["tiny"]
        assert all(g is graphs[0] for g in graphs)

    def test_distinct_names_load_in_parallel(self):
        started = threading.Barrier(2)

        def loader(name: str):
            # Both loads must be in flight at once — a cache-wide lock
            # held across loading would deadlock this barrier.
            started.wait(10.0)
            from repro.graph.datasets import load_dataset

            return load_dataset(name)

        cache = DatasetCache(loader=loader)
        names = ["tiny", "cora"]
        graphs = _hammer(lambda i: cache.get(names[i]), n=2)
        assert graphs[0].name != graphs[1].name


class TestShardGridHammer:
    def test_same_plan_builds_one_grid_object(self, small_graph,
                                              tiny_config):
        from repro.graph.partition import plan_shards

        grids = _hammer(lambda _: plan_shards(small_graph,
                                              tiny_config.graph,
                                              block=8))
        assert all(g is grids[0] for g in grids)


class TestLoweringMemoHammer:
    @pytest.mark.parametrize("network", ["gcn", "gat"])
    def test_independent_harnesses_share_weight_memos_safely(
            self, network):
        """Two harnesses compiling the same dataset concurrently stress
        the module-level weight memos (shared via the common Graph from
        the dataset loader's own cache); cycles must stay identical."""
        spec = WorkloadSpec(dataset="tiny", network=network)
        serial = Harness(program_store=None).gnnerator_result(spec)
        harnesses = [Harness(program_store=None) for _ in range(4)]
        results = _hammer(
            lambda i: harnesses[i % len(harnesses)]
            .gnnerator_result(spec), n=8)
        assert {r.cycles for r in results} == {serial.cycles}
