"""Mutation tests for the repro.analysis verifier pipeline.

Each test breaks one invariant of a freshly compiled program and
asserts that exactly the responsible pass reports it, naming the op —
the machine-checked version of "each pass actually catches the bug
class it claims to".
"""

import pytest

from repro.analysis.verify import (
    VerificationError,
    verify_enabled,
    verify_program,
)
from repro.compiler.ir import (
    AcquireOp,
    DmaOp,
    PopOp,
    PushOp,
    ReleaseOp,
    ShardAggregateOp,
)
from repro.compiler.lowering import compile_workload
from repro.compiler.program import Program
from repro.compiler.validation import validate_program
from repro.graph.generators import erdos_renyi
from repro.models.zoo import build_network
from tests.conftest import make_tiny_config


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(60, 300, feature_dim=20, seed=5)


@pytest.fixture(scope="module")
def gcn():
    return build_network("gcn", 20, 5)


@pytest.fixture()
def compiled(graph, gcn):
    config = make_tiny_config(8)
    return compile_workload(graph, gcn, config), config


def failing(report, name):
    """The named pass's failure text; asserts it is the one failing."""
    result = report.result(name)
    assert not result.ok, f"expected pass {name} to fail"
    return "\n".join(result.failures)


class TestCleanProgram:
    def test_all_passes_green(self, compiled):
        program, config = compiled
        report = verify_program(program, config, workload="tiny-gcn")
        assert report.ok
        assert report.failures == []
        # Green must not be vacuous: every pass saw real work.
        assert report.result("edge-coverage").counts["aggregate_ops"] > 0
        assert report.result("dma-conservation").counts["memory_ops"] > 0
        assert report.result("token-liveness").counts["tokens"] > 0
        assert report.result("schedulability").counts["retired_ops"] > 0
        assert report.result("plan-agreement").counts["chain_actions"] > 0

    def test_describe_and_json_roundtrip(self, compiled):
        program, config = compiled
        report = verify_program(program, config, workload="w")
        assert "w: ok" in report.describe()
        payload = report.to_dict()
        assert payload["status"] == "ok"
        assert [p["name"] for p in payload["passes"]] == [
            "edge-coverage", "dma-conservation", "channel-protocol",
            "token-liveness", "schedulability", "plan-agreement"]


class TestEdgeCoverage:
    def test_catches_wrong_edge_count(self, compiled):
        program, config = compiled
        op = next(op for op in program.order
                  if isinstance(op, ShardAggregateOp))
        op.num_edges += 1
        text = failing(verify_program(program, config), "edge-coverage")
        assert str(op.shard) in text and "grid says" in text

    def test_catches_dropped_shard(self, compiled):
        program, config = compiled
        op = next(op for op in program.order
                  if isinstance(op, ShardAggregateOp))
        program.order.remove(op)
        program.queues[op.unit].remove(op)
        text = failing(verify_program(program, config), "edge-coverage")
        assert "never aggregated" in text

    def test_catches_duplicated_aggregate(self, compiled):
        program, config = compiled
        op = next(op for op in program.order
                  if isinstance(op, ShardAggregateOp))
        program.order.append(op)
        program.queues[op.unit].append(op)
        text = failing(verify_program(program, config), "edge-coverage")
        assert "aggregated 2 times" in text


class TestDmaConservation:
    def test_catches_byte_drift(self, compiled):
        program, config = compiled
        op = next(op for op in program.order if isinstance(op, DmaOp))
        op.num_bytes += 64
        text = failing(verify_program(program, config),
                       "dma-conservation")
        assert "disagrees" in text

    def test_catches_corrupt_plan_counters(self, compiled):
        program, config = compiled
        plan = program.coalesced_plan(config.dram)
        unit = next(u for u, t in plan.dram_traffic.items() if t[0])
        reads, writes, read_tx, write_tx = plan.dram_traffic[unit]
        plan.dram_traffic[unit] = (reads + 1, writes, read_tx, write_tx)
        text = failing(verify_program(program, config),
                       "dma-conservation")
        assert unit in text


class TestChannelProtocol:
    def test_catches_leaked_credit(self, compiled):
        program, config = compiled
        op = next(op for op in program.order
                  if isinstance(op, ReleaseOp))
        program.order.remove(op)
        program.queues[op.unit].remove(op)
        text = failing(verify_program(program, config),
                       "channel-protocol")
        assert "Acquire" in text and "Release" in text

    def test_catches_double_acquire(self, compiled):
        program, config = compiled
        queue = next(q for q in program.queues.values()
                     if any(isinstance(op, AcquireOp) for op in q))
        index, op = next((i, op) for i, op in enumerate(queue)
                         if isinstance(op, AcquireOp))
        queue.insert(index, op)
        program.order.append(op)
        text = failing(verify_program(program, config),
                       "channel-protocol")
        assert "already holding" in text

    def test_catches_pop_release_inversion(self, compiled):
        program, config = compiled
        queue = next(q for q in program.queues.values()
                     if any(isinstance(op, PopOp) for op in q))
        index = next(i for i, op in enumerate(queue)
                     if isinstance(op, PopOp))
        jndex = next(i for i, op in enumerate(queue)
                     if isinstance(op, ReleaseOp))
        queue[index], queue[jndex] = queue[jndex], queue[index]
        text = failing(verify_program(program, config),
                       "channel-protocol")
        assert "without a preceding Pop" in text


class TestTokenLiveness:
    def test_catches_unsignalled_wait(self, compiled):
        program, config = compiled
        program.queues["graph.fetch"][0].add_wait("bogus-token")
        text = failing(verify_program(program, config),
                       "token-liveness")
        assert "bogus-token" in text

    def test_catches_double_signal(self, compiled):
        program, config = compiled
        signaller = next(op for op in program.order if op.signal)
        other = next(op for op in program.order
                     if op is not signaller)
        other.add_signal(signaller.signal[0])
        text = failing(verify_program(program, config),
                       "token-liveness")
        assert "one-shot" in text


class TestSchedulability:
    def test_catches_credit_deadlock(self, compiled):
        program, config = compiled
        releases = [op for op in program.order
                    if isinstance(op, ReleaseOp)
                    and op.channel == "graph"][:2]
        assert len(releases) == 2
        for op in releases:
            program.order.remove(op)
            program.queues[op.unit].remove(op)
        text = failing(verify_program(program, config),
                       "schedulability")
        assert "deadlock" in text

    def test_validate_program_collects_without_raising(self, compiled):
        program, config = compiled
        program.queues["graph.fetch"][0].add_wait("bogus-token")
        report = validate_program(program, raise_on_failure=False)
        assert not report.ok
        assert any("bogus-token" in failure
                   for failure in report.failures)
        # Liveness failures stop abstract scheduling: the scheduler
        # would only re-report the same root cause as a deadlock.
        assert report.retired_ops == 0

    def test_pop_before_push_deadlocks(self):
        program = Program(graph_name="hand", model=None, params=None,
                          traversal="dst", feature_block=None,
                          num_nodes=0)
        program.emit(PopOp(unit="graph.compute", channel="graph"))
        program.emit(AcquireOp(unit="graph.fetch", channel="graph"))
        program.emit(PushOp(unit="graph.fetch", channel="graph"))
        # The consumer's second Pop has no matching Push: its head can
        # never retire once the single descriptor is consumed.
        program.emit(ReleaseOp(unit="graph.compute", channel="graph"))
        program.emit(PopOp(unit="graph.compute", channel="graph"))
        report = validate_program(program, raise_on_failure=False)
        assert not report.ok
        assert any("deadlock" in failure for failure in report.failures)


class TestPlanAgreement:
    def test_catches_corrupt_action(self, compiled):
        program, config = compiled
        plan = program.coalesced_plan(config.dram)
        chain = next(c for c in plan.unit_actions if len(c) > 1)
        chain[0] += 1 << 4  # bump the packed arg, keep the kind
        text = failing(verify_program(program, config),
                       "plan-agreement")
        assert "chain[0]" in text

    def test_catches_token_table_drift(self, compiled):
        program, config = compiled
        plan = program.coalesced_plan(config.dram)
        plan.num_tokens += 1
        text = failing(verify_program(program, config),
                       "plan-agreement")
        assert "interned" in text

    def test_catches_busy_cycle_drift(self, compiled):
        program, config = compiled
        plan = program.coalesced_plan(config.dram)
        unit = next(u for u, c in plan.unit_busy_cycles.items() if c)
        plan.unit_busy_cycles[unit] += 1
        text = failing(verify_program(program, config),
                       "plan-agreement")
        assert "busy" in text and unit in text


class TestDriver:
    def test_raise_on_failure(self, compiled):
        program, config = compiled
        program.queues["graph.fetch"][0].add_wait("bogus-token")
        with pytest.raises(VerificationError, match="bogus-token"):
            verify_program(program, config, workload="broken",
                           raise_on_failure=True)
        try:
            verify_program(program, config, raise_on_failure=True)
        except VerificationError as exc:
            assert not exc.report.ok
            assert exc.report.result("token-liveness").failures

    def test_verify_enabled_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "0")
        assert not verify_enabled()
        monkeypatch.setenv("REPRO_VERIFY", "")
        assert not verify_enabled()
        monkeypatch.setenv("REPRO_VERIFY", "1")
        assert verify_enabled()
        monkeypatch.delenv("REPRO_VERIFY")
        assert not verify_enabled()

    def test_compile_hook_fires(self, graph, gcn, monkeypatch):
        """REPRO_VERIFY makes compile_workload itself verify."""
        monkeypatch.setenv("REPRO_VERIFY", "1")
        calls = []
        import repro.analysis.verify as verify_mod
        real = verify_mod.verify_program
        monkeypatch.setattr(
            verify_mod, "verify_program",
            lambda *args, **kwargs: (calls.append(args),
                                     real(*args, **kwargs))[1])
        compile_workload(graph, gcn, make_tiny_config(8))
        assert calls
