"""Tests for static validation and the top-level timing simulation."""

import dataclasses

import pytest

from repro.accelerator import GNNerator
from repro.compiler.ir import ReleaseOp
from repro.compiler.lowering import compile_workload
from repro.compiler.validation import (
    ValidationError,
    validate_program,
)
from repro.config.workload import DST_STATIONARY, SRC_STATIONARY
from repro.engines.executor import DeadlockError
from repro.graph.generators import erdos_renyi
from repro.models.zoo import build_network
from tests.conftest import make_tiny_config


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(60, 300, feature_dim=20, seed=5)


@pytest.fixture(scope="module")
def gcn():
    return build_network("gcn", 20, 5)


class TestValidation:
    def test_compiled_programs_validate(self, graph, gcn):
        for traversal in (DST_STATIONARY, SRC_STATIONARY):
            program = compile_workload(graph, gcn,
                                       make_tiny_config(8),
                                       traversal=traversal)
            report = validate_program(program)
            assert report.retired_ops == sum(
                len(q) for q in program.queues.values())

    def test_channel_depth_bounded_by_credits(self, graph, gcn):
        program = compile_workload(graph, gcn, make_tiny_config(8))
        report = validate_program(program)
        for depth in report.max_channel_depth.values():
            assert depth <= 2

    def test_unsignalled_token_detected(self, graph, gcn):
        program = compile_workload(graph, gcn, make_tiny_config(8))
        program.queues["graph.fetch"][0].add_wait("never-signalled")
        with pytest.raises(ValidationError, match="never-signalled"):
            validate_program(program)

    def test_credit_deadlock_detected(self, graph, gcn):
        """Leaking both buffer credits starves Acquire -> deadlock.

        (Leaking one merely degrades double- to single-buffering, which
        still schedules — also asserted here.)
        """
        program = compile_workload(graph, gcn, make_tiny_config(8))
        queue = program.queues["graph.compute"]
        indices = [i for i, op in enumerate(queue)
                   if isinstance(op, ReleaseOp)][:2]
        assert len(indices) == 2
        first = queue.pop(indices[0])
        validate_program(program)  # one leaked credit still schedules
        second = queue.pop(indices[1] - 1)
        try:
            with pytest.raises(ValidationError, match="deadlock"):
                validate_program(program)
        finally:
            queue.insert(indices[1] - 1, second)
            queue.insert(indices[0], first)


class TestSimulation:
    def test_runs_and_reports(self, graph, gcn):
        accelerator = GNNerator(make_tiny_config(8))
        result = accelerator.run(graph, gcn)
        assert result.cycles > 0
        assert result.seconds == result.cycles / 1e9
        assert result.num_operations > 0
        assert 0 < result.dram_utilization <= 1.0

    def test_dram_bytes_match_program(self, graph, gcn):
        config = make_tiny_config(8)
        accelerator = GNNerator(config)
        program = accelerator.compile(graph, gcn)
        result = accelerator.simulate(program)
        assert result.total_dram_bytes == program.total_dram_bytes

    def test_unit_busy_bounded_by_elapsed(self, graph, gcn):
        result = GNNerator(make_tiny_config(8)).run(graph, gcn)
        for unit in result.unit_busy_cycles:
            assert result.utilization(unit) <= 1.0

    def test_deterministic(self, graph, gcn):
        config = make_tiny_config(8)
        a = GNNerator(config).run(graph, gcn)
        b = GNNerator(config).run(graph, gcn)
        assert a.cycles == b.cycles

    def test_traversals_differ_in_time(self, graph, gcn):
        config = make_tiny_config(8)
        dst = GNNerator(config).run(graph, gcn, traversal=DST_STATIONARY)
        src = GNNerator(config).run(graph, gcn, traversal=SRC_STATIONARY)
        # dst-stationary moves strictly less data on this workload.
        assert dst.total_dram_bytes < src.total_dram_bytes

    def test_corrupted_program_deadlocks(self, graph, gcn):
        config = make_tiny_config(8)
        accelerator = GNNerator(config)
        program = accelerator.compile(graph, gcn)
        program.queues["dense.fetch"][0].add_wait("never")
        # Mutating a compiled program violates its immutability contract;
        # drop the precompiled simulation plan so both kernels see the
        # corruption.
        program._coalesced_plans.clear()
        with pytest.raises(DeadlockError):
            accelerator.simulate(program)
        with pytest.raises(DeadlockError):
            accelerator.simulate(program, coalesce=False)

    def test_compute_cycles_lower_bound(self, graph, gcn):
        """Elapsed time can't beat the busiest unit's serial work."""
        config = make_tiny_config(8)
        accelerator = GNNerator(config)
        program = accelerator.compile(graph, gcn)
        result = accelerator.simulate(program)
        serial = program.compute_cycles_by_unit()
        assert result.cycles >= max(serial.values())

    def test_describe(self, graph, gcn):
        result = GNNerator(make_tiny_config(8)).run(graph, gcn)
        text = result.describe()
        assert "cycles" in text and "DRAM" in text

    def test_faster_dram_reduces_cycles(self, graph, gcn):
        config = make_tiny_config(8)
        fast = dataclasses.replace(config, dram=config.dram.scaled(4))
        slow_result = GNNerator(config).run(graph, gcn)
        fast_result = GNNerator(fast).run(graph, gcn)
        assert fast_result.cycles < slow_result.cycles

    def test_default_config_used_when_none(self):
        accelerator = GNNerator()
        assert accelerator.config.feature_block == 64
