"""Direct tests for the controller, unit executor, engine wrappers,
and the area model."""

import pytest

from repro.compiler.ir import (
    AccumWritebackOp,
    AcquireOp,
    DmaOp,
    InitAccumulatorOp,
    PopOp,
    PushOp,
    ReleaseOp,
)
from repro.config.accelerator import (
    DenseEngineConfig,
    DramConfig,
    GNNeratorConfig,
    GraphEngineConfig,
)
from repro.engines.controller import Controller
from repro.engines.dense.engine import DenseEngine
from repro.engines.executor import unit_process
from repro.engines.graph.engine import GraphEngine
from repro.eval.area import gnnerator_area, hygcn_area
from repro.sim.kernel import Environment, SimulationError
from repro.sim.memory import BusyTracker, DramChannel


def make_rig():
    env = Environment()
    controller = Controller(env)
    dram = DramChannel(env, DramConfig(bandwidth_bytes_per_s=256e9,
                                       burst_latency_cycles=0))
    return env, controller, dram


class TestController:
    def test_channels_and_credits_exist(self):
        env = Environment()
        controller = Controller(env)
        for channel in ("graph", "dense"):
            assert controller.credit(channel).count == 2
            assert len(controller.channel(channel)) == 0

    def test_unknown_channel(self):
        controller = Controller(Environment())
        with pytest.raises(SimulationError):
            controller.credit("mystery")
        with pytest.raises(SimulationError):
            controller.channel("mystery")

    def test_rejects_zero_credits(self):
        with pytest.raises(SimulationError):
            Controller(Environment(), credits=0)


class TestUnitExecutor:
    def test_compute_op_occupies_unit(self):
        env, controller, dram = make_rig()
        tracker = BusyTracker()
        op = InitAccumulatorOp(unit="graph.compute", layer=0, stage=0,
                               rows=(0, 4), dims=(0, 4), acc_array="a",
                               src_array="", mode="zero", cycles=25)
        env.process(unit_process(env, "graph.compute", [op], controller,
                                 dram, tracker))
        env.run()
        assert env.now == 25
        assert tracker.busy_cycles == 25

    def test_dma_ops_use_channel(self):
        env, controller, dram = make_rig()
        ops = [
            DmaOp(unit="graph.fetch", direction="load", num_bytes=2560,
                  array="x", rows=(0, 1), dims=(0, 1), purpose="edges"),
            AccumWritebackOp(unit="graph.fetch", layer=0, stage=0,
                             rows=(0, 1), dims=(0, 1), acc_array="a",
                             num_bytes=2560, partial=False),
        ]
        env.process(unit_process(env, "graph.fetch", ops, controller,
                                 dram, BusyTracker()))
        env.run()
        assert env.now == 20  # 2 x 10 cycles at 256 B/cycle
        assert dram.counter("graph.fetch").read_bytes == 2560
        assert dram.counter("graph.fetch").write_bytes == 2560

    def test_token_stall(self):
        env, controller, dram = make_rig()
        op = InitAccumulatorOp(unit="graph.compute", layer=0, stage=0,
                               rows=(0, 4), dims=(0, 4), acc_array="a",
                               src_array="", mode="zero", cycles=5,
                               wait=("go",))

        def signaller(env):
            yield env.timeout(100)
            controller.signal("go")

        env.process(unit_process(env, "graph.compute", [op], controller,
                                 dram, BusyTracker()))
        env.process(signaller(env))
        env.run()
        assert env.now == 105

    def test_credit_handoff_between_units(self):
        """Acquire/Push on one unit pairs with Pop/Release on another."""
        env, controller, dram = make_rig()
        fetch_ops = [
            AcquireOp(unit="graph.fetch", channel="graph"),
            DmaOp(unit="graph.fetch", direction="load", num_bytes=256,
                  array="x", rows=(0, 1), dims=(0, 1), purpose="edges"),
            PushOp(unit="graph.fetch", channel="graph"),
        ]
        compute_ops = [
            PopOp(unit="graph.compute", channel="graph"),
            InitAccumulatorOp(unit="graph.compute", layer=0, stage=0,
                              rows=(0, 4), dims=(0, 4), acc_array="a",
                              src_array="", mode="zero", cycles=7),
            ReleaseOp(unit="graph.compute", channel="graph"),
        ]
        f = env.process(unit_process(env, "graph.fetch", fetch_ops,
                                     controller, dram, BusyTracker()))
        c = env.process(unit_process(env, "graph.compute", compute_ops,
                                     controller, dram, BusyTracker()))
        env.run()
        assert f.triggered and c.triggered
        assert env.now == 8  # 1 cycle DMA + 7 compute
        assert controller.credit("graph").count == 2  # restored

    def test_signal_after_completion(self):
        env, controller, dram = make_rig()
        producer = DmaOp(unit="graph.fetch", direction="load",
                         num_bytes=256, array="x", rows=(0, 1),
                         dims=(0, 1), purpose="edges", signal=("done",))
        consumer = InitAccumulatorOp(
            unit="dense.compute", layer=0, stage=0, rows=(0, 4),
            dims=(0, 4), acc_array="a", src_array="", mode="zero",
            cycles=3, wait=("done",))
        env.process(unit_process(env, "graph.fetch", [producer],
                                 controller, dram, BusyTracker()))
        env.process(unit_process(env, "dense.compute", [consumer],
                                 controller, dram, BusyTracker()))
        env.run()
        assert env.now == 4


class TestEngineWrappers:
    def test_empty_queues_finish_immediately(self):
        env, controller, dram = make_rig()
        graph_engine = GraphEngine(env, GraphEngineConfig(), controller,
                                   dram)
        dense_engine = DenseEngine(env, DenseEngineConfig(), controller,
                                   dram)
        graph_engine.launch({})
        dense_engine.launch({})
        env.run()
        assert graph_engine.finished() and dense_engine.finished()
        assert graph_engine.compute_busy_cycles == 0
        assert dense_engine.compute_busy_cycles == 0


class TestAreaModel:
    def test_gnnerator_matches_table4(self):
        """The paper reports 14.5 mm²; the model should land within
        ~10% for the default configuration."""
        report = gnnerator_area()
        assert report.total_mm2 == pytest.approx(14.5, rel=0.10)

    def test_hygcn_smaller_than_gnnerator(self):
        assert hygcn_area().total_mm2 < gnnerator_area().total_mm2

    def test_sram_dominates(self):
        report = gnnerator_area()
        assert report.sram_mm2 > report.dense_macs_mm2

    def test_scaling_area(self):
        big = GNNeratorConfig(dense=DenseEngineConfig().scaled(2))
        assert gnnerator_area(big).total_mm2 > gnnerator_area().total_mm2

    def test_describe(self):
        assert "mm^2" in gnnerator_area().describe()
