"""Functional-equivalence tests: compiled programs vs the reference.

This is the repository's central invariant (DESIGN.md §5.3): sharded,
dimension-blocked, partial-sum-spilled execution must reproduce the
plain numpy reference to float tolerance for every network, traversal
order, and block size.
"""

import numpy as np
import pytest

from repro.compiler.lowering import compile_workload
from repro.compiler.runtime import (
    FunctionalState,
    run_functional,
    run_functional_with_state,
)
from repro.compiler.validation import validate_program
from repro.config.workload import DST_STATIONARY, SRC_STATIONARY
from repro.graph.generators import erdos_renyi, star_graph
from repro.models.layers import init_parameters
from repro.models.reference import reference_forward
from repro.models.stages import (
    AggregateStage,
    ExtractStage,
    GNNLayer,
    GNNModel,
)
from repro.models.zoo import build_network
from tests.conftest import make_tiny_config

NETWORKS = ("gcn", "graphsage", "graphsage-pool")
TRAVERSALS = (DST_STATIONARY, SRC_STATIONARY)


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(60, 400, feature_dim=20, seed=5)


def assert_equivalent(graph, model, config, traversal, block,
                      atol=2e-4):
    params = init_parameters(model, seed=2)
    expected = reference_forward(model, graph, params)
    program = compile_workload(graph, model, config, params=params,
                               traversal=traversal, feature_block=block)
    validate_program(program)
    actual = run_functional(program, graph)
    np.testing.assert_allclose(actual, expected, rtol=1e-3, atol=atol)


class TestEquivalenceMatrix:
    @pytest.mark.parametrize("network", NETWORKS)
    @pytest.mark.parametrize("traversal", TRAVERSALS)
    @pytest.mark.parametrize("block", [8, 3, None])
    def test_tiny_buffers(self, graph, network, traversal, block):
        """Multi-shard grids, spills, evictions — the hard regime."""
        model = build_network(network, 20, 5)
        assert_equivalent(graph, model, make_tiny_config(block),
                          traversal, block)

    @pytest.mark.parametrize("network", NETWORKS)
    def test_full_size_buffers(self, graph, network, default_config):
        model = build_network(network, 20, 5)
        assert_equivalent(graph, model, default_config, DST_STATIONARY, 8)

    def test_three_layer_network(self, graph):
        model = build_network("gcn", 20, 5, num_hidden_layers=2)
        assert_equivalent(graph, model, make_tiny_config(8),
                          DST_STATIONARY, 8)

    def test_hub_graph(self):
        """Star graph: one destination receives every edge."""
        graph = star_graph(50, feature_dim=12, seed=3)
        model = build_network("graphsage", 12, 3)
        assert_equivalent(graph, model, make_tiny_config(4),
                          DST_STATIONARY, 4)

    def test_max_without_self_fixup(self, graph):
        """Non-self max aggregation exercises the -inf writeback fixup."""
        layer = GNNLayer(stages=(
            AggregateStage(dim=20, reduce="max", include_self=False),
            ExtractStage(in_dim=20, out_dim=4, activation="none"),
        ))
        model = GNNModel(name="maxns", layers=(layer,))
        assert_equivalent(graph, model, make_tiny_config(8),
                          DST_STATIONARY, 8)

    def test_block_of_one(self, graph):
        model = build_network("gcn", 20, 3)
        assert_equivalent(graph, model, make_tiny_config(1),
                          DST_STATIONARY, 1)


class TestFunctionalState:
    def test_arrays_initialised(self, graph, default_config):
        model = build_network("gcn", 20, 5)
        program = compile_workload(graph, model, default_config)
        state = FunctionalState(program, graph)
        assert np.array_equal(state.arrays["h.in"], graph.features)
        assert (state.arrays["l0s0.agg"] == 0).all()

    def test_graph_size_mismatch_rejected(self, graph, default_config):
        model = build_network("gcn", 20, 5)
        program = compile_workload(graph, model, default_config)
        other = erdos_renyi(10, 20, feature_dim=20, seed=1)
        from repro.compiler.ir import CompileError
        with pytest.raises(CompileError):
            FunctionalState(program, other)

    def test_with_state_exposes_intermediates(self, graph, default_config):
        model = build_network("gcn", 20, 5)
        params = init_parameters(model, seed=2)
        program = compile_workload(graph, model, default_config,
                                   params=params)
        state = run_functional_with_state(program, graph)
        from repro.models.reference import layer_intermediates
        expected = layer_intermediates(model, graph, params)
        np.testing.assert_allclose(state.arrays["l0s1.out"], expected[0],
                                   rtol=1e-3, atol=2e-4)
