"""Unit tests for the stage IR, layers, and the three networks."""

import numpy as np
import pytest

from repro.graph.graph import Graph
from repro.models.gcn import gcn_layer
from repro.models.graphsage import graphsage_layer
from repro.models.graphsage_pool import graphsage_pool_layer
from repro.models.layers import (
    Parameters,
    apply_activation,
    dense_forward,
    glorot_uniform,
    init_parameters,
    relu,
    sigmoid,
)
from repro.models.stages import (
    AggregateStage,
    ExtractStage,
    GNNLayer,
    GNNModel,
    ModelError,
)
from repro.models.zoo import build_network, layer_factory, network_table


def simple_graph() -> Graph:
    # 0 -> 2, 1 -> 2, 2 -> 0 ; in-degrees: [1, 0, 2]
    g = Graph(3, [0, 1, 2], [2, 2, 0])
    g.features = np.arange(12, dtype=np.float32).reshape(3, 4)
    return g


class TestAggregateStage:
    def test_validation(self):
        with pytest.raises(ModelError):
            AggregateStage(dim=0)
        with pytest.raises(ModelError):
            AggregateStage(dim=4, reduce="median")
        with pytest.raises(ModelError):
            AggregateStage(dim=4, normalization="bad")
        with pytest.raises(ModelError):
            AggregateStage(dim=4, reduce="max", normalization="mean")

    def test_mean_weights(self):
        g = simple_graph()
        stage = AggregateStage(dim=4, normalization="mean")
        weights = stage.edge_weights(g)
        # Destination 2 has indeg 2 -> w = 1/(2+1); destination 0 indeg 1.
        assert weights[0] == pytest.approx(1 / 3)
        assert weights[2] == pytest.approx(1 / 2)
        self_w = stage.self_weights(g)
        assert self_w[2] == pytest.approx(1 / 3)

    def test_sym_weights(self):
        g = simple_graph()
        stage = AggregateStage(dim=4, normalization="sym")
        weights = stage.edge_weights(g)
        # Edge 0->2: d̂(0)=2, d̂(2)=3 -> 1/sqrt(6).
        assert weights[0] == pytest.approx(1 / np.sqrt(6))
        self_w = stage.self_weights(g)
        assert self_w[0] == pytest.approx(1 / 2)

    def test_unit_weights(self):
        g = simple_graph()
        stage = AggregateStage(dim=4, reduce="max")
        assert (stage.edge_weights(g) == 1.0).all()
        assert (stage.self_weights(g) == 1.0).all()

    def test_no_self(self):
        stage = AggregateStage(dim=4, include_self=False)
        assert stage.self_weights(simple_graph()) is None


class TestEpsilonSelfScale:
    def test_epsilon_scales_self_weight(self):
        g = simple_graph()
        stage = AggregateStage(dim=4, epsilon=0.25)
        np.testing.assert_allclose(stage.self_weights(g), 1.25)
        assert (stage.edge_weights(g) == 1.0).all()  # edges unaffected

    def test_epsilon_validation(self):
        with pytest.raises(ModelError):
            AggregateStage(dim=4, epsilon=0.1, normalization="mean")
        with pytest.raises(ModelError):
            AggregateStage(dim=4, epsilon=0.1, reduce="max")
        with pytest.raises(ModelError):
            AggregateStage(dim=4, epsilon=0.1, include_self=False)


class TestAttentionWeights:
    def _attention(self, dim=4, seed=0):
        rng = np.random.default_rng(seed)
        return rng.standard_normal(dim), rng.standard_normal(dim)

    def test_validation(self):
        with pytest.raises(ModelError):
            AggregateStage(dim=4, weighting="softmax")
        with pytest.raises(ModelError):
            AggregateStage(dim=4, weighting="attention", reduce="max")
        with pytest.raises(ModelError):
            AggregateStage(dim=4, weighting="attention",
                           normalization="sym")
        with pytest.raises(ModelError):
            AggregateStage(dim=4, weighting="attention", epsilon=0.5)
        with pytest.raises(ModelError):
            AggregateStage(dim=4, leaky_slope=1.5)

    def test_static_accessors_refuse_attention(self):
        stage = AggregateStage(dim=4, weighting="attention")
        with pytest.raises(ModelError, match="features"):
            stage.edge_weights(simple_graph())
        with pytest.raises(ModelError, match="features"):
            stage.self_weights(simple_graph())
        with pytest.raises(ModelError, match="features"):
            stage.compute_weights(simple_graph())

    def test_softmax_normalised_per_destination(self):
        g = simple_graph()
        stage = AggregateStage(dim=4, weighting="attention")
        edge_w, self_w = stage.compute_weights(
            g, features=g.features, attention=self._attention())
        totals = np.zeros(g.num_nodes)
        np.add.at(totals, g.dst, edge_w.astype(np.float64))
        totals += self_w
        np.testing.assert_allclose(totals, 1.0, atol=1e-6)
        assert (edge_w > 0).all() and (self_w > 0).all()

    def test_isolated_node_without_self(self):
        # Node 1 has no in-edges; without a self term its softmax group
        # is empty and it simply receives nothing (weight bookkeeping
        # must not divide by zero).
        g = simple_graph()
        stage = AggregateStage(dim=4, weighting="attention",
                               include_self=False)
        edge_w, self_w = stage.compute_weights(
            g, features=g.features, attention=self._attention())
        assert self_w is None
        assert np.isfinite(edge_w).all()
        totals = np.zeros(g.num_nodes)
        np.add.at(totals, g.dst, edge_w.astype(np.float64))
        np.testing.assert_allclose(totals[[0, 2]], 1.0, atol=1e-6)
        assert totals[1] == 0.0

    def test_extreme_logits_stay_finite(self):
        # Softmax stability: huge feature magnitudes must not overflow.
        g = simple_graph()
        g.features = g.features * 1e4
        stage = AggregateStage(dim=4, weighting="attention")
        edge_w, self_w = stage.compute_weights(
            g, features=g.features, attention=self._attention())
        assert np.isfinite(edge_w).all() and np.isfinite(self_w).all()

    def test_shape_mismatch_errors(self):
        g = simple_graph()
        stage = AggregateStage(dim=4, weighting="attention")
        with pytest.raises(ModelError, match="shape"):
            stage.compute_weights(g, features=g.features[:, :2],
                                  attention=self._attention())
        with pytest.raises(ModelError, match="attention vectors"):
            stage.compute_weights(g, features=g.features,
                                  attention=self._attention(dim=3))

    def test_init_parameters_creates_attention_vectors(self):
        model = build_network("gat", 6, 3, hidden_dim=5)
        params = init_parameters(model, seed=4)
        # One attention pair per layer (stage 1 of each GAT layer).
        assert params.attention_keys() == [(0, 1), (1, 1)]
        a_src, a_dst = params.attention(0, 1)
        assert a_src.shape == (5,) and a_dst.shape == (5,)
        with pytest.raises(ModelError, match="attention"):
            params.attention(0, 0)
        assert params.total_bytes > 0


class TestExtractStage:
    def test_weight_shape_plain(self):
        stage = ExtractStage(in_dim=8, out_dim=3)
        assert stage.weight_shape == (8, 3)

    def test_weight_shape_concat(self):
        stage = ExtractStage(in_dim=8, out_dim=3, concat_self=True,
                             self_dim=5)
        assert stage.weight_in_dim == 13

    def test_flops(self):
        stage = ExtractStage(in_dim=8, out_dim=3)
        assert stage.flops(10) == 2 * 10 * 8 * 3

    def test_validation(self):
        with pytest.raises(ModelError):
            ExtractStage(in_dim=0, out_dim=1)
        with pytest.raises(ModelError):
            ExtractStage(in_dim=1, out_dim=1, activation="tanh")
        with pytest.raises(ModelError):
            ExtractStage(in_dim=1, out_dim=1, concat_self=True)
        with pytest.raises(ModelError):
            ExtractStage(in_dim=1, out_dim=1, self_dim=4)


class TestLayersAndModels:
    def test_layer_dim_chaining(self):
        with pytest.raises(ModelError, match="mismatch"):
            GNNLayer(stages=(AggregateStage(dim=4),
                             ExtractStage(in_dim=5, out_dim=2)))

    def test_model_dim_chaining(self):
        layer_a = gcn_layer(4, 8)
        layer_b = gcn_layer(16, 2)
        with pytest.raises(ModelError, match="mismatch"):
            GNNModel(name="bad", layers=(layer_a, layer_b))

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            GNNLayer(stages=())
        with pytest.raises(ModelError):
            GNNModel(name="empty", layers=())

    def test_producer_order(self):
        assert gcn_layer(4, 2).producer == "graph"
        assert graphsage_layer(4, 2).producer == "graph"
        assert graphsage_pool_layer(4, 2).producer == "dense"

    def test_gcn_layer_structure(self):
        layer = gcn_layer(8, 3)
        agg, ext = layer.stages
        assert agg.normalization == "sym" and agg.include_self
        assert ext.weight_shape == (8, 3)

    def test_graphsage_concat(self):
        layer = graphsage_layer(8, 3)
        ext = layer.stages[1]
        assert ext.concat_self and ext.weight_in_dim == 16

    def test_pool_three_stages(self):
        layer = graphsage_pool_layer(8, 3)
        assert len(layer.stages) == 3
        assert layer.stages[1].reduce == "max"
        # Final linear combines pooled (3) with raw input (8).
        assert layer.stages[2].weight_in_dim == 11


class TestZoo:
    @pytest.mark.parametrize(
        "name", ["gcn", "graphsage", "graphsage-pool", "gat", "gin"])
    def test_build_network_dims(self, name):
        model = build_network(name, 32, 5, hidden_dim=16)
        assert model.num_layers == 2
        assert model.in_dim == 32 and model.out_dim == 5

    def test_hidden_layers_stackable(self):
        model = build_network("gcn", 32, 5, num_hidden_layers=3)
        assert model.num_layers == 4

    def test_output_layer_has_no_activation(self):
        model = build_network("gcn", 32, 5)
        assert model.layers[-1].extract_stages[-1].activation == "none"

    def test_unknown_network(self):
        with pytest.raises(ModelError, match="gcn"):
            layer_factory("transformer")

    def test_bad_dims(self):
        with pytest.raises(ModelError):
            build_network("gcn", 0, 5)
        with pytest.raises(ModelError):
            build_network("gcn", 4, 5, num_hidden_layers=-1)

    def test_network_table(self):
        rows = network_table()
        assert [r["Network"] for r in rows] == [
            "GCN", "Graphsage", "GraphsagePool",
            "GAT (extension)", "GIN (extension)"]


class TestLayerPrimitives:
    def test_activations(self):
        x = np.array([-2.0, 0.0, 3.0], dtype=np.float32)
        assert relu(x).tolist() == [0.0, 0.0, 3.0]
        assert sigmoid(np.zeros(1))[0] == pytest.approx(0.5)
        assert apply_activation("none", x) is x

    def test_sigmoid_stable_at_extremes(self):
        x = np.array([-500.0, 500.0], dtype=np.float32)
        out = sigmoid(x)
        assert np.isfinite(out).all()
        assert out[0] == pytest.approx(0.0, abs=1e-6)
        assert out[1] == pytest.approx(1.0, abs=1e-6)

    def test_unknown_activation(self):
        with pytest.raises(ModelError):
            apply_activation("swish", np.zeros(1))

    def test_glorot_bounds_and_determinism(self):
        rng = np.random.default_rng(0)
        w = glorot_uniform((100, 50), rng)
        limit = np.sqrt(6.0 / 150)
        assert (np.abs(w) <= limit).all()
        w2 = glorot_uniform((100, 50), np.random.default_rng(0))
        assert np.array_equal(w, w2)

    def test_parameters_storage(self):
        params = Parameters()
        params.set((0, 1), np.ones((2, 3)), np.zeros(3))
        assert params.weight(0, 1).shape == (2, 3)
        assert params.bias(0, 1).shape == (3,)
        assert params.bias(9, 9) is None
        assert params.total_bytes == 2 * 3 * 4 + 3 * 4
        with pytest.raises(ModelError):
            params.weight(1, 1)

    def test_init_parameters_covers_extracts(self):
        model = build_network("graphsage-pool", 8, 3)
        params = init_parameters(model, seed=0)
        # Pool network: 2 extract stages per layer x 2 layers.
        assert len(params.keys()) == 4

    def test_dense_forward_shape_check(self):
        stage = ExtractStage(in_dim=4, out_dim=2)
        with pytest.raises(ModelError):
            dense_forward(stage, np.ones((3, 5)), np.ones((4, 2)), None)

    def test_dense_forward_math(self):
        stage = ExtractStage(in_dim=2, out_dim=2, activation="relu",
                             bias=True)
        x = np.array([[1.0, -1.0]], dtype=np.float32)
        w = np.array([[1.0, 0.0], [0.0, 1.0]], dtype=np.float32)
        b = np.array([0.5, 0.0], dtype=np.float32)
        out = dense_forward(stage, x, w, b)
        assert out.tolist() == [[1.5, 0.0]]
