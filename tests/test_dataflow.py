"""Unit tests for the Table I cost model and dimension blocking."""

import pytest

from repro.config.workload import DST_STATIONARY, SRC_STATIONARY
from repro.dataflow.blocking import (
    BlockPlan,
    dimension_blocked_walk,
    plan_blocks,
)
from repro.dataflow.costs import (
    best_traversal,
    dst_stationary_cost,
    src_stationary_cost,
    traversal_cost,
)
from repro.graph.graph import GraphError
from repro.graph.traversal import simulate_residency, traversal_order


class TestCostModel:
    @pytest.mark.parametrize("side", [1, 2, 3, 5, 9])
    def test_formulas_match_table1(self, side):
        rows = 7
        src = src_stationary_cost(side, rows)
        assert src.src_read_rows == side * rows
        assert src.dst_read_rows == (side - 1) ** 2 * rows
        assert src.dst_write_rows == (side * side - side + 1) * rows
        dst = dst_stationary_cost(side, rows)
        assert dst.src_read_rows == (side * side - side + 1) * rows
        assert dst.dst_read_rows == 0
        assert dst.dst_write_rows == side * rows

    @pytest.mark.parametrize("side", [1, 2, 4, 7])
    def test_matches_residency_replay(self, side):
        """Closed forms agree with the replay, per-interval units."""
        for order_name, cost_fn in (
                (SRC_STATIONARY, src_stationary_cost),
                (DST_STATIONARY, dst_stationary_cost)):
            replay = simulate_residency(
                traversal_order(order_name, side), side)
            cost = cost_fn(side, 1)
            assert cost.src_read_rows + cost.dst_read_rows == \
                replay.src_loads + replay.dst_loads
            assert cost.dst_write_rows == replay.dst_stores

    def test_dst_never_worse_with_equal_intervals(self):
        """Why Algorithm 1 is destination-major (Sec IV-A)."""
        for side in range(1, 12):
            src = src_stationary_cost(side, 5)
            dst = dst_stationary_cost(side, 5)
            assert dst.total_rows <= src.total_rows

    def test_asymmetric_intervals_can_flip_choice(self):
        """Tiny destination rows (post-extraction) favour src-stationary."""
        choice = best_traversal(6, src_rows=1000, dst_rows=1)
        assert choice == SRC_STATIONARY

    def test_best_traversal_default(self):
        assert best_traversal(4, 10) == DST_STATIONARY

    def test_traversal_cost_dispatch(self):
        assert traversal_cost(SRC_STATIONARY, 3, 2).order == SRC_STATIONARY
        with pytest.raises(GraphError):
            traversal_cost("zigzag", 3, 2)

    def test_rejects_bad_inputs(self):
        with pytest.raises(GraphError):
            src_stationary_cost(0, 5)
        with pytest.raises(GraphError):
            dst_stationary_cost(3, -1)


class TestBlockPlan:
    def test_slices_partition_dimension(self):
        plan = BlockPlan(dim=100, block=32)
        slices = plan.slices()
        assert slices[0] == slice(0, 32)
        assert slices[-1] == slice(96, 100)
        covered = sorted(d for s in slices for d in range(s.start, s.stop))
        assert covered == list(range(100))

    def test_num_blocks(self):
        assert BlockPlan(dim=100, block=32).num_blocks == 4
        assert BlockPlan(dim=64, block=64).num_blocks == 1

    def test_is_blocked(self):
        assert BlockPlan(dim=100, block=32).is_blocked
        assert not BlockPlan(dim=64, block=64).is_blocked

    def test_block_width(self):
        plan = BlockPlan(dim=100, block=32)
        assert plan.block_width(0) == 32
        assert plan.block_width(3) == 4

    def test_block_slice_bounds(self):
        plan = BlockPlan(dim=10, block=4)
        with pytest.raises(GraphError):
            plan.block_slice(3)

    def test_plan_blocks_none_means_full(self):
        plan = plan_blocks(50, None)
        assert plan.num_blocks == 1 and plan.block == 50

    def test_plan_blocks_clamps_oversized(self):
        assert plan_blocks(50, 4096).block == 50

    def test_rejects_bad_dims(self):
        with pytest.raises(GraphError):
            BlockPlan(dim=0, block=1)
        with pytest.raises(GraphError):
            BlockPlan(dim=10, block=0)


class TestBlockedWalk:
    def test_block_loop_outermost(self):
        """Algorithm 1: every shard of block b before any of block b+1."""
        plan = BlockPlan(dim=8, block=4)
        walk = list(dimension_blocked_walk(plan, 2, DST_STATIONARY))
        assert len(walk) == 2 * 4
        blocks = [b for b, _, _ in walk]
        assert blocks == sorted(blocks)

    def test_within_block_matches_traversal(self):
        plan = BlockPlan(dim=4, block=4)
        walk = list(dimension_blocked_walk(plan, 3, SRC_STATIONARY))
        cells = [(r, c) for _, r, c in walk]
        assert cells == traversal_order(SRC_STATIONARY, 3)

    def test_unblocked_walk_single_pass(self):
        plan = plan_blocks(16, None)
        walk = list(dimension_blocked_walk(plan, 2, DST_STATIONARY))
        assert len(walk) == 4

    def test_rejects_unknown_traversal(self):
        plan = BlockPlan(dim=4, block=2)
        with pytest.raises(GraphError):
            list(dimension_blocked_walk(plan, 2, "spiral"))
