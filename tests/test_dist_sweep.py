"""Tests for the distributed sweep backend end to end: the
``Scheduler`` contract, :class:`FileQueueScheduler` parity with serial
execution, free resume from the queue directory, quarantine surfacing,
the ``repro worker`` CLI (including SIGTERM drain), ``--scheduler``
flag validation on sweep AND dse, and the full fault-injection
campaign behind ``repro chaos-sweep``."""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.metrics import parse_prometheus, series_value
from repro.sweep import Scheduler, SweepPlan, SweepPoint, SweepRunner
from repro.sweep.cache import ResultCache
from repro.sweep.dist import (
    SCHEDULER_NAMES,
    FileQueue,
    FileQueueScheduler,
    run_chaos,
)
from repro.sweep.runner import ProcessPoolScheduler

REPO_ROOT = Path(__file__).resolve().parent.parent


def _tiny_plan() -> SweepPlan:
    return SweepPlan("dist-test", (
        SweepPoint(dataset="tiny", network="gcn", hidden_dim=8,
                   feature_block=8),
        SweepPoint(dataset="tiny", network="gcn", hidden_dim=16,
                   feature_block=8),
        SweepPoint(dataset="tiny", network="graphsage", hidden_dim=8,
                   feature_block=8),
    ))


def _worker_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p])
    return env


class TestSchedulerContract:
    def test_both_backends_satisfy_the_protocol(self):
        assert isinstance(ProcessPoolScheduler(jobs=2), Scheduler)
        assert isinstance(FileQueueScheduler(jobs=0), Scheduler)
        assert ProcessPoolScheduler(jobs=2).name == "pool"
        assert FileQueueScheduler(jobs=0).name == "filequeue"
        assert set(SCHEDULER_NAMES) == {"pool", "filequeue"}

    def test_rejects_negative_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            FileQueueScheduler(jobs=-1)

    def test_empty_plan_is_a_noop(self, tmp_path):
        scheduler = FileQueueScheduler(
            jobs=2, queue_dir=str(tmp_path / "q"))
        assert scheduler.run([]) == []
        assert not (tmp_path / "q").exists()  # nothing even created


class TestFileQueueScheduler:
    def test_fleet_matches_serial_and_resume_recomputes_nothing(
            self, tmp_path):
        plan = _tiny_plan()
        serial = SweepRunner(
            cache=ResultCache(tmp_path / "serial-cache")).run(plan)
        queue_dir = tmp_path / "queue"
        scheduler = FileQueueScheduler(
            jobs=2, queue_dir=str(queue_dir),
            cache_dir=str(tmp_path / "fleet-cache"),
            poll_s=0.05, stall_timeout_s=120.0)
        runner = SweepRunner(cache=ResultCache(tmp_path / "fleet-cache"),
                             scheduler=scheduler)
        fleet = runner.run(plan)
        assert [r.point for r in fleet.results] == list(plan.points)
        for ours, theirs in zip(fleet.results, serial.results):
            assert ours.ok and theirs.ok
            assert json.dumps(ours.metrics, sort_keys=True) == \
                json.dumps(theirs.metrics, sort_keys=True)
        # Resume: the queue directory IS the campaign state. Every
        # point is already terminal, so a restarted coordinator must
        # republish nothing — done/ records stay byte-identical.
        done_before = {p.name: (p.stat().st_mtime_ns, p.read_bytes())
                       for p in (queue_dir / "done").glob("*.json")}
        assert len(done_before) == len(plan.points)
        again = runner.run(plan)
        done_after = {p.name: (p.stat().st_mtime_ns, p.read_bytes())
                      for p in (queue_dir / "done").glob("*.json")}
        assert done_after == done_before
        assert [r.metrics for r in again.results] == \
            [r.metrics for r in fleet.results]

    def test_persistent_queue_reopens_for_new_work_after_close(
            self, tmp_path):
        # Regression: run() leaves the campaign-complete marker behind
        # in a persistent queue_dir. A second run dispatching NEW
        # (cache-miss) points must clear it — otherwise every spawned
        # worker sees is_closed() and exits before claiming, and the
        # coordinator stalls until stall_timeout_s. This is the path
        # every iterative `dse --scheduler filequeue` generation hits.
        queue_dir = tmp_path / "queue"
        scheduler = FileQueueScheduler(
            jobs=1, queue_dir=str(queue_dir),
            cache_dir=str(tmp_path / "cache"),
            poll_s=0.05, stall_timeout_s=120.0)
        first = scheduler.run([
            SweepPoint(dataset="tiny", network="gcn", hidden_dim=8,
                       feature_block=8)])
        assert first[0].ok
        assert FileQueue(queue_dir).is_closed()  # marker left behind
        second = scheduler.run([
            SweepPoint(dataset="tiny", network="gcn", hidden_dim=16,
                       feature_block=8)])
        assert second[0].ok

    def test_quarantined_point_surfaces_as_error_result(self, tmp_path):
        # Unknown datasets pass plan-time validation and fail at load
        # time inside the worker — the queue retries then quarantines,
        # and the sweep reports it like any per-point failure.
        plan = SweepPlan("poisoned", (
            SweepPoint(dataset="tiny", network="gcn", hidden_dim=8,
                       feature_block=8),
            SweepPoint(dataset="no-such-dataset", network="gcn"),
        ))
        scheduler = FileQueueScheduler(
            jobs=1, queue_dir=str(tmp_path / "q"),
            cache_dir=str(tmp_path / "cache"),
            max_attempts=2, backoff_base_s=0.02, backoff_cap_s=0.05,
            poll_s=0.05, stall_timeout_s=120.0)
        result = SweepRunner(cache=ResultCache(tmp_path / "cache"),
                             scheduler=scheduler).run(plan)
        good, bad = result.results
        assert good.ok
        assert bad.status == "error"
        assert "no-such-dataset" in bad.error
        failed = list((tmp_path / "q" / "failed").glob("*.json"))
        assert len(failed) == 1
        record = json.loads(failed[0].read_text())
        assert record["attempts"] == 2  # full retry budget spent
        assert "Traceback" in record["error"]

    def test_runner_routes_misses_through_injected_scheduler(
            self, tmp_path):
        calls = []

        class Recording:
            name = "recording"

            def run(self, points):
                calls.append(list(points))
                return FileQueueScheduler(
                    jobs=1, cache_dir=str(tmp_path / "cache"),
                    poll_s=0.05, stall_timeout_s=120.0).run(points)

        runner = SweepRunner(cache=ResultCache(tmp_path / "cache"),
                             scheduler=Recording())
        plan = _tiny_plan()
        runner.run(plan)
        assert calls == [list(plan.points)]
        calls.clear()
        runner.run(plan)  # warm: every point cache-hits, no dispatch
        assert calls == []


def _ignore_sigterm_and_sleep(started):
    """Child target simulating a worker whose graceful drain outlives
    the SIGTERM grace period (must be module-level / picklable)."""
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    started.set()
    time.sleep(60.0)


class TestJoinEscalation:
    def test_join_kills_worker_that_outlives_sigterm_grace(self):
        # The worker's SIGTERM handler is a graceful drain that
        # finishes the in-flight point first; _join must escalate to
        # SIGKILL so a slow point never leaks a live non-daemon child
        # past run() (whose temp-queue path rmtree's the queue dir).
        context = multiprocessing.get_context("fork")
        started = context.Event()
        process = context.Process(target=_ignore_sigterm_and_sleep,
                                  args=(started,), daemon=False)
        process.start()
        try:
            assert started.wait(30.0)
            FileQueueScheduler(jobs=0)._join([process], timeout=0.1)
            assert not process.is_alive()
        finally:
            if process.is_alive():
                process.kill()
            process.join(timeout=5.0)


class TestWorkerCli:
    def test_worker_without_manifest_exits_with_hint(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["worker", "--queue-dir", str(tmp_path / "nope")])
        assert "no queue manifest" in str(excinfo.value)
        assert "worker:" in str(excinfo.value)

    def test_worker_drains_on_sigterm(self, tmp_path, capsys):
        # Stage a real queue with work, attach one external worker
        # process, let it finish the backlog, then SIGTERM it: the
        # drain path must exit 0 with a claims summary, leaving the
        # queue consistent for the (absent) coordinator.
        queue = FileQueue(tmp_path / "q",
                          cache_dir=str(tmp_path / "cache"))
        plan = _tiny_plan()
        cache = ResultCache(tmp_path / "cache")
        for point in plan.points:
            queue.enqueue(cache.key_for(point.payload()),
                          point.payload())
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--queue-dir", str(tmp_path / "q"), "--worker-id", "ext-1",
             "--poll", "0.05"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=_worker_env(), cwd=str(tmp_path))
        try:
            deadline = time.monotonic() + 120.0
            while (queue.stats()["done"] < len(plan.points)
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            assert queue.stats()["done"] == len(plan.points)
            process.send_signal(signal.SIGTERM)
            out, err = process.communicate(timeout=30.0)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, err
        assert "ext-1 exiting" in out
        assert "3 computed" in out
        assert queue.stats()["leased"] == 0
        for task_id in queue.states():
            assert queue.result(task_id)[0] == "done"

    def test_worker_exits_when_queue_closes(self, tmp_path):
        queue = FileQueue(tmp_path / "q")
        queue.close()
        process = subprocess.run(
            [sys.executable, "-m", "repro", "worker",
             "--queue-dir", str(tmp_path / "q"), "--poll", "0.05"],
            capture_output=True, text=True, timeout=60.0,
            env=_worker_env(), cwd=str(tmp_path))
        assert process.returncode == 0, process.stderr
        assert "0 claim(s)" in process.stdout


class TestSchedulerFlagValidation:
    """``--scheduler`` must exit 2 naming the valid backends, on sweep
    AND dse alike (ISSUE satellite)."""

    def _expect_usage_error(self, capsys, argv):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "Traceback" not in err
        for needle in ("pool", "filequeue"):
            assert needle in err, f"{needle!r} missing from: {err}"

    def test_sweep_rejects_unknown_scheduler(self, capsys):
        self._expect_usage_error(
            capsys, ["sweep", "smoke", "--scheduler", "slurm"])

    def test_dse_rejects_unknown_scheduler(self, capsys):
        self._expect_usage_error(
            capsys, ["dse", "--scheduler", "kubernetes"])

    def test_sweep_rejects_bad_lease_ttl(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "smoke", "--scheduler", "filequeue",
                  "--lease-ttl", "0"])
        assert excinfo.value.code == 2
        assert "must be > 0" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["sweep", "dse"])
    def test_jobs_zero_requires_filequeue(self, command):
        # jobs=0 is the external-fleet coordinator mode; it has no
        # meaning for the in-process pool.
        argv = [command, "smoke"] if command == "sweep" else [command]
        with pytest.raises(SystemExit) as excinfo:
            main(argv + ["--jobs", "0"])
        assert "requires --scheduler filequeue" in str(excinfo.value)

    def test_worker_rejects_bad_kill_after(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["worker", "--queue-dir", "q",
                  "--chaos-kill-after", "0"])
        assert excinfo.value.code == 2


class TestChaosCampaign:
    """The full fault-injection harness: SIGKILLed workers, corrupted
    lease/task files, an orphan tmp and a poison point — the campaign
    must complete with results cycle-identical to a serial run and the
    failure modes visible as ``repro_fleet_*`` metrics."""

    def test_campaign_survives_every_injected_fault(self, tmp_path):
        report = run_chaos(str(tmp_path), lease_ttl_s=1.5,
                           stall_timeout_s=120.0)
        assert report.ok, report.render()
        assert report.restart_misses == 0
        parsed = parse_prometheus(report.metrics_text)
        assert series_value(
            parsed, "repro_fleet_lease_expiries_total") >= 1
        assert series_value(parsed, "repro_fleet_retries_total") >= 1
        assert series_value(parsed, "repro_fleet_quarantined_total") >= 1
        assert series_value(
            parsed, "repro_fleet_corrupt_files_total") >= 2
        assert series_value(parsed, "repro_fleet_tasks",
                            state="leased") == 0
        assert series_value(parsed, "repro_fleet_tasks",
                            state="pending") == 0

    def test_chaos_sweep_cli_exits_zero_and_reports(self, tmp_path,
                                                    capsys):
        workdir = tmp_path / "campaign"
        assert main(["chaos-sweep", "--workdir", str(workdir)]) == 0
        out = capsys.readouterr().out
        assert "chaos: OK" in out
        assert "expiries: 1" in out
        assert "restart recomputed: 0" in out
