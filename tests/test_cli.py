"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def _expect_usage_error(capsys, argv: list[str], *needles: str) -> None:
    """``argv`` must exit 2 with a one-line error (never a traceback)
    whose message names the valid choices."""
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "Traceback" not in err
    for needle in needles:
        assert needle in err, f"{needle!r} missing from: {err}"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("fig3", "fig4", "fig5", "table1", "table5",
                        "configs"):
            args = parser.parse_args([command])
            assert callable(args.handler)

    def test_run_arguments(self):
        args = build_parser().parse_args(
            ["run", "cora", "gcn", "--block", "32", "--hidden-dim", "8"])
        assert args.dataset == "cora"
        assert args.block == 32 and args.hidden_dim == 8

    def test_run_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "reddit", "gcn"])


class TestArgumentValidation:
    """Bad arguments exit 2 with a one-line error naming the valid
    choices — never a traceback (ISSUE-4 satellite)."""

    def test_run_unknown_dataset_names_choices(self, capsys):
        _expect_usage_error(capsys, ["run", "reddit", "gcn"],
                            "invalid choice: 'reddit'", "cora", "pubmed")

    def test_run_unknown_network_names_choices(self, capsys):
        _expect_usage_error(capsys, ["run", "cora", "transformer"],
                            "invalid choice: 'transformer'", "gcn", "gat")

    def test_run_rejects_zero_feature_block(self, capsys):
        _expect_usage_error(capsys, ["run", "cora", "gcn", "--block", "0"],
                            "must be >= 1")

    def test_run_rejects_negative_hidden_dim(self, capsys):
        _expect_usage_error(
            capsys, ["run", "cora", "gcn", "--hidden-dim", "-4"],
            "must be >= 1")

    def test_sweep_unknown_plan_names_choices(self, capsys):
        _expect_usage_error(capsys, ["sweep", "fig9"],
                            "invalid choice: 'fig9'", "fig3")

    def test_sweep_unknown_network_names_choices(self, capsys):
        _expect_usage_error(capsys, ["sweep", "fig3", "--network", "bert"],
                            "invalid choice: 'bert'", "gcn")

    def test_sweep_rejects_negative_jobs(self, capsys):
        # 0 is now valid (external-fleet coordinator, filequeue only —
        # see tests/test_dist_sweep.py); negatives still exit 2.
        _expect_usage_error(capsys, ["sweep", "smoke", "--jobs", "-1"],
                            "must be >= 0")

    def test_dse_rejects_negative_jobs(self, capsys):
        _expect_usage_error(capsys, ["dse", "--jobs", "-2"],
                            "must be >= 0")

    def test_dse_unknown_dataset_names_choices(self, capsys):
        _expect_usage_error(capsys, ["dse", "--datasets", "reddit"],
                            "invalid choice: 'reddit'", "tiny")

    def test_dse_unknown_network_names_choices(self, capsys):
        _expect_usage_error(capsys, ["dse", "--networks", "mlp"],
                            "invalid choice: 'mlp'", "gin")

    def test_perf_unknown_dataset_names_choices(self, capsys):
        _expect_usage_error(capsys, ["perf", "--datasets", "tiny,reddit"],
                            "unknown dataset 'reddit'", "cora")

    def test_perf_unknown_network_names_choices(self, capsys):
        _expect_usage_error(capsys, ["perf", "--networks", "rnn"],
                            "unknown network 'rnn'", "gcn")

    def test_perf_rejects_non_integer_repeat(self, capsys):
        _expect_usage_error(capsys, ["perf", "--repeat", "two"],
                            "must be an integer >= 1")


class TestPerfCommand:
    def test_perf_writes_benchmark_and_table(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["perf", "--datasets", "tiny", "--networks", "gcn",
                     "--output", str(out)]) == 0
        table = capsys.readouterr().out
        assert "tiny-gcn" in table and "total_s" in table
        payload = json.loads(out.read_text())
        meta = payload["meta"]
        assert meta["python"] and meta["numpy"]
        assert meta["cpu_count"] >= 1
        row = payload["workloads"]["tiny-gcn"]
        assert set(row) >= {"load_s", "compile_s", "simulate_s",
                            "total_s", "cycles", "peak_mb"}
        assert row["cycles"] > 0
        assert row["peak_mb"] > 0
        assert row["total_s"] >= row["compile_s"]

    def test_perf_check_passes_against_generous_baseline(self, tmp_path,
                                                         capsys):
        baseline = tmp_path / "baseline.json"
        out = tmp_path / "bench.json"
        assert main(["perf", "--datasets", "tiny", "--networks", "gcn",
                     "--output", str(baseline)]) == 0
        capsys.readouterr()
        assert main(["perf", "--datasets", "tiny", "--networks", "gcn",
                     "--output", str(out), "--check", str(baseline),
                     "--threshold", "1000"]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_perf_check_fails_on_regression(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["perf", "--datasets", "tiny", "--networks", "gcn",
                     "--output", str(baseline)]) == 0
        capsys.readouterr()
        payload = json.loads(baseline.read_text())
        payload["workloads"]["tiny-gcn"]["total_s"] = 1e-9  # impossible
        baseline.write_text(json.dumps(payload))
        assert main(["perf", "--datasets", "tiny", "--networks", "gcn",
                     "--output", "", "--check", str(baseline)]) == 1
        assert "exceeds" in capsys.readouterr().out

    def test_perf_check_fails_on_cycle_drift(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["perf", "--datasets", "tiny", "--networks", "gcn",
                     "--output", str(baseline)]) == 0
        capsys.readouterr()
        payload = json.loads(baseline.read_text())
        payload["workloads"]["tiny-gcn"]["cycles"] += 1
        baseline.write_text(json.dumps(payload))
        assert main(["perf", "--datasets", "tiny", "--networks", "gcn",
                     "--output", "", "--check", str(baseline)]) == 1
        assert "cycles changed" in capsys.readouterr().out

    def test_perf_restricted_run_does_not_write_default(self, tmp_path,
                                                        capsys,
                                                        monkeypatch):
        """A partial grid must never silently replace the committed
        full-trajectory baseline."""
        monkeypatch.chdir(tmp_path)
        assert main(["perf", "--datasets", "tiny",
                     "--networks", "gcn"]) == 0
        out = capsys.readouterr().out
        assert "not writing BENCH_host.json" in out
        assert not (tmp_path / "BENCH_host.json").exists()

    def test_perf_check_never_overwrites_its_baseline(self, tmp_path,
                                                      capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["perf", "--datasets", "tiny", "--networks", "gcn",
                     "--output", str(baseline)]) == 0
        capsys.readouterr()
        before = baseline.read_bytes()
        assert main(["perf", "--datasets", "tiny", "--networks", "gcn",
                     "--output", str(baseline), "--check", str(baseline),
                     "--threshold", "1000"]) == 0
        assert "skipped writing" in capsys.readouterr().out
        assert baseline.read_bytes() == before

    def test_perf_check_accepts_legacy_flat_baseline(self, tmp_path,
                                                     capsys):
        """Pre-fingerprint baselines (rows at the top level) still
        check, with a host-mismatch warning since the measuring
        machine is unknown."""
        baseline = tmp_path / "baseline.json"
        assert main(["perf", "--datasets", "tiny", "--networks", "gcn",
                     "--output", str(baseline)]) == 0
        capsys.readouterr()
        payload = json.loads(baseline.read_text())
        baseline.write_text(json.dumps(payload["workloads"]))  # flatten
        assert main(["perf", "--datasets", "tiny", "--networks", "gcn",
                     "--output", "", "--check", str(baseline),
                     "--threshold", "1000"]) == 0
        out = capsys.readouterr().out
        assert "no host fingerprint" in out
        assert "no regressions" in out

    def test_perf_check_warns_on_fingerprint_mismatch(self, tmp_path,
                                                      capsys):
        """A baseline from a different machine still gates on cycles
        but flags its wall-time budgets as indicative."""
        baseline = tmp_path / "baseline.json"
        assert main(["perf", "--datasets", "tiny", "--networks", "gcn",
                     "--output", str(baseline)]) == 0
        capsys.readouterr()
        payload = json.loads(baseline.read_text())
        payload["meta"]["cpu_count"] = 12345
        baseline.write_text(json.dumps(payload))
        assert main(["perf", "--datasets", "tiny", "--networks", "gcn",
                     "--output", "", "--check", str(baseline),
                     "--threshold", "1000"]) == 0
        out = capsys.readouterr().out
        assert "different host" in out and "cpu_count" in out

    def test_perf_no_coalesce_measures_same_cycles(self, tmp_path,
                                                   capsys):
        """The per-operation kernel is still reachable for before/after
        comparisons and must report identical cycles."""
        fast = tmp_path / "fast.json"
        slow = tmp_path / "slow.json"
        assert main(["perf", "--datasets", "tiny", "--networks", "gcn",
                     "--output", str(fast)]) == 0
        assert main(["perf", "--datasets", "tiny", "--networks", "gcn",
                     "--no-coalesce", "--output", str(slow)]) == 0
        fast_row = json.loads(fast.read_text())["workloads"]["tiny-gcn"]
        slow_row = json.loads(slow.read_text())["workloads"]["tiny-gcn"]
        assert fast_row["cycles"] == slow_row["cycles"]

    def test_perf_check_missing_baseline_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["perf", "--datasets", "tiny", "--networks", "gcn",
                  "--output", "", "--check",
                  str(tmp_path / "nope.json")])
        assert "does not exist" in str(excinfo.value)


class TestCommands:
    def test_configs_prints_tables(self, capsys):
        assert main(["configs"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "CORA" in out and "GNNerator" in out

    def test_run_prints_result(self, capsys):
        assert main(["run", "cora", "gcn"]) == 0
        out = capsys.readouterr().out
        assert "cora-gcn" in out
        assert "GPU baseline" in out and "HyGCN baseline" in out

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_table5_command(self, capsys):
        assert main(["table5"]) == 0
        assert "HyGCN" in capsys.readouterr().out

    def test_trace_command(self, capsys):
        assert main(["trace", "cora", "gcn"]) == 0
        out = capsys.readouterr().out
        assert "graph.compute" in out and "#" in out

    def test_bottleneck_command(self, capsys):
        assert main(["bottleneck", "cora", "gcn"]) == 0
        out = capsys.readouterr().out
        assert "bound by" in out
        assert "hidden 1024" in out


class TestTelemetryCommands:
    def test_run_trace_out_writes_valid_perfetto(self, tmp_path, capsys):
        from repro.obs import validate_trace_events

        out = tmp_path / "run.json"
        assert main(["run", "tiny", "gcn", "--trace-out",
                     str(out)]) == 0
        assert str(out) in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert validate_trace_events(payload) == []
        # Host spans and simulated-hardware tracks both present.
        pids = {e["pid"] for e in payload["traceEvents"]}
        assert pids == {1, 2}
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"load", "lower", "simulate"} <= names

    def test_trace_perfetto_writes_labelled_slices(self, tmp_path,
                                                   capsys):
        from repro.obs import validate_trace_events

        out = tmp_path / "trace.json"
        assert main(["trace", "tiny", "gcn", "--perfetto",
                     str(out)]) == 0
        output = capsys.readouterr().out
        assert "#" in output  # the gantt still renders
        payload = json.loads(out.read_text())
        assert validate_trace_events(payload) == []
        sim_labels = {e["name"] for e in payload["traceEvents"]
                      if e["ph"] == "X" and e["pid"] == 2}
        # The event kernel's per-op labels survive into the export.
        assert "ShardAggregateOp" in sim_labels or any(
            label.startswith("edges:") for label in sim_labels)

    def test_profile_command_renders_report(self, capsys):
        assert main(["profile", "tiny", "gat", "--top-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "profile tiny-gat" in out
        assert "host phases" in out
        assert "engines" in out
        assert "hottest shards" in out
        assert "queue peak" in out

    def test_profile_arguments(self):
        args = build_parser().parse_args(
            ["profile", "cora", "gcn", "--hidden-dim", "8",
             "--block", "32", "--top-k", "3", "--seed", "1"])
        assert args.dataset == "cora" and args.network == "gcn"
        assert args.hidden_dim == 8 and args.block == 32
        assert args.top_k == 3 and args.seed == 1
        assert callable(args.handler)

    def test_serve_log_level_argument(self):
        args = build_parser().parse_args(["serve", "--log-level",
                                          "debug"])
        assert args.log_level == "debug"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--log-level", "loud"])
