"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("fig3", "fig4", "fig5", "table1", "table5",
                        "configs"):
            args = parser.parse_args([command])
            assert callable(args.handler)

    def test_run_arguments(self):
        args = build_parser().parse_args(
            ["run", "cora", "gcn", "--block", "32", "--hidden-dim", "8"])
        assert args.dataset == "cora"
        assert args.block == 32 and args.hidden_dim == 8

    def test_run_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "reddit", "gcn"])


class TestCommands:
    def test_configs_prints_tables(self, capsys):
        assert main(["configs"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "CORA" in out and "GNNerator" in out

    def test_run_prints_result(self, capsys):
        assert main(["run", "cora", "gcn"]) == 0
        out = capsys.readouterr().out
        assert "cora-gcn" in out
        assert "GPU baseline" in out and "HyGCN baseline" in out

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_table5_command(self, capsys):
        assert main(["table5"]) == 0
        assert "HyGCN" in capsys.readouterr().out

    def test_trace_command(self, capsys):
        assert main(["trace", "cora", "gcn"]) == 0
        out = capsys.readouterr().out
        assert "graph.compute" in out and "#" in out

    def test_bottleneck_command(self, capsys):
        assert main(["bottleneck", "cora", "gcn"]) == 0
        out = capsys.readouterr().out
        assert "bound by" in out
        assert "hidden 1024" in out
