"""Million-edge scale: pinned cycle goldens and peak-memory guards.

``flickr`` (~89k nodes / 900k edges) runs in every test session — its
warm-cache compile+simulate is sub-second. ``reddit-s`` (~233k nodes /
11.6M edges) costs ~10s to synthesise cold and several seconds to
compile, so its golden and its end-to-end budget assertions are gated
behind ``REPRO_RUN_LARGE=1`` (the scale-smoke CI job and the PR
measurement protocol run them; the default tier-1 suite doesn't).

Regenerate the goldens with ``REGEN_GOLDENS=1 REPRO_RUN_LARGE=1``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.config.workload import WorkloadSpec
from repro.eval.harness import Harness
from repro.graph.datasets import dataset_stats, load_dataset

GOLDEN_PATH = (Path(__file__).parent / "goldens"
               / "large_scale_cycles.json")

#: Workloads pinned in the golden file; reddit-s rows need the env gate.
ALWAYS = ("flickr-gcn", "flickr-gat")
GATED = ("reddit-s-gcn", "reddit-s-gat")

RUN_LARGE = bool(os.environ.get("REPRO_RUN_LARGE"))


def _cycles(label: str) -> int:
    dataset, network = label.rsplit("-", 1)
    harness = Harness()
    spec = WorkloadSpec(dataset=dataset, network=network, hidden_dim=16)
    return harness.gnnerator_result(spec).cycles


def _golden() -> dict:
    if not GOLDEN_PATH.exists():
        pytest.fail(f"golden file {GOLDEN_PATH} is missing; regenerate "
                    f"with REGEN_GOLDENS=1 REPRO_RUN_LARGE=1")
    return json.loads(GOLDEN_PATH.read_text())


def test_regen_goldens_if_requested():
    if not os.environ.get("REGEN_GOLDENS"):
        pytest.skip("set REGEN_GOLDENS=1 to regenerate")
    if not RUN_LARGE:
        pytest.fail("regenerating large-scale goldens needs "
                    "REPRO_RUN_LARGE=1 so every workload is measured")
    payload = {label: _cycles(label) for label in ALWAYS + GATED}
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2,
                                      sort_keys=True) + "\n")
    pytest.skip(f"regenerated {GOLDEN_PATH}")


@pytest.mark.parametrize("label", ALWAYS)
def test_flickr_cycles_match_golden(label):
    assert _cycles(label) == _golden()[label], (
        f"{label} cycle count drifted — host-side scaling work must be "
        f"cycle-neutral (REGEN_GOLDENS=1 REPRO_RUN_LARGE=1 to rebase "
        f"an intentional modelling change)")


@pytest.mark.parametrize("label", GATED)
def test_reddit_s_cycles_match_golden(label):
    if not RUN_LARGE:
        pytest.skip("set REPRO_RUN_LARGE=1 to verify the reddit-s "
                    "goldens (cold synthesis ~10s)")
    assert _cycles(label) == _golden()[label]


# ---------------------------------------------------------------------
# Peak-memory guards (subprocess: ru_maxrss is process-lifetime, so a
# fresh interpreter is the only honest measurement)
# ---------------------------------------------------------------------
_MEASURE = textwrap.dedent("""\
    import json, sys, time
    dataset = sys.argv[1]
    simulate = bool(int(sys.argv[2]))
    from repro.eval.harness import Harness
    from repro.eval.hostperf import peak_rss_mb
    from repro.config.workload import WorkloadSpec
    from repro.accelerator import GNNerator
    harness = Harness()
    spec = WorkloadSpec(dataset=dataset, network="gcn", hidden_dim=16)
    config, block = harness._resolve_config(spec, None)
    t0 = time.perf_counter()
    program = harness._compiled(spec, config, block)
    if simulate:
        result = GNNerator(config).simulate(program)
    wall = time.perf_counter() - t0
    print(json.dumps({"peak_mb": peak_rss_mb(), "wall_s": wall}))
""")


def _measure_subprocess(dataset: str, simulate: bool) -> dict:
    # Warm the persistent dataset cache first so the subprocess
    # measures the load→compile path, not one-time synthesis.
    load_dataset(dataset)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(Path(__file__).parent.parent / "src"),
         env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
    out = subprocess.run(
        [sys.executable, "-c", _MEASURE, dataset, str(int(simulate))],
        capture_output=True, text=True, env=env, check=True)
    return json.loads(out.stdout.strip().splitlines()[-1])


def test_flickr_compile_peak_rss_budget():
    """Streaming compile: one shared sorted copy of the edge arrays,
    shard views, untouched (memory-mapped) features. 300 MB leaves
    room for the interpreter + numpy but catches any return to
    per-shard copies or eager feature materialisation."""
    measured = _measure_subprocess("flickr", simulate=False)
    assert measured["peak_mb"] < 300, measured


def test_reddit_s_memory_and_wall_budgets():
    """The ISSUE-5 acceptance bar: warm-cache compile+simulate of
    reddit-s-gcn under 30s with peak RSS below 2x its feature matrix."""
    if not RUN_LARGE:
        pytest.skip("set REPRO_RUN_LARGE=1 to run the reddit-s "
                    "acceptance budgets")
    stats = dataset_stats("reddit-s")
    measured = _measure_subprocess("reddit-s", simulate=True)
    assert measured["peak_mb"] < 2 * stats.feature_megabytes, measured
    assert measured["wall_s"] < 30, measured


def test_flickr_wall_budget():
    """flickr-gcn end-to-end (warm cache) stays interactive."""
    measured = _measure_subprocess("flickr", simulate=True)
    assert measured["wall_s"] < 2, measured
