"""EDA scenario: congestion prediction on a circuit netlist.

The paper's introduction motivates GNNs with electronic design
automation (Circuit-GNN, ICML 2019). This example builds a synthetic
standard-cell netlist — rows of cells with local routing plus a clock
tree and a few high-fanout control nets, the structure that makes
congestion prediction graph-shaped — attaches per-cell physical
features, and evaluates a GraphSAGE congestion predictor on GNNerator.

High-fanout nets are exactly the load-imbalance case the Graph Engine's
destination-hashed GPE distribution has to absorb; the example reports
the achieved GPE utilisation alongside latency.

Run:  python examples/eda_netlist_congestion.py
"""

import numpy as np

from repro import GNNerator, GpuModel, build_network, init_parameters
from repro.engines.graph.gpe import gpe_utilization, max_gpe_edges
from repro.graph.graph import Graph


def build_netlist(rows: int = 64, cols: int = 64, seed: int = 7) -> Graph:
    """A placed standard-cell grid with local nets, a clock tree, and
    high-fanout control signals (messages flow driver -> sink)."""
    rng = np.random.default_rng(seed)
    num_cells = rows * cols
    edges = []

    def cell(r, c):
        return r * cols + c

    # Local routing: each cell drives 1-3 near neighbours.
    for r in range(rows):
        for c in range(cols):
            for _ in range(int(rng.integers(1, 4))):
                dr, dc = rng.integers(-2, 3, size=2)
                rr, cc = r + dr, c + dc
                if 0 <= rr < rows and 0 <= cc < cols and (dr, dc) != (0, 0):
                    edges.append((cell(r, c), cell(rr, cc)))

    # Clock tree: a 4-ary tree from cell 0 over a sample of sinks.
    sinks = rng.choice(num_cells, size=num_cells // 4, replace=False)
    frontier = [0]
    for sink in sinks:
        driver = frontier[int(rng.integers(0, len(frontier)))]
        edges.append((int(driver), int(sink)))
        if len(frontier) < 64:
            frontier.append(int(sink))

    # High-fanout control nets (reset, enable): classic congestion
    # hot-spots and the GPE load-imbalance stress case.
    for _ in range(4):
        driver = int(rng.integers(0, num_cells))
        fanout = rng.choice(num_cells, size=300, replace=False)
        edges.extend((driver, int(s)) for s in fanout if s != driver)

    unique = sorted(set(edges))
    src, dst = zip(*unique)
    graph = Graph(num_cells, np.array(src), np.array(dst),
                  name="netlist-64x64")
    # Congestion influence propagates both driver->sink and sink->driver;
    # symmetrising also turns high-fanout drivers into hub destinations,
    # the Graph Engine's load-imbalance stress case.
    graph = graph.with_reverse_edges()

    # Per-cell features: position, size, pin counts, cell-type one-hot.
    xy = np.stack(np.meshgrid(np.arange(rows), np.arange(cols),
                              indexing="ij"), axis=-1)
    position = (xy.reshape(num_cells, 2) / max(rows, cols))
    pins = rng.poisson(4.0, size=(num_cells, 2))
    celltype = np.eye(12, dtype=np.float32)[
        rng.integers(0, 12, size=num_cells)]
    graph.features = np.concatenate(
        [position, pins, celltype], axis=1).astype(np.float32)
    return graph


def main() -> None:
    graph = build_netlist()
    print(f"netlist: {graph.num_nodes} cells, {graph.num_edges} "
          f"driver->sink arcs, {graph.feature_dim} features/cell")
    degrees = graph.in_degrees()
    print(f"max fanin {degrees.max()}, mean {degrees.mean():.1f} "
          f"(high-fanout control nets create hub destinations)")

    # Congestion predictor: 2-hop GraphSAGE, 3 congestion classes.
    model = build_network("graphsage", graph.feature_dim, num_classes=3,
                          hidden_dim=32)
    params = init_parameters(model, seed=1)

    accelerator = GNNerator()
    program = accelerator.compile(graph, model, params=params)
    result = accelerator.simulate(program)
    print(f"GNNerator: {result.describe()}")

    # How badly do the control-net hubs skew GPE load?
    grid = program.grids[(0, 0)]
    shard = max(grid.nonempty_shards(), key=lambda s: s.num_edges)
    util = gpe_utilization(shard, accelerator.config.graph.num_gpes)
    worst = max_gpe_edges(shard, accelerator.config.graph.num_gpes)
    print(f"busiest shard: {shard.num_edges} edges, worst GPE carries "
          f"{worst} ({util:.0%} of ideal balance)")

    gpu = GpuModel().run(graph, model)
    print(f"RTX 2080 Ti model: {gpu.describe()} -> "
          f"{gpu.seconds / result.seconds:.1f}x speedup on GNNerator")


if __name__ == "__main__":
    main()
