"""Quickstart: simulate a GCN forward pass on GNNerator.

Loads the Cora benchmark graph, builds the Table III GCN, compiles it
with the feature dimension-blocking dataflow, checks the compiled
program computes exactly what the numpy reference computes, and then
reports simulated latency against the GPU and HyGCN baselines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    GNNerator,
    GpuModel,
    HyGCNModel,
    build_network,
    init_parameters,
    load_dataset,
    reference_forward,
    run_functional,
)


def main() -> None:
    # 1. A benchmark graph (synthesised to Cora's published statistics;
    #    drop real Planetoid files in ./data to use them instead).
    graph = load_dataset("cora")
    print(f"graph: {graph.name}, {graph.num_nodes} nodes, "
          f"{graph.num_edges} edges, {graph.feature_dim}-dim features")

    # 2. A 2-layer GCN (Table III: one hidden layer of dimension 16).
    model = build_network("gcn", graph.feature_dim, num_classes=7)
    params = init_parameters(model, seed=0)

    # 3. Compile for the accelerator and verify functional correctness:
    #    the sharded, dimension-blocked program must match plain numpy.
    accelerator = GNNerator()
    program = accelerator.compile(graph, model, params=params)
    print(f"compiled: {program.describe()}")

    expected = reference_forward(model, graph, params)
    actual = run_functional(program, graph)
    np.testing.assert_allclose(actual, expected, rtol=1e-3, atol=1e-3)
    print("functional check: compiled execution matches the reference")

    # 4. Timing simulation on the Table IV platform.
    result = accelerator.simulate(program)
    print(f"GNNerator: {result.describe()}")

    # 5. Baselines.
    gpu = GpuModel().run(graph, model)
    hygcn = HyGCNModel().run(graph, model)
    print(f"RTX 2080 Ti model: {gpu.describe()}")
    print(f"HyGCN model:       {hygcn.describe()}")
    print(f"speedup vs GPU:   {gpu.seconds / result.seconds:.1f}x")
    print(f"speedup vs HyGCN: {hygcn.seconds / result.seconds:.1f}x")


if __name__ == "__main__":
    main()
