"""Platform shoot-out: GNNerator vs RTX 2080 Ti vs HyGCN.

Runs every Table II dataset through one network on all three modelled
platforms (plus GNNerator without feature blocking), printing absolute
latency estimates and speedups — a one-screen summary of the paper's
whole evaluation story.

Run:  python examples/compare_platforms.py [network]
"""

import sys

from repro.config.workload import WorkloadSpec
from repro.eval.harness import Harness
from repro.eval.report import format_table


def main() -> None:
    network = sys.argv[1] if len(sys.argv) > 1 else "gcn"
    harness = Harness()
    rows = []
    for dataset in ("cora", "citeseer", "pubmed"):
        spec = WorkloadSpec(dataset=dataset, network=network)
        lat = harness.all_platforms(spec)
        rows.append({
            "workload": spec.label,
            "GPU": f"{lat.gpu_seconds * 1e6:8.0f} us",
            "HyGCN": f"{lat.hygcn_seconds * 1e6:8.0f} us",
            "GNNerator w/o B": (
                f"{lat.gnnerator_no_blocking_seconds * 1e6:8.0f} us"),
            "GNNerator": f"{lat.gnnerator_seconds * 1e6:8.0f} us",
            "vs GPU": f"{lat.speedup_blocked:.1f}x",
            "vs HyGCN": f"{lat.speedup_over_hygcn:.1f}x",
        })
    print(format_table(rows, title=f"Platform comparison — {network} "
                                   f"(latency per forward pass)"))
    print()
    print("Reading guide: 'GNNerator w/o B' disables dimension blocking")
    print("(the conventional dataflow); the gap between the last two")
    print("columns is the contribution of Algorithm 1.")


if __name__ == "__main__":
    main()
