"""Dataflow explorer: how B and the traversal order shape a workload.

Sweeps the feature-block size and both shard traversal orders for one
dataset/network pair, reporting the shard grid, DRAM traffic split by
purpose, and simulated latency — the raw material behind Fig 4 and
Table I. Useful for building intuition about *why* dimension blocking
wins: watch S collapse and the src-features column shrink as B drops.

Run:  python examples/dataflow_explorer.py [dataset] [network]
"""

import sys

from repro import GNNerator, gnnerator_config
from repro.config.workload import DST_STATIONARY, SRC_STATIONARY
from repro.dataflow.costs import traversal_cost
from repro.eval.harness import Harness
from repro.eval.report import format_table
from repro.config.workload import WorkloadSpec
from repro.graph.partition import plan_shards


def explore(dataset: str, network: str) -> None:
    harness = Harness()
    spec = WorkloadSpec(dataset=dataset, network=network)
    graph = harness.graph(dataset)
    model = harness.model(spec)
    params = harness.params(spec)
    config = gnnerator_config()

    print(f"=== {dataset} x {network} ===")
    rows = []
    for block in (32, 64, 128, 256, None):
        accelerator = GNNerator(config.with_feature_block(block))
        grid = plan_shards(graph, config.graph,
                           block=block or graph.feature_dim)
        result = accelerator.run(graph, model, params=params,
                                 feature_block=block)
        traffic = result.dram_bytes_by_purpose
        rows.append({
            "B": str(block or f"D={graph.feature_dim}"),
            "S": str(grid.grid_side),
            "cycles": str(result.cycles),
            "src-feat MB":
                f"{traffic.get('src-features', 0) / 1e6:.1f}",
            "agg-wb MB":
                f"{traffic.get('agg-writeback', 0) / 1e6:.1f}",
            "dense-in MB": f"{traffic.get('input', 0) / 1e6:.1f}",
            "total MB": f"{result.total_dram_bytes / 1e6:.1f}",
        })
    print(format_table(rows, title="Feature-block sweep "
                                   "(dst-stationary)"))
    print()

    rows = []
    for order in (DST_STATIONARY, SRC_STATIONARY):
        grid = plan_shards(graph, config.graph, block=graph.feature_dim)
        analytic = traversal_cost(order, grid.grid_side,
                                  grid.interval_size)
        accelerator = GNNerator(config.with_feature_block(None))
        result = accelerator.run(graph, model, params=params,
                                 traversal=order, feature_block=None)
        rows.append({
            "order": order,
            "analytic reads (rows)": str(analytic.read_rows),
            "analytic writes (rows)": str(analytic.write_rows),
            "cycles": str(result.cycles),
            "DRAM MB": f"{result.total_dram_bytes / 1e6:.1f}",
        })
    print(format_table(rows, title="Traversal order (unblocked, "
                                   "Table I in action)"))


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "citeseer"
    network = sys.argv[2] if len(sys.argv) > 2 else "gcn"
    explore(dataset, network)


if __name__ == "__main__":
    main()
