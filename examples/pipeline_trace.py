"""Pipeline trace: watch the controller orchestrate the two engines.

Runs one workload with tracing enabled and renders an ASCII Gantt chart
of all six hardware units, then quantifies the inter-engine overlap the
GNNerator Controller delivers (Sec III-C): in a graph-first network the
Dense Engine starts consuming aggregated feature blocks long before the
Graph Engine has finished the layer; in GraphSAGE-Pool the order flips.

Run:  python examples/pipeline_trace.py [dataset] [network]
"""

import sys

from repro import GNNerator, build_network, load_dataset
from repro.sim.trace import Tracer, overlap_cycles, render_gantt


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "cora"
    network = sys.argv[2] if len(sys.argv) > 2 else "gcn"

    graph = load_dataset(dataset)
    stats = {"cora": 7, "citeseer": 6, "pubmed": 3}
    model = build_network(network, graph.feature_dim,
                          stats.get(dataset, 4))

    accelerator = GNNerator()
    program = accelerator.compile(graph, model)
    tracer = Tracer()
    result = accelerator.simulate(program, tracer=tracer)

    print(f"{dataset} x {network}: {result.describe()}")
    print()
    print(render_gantt(tracer))
    print()

    overlap = overlap_cycles(tracer, "graph.compute", "dense.compute")
    graph_busy = sum(end - start for start, end
                     in tracer.busy_intervals("graph.compute"))
    dense_busy = sum(end - start for start, end
                     in tracer.busy_intervals("dense.compute"))
    print(f"graph.compute busy {graph_busy} cycles, dense.compute busy "
          f"{dense_busy} cycles, concurrent {overlap} cycles")
    first_dense = tracer.first_activity("dense.compute")
    last_graph = tracer.last_activity("graph.compute")
    if first_dense is not None and last_graph is not None:
        if first_dense < last_graph:
            print(f"inter-stage pipelining: the Dense Engine started at "
                  f"cycle {first_dense}, {last_graph - first_dense} "
                  f"cycles before aggregation finished")
        else:
            print("engines ran back-to-back (no inter-stage overlap)")


if __name__ == "__main__":
    main()
