"""Shared benchmark fixtures.

Every benchmark regenerates one evaluation artefact of the paper and
prints the measured-vs-paper table (run with ``-s`` to see them inline;
pytest-benchmark reports the wall-clock of regenerating each artefact).
"""

import pytest

from repro.eval.harness import Harness


@pytest.fixture(scope="session")
def harness():
    """One shared harness so datasets/params are materialised once."""
    return Harness()
