"""Shared benchmark fixtures.

Every benchmark regenerates one evaluation artefact of the paper and
prints the measured-vs-paper table (run with ``-s`` to see them inline;
pytest-benchmark reports the wall-clock of regenerating each artefact).
"""

import pytest

from repro.eval.harness import Harness
from repro.sweep import SweepRunner


@pytest.fixture(scope="session")
def harness():
    """One shared harness so datasets/params are materialised once."""
    return Harness()


@pytest.fixture(scope="session")
def runner(harness):
    """One shared sweep runner (serial, uncached) so benchmark numbers
    measure the engine itself, not cache luck; it reuses the session
    harness's materialised datasets and parameters."""
    return SweepRunner(harness=harness)
