"""Fig 3 — speedup over the RTX 2080 Ti for the nine-workload suite.

Paper: GNNerator averages 8.0x over the GPU with feature blocking and
4.2x without; blocking is neutral on the GraphSAGE-Pool workloads and
strongest on Citeseer (huge feature dimension).

The benchmark regenerates every bar plus the Gmean and prints the
measured-vs-paper table along with the Table II/III/IV configuration
preamble.
"""

from repro.config.platforms import platform_table
from repro.eval.experiments import fig3_speedups
from repro.eval.report import format_table, render_fig3
from repro.graph.datasets import dataset_table
from repro.models.zoo import network_table


def test_fig3_speedups(benchmark, runner):
    result = benchmark.pedantic(fig3_speedups, kwargs={"runner": runner},
                                rounds=1, iterations=1)

    print()
    print(format_table(dataset_table(), title="Table II — graph datasets"))
    print()
    print(format_table(network_table(), title="Table III — networks"))
    print()
    print(format_table(platform_table(), title="Table IV — platforms"))
    print()
    print(render_fig3(result))

    by_label = {row.label: row for row in result.rows}
    # Every workload beats the GPU with blocking on.
    for label, row in by_label.items():
        assert row.speedup_blocked > 1.0, label
    # Blocking never hurts and is ~neutral on the pool workloads.
    for label in ("cora-gsage-max", "citeseer-gsage-max",
                  "pub-gsage-max"):
        row = by_label[label]
        ratio = row.speedup_blocked / row.speedup_no_blocking
        assert 0.8 < ratio < 1.3, label
    # Blocking is strongest on citeseer-gcn (paper: 1.0x -> 4.2x).
    row = by_label["citeseer-gcn"]
    assert row.speedup_blocked > 2.5 * row.speedup_no_blocking
    # Gmean: blocked > unblocked (paper: 8.0x vs 4.2x).
    gmean = by_label["Gmean"]
    assert gmean.speedup_blocked > gmean.speedup_no_blocking > 1.0
