"""Fig 5 — where to spend next-generation hardware resources.

Paper: doubling feature-memory bandwidth wins for small hidden
dimensions; doubling the Dense Engine wins at large hidden dimensions
(2.2-2.6x on Cora/Citeseer at 1024); extra Graph Engine memory returns
the least.
"""

from repro.eval.experiments import fig5_scaling
from repro.eval.report import render_fig5


def test_fig5_scaling(benchmark, runner):
    rows = benchmark.pedantic(fig5_scaling, kwargs={"runner": runner},
                              rounds=1, iterations=1)

    print()
    print(render_fig5(rows))

    by_label = {row.label: row.speedups for row in rows}
    # Bandwidth beats dense compute at hidden dim 16...
    for dataset in ("Cora", "Citeseer", "Pubmed"):
        small = by_label[f"{dataset}-16"]
        assert small["more-feature-bandwidth"] > small["more-dense-compute"]
    # ...and the ranking flips at hidden dim 1024 on the big-feature sets.
    for dataset in ("Cora", "Citeseer"):
        large = by_label[f"{dataset}-1024"]
        assert large["more-dense-compute"] > large["more-feature-bandwidth"]
        assert large["more-dense-compute"] > 1.5  # paper: 2.2-2.6x
    # Graph-memory is the weakest investment overall (paper's takeaway).
    gmean = by_label["Gmean"]
    assert gmean["more-graph-memory"] <= gmean["more-dense-compute"]
    assert gmean["more-graph-memory"] <= gmean["more-feature-bandwidth"]
