"""Host-performance trajectory benchmark (standalone entry point).

Times the load → compile → simulate path per workload and writes
``BENCH_host.json`` — the same engine the ``repro perf`` subcommand
drives (see :mod:`repro.eval.hostperf` for the schema). Run from the
repository root::

    PYTHONPATH=src python benchmarks/bench_host_perf.py
    PYTHONPATH=src python benchmarks/bench_host_perf.py \
        --datasets tiny,cora --check BENCH_host.json

pytest-benchmark variants of the same measurements live below so the
benchmark suite tracks them alongside the paper artefacts::

    PYTHONPATH=src python -m pytest benchmarks/bench_host_perf.py
"""

from __future__ import annotations

import sys

from repro.eval.hostperf import measure_workload


def test_host_perf_cora_gcn(benchmark):
    """End-to-end host cost of one cora-gcn point (cold harness)."""
    row = benchmark(measure_workload, "cora", "gcn")
    assert row["cycles"] > 0


def test_host_perf_pubmed_gcn(benchmark):
    """End-to-end host cost of one pubmed-class point — the ISSUE-4
    hot-path target (must stay ~milliseconds with a warm disk cache)."""
    row = benchmark(measure_workload, "pubmed", "gcn")
    assert row["cycles"] > 0


def test_host_perf_flickr_gcn(benchmark):
    """The million-edge scale-up row (ISSUE-5): streamed shard compile
    plus a coalesced replay of a ~900k-edge program, warm disk cache."""
    row = benchmark(measure_workload, "flickr", "gcn")
    assert row["cycles"] > 0


def test_simulate_kernels_flickr(benchmark):
    """Coalesced vs per-operation kernel on the same million-edge
    program — the before/after pair the ISSUE-5 speedup claim cites
    (``repro perf --no-coalesce`` reproduces it from the CLI)."""
    from repro.accelerator import GNNerator
    from repro.config.workload import WorkloadSpec
    from repro.eval.harness import Harness

    harness = Harness()
    spec = WorkloadSpec(dataset="flickr", network="gcn", hidden_dim=16)
    config, block = harness._resolve_config(spec, None)
    program = harness._compiled(spec, config, block)
    accelerator = GNNerator(config)
    fast = benchmark(accelerator.simulate, program)
    slow = accelerator.simulate(program, coalesce=False)
    assert fast.cycles == slow.cycles


def main(argv: list[str] | None = None) -> int:
    from repro.cli import main as cli_main

    return cli_main(["perf"] + list(sys.argv[1:] if argv is None
                                    else argv))


if __name__ == "__main__":
    sys.exit(main())
