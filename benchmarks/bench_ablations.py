"""Design-choice ablations beyond the paper's figures (DESIGN.md §5.4).

These quantify the individual mechanisms the paper's results rest on:
shard traversal order, HyGCN's sparsity elimination, the systolic
dataflow choice, and GPE load balancing.
"""

from repro.baselines.hygcn import HyGCNModel
from repro.config.platforms import gnnerator_config, hygcn_config
from repro.config.workload import (
    DST_STATIONARY,
    SRC_STATIONARY,
    WorkloadSpec,
)
from repro.eval.report import format_table


def test_ablation_traversal_order(benchmark, harness):
    """dst-stationary vs src-stationary on the unblocked dataflow
    (where the shard grid is largest and the order matters most)."""

    def run():
        rows = []
        for dataset in ("cora", "citeseer", "pubmed"):
            per_order = {}
            for order in (DST_STATIONARY, SRC_STATIONARY):
                spec = WorkloadSpec(dataset=dataset, network="gcn",
                                    feature_block=None, traversal=order)
                result = harness.gnnerator_result(spec)
                per_order[order] = result
            rows.append({
                "dataset": dataset,
                "dst cycles": str(per_order[DST_STATIONARY].cycles),
                "src cycles": str(per_order[SRC_STATIONARY].cycles),
                "dst DRAM MB": f"{per_order[DST_STATIONARY].total_dram_bytes / 1e6:.0f}",
                "src DRAM MB": f"{per_order[SRC_STATIONARY].total_dram_bytes / 1e6:.0f}",
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Ablation — shard traversal order "
                                   "(unblocked GCN)"))
    for row in rows:
        assert int(row["dst cycles"]) <= int(row["src cycles"])


def test_ablation_hygcn_sparsity_elimination(benchmark, harness):
    """Sec VI-A: elimination is strongest on Citeseer (paper ~3x there,
    ~1.1x on Cora/Pubmed)."""

    def run():
        rows = []
        for dataset in ("cora", "citeseer", "pubmed"):
            spec = WorkloadSpec(dataset=dataset, network="gcn")
            graph, model = harness.graph(dataset), harness.model(spec)
            with_elim = HyGCNModel(hygcn_config(True)).run(graph, model)
            without = HyGCNModel(hygcn_config(False)).run(graph, model)
            rows.append({
                "dataset": dataset,
                "benefit": f"{without.cycles / with_elim.cycles:.2f}x",
                "rows eliminated":
                    f"{with_elim.elimination_factor:.2f}x",
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Ablation — HyGCN sparsity "
                                   "elimination"))
    benefits = {r["dataset"]: float(r["benefit"][:-1]) for r in rows}
    assert benefits["citeseer"] >= max(benefits["cora"],
                                       benefits["pubmed"])


def test_ablation_dense_dataflow(benchmark, harness):
    """auto (ws|os per GEMM) must never lose to either fixed mapping."""
    import dataclasses

    def run():
        rows = []
        spec = WorkloadSpec(dataset="citeseer", network="graphsage-pool",
                            feature_block=None)
        for flow in ("auto", "ws", "os"):
            base = gnnerator_config(feature_block=None)
            config = dataclasses.replace(
                base, dense=dataclasses.replace(base.dense, dataflow=flow))
            result = harness.gnnerator_result(spec, config)
            rows.append({"dataflow": flow, "cycles": str(result.cycles)})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Ablation — Dense Engine systolic "
                                   "dataflow (unblocked pool workload)"))
    cycles = {r["dataflow"]: int(r["cycles"]) for r in rows}
    assert cycles["auto"] <= cycles["ws"]
    assert cycles["auto"] <= cycles["os"]


def test_ablation_gnnerator_sparsity_elimination(benchmark, harness):
    """The paper's Sec VI-A suggestion, implemented: adding HyGCN-style
    sparsity elimination to GNNerator. It should recover most of
    HyGCN's citeseer advantage in the *unblocked* dataflow and be
    irrelevant once blocking shrinks the grid to S=1."""
    import dataclasses

    def run():
        rows = []
        for dataset in ("cora", "citeseer", "pubmed"):
            for block in (None, 64):
                spec = WorkloadSpec(dataset=dataset, network="gcn",
                                    feature_block=block)
                plain_cfg = gnnerator_config(feature_block=block)
                elim_cfg = dataclasses.replace(
                    plain_cfg, sparsity_elimination=True)
                plain = harness.gnnerator_result(spec, plain_cfg)
                elim = harness.gnnerator_result(spec, elim_cfg)
                rows.append({
                    "dataset": dataset,
                    "B": str(block or "D"),
                    "plain cycles": str(plain.cycles),
                    "elim cycles": str(elim.cycles),
                    "benefit": f"{plain.cycles / elim.cycles:.2f}x",
                })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Ablation — sparsity elimination "
                                   "added to GNNerator (GCN)"))
    unblocked = {r["dataset"]: float(r["benefit"][:-1])
                 for r in rows if r["B"] == "D"}
    blocked = {r["dataset"]: float(r["benefit"][:-1])
               for r in rows if r["B"] == "64"}
    # Helps the unblocked dataflow most on citeseer (HyGCN's trick)...
    assert unblocked["citeseer"] > 1.3
    # ...and is roughly neutral once blocking already shrank the grid.
    for dataset, benefit in blocked.items():
        assert 0.7 < benefit < 1.3, dataset


def test_ablation_energy(benchmark, harness):
    """Extension: event-energy model vs baseline power envelopes."""
    from repro.eval.energy import (
        estimate_energy,
        gpu_energy_joules,
        hygcn_energy_joules,
    )

    def run():
        rows = []
        for dataset in ("cora", "citeseer", "pubmed"):
            spec = WorkloadSpec(dataset=dataset, network="gcn")
            config = gnnerator_config()
            from repro.accelerator import GNNerator
            accelerator = GNNerator(config)
            program = accelerator.compile(
                harness.graph(dataset), harness.model(spec),
                params=harness.params(spec))
            result = accelerator.simulate(program)
            report = estimate_energy(program, result)
            gpu_j = gpu_energy_joules(harness.gpu_seconds(spec))
            hygcn_j = hygcn_energy_joules(harness.hygcn_seconds(spec))
            rows.append({
                "dataset": dataset,
                "GNNerator": f"{report.total_joules * 1e6:8.1f} uJ",
                "HyGCN": f"{hygcn_j * 1e6:8.1f} uJ",
                "GPU": f"{gpu_j * 1e6:8.1f} uJ",
                "avg power":
                    f"{report.average_power_w(result.seconds):.1f} W",
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Extension — energy per inference"))
    for row in rows:
        gnn = float(row["GNNerator"].split()[0])
        gpu = float(row["GPU"].split()[0])
        assert gnn < gpu / 10  # accelerator energy advantage


def test_ablation_gpe_count(benchmark, harness):
    """Inter-node parallelism: halving GPEs should slow aggregation-
    bound workloads but far less than 2x (memory-bound regime)."""
    import dataclasses

    def run():
        spec = WorkloadSpec(dataset="pubmed", network="gcn")
        base = gnnerator_config()
        half = dataclasses.replace(
            base, graph=dataclasses.replace(base.graph, num_gpes=16))
        return (harness.gnnerator_result(spec, base).cycles,
                harness.gnnerator_result(spec, half).cycles)

    full, half = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nAblation — GPEs 32 -> 16 on pubmed-gcn: "
          f"{full} -> {half} cycles ({half / full:.2f}x)")
    assert half >= full
    assert half < 2 * full
