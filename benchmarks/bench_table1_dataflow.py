"""Table I — analytic shard-dataflow costs, validated three ways.

The closed forms (src-stationary: ``S*I + (S-1)^2`` reads /
``S^2-S+1`` writes; dst-stationary: ``(S^2-S+1)*I`` reads / ``S``
writes) must agree with (a) the residency replay and (b) the DMA
traffic of actually-compiled programs, for every dataset.
"""

import pytest

from repro.eval.experiments import table1_dataflow_costs
from repro.eval.report import render_table1


@pytest.mark.parametrize("dataset", ["cora", "citeseer", "pubmed"])
def test_table1_dataflow_costs(benchmark, dataset, runner):
    rows = benchmark.pedantic(table1_dataflow_costs,
                              kwargs={"dataset": dataset,
                                      "feature_block": None,
                                      "runner": runner},
                              rounds=1, iterations=1)

    print()
    print(f"[{dataset}]")
    print(render_table1(rows))

    src_row = next(r for r in rows if r.order == "src-stationary")
    dst_row = next(r for r in rows if r.order == "dst-stationary")
    # Closed forms == replay, both orders.
    assert src_row.matches and dst_row.matches
    # dst-stationary reads more sources but never reloads partials.
    assert dst_row.compiled_partial_bytes == 0
    if src_row.grid_side > 1:
        assert src_row.compiled_partial_bytes > 0
        assert dst_row.compiled_src_bytes > src_row.compiled_src_bytes
        # With equal read/write costs dst-stationary wins overall
        # (why Algorithm 1 is destination-major).
        src_total = (src_row.compiled_src_bytes
                     + src_row.compiled_partial_bytes)
        dst_total = (dst_row.compiled_src_bytes
                     + dst_row.compiled_partial_bytes)
        assert dst_total < src_total
