"""Table V — GNNerator vs HyGCN on GCN.

Paper: with feature blocking GNNerator wins 3.8x / 3.2x / 2.3x on
Cora / Citeseer / Pubmed; without it the two designs are comparable
(1.8x / 0.8x / 1.0x) and HyGCN's sparsity elimination wins Citeseer.
"""

from repro.eval.experiments import table5_hygcn
from repro.eval.report import render_table5


def test_table5_hygcn(benchmark, runner):
    rows = benchmark.pedantic(table5_hygcn, kwargs={"runner": runner},
                              rounds=1, iterations=1)

    print()
    print(render_table5(rows))

    by_dataset = {row.dataset: row for row in rows}
    # With blocking, GNNerator wins every dataset (paper: 2.3-3.8x).
    for dataset, row in by_dataset.items():
        assert row.speedup_blocked > 1.5, dataset
    # Without blocking the designs are comparable, and HyGCN's sparsity
    # elimination takes Citeseer (paper: 0.8x) — the crossover.
    assert by_dataset["citeseer"].speedup_no_blocking < 1.0
    assert by_dataset["cora"].speedup_no_blocking > 1.0
    # Blocking is what separates the designs (the paper's conclusion).
    for dataset, row in by_dataset.items():
        assert row.speedup_blocked > row.speedup_no_blocking, dataset
