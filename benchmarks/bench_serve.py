"""Serving-path benchmark: daemon latency under Poisson load.

Boots a ``repro serve`` daemon in-process, fires a warm-up burst, then
measures a sustained Poisson burst end-to-end (client connect →
response body) and writes ``BENCH_serve.json`` — the serving
counterpart of ``BENCH_host.json``. Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py \
        --requests 100 --rate 100 --output BENCH_serve.json

Against an *already running* daemon, use the CLI instead
(``repro loadtest --url http://...``) — this script owns its own
daemon so CI gets a hermetic measurement.

A pytest-benchmark variant tracks the warm single-request path
alongside the paper artefacts::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import urllib.request


def _booted_daemon(workers: int = 2, depth: int = 32):
    """(httpd, base_url, thread) for a fresh in-process daemon."""
    from repro.serve import ServeState, make_server

    state = ServeState(seed=0, workers=workers, depth=depth,
                       cache_dir=None)
    httpd = make_server(state, "127.0.0.1", 0)
    thread = threading.Thread(target=httpd.serve_forever,
                              kwargs={"poll_interval": 0.05},
                              daemon=True)
    thread.start()
    return httpd, f"http://127.0.0.1:{httpd.server_address[1]}", thread


def _shutdown(httpd) -> None:
    httpd.state.drain(10.0)
    httpd.shutdown()
    httpd.server_close()


def test_serve_warm_run_latency(benchmark):
    """Warm daemon `run` round trip — the p50 < 50ms acceptance path
    (cached program + pinned dataset; only simulate + HTTP remain)."""
    httpd, base, _ = _booted_daemon()
    body = json.dumps({"dataset": "tiny", "network": "gcn"}).encode()

    def post():
        request = urllib.request.Request(
            f"{base}/run", data=body,
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=60) as response:
            return json.loads(response.read().decode())

    post()  # warm: first request pays the only compile
    try:
        payload = benchmark(post)
        assert payload["result"]["cycles"] > 0
    finally:
        _shutdown(httpd)


def main(argv: list[str] | None = None) -> int:
    from repro.serve.loadtest import (
        render,
        run_loadtest,
        write_serve_benchmark,
    )

    parser = argparse.ArgumentParser(
        description="Poisson load test against a fresh in-process "
                    "daemon; writes BENCH_serve.json")
    parser.add_argument("--requests", type=int, default=50)
    parser.add_argument("--rate", type=float, default=50.0)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--depth", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--dataset", default="tiny")
    parser.add_argument("--network", default="gcn")
    parser.add_argument("--warmup", type=int, default=4,
                        help="warm-up requests before measuring "
                             "(default 4; the first pays the compile)")
    parser.add_argument("--output", "-o", default="BENCH_serve.json",
                        help="payload destination (empty to skip)")
    args = parser.parse_args(argv)

    httpd, base, _ = _booted_daemon(workers=args.workers,
                                    depth=args.depth)
    body = {"dataset": args.dataset, "network": args.network}
    try:
        if args.warmup:
            run_loadtest(base, body=body, requests=args.warmup,
                         rate=args.rate, concurrency=args.concurrency,
                         seed=args.seed)
        payload = run_loadtest(base, body=body, requests=args.requests,
                               rate=args.rate,
                               concurrency=args.concurrency,
                               seed=args.seed)
    finally:
        _shutdown(httpd)
    print(render(payload))
    if args.output:
        write_serve_benchmark(payload, args.output)
        print(f"wrote {args.output}")
    # A warm burst must never recompile: the daemon's whole point.
    if args.warmup and payload["stats_delta"]["full_lowerings"]:
        print("error: warm burst ran "
              f"{payload['stats_delta']['full_lowerings']} full "
              "lowering(s); expected 0", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
