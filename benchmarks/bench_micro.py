"""Microbenchmarks of the framework itself (compiler and simulator
throughput) — useful when optimising the reproduction, and a guard
against order-of-magnitude regressions in the toolchain.
"""

from repro.accelerator import GNNerator
from repro.compiler.lowering import compile_workload
from repro.compiler.runtime import run_functional
from repro.config.platforms import gnnerator_config
from repro.graph.datasets import load_dataset
from repro.graph.partition import plan_shards
from repro.models.layers import init_parameters
from repro.models.reference import reference_forward
from repro.models.zoo import build_network


def test_compile_throughput(benchmark):
    """Compiling cora-gcn (blocked): the full lowering pipeline."""
    graph = load_dataset("cora")
    model = build_network("gcn", graph.feature_dim, 7)
    params = init_parameters(model)
    config = gnnerator_config()
    program = benchmark(compile_workload, graph, model, config,
                        params=params)
    assert program.num_operations > 0


def test_simulation_throughput(benchmark):
    """DES replay of a precompiled cora-gcn program."""
    graph = load_dataset("cora")
    model = build_network("gcn", graph.feature_dim, 7)
    accelerator = GNNerator(gnnerator_config())
    program = accelerator.compile(graph, model)
    result = benchmark(accelerator.simulate, program)
    assert result.cycles > 0


def test_sharding_throughput(benchmark):
    """Scattering pubmed's 88k edges into the 2-D grid."""
    graph = load_dataset("pubmed")
    config = gnnerator_config()
    grid = benchmark(plan_shards, graph, config.graph, 64)
    assert grid.num_edges == graph.num_edges


def test_reference_forward_throughput(benchmark):
    """numpy reference forward on cora (the functional ground truth)."""
    graph = load_dataset("cora")
    model = build_network("gcn", graph.feature_dim, 7)
    params = init_parameters(model)
    out = benchmark(reference_forward, model, graph, params)
    assert out.shape == (graph.num_nodes, 7)


def test_functional_runtime_throughput(benchmark):
    """Interpreting the compiled cora-gcn program functionally."""
    graph = load_dataset("cora")
    model = build_network("gcn", graph.feature_dim, 7)
    config = gnnerator_config()
    params = init_parameters(model)
    program = compile_workload(graph, model, config, params=params)
    out = benchmark(run_functional, program, graph)
    assert out.shape == (graph.num_nodes, 7)
