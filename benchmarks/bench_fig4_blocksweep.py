"""Fig 4 — feature-block size sweep (B in {32..4096}).

Paper: a smaller B is generally better, but dropping below the Dense
Engine's systolic width (64) under-utilises the array — B=32 is slower
than B=64 — and very large blocks degrade towards the conventional
dataflow (up to several-x slowdown).
"""

from repro.eval.experiments import fig4_block_sweep
from repro.eval.report import render_fig4


def test_fig4_block_sweep(benchmark, runner):
    points = benchmark.pedantic(fig4_block_sweep,
                                kwargs={"runner": runner},
                                rounds=1, iterations=1)

    print()
    print(render_fig4(points))

    by_block = {p.block: p.slowdown for p in points}
    # B = 64 is the optimum (the paper's chosen operating point).
    assert by_block[64] == 1.0
    assert all(s >= 0.99 for s in by_block.values())
    # The B = 32 under-utilisation kink.
    assert by_block[32] > 1.15
    # Monotonic degradation above the optimum.
    assert by_block[128] < by_block[1024] < by_block[4096]
    assert by_block[4096] > 1.4
