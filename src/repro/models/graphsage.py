"""GraphSAGE with mean aggregation (Eq 1 of the paper).

``z̄ = mean{h_v : v in N(u) ∪ u}``, then ``h' = act(W · (z̄ ∥ h))``: the
mean over the closed neighbourhood is concatenated with the node's own
feature before the linear layer, so the weight matrix has ``2 * in_dim``
input columns. Aggregation precedes extraction — a *graph-first* layer.
"""

from __future__ import annotations

from repro.models.stages import AggregateStage, ExtractStage, GNNLayer


def graphsage_layer(in_dim: int, out_dim: int, activation: str = "relu",
                    name: str = "gsage") -> GNNLayer:
    """One GraphSAGE-mean layer."""
    return GNNLayer(
        name=name,
        stages=(
            AggregateStage(dim=in_dim, reduce="sum", normalization="mean",
                           include_self=True),
            ExtractStage(in_dim=in_dim, out_dim=out_dim,
                         activation=activation, concat_self=True,
                         self_dim=in_dim, name=f"{name}-linear"),
        ),
    )
