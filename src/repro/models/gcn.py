"""GCN (Kipf & Welling) expressed in the stage IR.

One layer computes ``H' = act(Â H W)`` with the symmetrically normalised,
self-loop-augmented adjacency ``Â = D̂^-1/2 (A + I) D̂^-1/2``. In the
paper's execution order (Algorithm 1) the aggregation ``Â H`` runs first
on the Graph Engine, then the Dense Engine applies ``W`` — a *graph-first*
layer.
"""

from __future__ import annotations

from repro.models.stages import AggregateStage, ExtractStage, GNNLayer


def gcn_layer(in_dim: int, out_dim: int, activation: str = "relu",
              name: str = "gcn") -> GNNLayer:
    """One graph-convolution layer: sym-normalised sum, then a linear."""
    return GNNLayer(
        name=name,
        stages=(
            AggregateStage(dim=in_dim, reduce="sum", normalization="sym",
                           include_self=True),
            ExtractStage(in_dim=in_dim, out_dim=out_dim,
                         activation=activation, name=f"{name}-linear"),
        ),
    )
