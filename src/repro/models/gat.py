"""Single-head GAT (Veličković et al.) expressed in the stage IR.

One layer first projects every node feature, ``z = act(W h)``, then
aggregates with *computed* per-edge weights: attention coefficients
``α(u, v) = softmax_v(LeakyReLU(a_src · z_u + a_dst · z_v))`` over each
node's incoming edges plus its own ``(v, v)`` pair (the customary
added-self-loop formulation, expressed here through ``include_self``
instead of mutating the graph).

The projection runs on the Dense Engine *before* the aggregation — like
GraphSAGE-pool this is a *dense-first* layer — but unlike every Table III
network the Graph Engine's Apply units consume per-edge weights that the
compiler must derive from the projected features, not from graph
structure alone. That makes GAT the scenario that stresses the
edge-information path of the accelerator model (GNNBuilder and GenGNN
make the same observation for generic GNN accelerator generators).
"""

from __future__ import annotations

from repro.models.stages import AggregateStage, ExtractStage, GNNLayer


def gat_layer(in_dim: int, out_dim: int, activation: str = "relu",
              leaky_slope: float = 0.2, name: str = "gat") -> GNNLayer:
    """One single-head graph-attention layer.

    The nonlinearity is applied by the projection (the attention logits
    therefore see the activated features); the attention-weighted sum is
    the layer output.
    """
    return GNNLayer(
        name=name,
        stages=(
            ExtractStage(in_dim=in_dim, out_dim=out_dim,
                         activation=activation, name=f"{name}-proj"),
            AggregateStage(dim=out_dim, reduce="sum",
                           normalization="none", include_self=True,
                           weighting="attention",
                           leaky_slope=leaky_slope),
        ),
    )
