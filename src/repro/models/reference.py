"""Functional reference executor: ground truth for every other path.

Runs a :class:`~repro.models.stages.GNNModel` over a graph with plain
numpy segment reductions — no sharding, no blocking, no hardware model. The compiled,
sharded, dimension-blocked runtime (:mod:`repro.compiler.runtime`) must
reproduce these outputs to float tolerance; that equivalence is the
central functional invariant of the repository.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.models.layers import Parameters, dense_forward
from repro.models.stages import (
    AggregateStage,
    ExtractStage,
    GNNModel,
    ModelError,
)


def aggregate_reference(stage: AggregateStage, graph: Graph,
                        h: np.ndarray,
                        attention: tuple[np.ndarray, np.ndarray] | None
                        = None) -> np.ndarray:
    """Dense ``(N, dim)`` aggregation of ``h`` along the graph's edges.

    Attention stages additionally need the learned ``(a_src, a_dst)``
    vectors to compute their softmax coefficients from ``h``.
    """
    if h.shape != (graph.num_nodes, stage.dim):
        raise ModelError(
            f"aggregate stage expected features of shape "
            f"{(graph.num_nodes, stage.dim)} (nodes, dim), got "
            f"{tuple(h.shape)}")
    weights, self_weights = stage.compute_weights(graph, features=h,
                                                  attention=attention)
    return apply_aggregate(graph, h, stage.reduce, weights, self_weights)


def apply_aggregate(graph: Graph, h: np.ndarray, reduce: str,
                    weights: np.ndarray,
                    self_weights: np.ndarray | None) -> np.ndarray:
    """Aggregate ``h`` with explicit per-edge / per-node weights.

    Shared by :func:`aggregate_reference` and the compiler's
    shadow-feature pass, so attention weights baked at compile time are
    bit-identical to the ones the reference computes.
    """
    if reduce == "sum":
        return _weighted_sum(graph, h, weights, self_weights)
    return _segment_max(graph, h, weights, self_weights)


def _weighted_sum(graph: Graph, h: np.ndarray, weights: np.ndarray,
                  self_weights: np.ndarray | None) -> np.ndarray:
    out = np.zeros((graph.num_nodes, h.shape[1]), dtype=np.float64)
    if graph.num_edges:
        # Per-destination segment sums over the graph's cached
        # dst-segment view — one gather + one reduceat, float64
        # accumulation, no sparse-matrix construction per call.
        order, starts, segment_dst = graph.dst_segments
        values = (h.astype(np.float64)[graph.src[order]]
                  * weights.astype(np.float64)[order][:, None])
        out[segment_dst] = np.add.reduceat(values, starts, axis=0)
    if self_weights is not None:
        out += self_weights[:, None].astype(np.float64) * h
    return out.astype(np.float32)


def _segment_max(graph: Graph, h: np.ndarray, weights: np.ndarray,
                 self_weights: np.ndarray | None) -> np.ndarray:
    if self_weights is not None:
        out = h * self_weights[:, None]
    else:
        # Nodes with no in-edges keep a zero vector (matches DGL's
        # zero-initialised max pooling on isolated nodes).
        out = np.zeros_like(h)
    if graph.num_edges:
        order, starts, segment_dst = graph.dst_segments
        values = h[graph.src[order]] * weights[order][:, None]
        segment_max = np.maximum.reduceat(values, starts, axis=0)
        if self_weights is not None:
            out[segment_dst] = np.maximum(out[segment_dst], segment_max)
        else:
            out[segment_dst] = segment_max
    return out.astype(np.float32)


def reference_forward(model: GNNModel, graph: Graph, params: Parameters,
                      features: np.ndarray | None = None) -> np.ndarray:
    """Run the full model; returns the final ``(N, out_dim)`` features."""
    h = graph.features if features is None else np.asarray(
        features, dtype=np.float32)
    if h.shape[1] != model.in_dim:
        raise ModelError(
            f"model {model.name!r} expects features of shape "
            f"{(graph.num_nodes, model.in_dim)} (nodes, in_dim), got "
            f"{tuple(h.shape)}")
    for layer_index, layer in enumerate(model.layers):
        layer_input = h
        for stage_index, stage in enumerate(layer.stages):
            if isinstance(stage, AggregateStage):
                h = aggregate_reference(
                    stage, graph, h,
                    attention=(params.attention(layer_index, stage_index)
                               if stage.needs_features else None))
            elif isinstance(stage, ExtractStage):
                x = h
                if stage.concat_self:
                    x = np.concatenate([h, layer_input], axis=1)
                h = dense_forward(stage, x,
                                  params.weight(layer_index, stage_index),
                                  params.bias(layer_index, stage_index))
            else:  # pragma: no cover - the Stage union is closed
                raise ModelError(f"unknown stage kind {stage!r}")
    return h


def layer_intermediates(model: GNNModel, graph: Graph,
                        params: Parameters) -> list[np.ndarray]:
    """Per-layer outputs (useful for debugging blocked execution)."""
    outputs = []
    h = graph.features
    for layer_index, layer in enumerate(model.layers):
        layer_input = h
        for stage_index, stage in enumerate(layer.stages):
            if isinstance(stage, AggregateStage):
                h = aggregate_reference(
                    stage, graph, h,
                    attention=(params.attention(layer_index, stage_index)
                               if stage.needs_features else None))
            else:
                x = h
                if stage.concat_self:
                    x = np.concatenate([h, layer_input], axis=1)
                h = dense_forward(stage, x,
                                  params.weight(layer_index, stage_index),
                                  params.bias(layer_index, stage_index))
        outputs.append(h)
    return outputs
