"""GIN (Xu et al., "How Powerful are GNNs?") expressed in the stage IR.

One layer computes ``h' = MLP((1 + ε) · h_v + Σ_{u ∈ N(v)} h_u)``: an
isotropic, un-normalised neighbourhood sum whose self term is scaled by
``1 + ε``, followed by a two-layer MLP. In the canonical aggregation form
this is a unit-weight sum with self weight ``1 + ε`` — pure Graph Engine
work — while the MLP makes the layer *extract-heavy*: two back-to-back
Dense Engine stages per layer, the workload mix GenGNN's isotropic
category stresses.

Aggregation precedes extraction — a *graph-first* layer, like GCN, but
with two chained dense stages consuming the aggregated features.
"""

from __future__ import annotations

from repro.models.stages import AggregateStage, ExtractStage, GNNLayer


def gin_layer(in_dim: int, out_dim: int, activation: str = "relu",
              epsilon: float = 0.1, mlp_hidden: int | None = None,
              name: str = "gin") -> GNNLayer:
    """One GIN layer: ε-scaled self sum, then a 2-layer MLP.

    ``mlp_hidden`` is the MLP's hidden width (defaults to ``out_dim``,
    the customary configuration); ``activation`` is the MLP's *output*
    activation — the hidden MLP layer always uses ReLU.
    """
    if mlp_hidden is None:
        mlp_hidden = out_dim
    return GNNLayer(
        name=name,
        stages=(
            AggregateStage(dim=in_dim, reduce="sum", normalization="none",
                           include_self=True, epsilon=epsilon),
            ExtractStage(in_dim=in_dim, out_dim=mlp_hidden,
                         activation="relu", name=f"{name}-mlp0"),
            ExtractStage(in_dim=mlp_hidden, out_dim=out_dim,
                         activation=activation, name=f"{name}-mlp1"),
        ),
    )
