"""GNN model zoo: stage IR, networks (Table III + GAT/GIN extensions),
reference executor."""

from repro.models.accounting import (
    KernelProfile,
    aggregate_kernels,
    extract_kernels,
    model_bytes,
    model_flops,
    model_kernels,
)
from repro.models.gat import gat_layer
from repro.models.gcn import gcn_layer
from repro.models.gin import gin_layer
from repro.models.graphsage import graphsage_layer
from repro.models.graphsage_pool import graphsage_pool_layer
from repro.models.layers import (
    ACTIVATIONS,
    Parameters,
    apply_activation,
    dense_forward,
    glorot_uniform,
    init_parameters,
    relu,
    sigmoid,
)
from repro.models.reference import (
    aggregate_reference,
    layer_intermediates,
    reference_forward,
)
from repro.models.stages import (
    AggregateStage,
    ExtractStage,
    GNNLayer,
    GNNModel,
    ModelError,
    Stage,
)
from repro.models.zoo import (
    NETWORK_NAMES,
    build_network,
    layer_factory,
    network_table,
)

__all__ = [
    "KernelProfile",
    "aggregate_kernels",
    "extract_kernels",
    "model_bytes",
    "model_flops",
    "model_kernels",
    "gat_layer",
    "gcn_layer",
    "gin_layer",
    "graphsage_layer",
    "graphsage_pool_layer",
    "ACTIVATIONS",
    "Parameters",
    "apply_activation",
    "dense_forward",
    "glorot_uniform",
    "init_parameters",
    "relu",
    "sigmoid",
    "aggregate_reference",
    "layer_intermediates",
    "reference_forward",
    "AggregateStage",
    "ExtractStage",
    "GNNLayer",
    "GNNModel",
    "ModelError",
    "Stage",
    "NETWORK_NAMES",
    "build_network",
    "layer_factory",
    "network_table",
]
