"""GraphSAGE with max-pool aggregation (Eq 2 of the paper).

``z = act(W_pool · h)`` transforms every node feature *before*
aggregation, then ``z̄ = max{z_v : v in N(u) ∪ u}`` pools element-wise,
and ``h' = act(W · (z̄ ∥ h))`` combines with the raw feature.

The pool transform runs on the Dense Engine *before* any aggregation, so
this is a *dense-first* layer — "the feature extraction for z is consumed
by the aggregation" (Sec II-A). This is the workload HyGCN's fixed
aggregation-is-producer pipeline cannot express (Sec I, VII), and the
reason the GNNerator Controller supports both producer orders.
"""

from __future__ import annotations

from repro.models.stages import AggregateStage, ExtractStage, GNNLayer


def graphsage_pool_layer(in_dim: int, out_dim: int,
                         activation: str = "relu",
                         pool_dim: int | None = None,
                         name: str = "gsage-max") -> GNNLayer:
    """One GraphSAGE-pool layer.

    ``pool_dim`` is the dimensionality of the pooled representation
    (defaults to ``out_dim``, the customary DGL configuration).
    """
    if pool_dim is None:
        pool_dim = out_dim
    return GNNLayer(
        name=name,
        stages=(
            ExtractStage(in_dim=in_dim, out_dim=pool_dim,
                         activation="relu", name=f"{name}-pool"),
            AggregateStage(dim=pool_dim, reduce="max",
                           normalization="none", include_self=True),
            ExtractStage(in_dim=pool_dim, out_dim=out_dim,
                         activation=activation, concat_self=True,
                         self_dim=in_dim, name=f"{name}-linear"),
        ),
    )
