"""Network factory: the Table III benchmarks plus zoo extensions.

All networks use one hidden layer of dimension 16 by default: an input
layer ``D -> hidden`` followed by an output layer
``hidden -> num_classes`` (activation on the hidden layer only). The
paper evaluates GCN, GraphSAGE-mean and GraphSAGE-pool (Table III); GAT
(attention-weighted aggregation) and GIN (isotropic ε-sum with an MLP
extract) extend the zoo beyond the paper's workloads — every network
here is held to the same acceptance bar, the differential harness in
``tests/test_differential.py``.
"""

from __future__ import annotations

from typing import Callable

from repro.models.gat import gat_layer
from repro.models.gcn import gcn_layer
from repro.models.gin import gin_layer
from repro.models.graphsage import graphsage_layer
from repro.models.graphsage_pool import graphsage_pool_layer
from repro.models.stages import GNNLayer, GNNModel, ModelError

LayerFactory = Callable[..., GNNLayer]

_LAYER_FACTORIES: dict[str, LayerFactory] = {
    "gcn": gcn_layer,
    "graphsage": graphsage_layer,
    "graphsage-pool": graphsage_pool_layer,
    "gat": gat_layer,
    "gin": gin_layer,
}

NETWORK_NAMES = tuple(sorted(_LAYER_FACTORIES))


def layer_factory(network: str) -> LayerFactory:
    try:
        return _LAYER_FACTORIES[network]
    except KeyError:
        known = ", ".join(NETWORK_NAMES)
        raise ModelError(
            f"unknown network {network!r}; known networks: {known}"
        ) from None


def build_network(network: str, input_dim: int, num_classes: int,
                  hidden_dim: int = 16,
                  num_hidden_layers: int = 1) -> GNNModel:
    """Build a Table III network: ``num_hidden_layers`` hidden layers of
    width ``hidden_dim`` plus one output layer."""
    if input_dim <= 0 or num_classes <= 0 or hidden_dim <= 0:
        raise ModelError("network dimensions must be positive")
    if num_hidden_layers < 0:
        raise ModelError("num_hidden_layers cannot be negative")
    factory = layer_factory(network)
    layers: list[GNNLayer] = []
    current = input_dim
    for index in range(num_hidden_layers):
        layers.append(factory(current, hidden_dim, activation="relu",
                              name=f"{network}-l{index}"))
        current = hidden_dim
    layers.append(factory(current, num_classes, activation="none",
                          name=f"{network}-out"))
    return GNNModel(name=network, layers=tuple(layers))


#: Table III's paper networks, in its row order; everything else in the
#: factory registry is a zoo extension and renders after them.
_PAPER_NETWORKS = ("gcn", "graphsage", "graphsage-pool")
_PRETTY_NAMES = {"gcn": "GCN", "graphsage": "Graphsage",
                 "graphsage-pool": "GraphsagePool",
                 "gat": "GAT", "gin": "GIN"}


def network_table() -> list[dict[str, str]]:
    """Render Table III as report rows.

    Derived from the factory registry, so registering a new network is
    the only step needed to surface it here; extensions beyond the
    paper's trio are marked as such.
    """
    extensions = [name for name in NETWORK_NAMES
                  if name not in _PAPER_NETWORKS]
    rows = []
    for name in (*_PAPER_NETWORKS, *extensions):
        pretty = _PRETTY_NAMES.get(name, name)
        if name in extensions:
            pretty += " (extension)"
        rows.append({"Network": pretty, "Hidden Layers": "1",
                     "Hidden Dimension": "16"})
    return rows
