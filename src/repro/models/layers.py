"""Dense-layer primitives shared by the reference models and the runtime.

Activations are implemented once here so the Dense Engine's activation
unit, the functional runtime, and the numpy reference all apply exactly
the same function (bit-identical outputs are asserted in tests).
"""

from __future__ import annotations

import numpy as np

from repro.models.stages import (
    AggregateStage,
    ExtractStage,
    GNNModel,
    ModelError,
)


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    # Split by sign for numerical stability at large |x|.
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out.astype(x.dtype)


def identity(x: np.ndarray) -> np.ndarray:
    return x


ACTIVATIONS = {"relu": relu, "sigmoid": sigmoid, "none": identity}


def apply_activation(name: str, x: np.ndarray) -> np.ndarray:
    try:
        return ACTIVATIONS[name](x)
    except KeyError:
        raise ModelError(f"unknown activation {name!r}") from None


def glorot_uniform(shape: tuple[int, int],
                   rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform init, the DGL default for graph conv layers."""
    fan_in, fan_out = shape
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


class Parameters:
    """Weight storage for a model, keyed by ``(layer_index, stage_index)``.

    :class:`ExtractStage` entries have a weight matrix of
    ``stage.weight_shape`` and (optionally) a bias of ``out_dim``;
    attention :class:`AggregateStage` entries have a learned
    ``(a_src, a_dst)`` vector pair of the stage dimensionality.
    """

    def __init__(self) -> None:
        self._weights: dict[tuple[int, int], np.ndarray] = {}
        self._biases: dict[tuple[int, int], np.ndarray | None] = {}
        self._attention: dict[tuple[int, int],
                              tuple[np.ndarray, np.ndarray]] = {}

    def set(self, key: tuple[int, int], weight: np.ndarray,
            bias: np.ndarray | None) -> None:
        self._weights[key] = np.asarray(weight, dtype=np.float32)
        self._biases[key] = (None if bias is None
                             else np.asarray(bias, dtype=np.float32))

    def set_attention(self, key: tuple[int, int], a_src: np.ndarray,
                      a_dst: np.ndarray) -> None:
        self._attention[key] = (np.asarray(a_src, dtype=np.float32),
                                np.asarray(a_dst, dtype=np.float32))

    def weight(self, layer: int, stage: int) -> np.ndarray:
        try:
            return self._weights[(layer, stage)]
        except KeyError:
            raise ModelError(
                f"no weights for layer {layer} stage {stage}") from None

    def bias(self, layer: int, stage: int) -> np.ndarray | None:
        return self._biases.get((layer, stage))

    def attention(self, layer: int,
                  stage: int) -> tuple[np.ndarray, np.ndarray]:
        try:
            return self._attention[(layer, stage)]
        except KeyError:
            raise ModelError(
                f"no attention vectors for layer {layer} stage "
                f"{stage}") from None

    def keys(self) -> list[tuple[int, int]]:
        return sorted(self._weights)

    def attention_keys(self) -> list[tuple[int, int]]:
        return sorted(self._attention)

    @property
    def total_bytes(self) -> int:
        total = sum(w.nbytes for w in self._weights.values())
        total += sum(b.nbytes for b in self._biases.values()
                     if b is not None)
        total += sum(a.nbytes + b.nbytes
                     for a, b in self._attention.values())
        return total


def init_parameters(model: GNNModel, seed: int = 0) -> Parameters:
    """Deterministic Glorot initialisation of every extract stage's
    weights and every attention stage's ``a_src`` / ``a_dst`` vectors."""
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    params = Parameters()
    for layer_index, layer in enumerate(model.layers):
        for stage_index, stage in enumerate(layer.stages):
            if isinstance(stage, ExtractStage):
                weight = glorot_uniform(stage.weight_shape, rng)
                bias = (np.zeros(stage.out_dim, dtype=np.float32)
                        if stage.bias else None)
                params.set((layer_index, stage_index), weight, bias)
            elif (isinstance(stage, AggregateStage)
                    and stage.needs_features):
                a_src = glorot_uniform((stage.dim, 1), rng)[:, 0]
                a_dst = glorot_uniform((stage.dim, 1), rng)[:, 0]
                params.set_attention((layer_index, stage_index),
                                     a_src, a_dst)
    return params


def dense_forward(stage: ExtractStage, x: np.ndarray,
                  weight: np.ndarray,
                  bias: np.ndarray | None) -> np.ndarray:
    """``act(x @ W + b)`` with shape checking — the Dense Engine's math."""
    if x.shape[1] != stage.weight_in_dim:
        raise ModelError(
            f"extract {stage.name!r} expected {stage.weight_in_dim} input "
            f"columns, got {x.shape[1]}")
    out = x @ weight
    if bias is not None:
        out = out + bias
    return apply_activation(stage.activation, out)
