"""Kernel-level operation accounting for a GNN forward pass.

The analytic baseline models (GPU, HyGCN) need to know, for every stage,
how many FLOPs are executed and how many bytes move with regular
(streaming) versus irregular (gather/scatter) access patterns — and, for
the GPU, how many distinct framework kernels are launched. This module
derives those counts from the stage IR, mirroring how DGL-on-PyTorch
executes each stage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.accelerator import ELEM_BYTES
from repro.graph.graph import Graph
from repro.models.stages import (
    AggregateStage,
    ExtractStage,
    GNNModel,
    ModelError,
)


@dataclass(frozen=True)
class KernelProfile:
    """One launched kernel: FLOPs plus bytes split by access pattern."""

    name: str
    flops: float = 0.0
    regular_read_bytes: float = 0.0
    regular_write_bytes: float = 0.0
    irregular_read_bytes: float = 0.0
    irregular_write_bytes: float = 0.0
    #: Rows of parallel work (used for occupancy modelling on the GPU).
    parallel_rows: int = 1

    @property
    def total_bytes(self) -> float:
        return (self.regular_read_bytes + self.regular_write_bytes
                + self.irregular_read_bytes + self.irregular_write_bytes)


def aggregate_kernels(stage: AggregateStage, graph: Graph,
                      prefix: str) -> list[KernelProfile]:
    """Kernels DGL launches for one aggregation stage.

    Sum/mean aggregation maps to a fused SpMM (gather + accumulate);
    max-pooling maps to copy_u (edge materialisation) followed by a
    segmented max — one extra pass over the edge tensor.
    """
    nodes, edges, dim = graph.num_nodes, graph.num_edges, stage.dim
    feat = dim * ELEM_BYTES
    kernels = [KernelProfile(
        name=f"{prefix}/degree-norm",
        flops=2.0 * nodes,
        regular_read_bytes=nodes * ELEM_BYTES,
        regular_write_bytes=nodes * ELEM_BYTES,
        parallel_rows=nodes,
    )]
    if stage.weighting == "attention":
        # GAT's computed weights: per-node score reductions
        # (a_src · h, a_dst · h), then the per-edge gather + LeakyReLU +
        # segment softmax DGL runs as u_add_v / edge_softmax kernels.
        kernels.append(KernelProfile(
            name=f"{prefix}/attn-scores",
            flops=4.0 * nodes * dim,
            regular_read_bytes=float(nodes) * feat,
            regular_write_bytes=2.0 * nodes * ELEM_BYTES,
            parallel_rows=nodes,
        ))
        kernels.append(KernelProfile(
            name=f"{prefix}/edge-softmax",
            flops=8.0 * edges,
            irregular_read_bytes=2.0 * edges * ELEM_BYTES,
            regular_write_bytes=float(edges) * ELEM_BYTES,
            parallel_rows=max(edges, 1),
        ))
    if stage.reduce == "sum":
        kernels.append(KernelProfile(
            name=f"{prefix}/spmm",
            flops=2.0 * edges * dim + (2.0 * nodes * dim
                                       if stage.include_self else 0.0),
            irregular_read_bytes=float(edges) * feat,
            regular_read_bytes=float(nodes) * feat,
            irregular_write_bytes=0.0,
            regular_write_bytes=float(nodes) * feat,
            parallel_rows=nodes,
        ))
    else:
        kernels.append(KernelProfile(
            name=f"{prefix}/copy-u",
            irregular_read_bytes=float(edges) * feat,
            regular_write_bytes=float(edges) * feat,
            parallel_rows=edges,
        ))
        kernels.append(KernelProfile(
            name=f"{prefix}/segment-max",
            flops=1.0 * edges * dim,
            regular_read_bytes=float(edges) * feat,
            regular_write_bytes=float(nodes) * feat,
            parallel_rows=nodes,
        ))
        if stage.include_self:
            kernels.append(KernelProfile(
                name=f"{prefix}/self-max",
                flops=1.0 * nodes * dim,
                regular_read_bytes=2.0 * nodes * feat,
                regular_write_bytes=float(nodes) * feat,
                parallel_rows=nodes,
            ))
    return kernels


def extract_kernels(stage: ExtractStage, graph: Graph,
                    prefix: str) -> list[KernelProfile]:
    """Kernels for one dense stage: optional concat, GEMM, activation."""
    nodes = graph.num_nodes
    kernels = []
    if stage.concat_self:
        concat_bytes = float(nodes) * stage.weight_in_dim * ELEM_BYTES
        kernels.append(KernelProfile(
            name=f"{prefix}/concat",
            regular_read_bytes=concat_bytes,
            regular_write_bytes=concat_bytes,
            parallel_rows=nodes,
        ))
    in_bytes = float(nodes) * stage.weight_in_dim * ELEM_BYTES
    weight_bytes = float(stage.weight_in_dim) * stage.out_dim * ELEM_BYTES
    out_bytes = float(nodes) * stage.out_dim * ELEM_BYTES
    kernels.append(KernelProfile(
        name=f"{prefix}/gemm",
        flops=float(stage.flops(nodes)),
        regular_read_bytes=in_bytes + weight_bytes,
        regular_write_bytes=out_bytes,
        parallel_rows=nodes,
    ))
    if stage.activation != "none" or stage.bias:
        kernels.append(KernelProfile(
            name=f"{prefix}/bias-act",
            flops=2.0 * nodes * stage.out_dim,
            regular_read_bytes=out_bytes,
            regular_write_bytes=out_bytes,
            parallel_rows=nodes,
        ))
    return kernels


def model_kernels(model: GNNModel, graph: Graph) -> list[KernelProfile]:
    """The full kernel sequence of one forward pass of ``model``."""
    kernels: list[KernelProfile] = []
    for layer_index, layer in enumerate(model.layers):
        for stage_index, stage in enumerate(layer.stages):
            prefix = f"l{layer_index}s{stage_index}"
            if isinstance(stage, AggregateStage):
                kernels.extend(aggregate_kernels(stage, graph, prefix))
            elif isinstance(stage, ExtractStage):
                kernels.extend(extract_kernels(stage, graph, prefix))
            else:  # pragma: no cover - closed union
                raise ModelError(f"unknown stage {stage!r}")
    return kernels


def model_flops(model: GNNModel, graph: Graph) -> float:
    """Total forward-pass FLOPs (for roofline sanity checks)."""
    return sum(k.flops for k in model_kernels(model, graph))


def model_bytes(model: GNNModel, graph: Graph) -> float:
    """Total forward-pass DRAM traffic under no-reuse assumptions."""
    return sum(k.total_bytes for k in model_kernels(model, graph))
