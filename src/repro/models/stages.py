"""Stage-level intermediate representation of GNN layers (Sec II-A).

Every network in the paper decomposes into two stage kinds per layer:

* :class:`AggregateStage` — irregular neighbourhood reduction, executed by
  the Graph Engine;
* :class:`ExtractStage` — dense fully-connected transform, executed by the
  Dense Engine.

Either may precede the other ("Either stage may precede the other",
Sec II-A); the order determines which engine is the producer and is what
the GNNerator Controller synchronises on (Sec III-C).

Aggregation is normalised here to a single canonical form the hardware's
Apply/Reduce units implement directly::

    out[v] = reduce_{u in N(v)} ( w(u, v) * h[u] )   (+ s(v) * h[v])

with ``reduce`` either ``sum`` or ``max``. Mean aggregation becomes a sum
with weights ``1 / (indeg(v) + 1)``; GCN's symmetric normalisation becomes
per-edge weights ``1 / sqrt(d̂(u) d̂(v))``; max pooling uses unit weights;
GIN's isotropic sum scales the self term by ``1 + ε``. The weight vectors
are precomputed per graph by :meth:`AggregateStage.compute_weights` — this
is the "edge information" the Shard Compute Unit's Edge Fetcher
distributes to the Apply units.

Attention (GAT-style) aggregation also fits the canonical form, but its
weights are *computed*, not static: ``w(u, v) = softmax_v(e(u, v))`` with
logits ``e(u, v) = LeakyReLU(a_src · h[u] + a_dst · h[v])`` over node
``v``'s incoming edges (and its self pair when ``include_self``). The
weights therefore depend on the stage's input features and the learned
``a_src`` / ``a_dst`` vectors; :meth:`compute_weights` takes both and the
compiler bakes the resulting coefficients into the per-shard edge data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph


class ModelError(ValueError):
    """Raised for malformed model/stage definitions."""


#: Reduction operators supported by the GPE Reduce Unit.
REDUCE_OPS = ("sum", "max")

#: Normalisations supported for sum-reduction.
NORMALIZATIONS = ("none", "mean", "sym")

#: Edge-weight provenance: static weights are pure graph structure;
#: attention weights are computed from features + learned vectors.
WEIGHTINGS = ("static", "attention")


def leaky_relu(x: np.ndarray, slope: float) -> np.ndarray:
    """LeakyReLU with negative slope ``slope`` (GAT's logit nonlinearity)."""
    return np.where(x >= 0.0, x, slope * x)


@dataclass(frozen=True)
class AggregateStage:
    """Neighbourhood aggregation executed on the Graph Engine.

    Parameters
    ----------
    dim:
        Feature dimensionality flowing through the stage (input == output).
    reduce:
        ``"sum"`` or ``"max"`` (the Reduce Unit operation).
    normalization:
        ``"none"``, ``"mean"`` (divide by ``indeg + 1``) or ``"sym"``
        (GCN's ``1/sqrt(d̂u d̂v)``). Only meaningful with sum-reduction.
    include_self:
        Whether node ``v``'s own feature participates (the ``∪ u`` in
        Eq 1/2 of the paper).
    weighting:
        ``"static"`` (weights from graph structure alone) or
        ``"attention"`` (GAT-style coefficients computed from the stage's
        input features and learned ``a_src`` / ``a_dst`` vectors).
    epsilon:
        GIN's learnable self-scale: the self term uses weight ``1 + ε``
        instead of 1. Only meaningful for un-normalised sum-reduction
        with ``include_self``.
    leaky_slope:
        Negative slope of the LeakyReLU applied to attention logits.
    """

    dim: int
    reduce: str = "sum"
    normalization: str = "none"
    include_self: bool = True
    weighting: str = "static"
    epsilon: float = 0.0
    leaky_slope: float = 0.2

    def __post_init__(self) -> None:
        if self.dim <= 0:
            raise ModelError("aggregate dim must be positive")
        if self.reduce not in REDUCE_OPS:
            raise ModelError(f"unknown reduce op {self.reduce!r}")
        if self.normalization not in NORMALIZATIONS:
            raise ModelError(
                f"unknown normalization {self.normalization!r}")
        if self.reduce == "max" and self.normalization != "none":
            raise ModelError("max-reduction cannot be normalised")
        if self.weighting not in WEIGHTINGS:
            raise ModelError(f"unknown weighting {self.weighting!r}")
        if self.weighting == "attention":
            if self.reduce != "sum":
                raise ModelError("attention requires sum-reduction")
            if self.normalization != "none":
                raise ModelError(
                    "attention weights are already normalised; "
                    "normalization must be 'none'")
            if self.epsilon != 0.0:
                raise ModelError(
                    "epsilon self-scaling and attention are exclusive")
        if self.epsilon != 0.0:
            if self.reduce != "sum" or self.normalization != "none":
                raise ModelError(
                    "epsilon requires un-normalised sum-reduction")
            if not self.include_self:
                raise ModelError("epsilon requires include_self")
        if not 0.0 <= self.leaky_slope < 1.0:
            raise ModelError("leaky_slope must be in [0, 1)")

    @property
    def in_dim(self) -> int:
        return self.dim

    @property
    def out_dim(self) -> int:
        return self.dim

    @property
    def kind(self) -> str:
        return "aggregate"

    @property
    def needs_features(self) -> bool:
        """Whether the stage's weights depend on its input features."""
        return self.weighting == "attention"

    # ------------------------------------------------------------------
    def _degree_hat(self, graph: Graph) -> np.ndarray:
        """Self-loop-augmented in-degree, d̂(v) = indeg(v) + 1."""
        return graph.in_degrees().astype(np.float64) + 1.0

    def edge_weights(self, graph: Graph) -> np.ndarray:
        """Per-edge Apply-unit multiplier ``w(u, v)``, aligned with
        ``graph.src`` / ``graph.dst`` order. Static weightings only —
        attention stages need features (use :meth:`compute_weights`)."""
        if self.needs_features:
            raise ModelError(
                "attention edge weights depend on features; "
                "call compute_weights(graph, features=..., attention=...)")
        if self.normalization == "none":
            return np.ones(graph.num_edges, dtype=np.float32)
        degree = self._degree_hat(graph)
        if self.normalization == "mean":
            return (1.0 / degree[graph.dst]).astype(np.float32)
        # "sym": 1 / sqrt(d̂(u) d̂(v))
        inv_sqrt = 1.0 / np.sqrt(degree)
        return (inv_sqrt[graph.src] * inv_sqrt[graph.dst]).astype(np.float32)

    def self_weights(self, graph: Graph) -> np.ndarray | None:
        """Per-node multiplier ``s(v)`` for the self term, or ``None``.
        Static weightings only (see :meth:`edge_weights`)."""
        if self.needs_features:
            raise ModelError(
                "attention self weights depend on features; "
                "call compute_weights(graph, features=..., attention=...)")
        if not self.include_self:
            return None
        if self.normalization == "none":
            return np.full(graph.num_nodes, 1.0 + self.epsilon,
                           dtype=np.float32)
        degree = self._degree_hat(graph)
        if self.normalization == "mean":
            return (1.0 / degree).astype(np.float32)
        return (1.0 / degree).astype(np.float32)  # "sym": 1/d̂(v)

    def compute_weights(
            self, graph: Graph, features: np.ndarray | None = None,
            attention: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """``(edge_weights, self_weights)`` for any weighting form.

        Static stages ignore ``features`` / ``attention``; attention
        stages require both — ``features`` is the ``(N, dim)`` input to
        the stage, ``attention`` the learned ``(a_src, a_dst)`` vectors.
        """
        if not self.needs_features:
            return self.edge_weights(graph), self.self_weights(graph)
        if features is None or attention is None:
            raise ModelError(
                "attention weights need the stage input features and "
                "the (a_src, a_dst) attention vectors")
        return self._attention_weights(graph, features, attention)

    def _attention_weights(
            self, graph: Graph, features: np.ndarray,
            attention: tuple[np.ndarray, np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Softmax attention coefficients over each node's in-edges.

        The softmax group of node ``v`` is its incoming edges plus the
        ``(v, v)`` self pair when ``include_self`` — so explicit
        self-loops in the graph are never needed. Computed in float64
        with per-destination max subtraction for numerical stability.
        """
        if features.shape != (graph.num_nodes, self.dim):
            raise ModelError(
                f"attention expected features of shape "
                f"{(graph.num_nodes, self.dim)}, got "
                f"{tuple(features.shape)}")
        a_src, a_dst = (np.asarray(a, dtype=np.float64) for a in attention)
        if a_src.shape != (self.dim,) or a_dst.shape != (self.dim,):
            raise ModelError(
                f"attention vectors must have shape ({self.dim},), got "
                f"{tuple(a_src.shape)} and {tuple(a_dst.shape)}")
        h = features.astype(np.float64)
        score_src = h @ a_src  # a_src · h[u], per node
        score_dst = h @ a_dst  # a_dst · h[v], per node
        edge_logits = leaky_relu(
            score_src[graph.src] + score_dst[graph.dst], self.leaky_slope)
        self_logits = (leaky_relu(score_src + score_dst, self.leaky_slope)
                       if self.include_self else None)
        # Per-destination max, for the numerically stable softmax.
        # Segment reductions over the cached dst-sorted view and a
        # weighted bincount replace np.maximum.at / np.add.at (which are
        # an order of magnitude slower); both accumulate per destination
        # in original edge order, so the results are bit-identical.
        peak = np.full(graph.num_nodes, -np.inf)
        if graph.num_edges:
            order, starts, segment_dst = graph.dst_segments
            peak[segment_dst] = np.maximum.reduceat(edge_logits[order],
                                                    starts)
        if self_logits is not None:
            peak = np.maximum(peak, self_logits)
        peak = np.where(np.isneginf(peak), 0.0, peak)  # isolated nodes
        exp_edge = np.exp(edge_logits - peak[graph.dst])
        denom = np.bincount(graph.dst, weights=exp_edge,
                            minlength=graph.num_nodes)
        exp_self = None
        if self_logits is not None:
            exp_self = np.exp(self_logits - peak)
            denom = denom + exp_self
        denom = np.where(denom == 0.0, 1.0, denom)  # no in-edges, no self
        edge_w = (exp_edge / denom[graph.dst]).astype(np.float32)
        self_w = (None if exp_self is None
                  else (exp_self / denom).astype(np.float32))
        return edge_w, self_w


@dataclass(frozen=True)
class ExtractStage:
    """Dense feature extraction executed on the Dense Engine.

    Computes ``act(W @ x (+ concat term) + b)``. With ``concat_self``
    set, the input is the concatenation of the stage's incoming value and
    the *layer input* feature (the ``z̄ ∪ h`` of Eq 1/2), so the weight
    matrix has ``in_dim + self_dim`` input columns.
    """

    in_dim: int
    out_dim: int
    activation: str = "relu"
    concat_self: bool = False
    self_dim: int = 0
    bias: bool = True
    name: str = "extract"

    def __post_init__(self) -> None:
        if self.in_dim <= 0 or self.out_dim <= 0:
            raise ModelError("extract dims must be positive")
        if self.activation not in ("relu", "sigmoid", "none"):
            raise ModelError(f"unknown activation {self.activation!r}")
        if self.concat_self and self.self_dim <= 0:
            raise ModelError("concat_self requires a positive self_dim")
        if not self.concat_self and self.self_dim != 0:
            raise ModelError("self_dim is only meaningful with concat_self")

    @property
    def kind(self) -> str:
        return "extract"

    @property
    def weight_in_dim(self) -> int:
        """Input columns of the weight matrix (includes the concat part)."""
        return self.in_dim + self.self_dim

    @property
    def weight_shape(self) -> tuple[int, int]:
        return (self.weight_in_dim, self.out_dim)

    def flops(self, num_nodes: int) -> int:
        """MAC-based FLOP count of the stage over ``num_nodes`` rows."""
        return 2 * num_nodes * self.weight_in_dim * self.out_dim


Stage = AggregateStage | ExtractStage


@dataclass(frozen=True)
class GNNLayer:
    """One GNN layer: an ordered pipeline of stages."""

    stages: tuple[Stage, ...]
    name: str = "layer"

    def __post_init__(self) -> None:
        if not self.stages:
            raise ModelError("a layer needs at least one stage")
        for left, right in zip(self.stages, self.stages[1:]):
            carried = left.out_dim
            if isinstance(right, ExtractStage):
                expected = right.in_dim
            else:
                expected = right.in_dim
            if carried != expected:
                raise ModelError(
                    f"stage dim mismatch in {self.name!r}: "
                    f"{carried} -> {expected}")

    @property
    def in_dim(self) -> int:
        first = self.stages[0]
        return first.in_dim

    @property
    def out_dim(self) -> int:
        return self.stages[-1].out_dim

    @property
    def producer(self) -> str:
        """Which engine produces first: ``"graph"`` or ``"dense"``.

        Graph-first layers (GCN, GraphSAGE) have the Dense Engine consume
        aggregated features; dense-first layers (GraphSAGE-Pool) have the
        Graph Engine consume extracted features (Sec III-C).
        """
        first = self.stages[0]
        return "graph" if isinstance(first, AggregateStage) else "dense"

    @property
    def aggregate_stages(self) -> list[AggregateStage]:
        return [s for s in self.stages if isinstance(s, AggregateStage)]

    @property
    def extract_stages(self) -> list[ExtractStage]:
        return [s for s in self.stages if isinstance(s, ExtractStage)]


@dataclass(frozen=True)
class GNNModel:
    """A stack of GNN layers (Sec II-A: stacking widens the receptive
    field by one hop per layer)."""

    name: str
    layers: tuple[GNNLayer, ...]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ModelError("a model needs at least one layer")
        for left, right in zip(self.layers, self.layers[1:]):
            if left.out_dim != right.in_dim:
                raise ModelError(
                    f"layer dim mismatch in {self.name!r}: "
                    f"{left.out_dim} -> {right.in_dim}")

    @property
    def in_dim(self) -> int:
        return self.layers[0].in_dim

    @property
    def out_dim(self) -> int:
        return self.layers[-1].out_dim

    @property
    def num_layers(self) -> int:
        return len(self.layers)
