"""Stage-level intermediate representation of GNN layers (Sec II-A).

Every network in the paper decomposes into two stage kinds per layer:

* :class:`AggregateStage` — irregular neighbourhood reduction, executed by
  the Graph Engine;
* :class:`ExtractStage` — dense fully-connected transform, executed by the
  Dense Engine.

Either may precede the other ("Either stage may precede the other",
Sec II-A); the order determines which engine is the producer and is what
the GNNerator Controller synchronises on (Sec III-C).

Aggregation is normalised here to a single canonical form the hardware's
Apply/Reduce units implement directly::

    out[v] = reduce_{u in N(v)} ( w(u, v) * h[u] )   (+ s(v) * h[v])

with ``reduce`` either ``sum`` or ``max``. Mean aggregation becomes a sum
with weights ``1 / (indeg(v) + 1)``; GCN's symmetric normalisation becomes
per-edge weights ``1 / sqrt(d̂(u) d̂(v))``; max pooling uses unit weights.
The weight vectors are precomputed per graph by :meth:`edge_weights` /
:meth:`self_weights` — this is the "edge information" the Shard Compute
Unit's Edge Fetcher distributes to the Apply units.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph


class ModelError(ValueError):
    """Raised for malformed model/stage definitions."""


#: Reduction operators supported by the GPE Reduce Unit.
REDUCE_OPS = ("sum", "max")

#: Normalisations supported for sum-reduction.
NORMALIZATIONS = ("none", "mean", "sym")


@dataclass(frozen=True)
class AggregateStage:
    """Neighbourhood aggregation executed on the Graph Engine.

    Parameters
    ----------
    dim:
        Feature dimensionality flowing through the stage (input == output).
    reduce:
        ``"sum"`` or ``"max"`` (the Reduce Unit operation).
    normalization:
        ``"none"``, ``"mean"`` (divide by ``indeg + 1``) or ``"sym"``
        (GCN's ``1/sqrt(d̂u d̂v)``). Only meaningful with sum-reduction.
    include_self:
        Whether node ``v``'s own feature participates (the ``∪ u`` in
        Eq 1/2 of the paper).
    """

    dim: int
    reduce: str = "sum"
    normalization: str = "none"
    include_self: bool = True

    def __post_init__(self) -> None:
        if self.dim <= 0:
            raise ModelError("aggregate dim must be positive")
        if self.reduce not in REDUCE_OPS:
            raise ModelError(f"unknown reduce op {self.reduce!r}")
        if self.normalization not in NORMALIZATIONS:
            raise ModelError(
                f"unknown normalization {self.normalization!r}")
        if self.reduce == "max" and self.normalization != "none":
            raise ModelError("max-reduction cannot be normalised")

    @property
    def in_dim(self) -> int:
        return self.dim

    @property
    def out_dim(self) -> int:
        return self.dim

    @property
    def kind(self) -> str:
        return "aggregate"

    # ------------------------------------------------------------------
    def _degree_hat(self, graph: Graph) -> np.ndarray:
        """Self-loop-augmented in-degree, d̂(v) = indeg(v) + 1."""
        return graph.in_degrees().astype(np.float64) + 1.0

    def edge_weights(self, graph: Graph) -> np.ndarray:
        """Per-edge Apply-unit multiplier ``w(u, v)``, aligned with
        ``graph.src`` / ``graph.dst`` order."""
        if self.normalization == "none":
            return np.ones(graph.num_edges, dtype=np.float32)
        degree = self._degree_hat(graph)
        if self.normalization == "mean":
            return (1.0 / degree[graph.dst]).astype(np.float32)
        # "sym": 1 / sqrt(d̂(u) d̂(v))
        inv_sqrt = 1.0 / np.sqrt(degree)
        return (inv_sqrt[graph.src] * inv_sqrt[graph.dst]).astype(np.float32)

    def self_weights(self, graph: Graph) -> np.ndarray | None:
        """Per-node multiplier ``s(v)`` for the self term, or ``None``."""
        if not self.include_self:
            return None
        degree = self._degree_hat(graph)
        if self.normalization == "none":
            return np.ones(graph.num_nodes, dtype=np.float32)
        if self.normalization == "mean":
            return (1.0 / degree).astype(np.float32)
        return (1.0 / degree).astype(np.float32)  # "sym": 1/d̂(v)


@dataclass(frozen=True)
class ExtractStage:
    """Dense feature extraction executed on the Dense Engine.

    Computes ``act(W @ x (+ concat term) + b)``. With ``concat_self``
    set, the input is the concatenation of the stage's incoming value and
    the *layer input* feature (the ``z̄ ∪ h`` of Eq 1/2), so the weight
    matrix has ``in_dim + self_dim`` input columns.
    """

    in_dim: int
    out_dim: int
    activation: str = "relu"
    concat_self: bool = False
    self_dim: int = 0
    bias: bool = True
    name: str = "extract"

    def __post_init__(self) -> None:
        if self.in_dim <= 0 or self.out_dim <= 0:
            raise ModelError("extract dims must be positive")
        if self.activation not in ("relu", "sigmoid", "none"):
            raise ModelError(f"unknown activation {self.activation!r}")
        if self.concat_self and self.self_dim <= 0:
            raise ModelError("concat_self requires a positive self_dim")
        if not self.concat_self and self.self_dim != 0:
            raise ModelError("self_dim is only meaningful with concat_self")

    @property
    def kind(self) -> str:
        return "extract"

    @property
    def weight_in_dim(self) -> int:
        """Input columns of the weight matrix (includes the concat part)."""
        return self.in_dim + self.self_dim

    @property
    def weight_shape(self) -> tuple[int, int]:
        return (self.weight_in_dim, self.out_dim)

    def flops(self, num_nodes: int) -> int:
        """MAC-based FLOP count of the stage over ``num_nodes`` rows."""
        return 2 * num_nodes * self.weight_in_dim * self.out_dim


Stage = AggregateStage | ExtractStage


@dataclass(frozen=True)
class GNNLayer:
    """One GNN layer: an ordered pipeline of stages."""

    stages: tuple[Stage, ...]
    name: str = "layer"

    def __post_init__(self) -> None:
        if not self.stages:
            raise ModelError("a layer needs at least one stage")
        for left, right in zip(self.stages, self.stages[1:]):
            carried = left.out_dim
            if isinstance(right, ExtractStage):
                expected = right.in_dim
            else:
                expected = right.in_dim
            if carried != expected:
                raise ModelError(
                    f"stage dim mismatch in {self.name!r}: "
                    f"{carried} -> {expected}")

    @property
    def in_dim(self) -> int:
        first = self.stages[0]
        return first.in_dim

    @property
    def out_dim(self) -> int:
        return self.stages[-1].out_dim

    @property
    def producer(self) -> str:
        """Which engine produces first: ``"graph"`` or ``"dense"``.

        Graph-first layers (GCN, GraphSAGE) have the Dense Engine consume
        aggregated features; dense-first layers (GraphSAGE-Pool) have the
        Graph Engine consume extracted features (Sec III-C).
        """
        first = self.stages[0]
        return "graph" if isinstance(first, AggregateStage) else "dense"

    @property
    def aggregate_stages(self) -> list[AggregateStage]:
        return [s for s in self.stages if isinstance(s, AggregateStage)]

    @property
    def extract_stages(self) -> list[ExtractStage]:
        return [s for s in self.stages if isinstance(s, ExtractStage)]


@dataclass(frozen=True)
class GNNModel:
    """A stack of GNN layers (Sec II-A: stacking widens the receptive
    field by one hop per layer)."""

    name: str
    layers: tuple[GNNLayer, ...]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ModelError("a model needs at least one layer")
        for left, right in zip(self.layers, self.layers[1:]):
            if left.out_dim != right.in_dim:
                raise ModelError(
                    f"layer dim mismatch in {self.name!r}: "
                    f"{left.out_dim} -> {right.in_dim}")

    @property
    def in_dim(self) -> int:
        return self.layers[0].in_dim

    @property
    def out_dim(self) -> int:
        return self.layers[-1].out_dim

    @property
    def num_layers(self) -> int:
        return len(self.layers)
