"""Pluggable search strategies for design-space exploration.

A strategy proposes batches of candidate overrides; the engine
evaluates each batch (through the parallel sweep scheduler and the
persistent result cache) and feeds the outcomes back for the next
round. Three strategies ship:

* :class:`GridSearch` — the exhaustive cartesian grid, one batch;
* :class:`RandomSearch` — ``samples`` seeded uniform draws, one batch;
* :class:`EvolutionarySearch` — a mutation-based (μ+λ) hill-climb:
  every generation mutates the current Pareto-optimal survivors one
  knob-rung each and re-evaluates.

Determinism contract (the same one the sweep engine guarantees): all
randomness derives from the explicit ``seed`` plus the generation
index, and parents are sorted canonically before mutation — so a
search is bit-identical across reruns and across ``--jobs`` levels.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.config.accelerator import ConfigError
from repro.dse.pareto import pareto_indices
from repro.dse.space import DesignSpace

#: Objective keys every strategy ranks on, in report order.
OBJECTIVE_KEYS = ("cycles", "area_mm2", "energy_pj")


class SearchStrategy:
    """Batch-propose protocol; subclasses override both hooks."""

    name = "abstract"

    def initial(self, space: DesignSpace) -> list[dict[str, float]]:
        raise NotImplementedError

    def next_batch(self, space: DesignSpace,
                   evaluations: Sequence) -> list[dict[str, float]]:
        """Propose more candidates given everything evaluated so far
        (an empty list ends the search)."""
        return []


class GridSearch(SearchStrategy):
    """Exhaustively enumerate the space (mind :attr:`DesignSpace.size`)."""

    name = "grid"

    def __init__(self, max_candidates: int | None = None) -> None:
        self.max_candidates = max_candidates

    def initial(self, space: DesignSpace) -> list[dict[str, float]]:
        if (self.max_candidates is not None
                and space.size > self.max_candidates):
            raise ConfigError(
                f"grid search over {space.size} candidates exceeds "
                f"--max-candidates {self.max_candidates}; restrict the "
                f"space (--knob/--space) or raise the cap")
        return list(space.grid())


class RandomSearch(SearchStrategy):
    """Seeded uniform sampling (duplicates collapse in the engine)."""

    name = "random"

    def __init__(self, samples: int = 16, seed: int = 0) -> None:
        if samples < 1:
            raise ConfigError(f"samples must be >= 1, got {samples}")
        self.samples = samples
        self.seed = seed

    def initial(self, space: DesignSpace) -> list[dict[str, float]]:
        rng = random.Random(f"dse-random:{self.seed}")
        return [space.sample(rng) for _ in range(self.samples)]


class EvolutionarySearch(SearchStrategy):
    """(μ+λ) mutation hill-climb over the Pareto survivors.

    Generation 0 is ``population`` random candidates. Each later
    generation takes the Pareto frontier of every *feasible* evaluation
    so far (the μ survivors, sorted canonically), and mutates each
    parent ``children_per_parent`` times, one knob-rung per child. The
    engine deduplicates, so converged searches finish early.
    """

    name = "evolutionary"

    def __init__(self, population: int = 8, generations: int = 4,
                 children_per_parent: int = 2, seed: int = 0) -> None:
        if population < 1:
            raise ConfigError(f"population must be >= 1, got {population}")
        if generations < 1:
            raise ConfigError(
                f"generations must be >= 1, got {generations}")
        if children_per_parent < 1:
            raise ConfigError("children_per_parent must be >= 1")
        self.population = population
        self.generations = generations
        self.children_per_parent = children_per_parent
        self.seed = seed
        self._generation = 0

    def _rng(self) -> random.Random:
        return random.Random(f"dse-evo:{self.seed}:{self._generation}")

    def initial(self, space: DesignSpace) -> list[dict[str, float]]:
        self._generation = 0  # a strategy instance may drive >1 search
        rng = self._rng()
        return [space.sample(rng) for _ in range(self.population)]

    def _parents(self, evaluations: Sequence) -> list:
        alive = [e for e in evaluations
                 if e.status == "ok" and e.feasible]
        vectors = [[e.objectives[key] for key in OBJECTIVE_KEYS]
                   for e in alive]
        parents = [alive[i] for i in pareto_indices(vectors)]
        # Canonical order: selection must not depend on evaluation
        # interleaving, or --jobs would change the search trajectory.
        return sorted(parents, key=lambda e: e.overrides)

    def next_batch(self, space: DesignSpace,
                   evaluations: Sequence) -> list[dict[str, float]]:
        self._generation += 1
        if self._generation >= self.generations:
            return []
        rng = self._rng()
        parents = self._parents(evaluations)
        if not parents:
            # Nothing survived (all invalid or over budget): re-seed
            # with fresh random candidates instead of giving up.
            return [space.sample(rng) for _ in range(self.population)]
        children = []
        for parent in parents:
            for _ in range(self.children_per_parent):
                children.append(space.mutate(dict(parent.overrides), rng))
        return children


#: Strategy registry for the ``repro dse`` CLI.
STRATEGY_NAMES = ("grid", "random", "evolutionary")


def build_strategy(name: str, samples: int = 16, population: int = 8,
                   generations: int = 4, seed: int = 0,
                   max_candidates: int | None = None) -> SearchStrategy:
    """Resolve a strategy by CLI name."""
    if name == "grid":
        return GridSearch(max_candidates=max_candidates)
    if name == "random":
        return RandomSearch(samples=samples, seed=seed)
    if name == "evolutionary":
        return EvolutionarySearch(population=population,
                                  generations=generations, seed=seed)
    raise ConfigError(
        f"unknown strategy {name!r}; known strategies: "
        f"{', '.join(STRATEGY_NAMES)}")
