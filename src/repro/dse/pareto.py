"""Multi-objective dominance and Pareto-frontier extraction.

All objectives are minimised. A vector ``a`` *dominates* ``b`` when it
is no worse on every objective and strictly better on at least one;
the Pareto frontier of a set is every point no other point dominates.
Exact duplicates do not dominate each other, so tied designs all stay
on the frontier — the report layer decides how to present ties.

The O(n²) sweep is deliberate: DSE evaluates hundreds to a few
thousand candidates through a discrete-event simulator, so frontier
extraction is never the bottleneck and the simple form is the one
worth keeping obviously correct.
"""

from __future__ import annotations

from typing import Sequence


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` dominates ``b`` (minimising every objective)."""
    if len(a) != len(b):
        raise ValueError(
            f"objective vectors differ in length: {len(a)} vs {len(b)}")
    if not a:
        raise ValueError("objective vectors cannot be empty")
    no_worse = all(x <= y for x, y in zip(a, b))
    return no_worse and any(x < y for x, y in zip(a, b))


def pareto_indices(vectors: Sequence[Sequence[float]]) -> list[int]:
    """Indices of the non-dominated vectors, in input order.

    Ties and exact duplicates are all kept (none dominates another);
    a single point is trivially on the frontier; an empty input yields
    an empty frontier.
    """
    frontier: list[int] = []
    for i, candidate in enumerate(vectors):
        if not any(dominates(other, candidate)
                   for j, other in enumerate(vectors) if j != i):
            frontier.append(i)
    return frontier


def pareto_front(vectors: Sequence[Sequence[float]]
                 ) -> list[Sequence[float]]:
    """The non-dominated vectors themselves, in input order."""
    return [vectors[i] for i in pareto_indices(vectors)]


def dominated_count(vectors: Sequence[Sequence[float]]) -> int:
    """How many input vectors are dominated by at least one other."""
    return len(vectors) - len(pareto_indices(vectors))
