"""The design-space exploration engine.

Drives a :class:`~repro.dse.strategies.SearchStrategy` over a
:class:`~repro.dse.space.DesignSpace`: every proposed candidate is
expanded into one :class:`~repro.sweep.plan.SweepPoint` per workload
(``metric="dse"`` carries latency + area + energy in one simulated
record) and pushed through the existing :class:`SweepRunner` — so
candidate evaluation parallelises across worker processes and resumes
from the persistent :class:`ResultCache` for free; a repeated search
with a warm cache recomputes nothing.

Outcomes per candidate:

* ``invalid`` — the config dataclasses rejected the design
  (:class:`ConfigError`), recorded with the rejection message;
* ``error`` — a workload failed to compile/simulate on the design;
* ``ok`` — objectives aggregated over the workload suite, flagged
  ``feasible`` when the area/power budgets hold.

The result's Pareto frontier minimises (cycles, area_mm2, energy_pj)
over the feasible candidates; any frontier member dominated by *any*
evaluated candidate (possible only through the off-objective power
budget) is discarded, so the published frontier is never dominated by
an evaluated point.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field

from repro.config.accelerator import ConfigError
from repro.config.overrides import (
    FrozenOverrides,
    freeze_overrides,
    overrides_between,
)
from repro.config.platforms import (
    gnnerator_config,
    next_generation_variants,
)
from repro.config.workload import WorkloadSpec
from repro.dse.pareto import dominates, pareto_indices
from repro.dse.space import DesignSpace
from repro.dse.strategies import OBJECTIVE_KEYS, SearchStrategy
from repro.sweep.plan import METRIC_DSE, SweepPlan, SweepPoint
from repro.sweep.runner import SweepRunner


class DseError(RuntimeError):
    """A search-level failure (no workloads, no candidates, ...)."""


@dataclass(frozen=True)
class Budget:
    """User-supplied design constraints a feasible candidate must meet."""

    area_mm2: float | None = None
    power_w: float | None = None

    def violations(self, objectives: dict[str, float]) -> list[str]:
        out = []
        if (self.area_mm2 is not None
                and objectives["area_mm2"] > self.area_mm2):
            out.append(f"area {objectives['area_mm2']:.1f} mm^2 > "
                       f"budget {self.area_mm2:.1f}")
        if (self.power_w is not None
                and objectives["avg_power_w"] > self.power_w):
            out.append(f"power {objectives['avg_power_w']:.2f} W > "
                       f"budget {self.power_w:.2f}")
        return out

    def to_dict(self) -> dict:
        return {"area_mm2": self.area_mm2, "power_w": self.power_w}


def candidate_label(overrides: FrozenOverrides) -> str:
    """Short stable name for one candidate ("base" = no overrides)."""
    if not overrides:
        return "base"
    blob = json.dumps(overrides)
    return f"cand-{hashlib.sha256(blob.encode()).hexdigest()[:8]}"


@dataclass
class DseEvaluation:
    """Outcome of one candidate design over the whole workload suite."""

    overrides: FrozenOverrides
    label: str
    status: str = "ok"  # "ok" | "invalid" | "error"
    message: str | None = None
    objectives: dict[str, float] = field(default_factory=dict)
    feasible: bool = False
    #: Budget-violation messages (empty when feasible or not ok).
    violations: list[str] = field(default_factory=list)
    #: True when every workload point came from the persistent cache.
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def vector(self) -> tuple[float, ...]:
        return tuple(self.objectives[key] for key in OBJECTIVE_KEYS)

    def to_dict(self) -> dict:
        return {
            "overrides": dict(self.overrides),
            "label": self.label,
            "status": self.status,
            "message": self.message,
            "objectives": self.objectives,
            "feasible": self.feasible,
            "violations": self.violations,
            "cached": self.cached,
        }


@dataclass
class Fig5Check:
    """One paper reference design measured against the found frontier."""

    name: str
    evaluation: DseEvaluation
    #: Frontier labels that dominate this reference design.
    dominated_by: list[str] = field(default_factory=list)

    @property
    def beaten(self) -> bool:
        return bool(self.dominated_by)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "evaluation": self.evaluation.to_dict(),
            "dominated_by": self.dominated_by,
            "beaten": self.beaten,
        }


@dataclass
class DseResult:
    """Everything one search produced, serialisable for reports/CI."""

    strategy: str
    workloads: list[str]
    budget: Budget
    evaluations: list[DseEvaluation]
    frontier: list[DseEvaluation]
    knobs: dict[str, tuple[float, ...]]
    cache_hits: int
    cache_misses: int
    elapsed_s: float
    fig5: list[Fig5Check] = field(default_factory=list)

    # -- accounting -----------------------------------------------------
    @property
    def num_candidates(self) -> int:
        return len(self.evaluations)

    @property
    def num_invalid(self) -> int:
        return sum(1 for e in self.evaluations if e.status == "invalid")

    @property
    def num_errors(self) -> int:
        return sum(1 for e in self.evaluations if e.status == "error")

    @property
    def num_infeasible(self) -> int:
        return sum(1 for e in self.evaluations if e.ok and not e.feasible)

    @property
    def num_dominated(self) -> int:
        """Feasible candidates dominated off the frontier."""
        feasible = sum(1 for e in self.evaluations if e.feasible)
        return feasible - len(self.frontier)

    def summary(self) -> str:
        return (f"dse[{self.strategy}]: {self.num_candidates} candidates "
                f"({self.num_invalid} invalid, {self.num_errors} errors, "
                f"{self.num_infeasible} over budget, "
                f"{self.num_dominated} dominated) -> "
                f"{len(self.frontier)}-point frontier; cache "
                f"{self.cache_hits} hits / {self.cache_misses} computed "
                f"in {self.elapsed_s:.1f}s")

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "workloads": self.workloads,
            "budget": self.budget.to_dict(),
            "objectives": list(OBJECTIVE_KEYS),
            "knobs": {path: list(values)
                      for path, values in self.knobs.items()},
            "counts": {
                "candidates": self.num_candidates,
                "invalid": self.num_invalid,
                "errors": self.num_errors,
                "infeasible": self.num_infeasible,
                "dominated": self.num_dominated,
                "frontier": len(self.frontier),
            },
            "cache": {"hits": self.cache_hits,
                      "misses": self.cache_misses},
            "elapsed_s": self.elapsed_s,
            "frontier": [e.to_dict() for e in self.frontier],
            "evaluations": [e.to_dict() for e in self.evaluations],
            "fig5": [check.to_dict() for check in self.fig5],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


class DseEngine:
    """Search orchestrator: strategy in, Pareto frontier out.

    All candidate evaluation flows through ``runner`` (a
    :class:`SweepRunner`), so the engine inherits its execution
    backend wholesale: give the runner a
    :class:`~repro.sweep.runner.Scheduler` — e.g. the crash-tolerant
    :class:`~repro.sweep.dist.FileQueueScheduler` behind ``repro dse
    --scheduler filequeue`` — and every generation's cache misses are
    computed by the fleet, with per-point retry and resume, while the
    search logic here stays byte-identical (candidates are
    deterministic functions of the seed, and results come back in
    plan order whatever computes them).
    """

    def __init__(self, space: DesignSpace, strategy: SearchStrategy,
                 workloads: list[WorkloadSpec], runner: SweepRunner,
                 budget: Budget | None = None, seed: int = 0) -> None:
        if not workloads:
            raise DseError("dse needs at least one workload")
        self.space = space
        self.strategy = strategy
        self.workloads = list(workloads)
        self.runner = runner
        self.budget = budget if budget is not None else Budget()
        self.seed = seed
        self.cache_hits = 0
        self.cache_misses = 0
        # Sweep workers rebuild candidates from the *Table IV* config,
        # so a non-default space base must travel inside the point
        # overrides too — otherwise objectives would silently be
        # measured on the wrong design (and collide in the cache).
        # Raises up front when the base differs in a way the override
        # format cannot carry.
        self._base_overrides = overrides_between(gnnerator_config(),
                                                 space.base)

    # -- candidate evaluation ------------------------------------------
    def _points_for(self, overrides: FrozenOverrides,
                    merge_base: bool = True) -> list[SweepPoint]:
        if merge_base:
            overrides = freeze_overrides({**self._base_overrides,
                                          **dict(overrides)})
        return [SweepPoint(dataset=spec.dataset, network=spec.network,
                           feature_block=spec.feature_block,
                           traversal=spec.traversal,
                           hidden_dim=spec.hidden_dim,
                           metric=METRIC_DSE, seed=self.seed,
                           config_overrides=overrides)
                for spec in self.workloads]

    def _aggregate(self, evaluation: DseEvaluation,
                   results: list) -> None:
        """Fold per-workload point results into one candidate outcome."""
        failed = [r for r in results if not r.ok]
        if failed:
            first = (failed[0].error or "").splitlines()
            evaluation.status = "error"
            evaluation.message = first[0] if first else "workload failed"
            return
        metrics = [r.metrics for r in results]
        seconds = sum(m["seconds"] for m in metrics)
        energy_pj = sum(m["energy_pj"] for m in metrics)
        energy_j = energy_pj * 1e-12
        objectives = {
            "cycles": sum(m["cycles"] for m in metrics),
            "area_mm2": metrics[0]["area_mm2"],
            "energy_pj": energy_pj,
            "seconds": seconds,
            "total_dram_bytes": sum(m["total_dram_bytes"]
                                    for m in metrics),
            "avg_power_w": energy_j / seconds if seconds > 0 else 0.0,
            "edp_js": energy_j * seconds,
        }
        evaluation.objectives = objectives
        evaluation.violations = self.budget.violations(objectives)
        evaluation.feasible = not evaluation.violations
        evaluation.cached = all(r.cached for r in results)

    def evaluate(self, batch: list[dict], seen: set[FrozenOverrides],
                 merge_base: bool = True) -> list[DseEvaluation]:
        """Evaluate one strategy batch (deduplicated, order-preserving).

        ``merge_base=False`` measures the overrides against the plain
        Table IV config instead of the space's base (used for the
        Fig 5 reference designs, which are the paper's exact picks).
        """
        evaluations: list[DseEvaluation] = []
        pending: list[tuple[DseEvaluation, list[SweepPoint]]] = []
        points: list[SweepPoint] = []
        for overrides in batch:
            frozen = self.space.freeze(overrides)
            if frozen in seen:
                continue
            seen.add(frozen)
            evaluation = DseEvaluation(frozen, candidate_label(frozen))
            evaluations.append(evaluation)
            try:
                if merge_base:
                    self.space.config_for(frozen)
                candidate_points = self._points_for(frozen, merge_base)
            except ConfigError as exc:
                evaluation.status = "invalid"
                evaluation.message = str(exc)
                continue
            pending.append((evaluation, candidate_points))
            points.extend(candidate_points)
        if points:
            sweep = self.runner.run(SweepPlan("dse", tuple(points)))
            self.cache_hits += sweep.hits
            self.cache_misses += sweep.misses
            for evaluation, candidate_points in pending:
                self._aggregate(evaluation,
                                [sweep.result_for(p)
                                 for p in candidate_points])
        return evaluations

    # -- the search loop ------------------------------------------------
    def run(self) -> DseResult:
        start = time.monotonic()
        seen: set[FrozenOverrides] = set()
        evaluations: list[DseEvaluation] = []
        batch = self.strategy.initial(self.space)
        while batch:
            evaluations.extend(self.evaluate(batch, seen))
            batch = self.strategy.next_batch(self.space, evaluations)
        frontier = self._frontier(evaluations)
        return DseResult(
            strategy=self.strategy.name,
            workloads=[spec.label for spec in self.workloads],
            budget=self.budget,
            evaluations=evaluations,
            frontier=frontier,
            knobs={knob.path: knob.values for knob in self.space.knobs},
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            elapsed_s=time.monotonic() - start,
        )

    def _frontier(self, evaluations: list[DseEvaluation]
                  ) -> list[DseEvaluation]:
        feasible = [e for e in evaluations if e.feasible]
        frontier = [feasible[i] for i in pareto_indices(
            [e.vector() for e in feasible])]
        # An over-power (off-objective budget) candidate may still
        # dominate on the objective axes; keep the published frontier
        # undominated by anything that was evaluated.
        every_ok = [e for e in evaluations if e.ok]
        return [member for member in frontier
                if not any(dominates(other.vector(), member.vector())
                           for other in every_ok)]

    # -- Fig 5 reference check -----------------------------------------
    def check_fig5(self, result: DseResult) -> list[Fig5Check]:
        """Measure the paper's hand-picked designs against the frontier.

        Evaluates the Table IV baseline plus the three Fig 5
        next-generation variants (expressed as knob overrides) on the
        same workloads/budgets, and records which discovered frontier
        points dominate each. Appends to ``result.fig5``.

        A reference may itself dominate a frontier member; such
        members are dropped first, preserving the invariant that the
        published frontier is never dominated by an evaluated point.
        """
        base = gnnerator_config()
        references = [("baseline", {})]
        for name, config in next_generation_variants(base).items():
            references.append((name, overrides_between(base, config)))
        checks = []
        seen: set[FrozenOverrides] = set()
        for name, overrides in references:
            evaluation = self.evaluate([overrides], seen,
                                       merge_base=False)
            if not evaluation:  # duplicate of a previous reference
                continue
            checks.append(Fig5Check(name=name, evaluation=evaluation[0]))
        ok_references = [c.evaluation for c in checks if c.evaluation.ok]
        result.frontier = [
            member for member in result.frontier
            if not any(dominates(ref.vector(), member.vector())
                       for ref in ok_references)]
        for check in checks:
            if check.evaluation.ok:
                check.dominated_by = [
                    member.label for member in result.frontier
                    if dominates(member.vector(),
                                 check.evaluation.vector())]
        result.fig5 = checks
        # The reference evaluations ran after the result snapshot;
        # refresh the cache accounting so warm-run contracts hold.
        result.cache_hits = self.cache_hits
        result.cache_misses = self.cache_misses
        return checks
