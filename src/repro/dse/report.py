"""Plain-text / CSV rendering of design-space exploration results."""

from __future__ import annotations

import csv
import io

from repro.dse.engine import DseResult
from repro.eval.report import format_table


def _knob_settings(overrides) -> str:
    """Compact human-readable knob assignment for one candidate."""
    if not overrides:
        return "(baseline)"
    parts = []
    for path, value in overrides:
        name = path.split(".")[-1].replace("_buffer_bytes", "")
        if path.endswith("_buffer_bytes") and value >= 1 << 20:
            parts.append(f"{name}={value / (1 << 20):g}MiB")
        elif path.endswith("bandwidth_bytes_per_s"):
            parts.append(f"{name.removesuffix('_bytes_per_s')}="
                         f"{value / 1e9:g}GB/s")
        else:
            parts.append(f"{name}={value:g}")
    return " ".join(parts)


def _objective_row(label: str, evaluation) -> dict[str, str]:
    objectives = evaluation.objectives
    return {
        "candidate": label,
        "knobs": _knob_settings(evaluation.overrides),
        "cycles": str(objectives["cycles"]),
        "area mm^2": f"{objectives['area_mm2']:.1f}",
        "energy uJ": f"{objectives['energy_pj'] * 1e-6:.1f}",
        "power W": f"{objectives['avg_power_w']:.2f}",
        "EDP nJ.s": f"{objectives['edp_js'] * 1e9:.3f}",
        "cached": "yes" if evaluation.cached else "no",
    }


def render_dse(result: DseResult) -> str:
    """Frontier table + Fig 5 reference check + run summary."""
    parts = []
    if result.frontier:
        rows = [_objective_row(e.label, e) for e in result.frontier]
        parts.append(format_table(
            rows, title=f"DSE Pareto frontier — minimise "
            f"(cycles, area, energy) over {', '.join(result.workloads)}"))
    else:
        parts.append("DSE Pareto frontier — empty (no feasible "
                     "candidate; relax the budgets or widen the space)")
    rejected = [e for e in result.evaluations if e.status == "invalid"]
    if rejected:
        rows = [{"candidate": e.label,
                 "rejected because": (e.message or "").splitlines()[0]}
                for e in rejected]
        parts.append(format_table(rows, title="Invalid candidates"))
    if result.fig5:
        rows = []
        for check in result.fig5:
            if check.evaluation.ok:
                row = _objective_row(check.name, check.evaluation)
                row.pop("cached")
                row["vs frontier"] = (
                    f"dominated by {', '.join(check.dominated_by)}"
                    if check.beaten else "undominated")
            else:
                row = {"candidate": check.name,
                       "vs frontier": f"({check.evaluation.status})"}
            rows.append(row)
        parts.append(format_table(
            rows, title="Fig 5 hand-picked designs vs discovered "
            "frontier"))
    parts.append(result.summary())
    return "\n\n".join(parts)


#: Flat column order of :func:`dse_csv`.
CSV_FIELDS = ("label", "status", "feasible", "on_frontier", "cached",
              "cycles", "area_mm2", "energy_pj", "seconds",
              "avg_power_w", "edp_js", "overrides", "message")


def dse_csv(result: DseResult) -> str:
    """One row per evaluated candidate (frontier membership flagged)."""
    frontier = {e.label for e in result.frontier}
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=CSV_FIELDS)
    writer.writeheader()
    for evaluation in result.evaluations:
        objectives = evaluation.objectives
        writer.writerow({
            "label": evaluation.label,
            "status": evaluation.status,
            "feasible": evaluation.feasible,
            "on_frontier": evaluation.label in frontier,
            "cached": evaluation.cached,
            "cycles": objectives.get("cycles"),
            "area_mm2": objectives.get("area_mm2"),
            "energy_pj": objectives.get("energy_pj"),
            "seconds": objectives.get("seconds"),
            "avg_power_w": objectives.get("avg_power_w"),
            "edp_js": objectives.get("edp_js"),
            "overrides": _knob_settings(evaluation.overrides),
            "message": ((evaluation.message or "").splitlines()
                        or [""])[0],
        })
    return out.getvalue()
