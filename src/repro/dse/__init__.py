"""Design-space exploration: search accelerator configs, report
Pareto frontiers.

The paper's Fig 5 evaluates three hand-picked "next-generation"
GNNerator variants; this package searches the surrounding hardware
design space instead. A declarative :class:`DesignSpace` spans the
config knobs (systolic array shape, GPE count, SIMD lanes, scratchpad
sizes/splits, DRAM bandwidth, feature blocking); pluggable strategies
(exhaustive grid, seeded random, mutation-based evolutionary) propose
candidates; and the :class:`DseEngine` evaluates every candidate on
latency, silicon area and energy through the parallel sweep scheduler
and persistent result cache, reporting the Pareto frontier under
user-supplied area/power budgets.

Entry points::

    from repro.dse import (DseEngine, Budget, RandomSearch,
                           default_design_space)
    from repro.sweep import SweepRunner, ResultCache
    from repro.config.workload import WorkloadSpec

    engine = DseEngine(
        default_design_space(), RandomSearch(samples=32, seed=0),
        [WorkloadSpec(dataset="tiny", network="gcn")],
        SweepRunner(jobs=4, cache=ResultCache(".sweep-cache")),
        budget=Budget(area_mm2=20.0))
    result = engine.run()
    print(result.summary())

or from the command line: ``python -m repro dse --strategy random
--budget-area 20 --networks gcn --datasets tiny``.
"""

from repro.dse.engine import (
    Budget,
    DseEngine,
    DseError,
    DseEvaluation,
    DseResult,
    Fig5Check,
    candidate_label,
)
from repro.dse.pareto import (
    dominated_count,
    dominates,
    pareto_front,
    pareto_indices,
)
from repro.dse.report import dse_csv, render_dse
from repro.dse.space import (
    SPACE_PRESETS,
    DesignSpace,
    Knob,
    default_design_space,
    small_design_space,
)
from repro.dse.strategies import (
    OBJECTIVE_KEYS,
    STRATEGY_NAMES,
    EvolutionarySearch,
    GridSearch,
    RandomSearch,
    SearchStrategy,
    build_strategy,
)

__all__ = [
    "Budget",
    "DseEngine",
    "DseError",
    "DseEvaluation",
    "DseResult",
    "Fig5Check",
    "candidate_label",
    "dominated_count",
    "dominates",
    "pareto_front",
    "pareto_indices",
    "dse_csv",
    "render_dse",
    "SPACE_PRESETS",
    "DesignSpace",
    "Knob",
    "default_design_space",
    "small_design_space",
    "OBJECTIVE_KEYS",
    "STRATEGY_NAMES",
    "EvolutionarySearch",
    "GridSearch",
    "RandomSearch",
    "SearchStrategy",
    "build_strategy",
]
