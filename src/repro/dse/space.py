"""Declarative design spaces over GNNerator hardware knobs.

A :class:`DesignSpace` is a tuple of named :class:`Knob` axes — each a
dotted override path (see :mod:`repro.config.overrides`) with a finite
value ladder — over a base :class:`GNNeratorConfig`. Candidates are
override mappings assigning one value per knob; the space turns them
into validated configs, enumerates the full grid, draws seeded random
samples, and mutates a candidate one rung along one axis (the move
operator of the evolutionary search).

Validity is delegated to the config dataclasses: building a candidate
runs every ``__post_init__`` check, so degenerate designs (zero-sized
buffer splits, dead DRAM channels, feature blocks that overflow a
scratchpad half) raise :class:`ConfigError` with a message naming the
offending knob — the search records them as rejected and moves on.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from repro.config.accelerator import MIB, ConfigError, GNNeratorConfig
from repro.config.overrides import (
    FrozenOverrides,
    apply_overrides,
    freeze_overrides,
    knob_paths,
)
from repro.config.platforms import gnnerator_config


@dataclass(frozen=True)
class Knob:
    """One design axis: an override path plus its candidate values."""

    path: str
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ConfigError(f"knob {self.path!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise ConfigError(f"knob {self.path!r} has duplicate values")

    def index_of(self, value: float) -> int:
        try:
            return self.values.index(value)
        except ValueError:
            raise ConfigError(
                f"{value!r} is not a value of knob {self.path!r}; "
                f"values: {self.values}") from None


@dataclass(frozen=True)
class DesignSpace:
    """A finite grid of candidate GNNerator configurations."""

    knobs: tuple[Knob, ...]
    base: GNNeratorConfig = field(default_factory=gnnerator_config)

    def __post_init__(self) -> None:
        if not self.knobs:
            raise ConfigError("design space needs at least one knob")
        paths = [knob.path for knob in self.knobs]
        if len(set(paths)) != len(paths):
            raise ConfigError(f"duplicate knob paths: {paths}")
        # Fail on unknown *paths* now, not at first candidate build —
        # but leave value validation per candidate: a ladder may well
        # contain values that are only invalid in some combinations.
        known = knob_paths(self.base)
        unknown = [path for path in paths if path not in known]
        if unknown:
            raise ConfigError(
                f"unknown knob paths {unknown}; known paths: "
                f"{', '.join(known)}")

    @property
    def size(self) -> int:
        """Number of grid candidates (valid or not)."""
        total = 1
        for knob in self.knobs:
            total *= len(knob.values)
        return total

    def knob(self, path: str) -> Knob:
        for knob in self.knobs:
            if knob.path == path:
                return knob
        raise ConfigError(
            f"no knob {path!r}; knobs: "
            f"{', '.join(k.path for k in self.knobs)}")

    def with_knob(self, path: str,
                  values: tuple[float, ...]) -> "DesignSpace":
        """Replace (or add) one knob's value ladder."""
        replaced = tuple(Knob(path, values) if knob.path == path else knob
                         for knob in self.knobs)
        if all(knob.path != path for knob in self.knobs):
            replaced = replaced + (Knob(path, values),)
        return DesignSpace(replaced, self.base)

    # -- candidate construction ----------------------------------------
    def config_for(self, overrides) -> GNNeratorConfig:
        """Build (and validate) the candidate config; may raise
        :class:`ConfigError` with the reason the design is degenerate."""
        return apply_overrides(self.base, dict(overrides))

    def freeze(self, overrides) -> FrozenOverrides:
        return freeze_overrides(overrides)

    # -- enumeration / sampling / mutation ------------------------------
    def grid(self):
        """Yield every candidate of the full cartesian grid."""
        ladders = [knob.values for knob in self.knobs]
        for combo in itertools.product(*ladders):
            yield {knob.path: value
                   for knob, value in zip(self.knobs, combo)}

    def sample(self, rng: random.Random) -> dict[str, float]:
        """One uniform random candidate."""
        return {knob.path: rng.choice(knob.values) for knob in self.knobs}

    def mutate(self, overrides, rng: random.Random) -> dict[str, float]:
        """Move one knob a single rung up or down its value ladder.

        Candidates at a ladder end move inward, so mutation always
        changes exactly one knob — the hill-climb neighbourhood.
        """
        mutated = dict(overrides)
        knob = self.knobs[rng.randrange(len(self.knobs))]
        index = knob.index_of(mutated[knob.path])
        if len(knob.values) == 1:
            return mutated
        step = rng.choice((-1, 1))
        index = index + step
        if index < 0:
            index = 1
        elif index >= len(knob.values):
            index = len(knob.values) - 2
        mutated[knob.path] = knob.values[index]
        return mutated


def default_design_space(base: GNNeratorConfig | None = None
                         ) -> DesignSpace:
    """The stock search space around the Table IV design.

    Spans the knobs the paper's Fig 5 scaling study hand-picks —
    systolic array shape, GPE count, SIMD lanes, scratchpad
    sizes/splits, DRAM bandwidth and the feature-block factor — each
    on a coarse ladder bracketing the baseline, so all three Fig 5
    next-generation variants are interior points of the space.
    """
    if base is None:
        base = gnnerator_config()
    knobs = (
        Knob("dense.rows", (32, 64, 128)),
        Knob("dense.cols", (32, 64, 128)),
        Knob("graph.num_gpes", (16, 32, 64)),
        Knob("graph.simd_width", (16, 32, 64)),
        Knob("graph.src_feature_buffer_bytes",
             (6 * MIB, 11 * MIB, 22 * MIB)),
        Knob("graph.dst_feature_buffer_bytes",
             (6 * MIB, 11 * MIB, 22 * MIB)),
        Knob("graph.edge_buffer_bytes", (1 * MIB, 2 * MIB, 4 * MIB)),
        Knob("dense.weight_buffer_bytes", (1 * MIB, 2 * MIB, 4 * MIB)),
        Knob("dram.bandwidth_bytes_per_s", (128e9, 256e9, 512e9)),
        Knob("feature_block", (32, 64, 128)),
    )
    return DesignSpace(knobs, base)


def small_design_space(base: GNNeratorConfig | None = None) -> DesignSpace:
    """A 54-point space for exhaustive-grid runs and smoke tests."""
    if base is None:
        base = gnnerator_config()
    knobs = (
        Knob("dense.rows", (32, 64, 128)),
        Knob("dense.cols", (32, 64, 128)),
        Knob("graph.num_gpes", (16, 32, 64)),
        Knob("dram.bandwidth_bytes_per_s", (128e9, 256e9)),
    )
    return DesignSpace(knobs, base)


#: Space presets selectable from the CLI.
SPACE_PRESETS = {
    "default": default_design_space,
    "small": small_design_space,
}
