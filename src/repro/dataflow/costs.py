"""Analytic shard-dataflow cost model (Table I).

For an ``S x S`` shard grid walked with an S-pattern, with ``I`` input
feature rows per interval on-chip at once, the off-chip transfer costs
are:

===============  =============================  =================
Order            Read cost                      Write cost
===============  =============================  =================
SRC stationary   ``S*I + (S-1)^2 * I_dst``      ``(S^2-S+1) * I_dst``
DST stationary   ``(S^2-S+1) * I``              ``S * I_dst``
===============  =============================  =================

(The paper's Table I states the destination-side terms without the
per-interval row factor; we carry it explicitly so both orders are in the
same unit — feature rows — and so asymmetric source/destination interval
sizes are supported.)

Derivation (matches :func:`repro.graph.traversal.simulate_residency`
exactly — see the property tests):

* *src-stationary* holds each of the ``S`` source intervals once
  (``S*I`` reads). Crossing a row means revisiting every destination
  column, reloading spilled partial sums: ``(S-1)^2`` reloads (none on
  the first row; the serpentine saves one per row crossing). Every shard
  visit except the ``S-1`` serpentine-saved ones spills or finally
  writes its column: ``S^2-S+1`` writes.
* *dst-stationary* holds each destination column's accumulators until
  done (``S`` final writes, no partial reloads), paying instead a source
  reload on every shard except the ``S-1`` serpentine-saved ones:
  ``(S^2-S+1) * I`` reads.

With equal per-row read and write costs, dst-stationary never loses:
``cost_src - cost_dst = 2(S-1)^2 * I_dst >= 0`` when interval sizes
match — which is why Algorithm 1 walks destination-major.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.workload import DST_STATIONARY, SRC_STATIONARY
from repro.graph.graph import GraphError


@dataclass(frozen=True)
class DataflowCost:
    """Off-chip feature-row transfers for one full grid walk."""

    order: str
    src_read_rows: int
    dst_read_rows: int
    dst_write_rows: int

    @property
    def read_rows(self) -> int:
        return self.src_read_rows + self.dst_read_rows

    @property
    def write_rows(self) -> int:
        return self.dst_write_rows

    @property
    def total_rows(self) -> int:
        return self.read_rows + self.write_rows


def _validate(grid_side: int, src_rows: int, dst_rows: int) -> None:
    if grid_side <= 0:
        raise GraphError("grid_side must be positive")
    if src_rows < 0 or dst_rows < 0:
        raise GraphError("interval row counts cannot be negative")


def src_stationary_cost(grid_side: int, src_rows: int,
                        dst_rows: int | None = None) -> DataflowCost:
    """Table I, row 1. ``src_rows`` is ``I``; ``dst_rows`` defaults to it."""
    if dst_rows is None:
        dst_rows = src_rows
    _validate(grid_side, src_rows, dst_rows)
    s = grid_side
    return DataflowCost(
        order=SRC_STATIONARY,
        src_read_rows=s * src_rows,
        dst_read_rows=(s - 1) ** 2 * dst_rows,
        dst_write_rows=(s * s - s + 1) * dst_rows,
    )


def dst_stationary_cost(grid_side: int, src_rows: int,
                        dst_rows: int | None = None) -> DataflowCost:
    """Table I, row 2."""
    if dst_rows is None:
        dst_rows = src_rows
    _validate(grid_side, src_rows, dst_rows)
    s = grid_side
    return DataflowCost(
        order=DST_STATIONARY,
        src_read_rows=(s * s - s + 1) * src_rows,
        dst_read_rows=0,
        dst_write_rows=s * dst_rows,
    )


def traversal_cost(order: str, grid_side: int, src_rows: int,
                   dst_rows: int | None = None) -> DataflowCost:
    if order == SRC_STATIONARY:
        return src_stationary_cost(grid_side, src_rows, dst_rows)
    if order == DST_STATIONARY:
        return dst_stationary_cost(grid_side, src_rows, dst_rows)
    raise GraphError(f"unknown traversal order {order!r}")


def best_traversal(grid_side: int, src_rows: int,
                   dst_rows: int | None = None,
                   read_weight: float = 1.0,
                   write_weight: float = 1.0) -> str:
    """Analytically pick the cheaper walk (Sec IV-A: "we can analytically
    determine the best ordering")."""
    src = src_stationary_cost(grid_side, src_rows, dst_rows)
    dst = dst_stationary_cost(grid_side, src_rows, dst_rows)

    def weighted(cost: DataflowCost) -> float:
        return (read_weight * cost.read_rows
                + write_weight * cost.write_rows)

    return (SRC_STATIONARY if weighted(src) < weighted(dst)
            else DST_STATIONARY)
