"""GNN dataflows: Table I cost model and dimension blocking (Algorithm 1)."""

from repro.dataflow.blocking import (
    BlockPlan,
    dimension_blocked_walk,
    plan_blocks,
)
from repro.dataflow.costs import (
    DataflowCost,
    best_traversal,
    dst_stationary_cost,
    src_stationary_cost,
    traversal_cost,
)

__all__ = [
    "BlockPlan",
    "dimension_blocked_walk",
    "plan_blocks",
    "DataflowCost",
    "best_traversal",
    "dst_stationary_cost",
    "src_stationary_cost",
    "traversal_cost",
]
