"""Feature dimension-blocking (Algorithm 1, Sec IV-B).

A :class:`BlockPlan` partitions a ``D``-dimensional feature space into
contiguous blocks of at most ``B`` dimensions. Algorithm 1's loop nest —
``for block: for dst: for src: for edges: for dims-in-block`` — is
materialised by :func:`dimension_blocked_walk`, whose order the compiler
follows instruction-for-instruction.

Setting ``B = D`` (``block=None``) collapses the block loop and yields
the conventional GNN dataflow of Sec IV-A.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.config.workload import TRAVERSAL_ORDERS
from repro.graph.graph import GraphError
from repro.graph.traversal import traversal_order


@dataclass(frozen=True)
class BlockPlan:
    """A partition of ``dim`` feature dimensions into blocks of ``block``."""

    dim: int
    block: int

    def __post_init__(self) -> None:
        if self.dim <= 0:
            raise GraphError("dim must be positive")
        if not 0 < self.block <= self.dim:
            raise GraphError(
                f"block must be in [1, {self.dim}], got {self.block}")

    @property
    def num_blocks(self) -> int:
        return -(-self.dim // self.block)

    @property
    def is_blocked(self) -> bool:
        """True when more than one block exists (B < D)."""
        return self.num_blocks > 1

    def slices(self) -> list[slice]:
        """Contiguous dimension slices covering ``range(dim)`` exactly."""
        return [slice(start, min(start + self.block, self.dim))
                for start in range(0, self.dim, self.block)]

    def block_slice(self, index: int) -> slice:
        if not 0 <= index < self.num_blocks:
            raise GraphError(f"block index {index} out of range")
        start = index * self.block
        return slice(start, min(start + self.block, self.dim))

    def block_width(self, index: int) -> int:
        chunk = self.block_slice(index)
        return chunk.stop - chunk.start


def plan_blocks(dim: int, block: int | None) -> BlockPlan:
    """Build a plan; ``block=None`` (or oversized) means the conventional
    unblocked dataflow, B = D."""
    if block is None:
        return BlockPlan(dim=dim, block=dim)
    return BlockPlan(dim=dim, block=min(block, dim))


def dimension_blocked_walk(plan: BlockPlan, grid_side: int,
                           traversal: str
                           ) -> Iterator[tuple[int, int, int]]:
    """Algorithm 1's shard iteration: yields ``(block, row, col)``.

    The block loop is outermost (line 2); within a block the shard grid
    is walked in the requested stationary order (lines 3-4, S-pattern).
    """
    if traversal not in TRAVERSAL_ORDERS:
        raise GraphError(f"unknown traversal {traversal!r}")
    order = traversal_order(traversal, grid_side)
    for block in range(plan.num_blocks):
        for row, col in order:
            yield block, row, col
