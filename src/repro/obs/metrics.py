"""Counter/gauge/histogram registry with a Prometheus text renderer.

Naming scheme (DESIGN.md §8): every series is prefixed ``repro_``;
monotonic counters end in ``_total`` (enforced at registration);
duration histograms end in ``_seconds``. Labels are for bounded
dimensions only (endpoint, status, cache layer) — never for
unbounded values like request keys, which belong in the structured
logs.

Two instrument styles coexist:

* **Direct** instruments (``Counter.inc``, ``Gauge.set``,
  ``Histogram.observe``) own their state, guarded by a per-instrument
  lock.
* **Callback** instruments (``fn=...``) read an existing source of
  truth at scrape time — this is how the daemon absorbs the counters
  that already live on the :class:`~repro.serve.workqueue.WorkQueue`,
  the harness memos, the program store and the dataset disk cache
  without double-counting or migration. The callback returns either a
  scalar (unlabelled) or ``{label_values_tuple: value}``.

:func:`render_prometheus` emits text exposition format 0.0.4 (the
format every Prometheus-compatible scraper speaks);
:func:`parse_prometheus` is the inverse used by the loadtest delta
and the CI scrape validation.
"""

from __future__ import annotations

import math
import threading

#: Latency buckets (seconds) sized for this daemon: tiny-graph warm
#: hits are sub-millisecond, cold million-edge compiles are tens of
#: seconds.
DEFAULT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


class MetricError(ValueError):
    """Bad metric name, label set, or type collision."""


def _check_labels(labels: tuple[str, ...], values: dict,
                  name: str) -> tuple:
    if set(values) != set(labels):
        raise MetricError(
            f"{name} expects labels {labels}, got {tuple(values)}")
    return tuple(str(values[label]) for label in labels)


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class _Instrument:
    """Shared shape: name, help, label names, sample storage."""

    kind = "untyped"

    def __init__(self, name: str, help: str,
                 labels: tuple[str, ...] = (), fn=None) -> None:
        if not name.startswith("repro_"):
            raise MetricError(f"metric {name!r} must start with "
                              f"'repro_' (see DESIGN.md §8)")
        self.name = name
        self.help = help
        self.labels = tuple(labels)
        self.fn = fn
        self._lock = threading.Lock()
        self._values: dict[tuple, float] = {}

    def samples(self) -> list[tuple[tuple, float]]:
        """``[(label_values, value)]`` — one entry per series."""
        if self.fn is not None:
            got = self.fn()
            if isinstance(got, dict):
                return sorted(got.items())
            return [((), float(got))]
        with self._lock:
            return sorted(self._values.items())


class Counter(_Instrument):
    kind = "counter"

    def __init__(self, name, help, labels=(), fn=None) -> None:
        if not name.endswith("_total"):
            raise MetricError(f"counter {name!r} must end in '_total'")
        super().__init__(name, help, labels, fn)

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise MetricError("counters only go up")
        key = _check_labels(self.labels, labels, self.name)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount


class Gauge(_Instrument):
    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = _check_labels(self.labels, labels, self.name)
        with self._lock:
            self._values[key] = value


class Histogram(_Instrument):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, name: str, help: str,
                 labels: tuple[str, ...] = (),
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help, labels)
        self.buckets = tuple(sorted(buckets))
        #: per label set: ([count per bucket], sum, count)
        self._series: dict[tuple, list] = {}

    def observe(self, value: float, **labels) -> None:
        key = _check_labels(self.labels, labels, self.name)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = [
                    [0] * len(self.buckets), 0.0, 0]
            counts, _, _ = series
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
            series[1] += value
            series[2] += 1

    def series(self) -> dict[tuple, dict]:
        with self._lock:
            return {
                key: {"buckets": list(counts), "sum": total,
                      "count": count}
                for key, (counts, total, count)
                in sorted(self._series.items())}


class MetricRegistry:
    """Named instruments; one per daemon (tests build their own)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    def _register(self, cls, name, *args, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise MetricError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}")
                return existing
            instrument = cls(name, *args, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str,
                labels: tuple[str, ...] = (), fn=None) -> Counter:
        return self._register(Counter, name, help, labels, fn)

    def gauge(self, name: str, help: str,
              labels: tuple[str, ...] = (), fn=None) -> Gauge:
        return self._register(Gauge, name, help, labels, fn)

    def histogram(self, name: str, help: str,
                  labels: tuple[str, ...] = (),
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS
                  ) -> Histogram:
        return self._register(Histogram, name, help, labels, buckets)

    def instruments(self) -> list[_Instrument]:
        with self._lock:
            return [self._instruments[name]
                    for name in sorted(self._instruments)]


def _label_str(names: tuple[str, ...], values: tuple,
               extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [f'{name}="{_escape_label(str(value))}"'
             for name, value in zip(names, values)]
    pairs.extend(f'{name}="{_escape_label(value)}"'
                 for name, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(registry: MetricRegistry) -> str:
    """Text exposition format 0.0.4; ends with a trailing newline."""
    lines: list[str] = []
    for instrument in registry.instruments():
        lines.append(f"# HELP {instrument.name} {instrument.help}")
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        if isinstance(instrument, Histogram):
            for key, data in instrument.series().items():
                cumulative = 0
                for bound, bucket in zip(instrument.buckets,
                                         data["buckets"]):
                    cumulative = bucket
                    labels = _label_str(
                        instrument.labels, key,
                        (("le", _format_value(float(bound))),))
                    lines.append(f"{instrument.name}_bucket{labels} "
                                 f"{cumulative}")
                labels = _label_str(instrument.labels, key,
                                    (("le", "+Inf"),))
                lines.append(f"{instrument.name}_bucket{labels} "
                             f"{data['count']}")
                labels = _label_str(instrument.labels, key)
                lines.append(f"{instrument.name}_sum{labels} "
                             f"{_format_value(data['sum'])}")
                lines.append(f"{instrument.name}_count{labels} "
                             f"{data['count']}")
            continue
        for key, value in instrument.samples():
            labels = _label_str(instrument.labels, key)
            lines.append(f"{instrument.name}{labels} "
                         f"{_format_value(float(value))}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[tuple, float]:
    """Inverse of :func:`render_prometheus` (subset: no timestamps).

    Returns ``{(name, ((label, value), ...)): value}`` with labels
    sorted — the shape the loadtest delta diffs. Raises
    :class:`MetricError` on malformed lines, which is what the CI
    scrape check leans on.
    """
    out: dict[tuple, float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        name_part = name_part.strip()
        if not name_part or not value_part:
            raise MetricError(f"malformed sample line: {raw!r}")
        labels: tuple = ()
        if "{" in name_part:
            if not name_part.endswith("}"):
                raise MetricError(f"unterminated labels: {raw!r}")
            name, _, label_body = name_part.partition("{")
            label_body = label_body[:-1]
            pairs = []
            for chunk in filter(None, label_body.split(",")):
                key, sep, val = chunk.partition("=")
                if not sep or not (val.startswith('"')
                                   and val.endswith('"')):
                    raise MetricError(f"malformed label {chunk!r} in "
                                      f"{raw!r}")
                pairs.append((key, val[1:-1]))
            labels = tuple(sorted(pairs))
        else:
            name = name_part
        if not name.replace("_", "").replace(":", "").isalnum():
            raise MetricError(f"malformed metric name {name!r}")
        try:
            value = float(value_part)
        except ValueError:
            raise MetricError(
                f"malformed value {value_part!r} in {raw!r}") from None
        out[(name, labels)] = value
    return out


def series_sum(parsed: dict[tuple, float], name: str,
               **match_labels) -> float:
    """Sum every sample of ``name`` whose labels include
    ``match_labels`` — the delta helper for labelled counters."""
    want = {(k, str(v)) for k, v in match_labels.items()}
    total = 0.0
    for (sample_name, labels), value in parsed.items():
        if sample_name == name and want <= set(labels):
            total += value
    return total


def series_value(parsed: dict[tuple, float], name: str,
                 **labels) -> float:
    """Exact-lookup counterpart of :func:`series_sum`: the single
    sample of ``name`` with *exactly* ``labels``. KeyError (naming the
    known series of ``name``) when absent, so assertions on scraped
    metrics fail loudly instead of summing an empty match to 0."""
    key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
    try:
        return parsed[key]
    except KeyError:
        known = sorted(labels for (sample, labels) in parsed
                       if sample == name)
        raise KeyError(
            f"no sample {name}{dict(labels) or ''}; "
            f"known label sets for {name}: {known}") from None
