"""One-shot workload profile: host phases + simulated-hardware summary.

``repro profile <dataset> <network>`` answers "where did the time go?"
for a single workload without setting up tracing by hand: it runs the
full pipeline (load → compile → simulate) under a span tracer and a
hardware probe, then reports

* per-phase host wall time (the span aggregate — load, compile, lower,
  shard-batch, simulate);
* per-engine simulated busy cycles and utilization;
* the top-k hottest shards by GPE compute cycles (straight off the
  compiled program's :class:`~repro.compiler.ir.ShardAggregateOp`
  queue entries — a static property of the program, no extra runs);
* the DRAM roll-up from the probe (bytes each way, achieved
  bytes/cycle, peak port-queue depth).

Everything here is read-only over existing machinery; profiling runs
the same simulation as ``repro run`` and reports the same cycle count.
"""

from __future__ import annotations

from repro.obs.hwtel import HwProbe, summarize_probe
from repro.obs.spans import SpanTracer, tracing

# The pipeline imports (accelerator, harness) happen inside the
# functions: the compiler itself imports ``repro.obs`` for its spans,
# so importing it here would close an import cycle.


def hottest_shards(program, top_k: int = 5) -> list[dict]:
    """The ``top_k`` shard-aggregate ops by compute cycles."""
    from repro.compiler.ir import ShardAggregateOp

    ops = [op for queue in program.queues.values() for op in queue
           if isinstance(op, ShardAggregateOp)]
    ops.sort(key=lambda op: (-op.cycles, op.layer, op.stage, op.shard))
    return [{
        "layer": op.layer,
        "stage": op.stage,
        "shard": list(op.shard),
        "cycles": op.cycles,
        "num_edges": op.num_edges,
        "max_gpe_edges": op.max_gpe_edges,
    } for op in ops[:top_k]]


def profile_workload(dataset: str, network: str, *,
                     hidden_dim: int = 16,
                     feature_block: int | None = 64,
                     seed: int = 0, top_k: int = 5,
                     harness=None) -> dict:
    """Profile one workload end to end; returns the report payload."""
    from repro.accelerator import GNNerator
    from repro.config.platforms import gnnerator_config
    from repro.config.workload import WorkloadSpec
    from repro.eval.harness import Harness

    if harness is None:
        harness = Harness(seed=seed)
    spec = WorkloadSpec(dataset=dataset, network=network,
                        hidden_dim=hidden_dim,
                        feature_block=feature_block)
    tracer = SpanTracer()
    probe = HwProbe()
    with tracing(tracer):
        program = harness.gnnerator_program(spec)
        config = gnnerator_config(feature_block=spec.feature_block)
        result = GNNerator(config).simulate(program, probe=probe)
    phases = tracer.by_name()
    wall_s = sum(info["total_s"] for info in phases.values()
                 if info["depth"] == 0)
    return {
        "workload": spec.label,
        "dataset": dataset,
        "network": network,
        "hidden_dim": hidden_dim,
        "feature_block": feature_block,
        "cycles": result.cycles,
        "seconds": result.seconds,
        "wall_s": wall_s,
        "compile_tier": harness.last_compile_tier(),
        "phases": {
            name: {"total_s": info["total_s"], "count": info["count"]}
            for name, info in sorted(phases.items(),
                                     key=lambda kv: -kv[1]["total_s"])},
        "engines": {
            unit: {"busy_cycles": busy,
                   "utilization": result.utilization(unit)}
            for unit, busy in sorted(result.unit_busy_cycles.items())},
        "hottest_shards": hottest_shards(program, top_k),
        "dram": summarize_probe(probe, result.cycles),
    }


def render_profile(payload: dict) -> str:
    """Human-readable profile report."""
    lines = [
        f"profile {payload['workload']} "
        f"(hidden={payload['hidden_dim']}, "
        f"block={payload['feature_block']})",
        f"  simulated: {payload['cycles']} cycles "
        f"({payload['seconds'] * 1e6:.1f} us), "
        f"host wall {payload['wall_s'] * 1e3:.1f} ms, "
        f"compile tier: {payload['compile_tier']}",
        "  host phases:",
    ]
    for name, info in payload["phases"].items():
        lines.append(f"    {name:<12} {info['total_s'] * 1e3:9.2f} ms"
                     f"  x{info['count']}")
    lines.append("  engines:")
    for unit, info in payload["engines"].items():
        lines.append(f"    {unit:<16} {info['busy_cycles']:>10} cycles"
                     f"  {info['utilization']:6.1%}")
    dram = payload["dram"]
    lines.append(
        f"  dram: {dram['dram_read_bytes']} B read, "
        f"{dram['dram_write_bytes']} B written, "
        f"{dram['dram_bytes_per_cycle']:.2f} B/cycle, "
        f"queue peak {dram['queue_peak']}")
    lines.append("  hottest shards (by GPE cycles):")
    for entry in payload["hottest_shards"]:
        shard = tuple(entry["shard"])
        lines.append(
            f"    l{entry['layer']}s{entry['stage']} shard{shard}"
            f"  {entry['cycles']:>8} cycles  {entry['num_edges']} edges"
            f"  (worst GPE {entry['max_gpe_edges']})")
    return "\n".join(lines)
