"""Structured JSON logging for the serving daemon.

One line per event, each a self-contained JSON object — the format
log aggregators ingest without a parser config. The daemon emits one
``request`` line per HTTP request (request id, endpoint, coalescing
key, queue wait, service time, cache-hit tier) so a client-side
latency outlier or a 429 can be joined to exactly what the server did
with that request.

Levels follow syslog-ish severity ordering; a logger configured at
``info`` drops ``debug`` lines before formatting them, so the default
daemon pays nothing for the chatty per-connection stdlib log lines
routed here at debug level.
"""

from __future__ import annotations

import json
import sys
import threading
import time

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class JsonLogger:
    """Thread-safe newline-delimited JSON logger."""

    def __init__(self, level: str = "info", stream=None) -> None:
        if level not in LEVELS:
            raise ValueError(f"unknown log level {level!r}; choose "
                             f"from {', '.join(LEVELS)}")
        self.level = level
        self._threshold = LEVELS[level]
        #: Resolved lazily so tests capturing sys.stderr see the lines.
        self._stream = stream
        self._lock = threading.Lock()

    def enabled(self, level: str) -> bool:
        return LEVELS.get(level, 0) >= self._threshold

    def log(self, level: str, event: str, **fields) -> None:
        if not self.enabled(level):
            return
        record = {"ts": round(time.time(), 6), "level": level,
                  "event": event}
        record.update(fields)
        line = json.dumps(record, sort_keys=True, default=str)
        stream = self._stream if self._stream is not None else sys.stderr
        with self._lock:
            stream.write(line + "\n")
            try:
                stream.flush()
            except (OSError, ValueError):
                pass  # closed stream during shutdown; the line is lost

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)
