"""Low-overhead nested host spans.

A *span* is one timed window of host work — "load the dataset",
"lower layer 2's shard batch", "simulate" — with a name, wall-clock
start/duration, the recording thread, and its nesting depth. Spans
nest lexically through ``with`` blocks and per-thread stacks, so a
span recorded while another is open on the same thread becomes its
child (``parent`` id) without any global coordination.

The module-level :func:`span` entry point is what instrumented code
calls. It dispatches through the installed tracer, which is the
:data:`NULL_TRACER` singleton unless someone (the ``repro profile`` /
``--trace-out`` paths) installed a real :class:`SpanTracer`. The null
tracer returns one shared no-op context manager, so a disabled span
site costs a global load, one call, and two no-op methods — there is
deliberately no locking, no allocation and no clock read on that path.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Span:
    """One completed host-side window."""

    name: str
    #: Seconds since the owning tracer's origin (monotonic clock).
    start_s: float
    dur_s: float
    thread: str
    depth: int
    #: This span's id and its enclosing span's id (-1 = root). Ids are
    #: assigned at open time, so parents are stable even though spans
    #: complete (and are appended) children-first.
    uid: int = -1
    parent: int = -1
    attrs: dict = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        return self.start_s + self.dur_s


class _NullSpan:
    """Shared no-op context manager returned by the null tracer."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Telemetry disabled: every span site returns the shared no-op."""

    enabled = False

    def span(self, name: str, **attrs):
        return _NULL_SPAN


NULL_TRACER = NullTracer()


class _OpenSpan:
    """Context manager for one live span on one thread."""

    __slots__ = ("tracer", "name", "attrs", "start", "uid", "parent",
                 "depth")

    def __init__(self, tracer: SpanTracer, name: str,
                 attrs: dict) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self):
        stack = self.tracer._stack()
        self.depth = len(stack)
        self.parent = stack[-1] if stack else -1
        self.uid = next(self.tracer._ids)
        stack.append(self.uid)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        end = time.perf_counter()
        tracer = self.tracer
        tracer._stack().pop()
        record = Span(
            name=self.name,
            start_s=self.start - tracer.origin,
            dur_s=end - self.start,
            thread=threading.current_thread().name,
            depth=self.depth,
            uid=self.uid,
            parent=self.parent,
            attrs=self.attrs,
        )
        with tracer._lock:
            tracer.spans.append(record)
        return False


class SpanTracer:
    """Collects spans from any number of threads.

    ``spans`` holds completed spans in completion order (children
    before parents, as ``with`` blocks unwind); ``start_s`` values are
    relative to ``origin`` so one tracer's spans share a timeline.
    """

    enabled = True

    def __init__(self) -> None:
        self.origin = time.perf_counter()
        self.spans: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count()

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs):
        return _OpenSpan(self, name, attrs)

    # -- reporting -----------------------------------------------------
    def by_name(self) -> dict[str, dict]:
        """Aggregate: per span name, total seconds / count / min depth.

        Completion order loses the call tree, but depth survives, so a
        per-phase report can still indent nested phases correctly.
        """
        with self._lock:
            spans = list(self.spans)
        out: dict[str, dict] = {}
        for record in spans:
            entry = out.setdefault(
                record.name,
                {"total_s": 0.0, "count": 0, "depth": record.depth})
            entry["total_s"] += record.dur_s
            entry["count"] += 1
            entry["depth"] = min(entry["depth"], record.depth)
        return out


#: The installed tracer; instrumented code never touches this directly.
_TRACER: NullTracer | SpanTracer = NULL_TRACER


def get_tracer() -> NullTracer | SpanTracer:
    return _TRACER


def set_tracer(tracer: NullTracer | SpanTracer) -> None:
    global _TRACER
    _TRACER = tracer


def span(name: str, **attrs):
    """Open a span on the installed tracer (no-op when disabled)."""
    return _TRACER.span(name, **attrs)


@contextmanager
def tracing(tracer: SpanTracer | None = None):
    """Install a tracer for the duration of a block and restore the
    previous one after — the ``repro profile`` / ``--trace-out`` entry
    point. Yields the active :class:`SpanTracer`."""
    active = tracer if tracer is not None else SpanTracer()
    previous = _TRACER
    set_tracer(active)
    try:
        yield active
    finally:
        set_tracer(previous)
