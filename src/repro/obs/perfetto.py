"""Chrome/Perfetto trace-event JSON export.

Serialises one run's telemetry — host spans from a
:class:`~repro.obs.spans.SpanTracer`, the simulated-hardware timeline
from a :class:`~repro.obs.hwtel.HwProbe` (or labelled per-op slices
from a :class:`~repro.sim.trace.Tracer`) — into the trace-event JSON
format that ``chrome://tracing`` and https://ui.perfetto.dev load
directly.

Layout: pid 1 is the **host** process (one tid per Python thread,
complete events with microsecond timestamps); pid 2 is the
**simulated hardware** (one tid per unit, cycle timestamps converted
at the model's clock so both processes share the microsecond axis),
plus counter tracks for DRAM bandwidth and port-queue depth.

:func:`validate_trace_events` is the schema check the trace-smoke CI
step and the unit tests run over every emitted file: required fields
per phase type, non-negative ts/dur, and per-(pid, tid) monotonic
timestamps.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.hwtel import HwProbe, bin_windows
from repro.obs.spans import SpanTracer

#: pids of the two rendered processes.
HOST_PID = 1
SIM_PID = 2


def _meta(pid: int, tid: int, what: str, name: str) -> dict:
    return {"name": what, "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": name}}


def build_trace(spans: SpanTracer | None = None,
                probe: HwProbe | None = None,
                sim_ops: list[tuple[str, str, int, int]] | None = None,
                frequency_ghz: float = 1.0,
                total_cycles: int | None = None,
                num_windows: int = 48) -> dict:
    """Assemble the trace-event payload.

    ``sim_ops`` takes labelled ``(unit, label, start, end)`` slices
    (the event kernel's :class:`~repro.sim.trace.Tracer` events) and
    wins over ``probe.busy`` for the slice tracks; the probe still
    contributes DRAM bursts and the counter tracks. Cycle ``c``
    renders at ``c / frequency_ghz`` nanoseconds = ``c * 1e-3 /
    frequency_ghz`` microseconds.
    """
    events: list[dict] = []
    cycle_us = 1e-3 / frequency_ghz

    if spans is not None:
        events.append(_meta(HOST_PID, 0, "process_name", "host"))
        tids: dict[str, int] = {}
        for record in sorted(spans.spans, key=lambda s: s.start_s):
            tid = tids.get(record.thread)
            if tid is None:
                tid = tids[record.thread] = len(tids) + 1
                events.append(_meta(HOST_PID, tid, "thread_name",
                                    record.thread))
            events.append({
                "name": record.name, "ph": "X", "cat": "host",
                "pid": HOST_PID, "tid": tid,
                "ts": max(record.start_s, 0.0) * 1e6,
                "dur": max(record.dur_s, 0.0) * 1e6,
                "args": {k: str(v) for k, v in record.attrs.items()},
            })

    slices: list[tuple[str, str, int, int]] = []
    if sim_ops:
        slices = list(sim_ops)
    elif probe is not None:
        slices = [(unit, "busy", start, end)
                  for unit, start, end in probe.busy]
        slices.extend((unit, f"dram-{direction}", start,
                       start + occupancy)
                      for unit, direction, start, occupancy, _
                      in probe.dram)
    if slices or probe is not None:
        events.append(_meta(SIM_PID, 0, "process_name",
                            "simulated-hw"))
    if slices:
        unit_tids = {unit: i + 1 for i, unit in enumerate(
            sorted({unit for unit, _, _, _ in slices}))}
        for unit, tid in unit_tids.items():
            events.append(_meta(SIM_PID, tid, "thread_name", unit))
        for unit, label, start, end in sorted(
                slices, key=lambda s: (unit_tids[s[0]], s[2], s[3])):
            events.append({
                "name": label, "ph": "X", "cat": "sim",
                "pid": SIM_PID, "tid": unit_tids[unit],
                "ts": start * cycle_us,
                "dur": max(end - start, 0) * cycle_us,
                "args": {"cycles": end - start},
            })

    if probe is not None and total_cycles:
        for window in bin_windows(probe, total_cycles,
                                  num_windows=num_windows):
            ts = window["start"] * cycle_us
            width = max(window["end"] - window["start"], 1)
            events.append({
                "name": "dram bytes/cycle", "ph": "C", "pid": SIM_PID,
                "tid": 0, "ts": ts,
                "args": {
                    "read": round(window["dram_read_bytes"] / width, 4),
                    "write": round(window["dram_write_bytes"] / width,
                                   4)},
            })
            events.append({
                "name": "dram queue depth", "ph": "C", "pid": SIM_PID,
                "tid": 0, "ts": ts,
                "args": {"depth": window["queue_peak"]},
            })

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_trace_events(payload: dict) -> list[str]:
    """Schema problems in a trace payload; empty list = valid.

    Checks what the viewers actually require: a ``traceEvents`` list,
    ``name``/``ph``/``pid``/``tid`` on every event, numeric
    non-negative ``ts`` (plus ``dur`` for complete events), ``args``
    on counter/metadata events, and non-decreasing ``ts`` per
    ``(pid, tid)`` slice track.
    """
    problems: list[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    last_ts: dict[tuple, float] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event[{i}] is not an object")
            continue
        for fieldname in ("name", "ph", "pid", "tid"):
            if fieldname not in event:
                problems.append(f"event[{i}] missing {fieldname!r}")
        ph = event.get("ph")
        if ph not in ("X", "C", "M", "B", "E", "i"):
            problems.append(f"event[{i}] unknown phase {ph!r}")
            continue
        if ph == "M":
            if "args" not in event:
                problems.append(f"event[{i}] metadata without args")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event[{i}] bad ts {ts!r}")
            continue
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event[{i}] bad dur {dur!r}")
            track = (event.get("pid"), event.get("tid"))
            if ts < last_ts.get(track, 0.0):
                problems.append(
                    f"event[{i}] ts {ts} goes backwards on track "
                    f"{track}")
            last_ts[track] = max(last_ts.get(track, 0.0), ts)
        if ph == "C" and not isinstance(event.get("args"), dict):
            problems.append(f"event[{i}] counter without args")
    return problems


def write_perfetto(path, spans=None, probe=None, sim_ops=None,
                   frequency_ghz: float = 1.0,
                   total_cycles: int | None = None) -> Path:
    """Build, validate and write one trace file; returns the path."""
    payload = build_trace(spans=spans, probe=probe, sim_ops=sim_ops,
                          frequency_ghz=frequency_ghz,
                          total_cycles=total_cycles)
    problems = validate_trace_events(payload)
    if problems:
        raise ValueError("refusing to write an invalid trace: "
                         + "; ".join(problems[:5]))
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload) + "\n")
    return out
