"""Simulated-hardware telemetry: raw probe events + derived windows.

The probe is the *only* thing the simulation kernels know about
telemetry: an :class:`HwProbe` is three append-only lists that both
kernels fill behind a ``probe is not None`` branch —

* ``busy``  — ``(unit, start, end)`` compute-occupancy windows,
* ``dram``  — ``(unit, direction, grant_cycle, occupancy_cycles,
  num_bytes)`` per burst, recorded when the channel port is granted,
* ``queue`` — ``(cycle, depth)`` DRAM-port queue depth (holders +
  waiters) sampled at each request's arrival.

Everything an operator actually wants — per-engine utilization over
time, DRAM bandwidth per window, queue-occupancy peaks — is **derived
here, after the run**, by binning those raw events into cycle-time
windows (:func:`bin_windows`). Deriving instead of sampling inside
the kernels is a correctness posture, not a convenience: recording
appends to a list and never reads scheduler state, so enabling a
probe cannot reorder events or move a cycle count (the §4 obligation;
``tests/test_obs.py`` pins probe-on == probe-off == golden). It also
keeps the two kernels honest with each other — both emit the *same*
raw event stream for the same program, which the cross-kernel
equality test checks directly.
"""

from __future__ import annotations


class HwProbe:
    """Raw event sink both simulation kernels append into."""

    __slots__ = ("busy", "dram", "queue")

    def __init__(self) -> None:
        self.busy: list[tuple[str, int, int]] = []
        self.dram: list[tuple[str, str, int, int, int]] = []
        self.queue: list[tuple[int, int]] = []

    def units(self) -> list[str]:
        return sorted({unit for unit, _, _ in self.busy}
                      | {unit for unit, *_ in self.dram})


def bin_windows(probe: HwProbe, total_cycles: int,
                num_windows: int = 24) -> list[dict]:
    """Bin raw probe events into ``num_windows`` equal cycle windows.

    Each window reports per-unit busy cycles (compute occupancy
    overlapping the window), DRAM read/write bytes (attributed
    proportionally to the burst's occupancy overlap — a burst spanning
    a window edge splits its bytes by time, mirroring how a bandwidth
    meter would see it), DRAM busy cycles, and the peak port-queue
    depth sampled in the window.
    """
    if num_windows < 1:
        raise ValueError(f"num_windows must be >= 1, got {num_windows}")
    span = max(total_cycles, 1)
    width = span / num_windows
    windows = []
    for i in range(num_windows):
        windows.append({
            "start": int(i * width),
            "end": int((i + 1) * width) if i + 1 < num_windows else span,
            "busy_cycles": {},
            "dram_read_bytes": 0.0,
            "dram_write_bytes": 0.0,
            "dram_busy_cycles": 0.0,
            "queue_peak": 0,
        })

    def overlapping(start: float, end: float):
        """Yield (window, overlap_cycles) for one [start, end) event."""
        if end <= start:
            return
        first = min(int(start / width), num_windows - 1)
        for i in range(first, num_windows):
            w = windows[i]
            lo, hi = i * width, (i + 1) * width
            if lo >= end:
                break
            overlap = min(end, hi) - max(start, lo)
            if overlap > 0:
                yield w, overlap

    for unit, start, end in probe.busy:
        for w, overlap in overlapping(start, end):
            w["busy_cycles"][unit] = (w["busy_cycles"].get(unit, 0.0)
                                      + overlap)
    for _unit, direction, start, occupancy, num_bytes in probe.dram:
        end = start + occupancy
        key = ("dram_read_bytes" if direction == "read"
               else "dram_write_bytes")
        for w, overlap in overlapping(start, end):
            w["dram_busy_cycles"] += overlap
            w[key] += num_bytes * (overlap / max(occupancy, 1))
    for cycle, depth in probe.queue:
        index = min(int(cycle / width), num_windows - 1)
        w = windows[index]
        w["queue_peak"] = max(w["queue_peak"], depth)
    return windows


def summarize_probe(probe: HwProbe, total_cycles: int) -> dict:
    """Whole-run aggregates: per-unit utilization, DRAM bandwidth
    (bytes/cycle) and peak queue depth — the cross-check against the
    coalesced plan's static accounting."""
    span = max(total_cycles, 1)
    busy: dict[str, int] = {}
    for unit, start, end in probe.busy:
        busy[unit] = busy.get(unit, 0) + (end - start)
    read = sum(b for _, d, _, _, b in probe.dram if d == "read")
    write = sum(b for _, d, _, _, b in probe.dram if d == "write")
    dram_busy = sum(occ for _, _, _, occ, _ in probe.dram)
    return {
        "total_cycles": total_cycles,
        "unit_busy_cycles": dict(sorted(busy.items())),
        "unit_utilization": {
            unit: min(cycles / span, 1.0)
            for unit, cycles in sorted(busy.items())},
        "dram_read_bytes": read,
        "dram_write_bytes": write,
        "dram_busy_cycles": dram_busy,
        "dram_bytes_per_cycle": (read + write) / span,
        "queue_peak": max((d for _, d in probe.queue), default=0),
    }
