"""One telemetry spine: spans, metrics, hardware telemetry, exports.

Three signal families share this package (DESIGN.md §8):

* **Host spans** (:mod:`repro.obs.spans`) — nested wall-clock windows
  around the framework's own phases (dataset load, compile, lowering,
  shard-batch prewarm, simulate). Disabled by default through a no-op
  null tracer, so instrumented hot paths pay roughly one attribute
  lookup and a no-op context manager.
* **Metrics** (:mod:`repro.obs.metrics`) — a counter/gauge/histogram
  registry with a Prometheus text renderer; the serving daemon exposes
  it as ``GET /metrics`` and absorbs the previously scattered cache
  and queue counters through callback instruments.
* **Simulated-hardware telemetry** (:mod:`repro.obs.hwtel`) — raw
  per-engine busy windows, DRAM bursts and port-queue depth samples
  recorded by *both* simulation kernels behind an optional probe, then
  binned into cycle-time windows after the run. Recording never feeds
  back into scheduling, so enabling it cannot move a cycle count.

:mod:`repro.obs.perfetto` serialises spans + telemetry as Chrome
trace-event JSON for ``chrome://tracing`` / https://ui.perfetto.dev.
"""

from repro.obs.hwtel import HwProbe, bin_windows, summarize_probe
from repro.obs.logs import JsonLogger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    parse_prometheus,
    render_prometheus,
    series_sum,
    series_value,
)
from repro.obs.perfetto import (
    build_trace,
    validate_trace_events,
    write_perfetto,
)
from repro.obs.profile import (
    hottest_shards,
    profile_workload,
    render_profile,
)
from repro.obs.spans import (
    NullTracer,
    Span,
    SpanTracer,
    get_tracer,
    set_tracer,
    span,
    tracing,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HwProbe",
    "JsonLogger",
    "MetricRegistry",
    "NullTracer",
    "Span",
    "SpanTracer",
    "bin_windows",
    "build_trace",
    "get_tracer",
    "hottest_shards",
    "parse_prometheus",
    "profile_workload",
    "render_profile",
    "render_prometheus",
    "series_sum",
    "series_value",
    "set_tracer",
    "span",
    "summarize_probe",
    "tracing",
    "validate_trace_events",
    "write_perfetto",
]
