"""Functional runtime: interpret a compiled program over numpy state.

Walks ``program.order`` (emission order, dependency-correct by
construction) and applies the semantics of each compute operation; DMA,
credit and handoff operations are timing-only and skipped. The result
must match :func:`repro.models.reference.reference_forward` to float
tolerance — the repository's central correctness invariant, exercised by
the integration and property tests.
"""

from __future__ import annotations

import numpy as np

from repro.compiler.ir import (
    AccumWritebackOp,
    ActivationOp,
    CompileError,
    GemmOp,
    InitAccumulatorOp,
    SelfApplyOp,
    ShardAggregateOp,
)
from repro.compiler.program import Program
from repro.graph.graph import Graph
from repro.models.layers import apply_activation


class FunctionalState:
    """Logical feature arrays (the simulated shared feature memory)."""

    def __init__(self, program: Program, graph: Graph) -> None:
        if graph.num_nodes != program.num_nodes:
            raise CompileError(
                "program was compiled for a different graph size")
        self.program = program
        self.graph = graph
        self.arrays: dict[str, np.ndarray] = {}
        for name, dim in program.arrays.items():
            self.arrays[name] = np.zeros((graph.num_nodes, dim),
                                         dtype=np.float32)
        self.arrays[program.input_array][:] = graph.features
        #: Per-(layer, stage, shard) edge-weight gathers, shared by every
        #: feature block that revisits the same shard.
        self._shard_weights: dict[tuple[int, ...], np.ndarray] = {}

    def view(self, name: str, rows: tuple[int, int],
             dims: tuple[int, int]) -> np.ndarray:
        return self.arrays[name][rows[0]:rows[1], dims[0]:dims[1]]


def _exec_init(state: FunctionalState, op: InitAccumulatorOp) -> None:
    view = state.view(op.acc_array, op.rows, op.dims)
    view[:] = -np.inf if op.mode == "neginf" else 0.0


def _exec_self_apply(state: FunctionalState, op: SelfApplyOp) -> None:
    weights = state.program.self_weights[(op.layer, op.stage)]
    if weights is None:
        raise CompileError("SelfApplyOp without self weights")
    acc = state.view(op.acc_array, op.rows, op.dims)
    src = state.view(op.src_array, op.rows, op.dims)
    scaled = src * weights[op.rows[0]:op.rows[1], None]
    if op.reduce == "sum":
        acc += scaled
    else:
        np.maximum(acc, scaled, out=acc)


def _exec_aggregate(state: FunctionalState, op: ShardAggregateOp) -> None:
    grid = state.program.grids[(op.layer, op.stage)]
    shard = grid.shard(*op.shard)
    if shard.num_edges == 0:
        return
    key = (op.layer, op.stage) + op.shard
    edge_w = state._shard_weights.get(key)
    if edge_w is None:
        weights = state.program.edge_weights[(op.layer, op.stage)]
        edge_w = state._shard_weights[key] = weights[shard.edge_ids]
    src_vals = state.arrays[op.src_array][shard.src, op.dims[0]:op.dims[1]]
    values = src_vals * edge_w[:, None]
    acc = state.arrays[op.acc_array]
    # Shard edges are dst-sorted (see partition.py), so segment
    # reductions are contiguous — the same order the Reduce Unit sees.
    # The boundaries are precomputed once per shard and shared across
    # every feature block (and every compile reusing the grid).
    starts, segment_dst = shard.dst_segments
    if op.reduce == "sum":
        segments = np.add.reduceat(values, starts, axis=0)
        acc[segment_dst, op.dims[0]:op.dims[1]] += segments
    else:
        segments = np.maximum.reduceat(values, starts, axis=0)
        current = acc[segment_dst, op.dims[0]:op.dims[1]]
        acc[segment_dst, op.dims[0]:op.dims[1]] = np.maximum(
            current, segments)


def _exec_writeback(state: FunctionalState, op: AccumWritebackOp) -> None:
    if op.partial or not op.fixup_neginf:
        return
    view = state.view(op.acc_array, op.rows, op.dims)
    view[np.isneginf(view)] = 0.0


def _exec_gemm(state: FunctionalState, op: GemmOp) -> None:
    x = state.view(op.src_array, op.rows, op.src_dims)
    weight = state.program.params.weight(op.layer, op.stage)
    w = weight[op.weight_rows[0]:op.weight_rows[1], :]
    out = state.arrays[op.out_array][op.rows[0]:op.rows[1], :]
    product = x @ w
    if op.accumulate:
        out += product
    else:
        out[:] = product


def _exec_activation(state: FunctionalState, op: ActivationOp) -> None:
    out = state.arrays[op.out_array][op.rows[0]:op.rows[1], :]
    if op.has_bias:
        bias = state.program.params.bias(op.layer, op.stage)
        if bias is not None:
            out += bias
    out[:] = apply_activation(op.activation, out)


_HANDLERS = {
    InitAccumulatorOp: _exec_init,
    SelfApplyOp: _exec_self_apply,
    ShardAggregateOp: _exec_aggregate,
    AccumWritebackOp: _exec_writeback,
    GemmOp: _exec_gemm,
    ActivationOp: _exec_activation,
}


def run_functional(program: Program, graph: Graph) -> np.ndarray:
    """Execute the program's compute semantics; returns the output array."""
    state = FunctionalState(program, graph)
    for op in program.order:
        handler = _HANDLERS.get(type(op))
        if handler is not None:
            handler(state, op)
    if not program.output_array:
        raise CompileError("program has no output array")
    return state.arrays[program.output_array].copy()


def run_functional_with_state(program: Program,
                              graph: Graph) -> FunctionalState:
    """As :func:`run_functional` but returns all intermediate arrays."""
    state = FunctionalState(program, graph)
    for op in program.order:
        handler = _HANDLERS.get(type(op))
        if handler is not None:
            handler(state, op)
    return state
