"""Workload lowering: (graph, model, platform) -> instruction queues.

This is the "prototype compiler" of Sec V. For every layer it walks the
stage pipeline, lowering

* aggregate stages onto the Graph Engine following Algorithm 1 — feature
  block outermost, then the shard grid in the configured stationary
  order, with compile-time residency analysis deciding every DMA
  (serpentine reuse, edge-buffer hits, partial spills);
* extract stages onto the Dense Engine with contraction ("K") blocking
  aligned to the feature blocks, weight-slice residency, partial-sum
  accumulation in the output buffer, and row sub-chunking to the input
  buffer size.

Cross-engine dependencies become tokens; double buffering becomes
credits (see :mod:`repro.compiler.ir`). Emission order respects data
dependencies, so the functional runtime can interpret ``program.order``
sequentially while the DES extracts all the pipeline overlap the token
graph allows.

Compile-product dependency keys
-------------------------------

Incremental recompilation (DESIGN.md §6) rests on each compile product
being keyed by exactly the inputs it depends on — nothing in this
module may read an input its product's cache key omits:

* **shard grids** — ``(graph, usable src/dst/edge buffer bytes,
  feature block)``, resolving to ``(graph, interval size)``; memoized
  on the graph by :func:`repro.graph.partition.plan_shards`. GPE
  count, SIMD width, and everything dense/DRAM are *not* inputs.
* **baked aggregation weights** — static forms depend on
  ``(graph, stage)`` only; attention forms on ``(graph, params,
  model)`` via the shadow execution. No config input at all, so every
  DSE candidate shares them (module-level weak-keyed memos below).
* **operation queues / cycles** — the full compile-relevant config
  projection (:func:`repro.config.overrides.compile_relevant_config`):
  dense shape/dataflow/buffers, GPE count, SIMD width, pipeline
  depth, buffer budgets, sparsity elimination, feature block. Clock
  frequencies and the DRAM section are simulate-only and excluded —
  which is what lets ``Harness._compiled`` and the persistent program
  store (:mod:`repro.compiler.store`) serve DRAM-only DSE variants
  from one compiled program.

:func:`full_lowering_count` counts complete :meth:`Lowering.compile`
runs in this process — the observable CI and the cache tests use to
assert "recompiled nothing".
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from weakref import WeakKeyDictionary

import numpy as np

from repro.compiler.ir import (
    AccumWritebackOp,
    AcquireOp,
    ActivationOp,
    CompileError,
    DmaOp,
    GemmOp,
    InitAccumulatorOp,
    Operation,
    PopOp,
    PushOp,
    ReleaseOp,
    SelfApplyOp,
    ShardAggregateOp,
)
from repro.compiler.program import Program
from repro.compiler.residency import (
    DstBufferState,
    EdgeBufferLru,
    LruResidency,
    OutBufferState,
    SrcBufferState,
)
from repro.config.accelerator import ELEM_BYTES, GNNeratorConfig
from repro.config.workload import DST_STATIONARY
from repro.dataflow.blocking import (
    BlockPlan,
    dimension_blocked_walk,
    plan_blocks,
)
from repro.engines.dense.systolic import GemmShape, gemm_timing
from repro.engines.graph.gpe import (
    interval_touch_cycles,
    max_gpe_edges,
    shard_compute_cycles,
)
from repro.graph.graph import Graph
from repro.graph.partition import Shard, ShardGrid, plan_shards
from repro.obs.spans import span
from repro.models.layers import Parameters, dense_forward, init_parameters
from repro.models.reference import apply_aggregate
from repro.models.stages import (
    AggregateStage,
    ExtractStage,
    GNNLayer,
    GNNModel,
)


#: Process-wide count of full :meth:`Lowering.compile` executions.
#: Program-store hits, harness memo hits, and weight-memo hits all
#: avoid incrementing it — tests and the CI warm-run check read it to
#: verify a cached path really compiled nothing.
_FULL_LOWERINGS = 0

#: Guards the lowering counter and both weight memos below. Compiles
#: from concurrent threads (the serve daemon) read and publish memo
#: entries under it; the weight *computations* themselves run outside
#: the lock, so unrelated compiles never serialize here.
_MEMO_LOCK = threading.Lock()


def full_lowering_count() -> int:
    """How many times this process ran the full lowering pass."""
    with _MEMO_LOCK:
        return _FULL_LOWERINGS


#: Static aggregation weights per graph: ``graph -> {stage: (edge_w,
#: self_w)}``. An :class:`AggregateStage` is a frozen dataclass, so
#: equal stages (e.g. both GCN layers' sum/symmetric-norm stage) share
#: one entry; weak-keyed so dropping a graph drops its weights. Sound
#: to share across compiles: consumers only gather from these arrays,
#: never write into them.
_STATIC_WEIGHTS_MEMO: "WeakKeyDictionary" = WeakKeyDictionary()

#: Baked attention coefficients per (graph, params): ``graph ->
#: params -> {model: {(layer, stage): (edge_w, self_w)}}``. Attention
#: weights are computed from the shadow reference execution, a pure
#: function of (graph, params, model) — independent of every config
#: knob — so a complete per-model entry lets a recompile skip the
#: shadow entirely (the dominant cost of GAT compiles).
_ATTENTION_WEIGHTS_MEMO: "WeakKeyDictionary" = WeakKeyDictionary()

#: Below this many grid edges the thread-pool prewarm of per-shard
#: statistics costs more than it saves.
_PREWARM_MIN_EDGES = 100_000


@dataclass(frozen=True)
class Coverage:
    """Which tokens guard which (rows, dims) region of an array."""

    entries: tuple[tuple[tuple[int, int], tuple[int, int], str], ...] = ()

    def tokens_for(self, rows: tuple[int, int],
                   dims: tuple[int, int]) -> tuple[str, ...]:
        """Tokens of all entries overlapping the queried region."""
        tokens = []
        for entry_rows, entry_dims, token in self.entries:
            if (entry_rows[0] < rows[1] and rows[0] < entry_rows[1]
                    and entry_dims[0] < dims[1] and dims[0] < entry_dims[1]):
                tokens.append(token)
        return tuple(dict.fromkeys(tokens))


@dataclass(frozen=True)
class ValueRef:
    """A logical feature array plus the tokens guarding its readiness."""

    array: str
    cover: Coverage


def _span(sl: slice) -> tuple[int, int]:
    return (sl.start, sl.stop)


def _row_subchunks(rows: tuple[int, int],
                   max_rows: int) -> list[tuple[int, int]]:
    if max_rows <= 0:
        raise CompileError("dense input buffer cannot hold a single row")
    start, stop = rows
    return [(lo, min(lo + max_rows, stop))
            for lo in range(start, stop, max_rows)]


class Lowering:
    """Single-use compiler instance; see :func:`compile_workload`."""

    def __init__(self, graph: Graph, model: GNNModel, params: Parameters,
                 config: GNNeratorConfig, traversal: str,
                 feature_block: int | None) -> None:
        if graph.num_nodes == 0:
            raise CompileError("cannot compile an empty graph")
        if graph.features.shape[1] != model.in_dim:
            raise CompileError(
                f"graph features are {graph.features.shape[1]}-dim but "
                f"model {model.name!r} expects {model.in_dim}")
        self.graph = graph
        self.model = model
        self.config = config
        self.traversal = traversal
        self.feature_block = feature_block
        self.program = Program(
            graph_name=graph.name, model=model, params=params,
            traversal=traversal, feature_block=feature_block,
            num_nodes=graph.num_nodes)
        self._token_seq = 0
        # Attention stages need the *values* flowing into them at compile
        # time (their edge weights are computed, not structural), so the
        # compiler shadows the reference execution — but only when some
        # stage actually consumes features.
        self._needs_shadow = any(
            isinstance(stage, AggregateStage) and stage.needs_features
            for layer in model.layers for stage in layer.stages)
        # A complete set of previously baked attention coefficients for
        # this (graph, params, model) makes the shadow unnecessary: the
        # coefficients are its only output the compiler consumes.
        self._baked_attention: dict[
            tuple[int, int], tuple[np.ndarray, np.ndarray | None]] | None = None
        self._fresh_attention: dict[
            tuple[int, int], tuple[np.ndarray, np.ndarray | None]] = {}
        if self._needs_shadow:
            with _MEMO_LOCK:
                per_params = _ATTENTION_WEIGHTS_MEMO.get(graph)
                baked = (per_params.get(params, {}).get(model)
                         if per_params is not None else None)
            if baked is not None:
                self._baked_attention = baked
                self._needs_shadow = False
        self._shadow_h = graph.features if self._needs_shadow else None
        self._shadow_layer_input = self._shadow_h

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------
    def _token(self, prefix: str) -> str:
        self._token_seq += 1
        return f"{prefix}#{self._token_seq}"

    def _emit_step(self, channel: str, fetch_unit: str, compute_unit: str,
                   fetch_ops: list[Operation],
                   compute_ops: list[Operation]) -> None:
        """Wrap one double-buffered pipeline step with credits/handoff."""
        if not fetch_ops and not compute_ops:
            return
        program = self.program
        program.emit(AcquireOp(unit=fetch_unit, channel=channel))
        for op in fetch_ops:
            program.emit(op)
        program.emit(PushOp(unit=fetch_unit, channel=channel))
        program.emit(PopOp(unit=compute_unit, channel=channel))
        for op in compute_ops:
            program.emit(op)
        program.emit(ReleaseOp(unit=compute_unit, channel=channel))

    def _gpe_imbalance(self, layer: int, stage: int, grid: ShardGrid,
                       shard_key: tuple[int, int]) -> int:
        """Max edges landing on one GPE when distributing by destination.

        Cached on the shard itself (see :func:`max_gpe_edges`), so the
        value survives across stages, compiles, and sweep points that
        share the memoized grid."""
        return max_gpe_edges(grid.shard(*shard_key),
                             self.config.graph.num_gpes)

    def _distinct_sources(self, layer: int, stage: int, grid: ShardGrid,
                          shard_key: tuple[int, int]) -> int:
        """Distinct source rows a shard references (sparsity
        elimination's gather size); cached on the shard."""
        return grid.shard(*shard_key).distinct_sources()

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def compile(self) -> Program:
        global _FULL_LOWERINGS
        with _MEMO_LOCK:
            _FULL_LOWERINGS += 1
        with span("lower", graph=self.graph.name,
                  layers=len(self.model.layers)):
            return self._compile_locked()

    def _compile_locked(self) -> Program:
        program = self.program
        program.declare_array(program.input_array, self.model.in_dim)
        current = ValueRef(program.input_array, Coverage())
        for layer_index, layer in enumerate(self.model.layers):
            layer_input = current
            self._shadow_layer_input = self._shadow_h
            # Pre-plan every aggregate stage of the layer: extracts that
            # precede an aggregation chunk their rows by its intervals.
            for stage_index, stage in enumerate(layer.stages):
                if isinstance(stage, AggregateStage):
                    grid = plan_shards(self.graph, self.config.graph,
                                       block=self._block_for(stage.dim))
                    program.grids[(layer_index, stage_index)] = grid
                    program.plans[(layer_index, stage_index, "main")] = (
                        plan_blocks(stage.dim, self.feature_block))
                    with span("shard-batch", layer=layer_index,
                              stage=stage_index,
                              shards=grid.grid_side * grid.grid_side):
                        self._prewarm_shards(grid)
            completions: dict[int, list[tuple[int, int]]] = {}
            for stage_index, stage in enumerate(layer.stages):
                if isinstance(stage, AggregateStage):
                    current, done = self._lower_aggregate(
                        layer_index, stage_index, stage, current)
                    completions[stage_index] = done
                else:
                    current = self._lower_extract(
                        layer_index, stage_index, stage, current,
                        layer_input, layer, completions)
        program.output_array = current.array
        if self._fresh_attention:
            with _MEMO_LOCK:
                per_params = _ATTENTION_WEIGHTS_MEMO.get(self.graph)
                if per_params is None:
                    per_params = WeakKeyDictionary()
                    _ATTENTION_WEIGHTS_MEMO[self.graph] = per_params
                per_params.setdefault(program.params, {})[self.model] = (
                    dict(self._fresh_attention))
        return program

    def _prewarm_shards(self, grid: ShardGrid) -> None:
        """Warm per-shard statistics in parallel before serial emission.

        Emission reads one expensive statistic per non-empty shard —
        the worst-GPE edge load (plus the distinct-source count under
        sparsity elimination). Each lands in a per-shard cache keyed by
        its own inputs, and each shard is touched by exactly one task,
        so computing them on a thread pool first is a pure wall-time
        win: emission then finds every value warm, and the values are
        bit-identical to the serial path (§4 cycle-neutrality). Skipped
        for small grids where pool startup would dominate.
        """
        if grid.num_edges < _PREWARM_MIN_EDGES:
            return
        num_gpes = self.config.graph.num_gpes
        sparsity = self.config.sparsity_elimination
        # Materialize views serially (O(1) each) so threads never race
        # on the grid's view cache, then keep only shards with work.
        pending = [
            shard for shard in grid.iter_shards()
            if num_gpes not in shard._gpe_loads
            or (sparsity and shard._distinct_sources is None)
        ]
        if len(pending) < 2:
            return

        def warm(shard: Shard) -> None:
            max_gpe_edges(shard, num_gpes)
            if sparsity:
                shard.distinct_sources()

        workers = min(8, os.cpu_count() or 1, len(pending))
        if workers < 2:
            for shard in pending:
                warm(shard)
            return
        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(warm, pending))

    def _block_for(self, dim: int) -> int:
        if self.feature_block is None:
            return dim
        return min(self.feature_block, dim)

    # ------------------------------------------------------------------
    # Aggregation lowering (Graph Engine, Algorithm 1)
    # ------------------------------------------------------------------
    def _lower_aggregate(self, layer: int, stage_index: int,
                         stage: AggregateStage, incoming: ValueRef
                         ) -> tuple[ValueRef, list[tuple[int, int]]]:
        program = self.program
        config = self.config.graph
        grid = program.grids[(layer, stage_index)]
        plan = program.plans[(layer, stage_index, "main")]
        side = grid.grid_side

        edge_w, self_w = self._aggregate_weights(layer, stage_index, stage)
        program.edge_weights[(layer, stage_index)] = edge_w
        program.self_weights[(layer, stage_index)] = self_w
        acc_array = program.declare_array(
            f"l{layer}s{stage_index}.agg", stage.dim)

        visits = {(col, block): side
                  for col in range(side)
                  for block in range(plan.num_blocks)}
        dst_state = DstBufferState(visits)
        src_state = SrcBufferState()
        edge_lru = EdgeBufferLru(config.usable_edge_bytes)
        spill_tokens: dict[tuple[int, int], str] = {}
        last_touch: dict[tuple[int, int], Operation] = {}
        cover_entries = []
        completion: list[tuple[int, int]] = []

        for block, row, col in dimension_blocked_walk(
                plan, side, self.traversal):
            dims = _span(plan.block_slice(block))
            width = dims[1] - dims[0]
            shard = grid.shard(row, col)
            src_rows = (shard.src_interval.start, shard.src_interval.stop)
            dst_rows = (shard.dst_interval.start, shard.dst_interval.stop)
            dst_rowcount = dst_rows[1] - dst_rows[0]
            col_key = (col, block)
            fetch_ops: list[Operation] = []
            compute_ops: list[Operation] = []

            action = dst_state.access(col, block)
            if action.spill_previous is not None:
                self._emit_partial_spill(
                    layer, stage_index, grid, plan, acc_array,
                    action.spill_previous, last_touch, spill_tokens)
            if action.reload:
                fetch_ops.append(DmaOp(
                    unit="graph.fetch", direction="load",
                    num_bytes=dst_rowcount * width * ELEM_BYTES,
                    array=acc_array, rows=dst_rows, dims=dims,
                    purpose="dst-partials",
                    wait=(spill_tokens[col_key],),
                    label=f"reload:{col_key}"))
            if action.init:
                mode = "neginf" if stage.reduce == "max" else "zero"
                compute_ops.append(InitAccumulatorOp(
                    unit="graph.compute", layer=layer, stage=stage_index,
                    rows=dst_rows, dims=dims, acc_array=acc_array,
                    src_array="", mode=mode,
                    cycles=interval_touch_cycles(dst_rowcount, width,
                                                 config)))

            apply_self = row == col and self_w is not None
            if self.config.sparsity_elimination:
                # HyGCN-style elimination (Sec VI-A): gather only the
                # rows this shard touches. No interval residency — each
                # shard fetches its own working set, like HyGCN windows.
                if apply_self:
                    # Diagonal: the self term needs the whole interval,
                    # which covers the shard's sources too.
                    fetch_ops.append(DmaOp(
                        unit="graph.fetch", direction="load",
                        num_bytes=dst_rowcount * width * ELEM_BYTES,
                        array=incoming.array, rows=dst_rows, dims=dims,
                        purpose="src-features",
                        wait=incoming.cover.tokens_for(dst_rows, dims),
                        label=f"selfgather:{col}:{block}"))
                elif shard.num_edges:
                    distinct = self._distinct_sources(
                        layer, stage_index, grid, (row, col))
                    fetch_ops.append(DmaOp(
                        unit="graph.fetch", direction="load",
                        num_bytes=distinct * width * ELEM_BYTES,
                        array=incoming.array, rows=src_rows, dims=dims,
                        purpose="src-features",
                        wait=incoming.cover.tokens_for(src_rows, dims),
                        label=f"gather:{row}:{col}:{block}"))
            elif shard.num_edges or apply_self:
                if src_state.access(incoming.array, row, block):
                    fetch_ops.append(DmaOp(
                        unit="graph.fetch", direction="load",
                        num_bytes=(src_rows[1] - src_rows[0]) * width
                        * ELEM_BYTES,
                        array=incoming.array, rows=src_rows, dims=dims,
                        purpose="src-features",
                        wait=incoming.cover.tokens_for(src_rows, dims),
                        label=f"src:{row}:{block}"))
            if shard.num_edges:
                if edge_lru.access((row, col), shard.edge_bytes):
                    fetch_ops.append(DmaOp(
                        unit="graph.fetch", direction="load",
                        num_bytes=shard.edge_bytes, array="edges",
                        rows=(row, col), dims=(0, 0), purpose="edges",
                        label=f"edges:{row}:{col}"))
                worst = self._gpe_imbalance(layer, stage_index, grid,
                                            (row, col))
                compute_ops.append(ShardAggregateOp(
                    unit="graph.compute", layer=layer, stage=stage_index,
                    shard=(row, col), dims=dims, reduce=stage.reduce,
                    acc_array=acc_array, src_array=incoming.array,
                    num_edges=shard.num_edges,
                    max_gpe_edges=worst,
                    cycles=shard_compute_cycles(
                        worst, width, config,
                        attention=stage.needs_features)))
            if apply_self:
                compute_ops.append(SelfApplyOp(
                    unit="graph.compute", layer=layer, stage=stage_index,
                    rows=dst_rows, dims=dims, acc_array=acc_array,
                    src_array=incoming.array, reduce=stage.reduce,
                    cycles=interval_touch_cycles(dst_rowcount, width,
                                                 config)))

            if compute_ops:
                last_touch[col_key] = compute_ops[-1]
            elif fetch_ops:
                last_touch[col_key] = fetch_ops[-1]
            self._emit_step("graph", "graph.fetch", "graph.compute",
                            fetch_ops, compute_ops)

            if dst_state.visit_done(col, block):
                done_token = self._token("aggdone")
                cover_token = f"agg:{layer}:{stage_index}:{col}:{block}"
                producer = last_touch.get(col_key)
                if producer is None:
                    raise CompileError(
                        f"column {col_key} completed without any ops")
                producer.add_signal(done_token)
                program.emit(AccumWritebackOp(
                    unit="graph.writeback", layer=layer, stage=stage_index,
                    rows=dst_rows, dims=dims, acc_array=acc_array,
                    num_bytes=dst_rowcount * width * ELEM_BYTES,
                    partial=False,
                    fixup_neginf=(stage.reduce == "max"
                                  and not stage.include_self),
                    wait=(done_token,), signal=(cover_token,)))
                cover_entries.append((dst_rows, dims, cover_token))
                completion.append((block, col))

        leftover = dst_state.unfinished()
        if leftover:
            raise CompileError(f"columns left unfinished: {leftover}")
        if self._needs_shadow:
            self._shadow_h = apply_aggregate(
                self.graph, self._shadow_h, stage.reduce, edge_w, self_w)
        return (ValueRef(acc_array, Coverage(tuple(cover_entries))),
                completion)

    def _aggregate_weights(self, layer: int, stage_index: int,
                           stage: AggregateStage
                           ) -> tuple[np.ndarray, np.ndarray | None]:
        """Resolve the stage's Apply weights at compile time.

        Static stages derive them from graph structure; attention stages
        compute softmax coefficients from the shadow features flowing
        into the stage plus the learned (a_src, a_dst) vectors — the
        compiler then distributes them as ordinary per-shard edge data.

        Both kinds are memoized across compiles (§ "Compile-product
        dependency keys" above): static weights per (graph, stage),
        attention coefficients per (graph, params, model, position) — a
        recompile of the same workload under a different compute config
        skips the entire shadow execution. The memoized arrays are the
        bit-identical objects a fresh computation would produce, and the
        runtime only ever gathers from them, so sharing is cycle-neutral.
        """
        if not stage.needs_features:
            with _MEMO_LOCK:
                memo = _STATIC_WEIGHTS_MEMO.get(self.graph)
                if memo is None:
                    memo = {}
                    _STATIC_WEIGHTS_MEMO[self.graph] = memo
                pair = memo.get(stage)
            if pair is None:
                computed = (stage.edge_weights(self.graph),
                            stage.self_weights(self.graph))
                with _MEMO_LOCK:
                    # A racing compile may have published first — every
                    # caller must hand out the winner so downstream
                    # identity-keyed caches see one object.
                    pair = memo.setdefault(stage, computed)
            return pair
        if self._baked_attention is not None:
            return self._baked_attention[(layer, stage_index)]
        attention = self.program.params.attention(layer, stage_index)
        pair = stage.compute_weights(self.graph,
                                     features=self._shadow_h,
                                     attention=attention)
        self._fresh_attention[(layer, stage_index)] = pair
        return pair

    def _emit_partial_spill(self, layer: int, stage_index: int,
                            grid: ShardGrid, plan: BlockPlan,
                            acc_array: str, col_key: tuple[int, int],
                            last_touch: dict[tuple[int, int], Operation],
                            spill_tokens: dict[tuple[int, int], str]
                            ) -> None:
        """Spill a departing column's partial accumulators (Table I's
        src-stationary write cost)."""
        col, block = col_key
        interval = grid.intervals[col]
        dims = _span(plan.block_slice(block))
        width = dims[1] - dims[0]
        producer = last_touch.get(col_key)
        if producer is None:
            raise CompileError(f"spilling column {col_key} with no ops")
        done_token = self._token("aggdone")
        producer.add_signal(done_token)
        spill_token = self._token("aggspill")
        self.program.emit(AccumWritebackOp(
            unit="graph.writeback", layer=layer, stage=stage_index,
            rows=(interval.start, interval.stop), dims=dims,
            acc_array=acc_array,
            num_bytes=interval.size * width * ELEM_BYTES,
            partial=True, wait=(done_token,), signal=(spill_token,)))
        spill_tokens[col_key] = spill_token

    # ------------------------------------------------------------------
    # Extraction lowering (Dense Engine)
    # ------------------------------------------------------------------
    def _lower_extract(self, layer: int, stage_index: int,
                       stage: ExtractStage, incoming: ValueRef,
                       layer_input: ValueRef, layer_obj: GNNLayer,
                       completions: dict[int, list[tuple[int, int]]]
                       ) -> ValueRef:
        program = self.program
        stages = layer_obj.stages
        prev_is_agg = (stage_index > 0 and isinstance(
            stages[stage_index - 1], AggregateStage))
        next_is_agg = (stage_index + 1 < len(stages) and isinstance(
            stages[stage_index + 1], AggregateStage))

        if prev_is_agg:
            grid = program.grids[(layer, stage_index - 1)]
            intervals = [(iv.start, iv.stop) for iv in grid.intervals]
            completion = completions[stage_index - 1]
        elif next_is_agg:
            grid = program.grids[(layer, stage_index + 1)]
            intervals = [(iv.start, iv.stop) for iv in grid.intervals]
            completion = None
        else:
            rows_per = max(
                (self.config.dense.input_buffer_bytes // 2)
                // max(stage.weight_in_dim * ELEM_BYTES, 1), 1)
            intervals = _row_subchunks((0, self.graph.num_nodes), rows_per)
            completion = None

        value = self._emit_extract(layer, stage_index, stage, incoming,
                                   layer_input, intervals, completion)
        if self._needs_shadow:
            x = self._shadow_h
            if stage.concat_self:
                x = np.concatenate([x, self._shadow_layer_input], axis=1)
            self._shadow_h = dense_forward(
                stage, x, self.program.params.weight(layer, stage_index),
                self.program.params.bias(layer, stage_index))
        return value

    def _emit_extract(self, layer: int, stage_index: int,
                      stage: ExtractStage, incoming: ValueRef,
                      layer_input: ValueRef,
                      intervals: list[tuple[int, int]],
                      completion: list[tuple[int, int]] | None) -> ValueRef:
        """Shared extract emission for both producer orders.

        ``completion`` (block, col) pairs — present for graph-first
        stages — drive the main-part emission order so the Dense Engine
        consumes aggregated blocks exactly as the Graph Engine finishes
        them; ``None`` means dense-first / standalone (interval-outer).
        """
        program = self.program
        dense_cfg = self.config.dense
        n = stage.out_dim
        out_array = program.declare_array(
            f"l{layer}s{stage_index}.out", n)
        main_plan = plan_blocks(stage.in_dim, self.feature_block)
        self_plan = (plan_blocks(stage.self_dim, self.feature_block)
                     if stage.concat_self else None)
        program.plans[(layer, stage_index, "main")] = main_plan
        if self_plan is not None:
            program.plans[(layer, stage_index, "self")] = self_plan

        weight_lru = LruResidency(dense_cfg.weight_buffer_bytes // 2,
                                  name="weight buffer")
        # Contraction sub-blocking: a K-slice of weights must fit the
        # (half) weight buffer; oversized feature blocks are split.
        max_k = (dense_cfg.weight_buffer_bytes // 2) // (n * ELEM_BYTES)
        if max_k < 1:
            raise CompileError(
                f"one weight row ({n * ELEM_BYTES} B) does not fit the "
                f"weight buffer of stage l{layer}s{stage_index}")
        out_capacity = dense_cfg.output_buffer_bytes // 2
        total_out = self.graph.num_nodes * n * ELEM_BYTES
        visits_per_interval = main_plan.num_blocks + (
            self_plan.num_blocks if self_plan is not None else 0)
        out_state = OutBufferState(
            spilling=total_out > out_capacity,
            visits={i: visits_per_interval for i in range(len(intervals))})

        def input_rows_for(width: int) -> int:
            """Row-chunk size bounded by the input buffer, aligned down
            to the array height so systolic folds never straddle chunks."""
            rows = max((dense_cfg.input_buffer_bytes // 2)
                       // max(width * ELEM_BYTES, 1), 1)
            if rows >= dense_cfg.rows:
                rows -= rows % dense_cfg.rows
            return rows

        spill_tokens: dict[int, str] = {}
        last_gemm: dict[int, GemmOp] = {}
        cover_entries = []

        def visit(interval_idx: int, source: ValueRef,
                  plan: BlockPlan, block: int, w_offset: int) -> None:
            rows = intervals[interval_idx]
            full_dims = _span(plan.block_slice(block))
            action = out_state.access(interval_idx)
            pre_fetch: list[Operation] = []
            if action.spill_previous is not None:
                self._emit_out_spill(layer, stage_index, out_array,
                                     intervals, action.spill_previous,
                                     last_gemm, spill_tokens, n)
            if action.reload:
                pre_fetch.append(DmaOp(
                    unit="dense.fetch", direction="load",
                    num_bytes=(rows[1] - rows[0]) * n * ELEM_BYTES,
                    array=out_array, rows=rows, dims=(0, n),
                    purpose="partial-out",
                    wait=(spill_tokens[interval_idx],)))
            is_final_visit = out_state.visit_done(interval_idx)
            subs = _row_subchunks(full_dims, max_k)  # K sub-slices
            for sub_idx, dims in enumerate(subs):
                width = dims[1] - dims[0]
                w_rows = (w_offset + dims[0], w_offset + dims[1])
                weight_bytes = width * n * ELEM_BYTES
                weight_fetch: list[Operation] = []
                if weight_lru.access((layer, stage_index, w_rows),
                                     weight_bytes):
                    weight_fetch.append(DmaOp(
                        unit="dense.fetch", direction="load",
                        num_bytes=weight_bytes,
                        array=f"W{layer}.{stage_index}", rows=w_rows,
                        dims=(0, n), purpose="weights"))
                accumulate = not (action.first and sub_idx == 0)
                chunks = _row_subchunks(rows, input_rows_for(width))
                for chunk_idx, chunk in enumerate(chunks):
                    m = chunk[1] - chunk[0]
                    fetch_ops: list[Operation] = []
                    if sub_idx == 0 and chunk_idx == 0:
                        fetch_ops.extend(pre_fetch)
                    if chunk_idx == 0:
                        fetch_ops.extend(weight_fetch)
                    fetch_ops.append(DmaOp(
                        unit="dense.fetch", direction="load",
                        num_bytes=m * width * ELEM_BYTES,
                        array=source.array, rows=chunk, dims=dims,
                        purpose="input",
                        wait=source.cover.tokens_for(chunk, dims)))
                    gemm = GemmOp(
                        unit="dense.compute", layer=layer,
                        stage=stage_index, rows=chunk,
                        src_array=source.array, src_dims=dims,
                        weight_rows=w_rows, out_array=out_array,
                        accumulate=accumulate, m=m, k=width, n=n,
                        cycles=gemm_timing(GemmShape(m=m, k=width, n=n),
                                           dense_cfg).cycles)
                    compute_ops: list[Operation] = [gemm]
                    last_gemm[interval_idx] = gemm
                    if (is_final_visit and sub_idx == len(subs) - 1
                            and chunk_idx == len(chunks) - 1):
                        compute_ops.append(self._finish_interval(
                            layer, stage_index, stage, out_array, rows, n,
                            cover_entries))
                    self._emit_step("dense", "dense.fetch",
                                    "dense.compute", fetch_ops,
                                    compute_ops)

        if self_plan is not None:
            for interval_idx in range(len(intervals)):
                for block in range(self_plan.num_blocks):
                    visit(interval_idx, layer_input, self_plan, block,
                          w_offset=stage.in_dim)
        if completion is not None:
            for block, col in completion:
                visit(col, incoming, main_plan, block, w_offset=0)
        else:
            for interval_idx in range(len(intervals)):
                for block in range(main_plan.num_blocks):
                    visit(interval_idx, incoming, main_plan, block,
                          w_offset=0)
        return ValueRef(out_array, Coverage(tuple(cover_entries)))

    def _finish_interval(self, layer: int, stage_index: int,
                         stage: ExtractStage, out_array: str,
                         rows: tuple[int, int], n: int,
                         cover_entries: list[
                             tuple[tuple[int, int], tuple[int, int], str]],
                         ) -> Operation:
        """Activation op; also emits the final store to feature memory."""
        program = self.program
        m = rows[1] - rows[0]
        act_token = self._token("act")
        cover_token = f"out:{layer}:{stage_index}:{rows[0]}"
        activation = ActivationOp(
            unit="dense.compute", layer=layer, stage=stage_index,
            rows=rows, out_array=out_array, activation=stage.activation,
            has_bias=stage.bias,
            cycles=m + self.config.dense.cols,
            signal=(act_token,))
        program.emit(DmaOp(
            unit="dense.store", direction="store",
            num_bytes=m * n * ELEM_BYTES, array=out_array, rows=rows,
            dims=(0, n), purpose="output", wait=(act_token,),
            signal=(cover_token,)))
        cover_entries.append((rows, (0, n), cover_token))
        return activation

    def _emit_out_spill(self, layer: int, stage_index: int, out_array: str,
                        intervals: list[tuple[int, int]],
                        interval_idx: int, last_gemm: dict[int, GemmOp],
                        spill_tokens: dict[int, str], n: int) -> None:
        rows = intervals[interval_idx]
        gemm = last_gemm.get(interval_idx)
        if gemm is None:
            raise CompileError(
                f"spilling output interval {interval_idx} with no GEMM")
        done_token = self._token("gemmdone")
        gemm.add_signal(done_token)
        spill_token = self._token("outspill")
        self.program.emit(DmaOp(
            unit="dense.store", direction="store",
            num_bytes=(rows[1] - rows[0]) * n * ELEM_BYTES,
            array=out_array, rows=rows, dims=(0, n),
            purpose="partial-out", wait=(done_token,),
            signal=(spill_token,)))
        spill_tokens[interval_idx] = spill_token


def compile_workload(graph: Graph, model: GNNModel,
                     config: GNNeratorConfig,
                     params: Parameters | None = None,
                     traversal: str = DST_STATIONARY,
                     feature_block: int | None | str = "config",
                     seed: int = 0) -> Program:
    """Compile one workload; the public compiler entry point.

    ``feature_block="config"`` (default) takes the block size from the
    platform configuration; pass an int or ``None`` to override
    (``None`` = conventional unblocked dataflow).
    """
    if params is None:
        params = init_parameters(model, seed=seed)
    if feature_block == "config":
        feature_block = config.feature_block
    lowering = Lowering(graph, model, params, config, traversal,
                        feature_block)
    program = lowering.compile()
    # Precompute the coalesced simulator's per-unit serial chains for
    # the config this program was compiled against (and the static
    # traffic breakdown every result re-reports), so the usual
    # compile→simulate path pays the linear precomputation once, at
    # compile time; simulating under a different DRAM config builds a
    # fresh plan lazily.
    program.coalesced_plan(config.dram)
    program.dram_bytes_by_purpose()
    # Opt-in compile-time verification (REPRO_VERIFY=1; the test suite
    # always sets it): run the repro.analysis pass pipeline over the
    # fresh program and fail the compile on any contract violation.
    # Imported lazily — analysis sits above the compiler in the layer
    # DAG, so the compiler must not import it at module level.
    from repro.analysis.verify import verify_enabled, verify_program

    if verify_enabled():
        verify_program(program, config, workload="compile_workload",
                       raise_on_failure=True)
    return program
