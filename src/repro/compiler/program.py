"""Compiled program container and traffic/cycle accounting.

A :class:`Program` is also the unit the persistent compiled-program
store (:mod:`repro.compiler.store`) serializes: it is a pure function
of ``(graph content, network, params seed, traversal, feature block,
compile-relevant config)`` — see
:func:`repro.config.overrides.compile_relevant_config` — and nothing
else, which is exactly the store's content-address. Two fields get
special treatment when persisted:

* every :class:`~repro.graph.graph.Graph` reference (held by the shard
  grids in ``grids``) is pickled *by dataset identity*, never by value,
  and reattached to the loading process's graph object;
* ``_coalesced_plans`` rides along as a bonus — chains depend only on
  the op queues plus a DramConfig key, so entries cached for one DRAM
  config remain valid for a program shared across DRAM-only DSE
  variants, and any config not in the dict is rebuilt lazily.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.compiler.ir import (
    UNITS,
    AccumWritebackOp,
    CompileError,
    DmaOp,
    Operation,
    op_bytes,
    op_cycles,
)

if TYPE_CHECKING:
    from repro.config.accelerator import DramConfig
    from repro.sim.coalesce import CoalescedPlan
from repro.dataflow.blocking import BlockPlan
from repro.graph.partition import ShardGrid
from repro.models.layers import Parameters
from repro.models.stages import GNNModel


@dataclass
class Program:
    """Everything needed to execute a workload on the simulated machine.

    The same program is interpreted twice: functionally
    (:mod:`repro.compiler.runtime`) and temporally
    (:mod:`repro.accelerator`). ``order`` preserves global emission
    order, which respects data dependencies by construction and is what
    the functional interpreter walks.
    """

    graph_name: str
    model: GNNModel
    params: Parameters
    traversal: str
    feature_block: int | None
    num_nodes: int
    queues: dict[str, list[Operation]] = field(
        default_factory=lambda: {unit: [] for unit in UNITS})
    order: list[Operation] = field(default_factory=list)
    #: Aggregate-stage shard grids, keyed by (layer, stage).
    grids: dict[tuple[int, int], ShardGrid] = field(default_factory=dict)
    #: Block plans keyed by (layer, stage, part) — see lowering.
    plans: dict[tuple[int, int, str], BlockPlan] = field(
        default_factory=dict)
    #: Logical array dimensionalities (rows are always ``num_nodes``).
    arrays: dict[str, int] = field(default_factory=dict)
    #: Per-edge Apply weights, keyed by (layer, stage), aligned with the
    #: parent graph's edge order.
    edge_weights: dict[tuple[int, int], np.ndarray] = field(
        default_factory=dict)
    #: Per-node self-term weights, keyed by (layer, stage).
    self_weights: dict[tuple[int, int], np.ndarray | None] = field(
        default_factory=dict)
    input_array: str = "h.in"
    output_array: str = ""
    #: Coalesced-simulation plans keyed by DramConfig; built lazily by
    #: :meth:`coalesced_plan` (and eagerly by ``compile_workload`` for
    #: the compiling config, so a compile→simulate run pays the chain
    #: precomputation in compile time, once). Never part of equality.
    _coalesced_plans: dict[DramConfig, CoalescedPlan] = field(
        default_factory=dict, repr=False, compare=False)
    #: Memoized dram_bytes_by_purpose breakdown (static once compiled).
    _dram_by_purpose: dict[str, int] | None = field(default=None, repr=False,
                                                    compare=False)

    # ------------------------------------------------------------------
    # Construction helpers (used by the lowering pass)
    # ------------------------------------------------------------------
    def emit(self, op: Operation) -> Operation:
        if op.unit not in self.queues:
            raise CompileError(f"unknown unit {op.unit!r}")
        self.queues[op.unit].append(op)
        self.order.append(op)
        return op

    def declare_array(self, name: str, dim: int) -> str:
        if dim <= 0:
            raise CompileError(f"array {name!r} needs a positive dim")
        existing = self.arrays.get(name)
        if existing is not None and existing != dim:
            raise CompileError(
                f"array {name!r} redeclared with dim {dim} != {existing}")
        self.arrays[name] = dim
        return name

    def coalesced_plan(self, dram: DramConfig) -> CoalescedPlan:
        """The precompiled action chains for the coalesced simulator.

        Cached per :class:`~repro.config.accelerator.DramConfig`
        (the only config input the chains depend on — occupancies and
        burst latency are baked into the DRAM actions). Sound because a
        program's queues are immutable after compilation and simulation
        never mutates them.
        """
        plan = self._coalesced_plans.get(dram)
        if plan is None:
            from repro.sim.coalesce import build_plan

            plan = self._coalesced_plans[dram] = build_plan(
                self.queues, dram)
        return plan

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def num_operations(self) -> int:
        return len(self.order)

    def dram_bytes_by_purpose(self) -> dict[str, int]:
        """Total DRAM traffic per purpose tag (Table I benches use this).

        Cached after the first call — the queues are immutable once
        compiled, and every simulation of the program re-reports this
        same static breakdown."""
        if self._dram_by_purpose is None:
            totals: dict[str, int] = defaultdict(int)
            for op in self.order:
                if isinstance(op, DmaOp):
                    totals[op.purpose] += op.num_bytes
                elif isinstance(op, AccumWritebackOp):
                    tag = "agg-partial" if op.partial else "agg-writeback"
                    totals[tag] += op.num_bytes
            self._dram_by_purpose = dict(totals)
        return dict(self._dram_by_purpose)

    @property
    def total_dram_bytes(self) -> int:
        return sum(op_bytes(op) for op in self.order)

    def compute_cycles_by_unit(self) -> dict[str, int]:
        """Serial compute-cycle totals per unit (a lower bound on busy
        time; the DES adds stalls and overlap)."""
        totals: dict[str, int] = defaultdict(int)
        for unit, ops in self.queues.items():
            for op in ops:
                totals[unit] += op_cycles(op)
        return dict(totals)

    def count_ops(self, op_type: type[Operation]) -> int:
        return sum(1 for op in self.order if isinstance(op, op_type))

    def describe(self) -> str:
        per_unit = {unit: len(ops) for unit, ops in self.queues.items()}
        return (f"Program({self.graph_name} x {self.model.name}, "
                f"traversal={self.traversal}, B={self.feature_block}, "
                f"{self.num_operations} ops {per_unit})")
