"""Persistent, content-addressed store of compiled programs.

Compilation is now ~99% of host wall time (BENCH_host.json), yet a
compiled :class:`~repro.compiler.program.Program` is a deterministic
function of inputs that rarely change: the graph, the network, the
parameter seed, the traversal, the feature block, and the
compile-relevant slice of the platform config. This module memoizes
that function *on disk*, modeled on the dataset cache
(:mod:`repro.graph.datasets`) and the sweep result cache
(:mod:`repro.sweep.cache`):

* **content-addressed** — one pickle per program under
  ``<root>/<2 hex>/<key>.pkl`` where the key is the SHA-256 of
  ``(schema, compiler-source hash, dataset fingerprint, workload spec,
  compile-relevant config projection)``. Any source edit under
  ``repro/`` conservatively invalidates every entry; any knob the
  compiler actually reads changes the key; knobs it does not read
  (DRAM, clock frequencies — see
  :func:`repro.config.overrides.compile_relevant_config`) do not.
* **atomic** — writes go to a per-process temp file and publish with
  ``os.replace``; readers only ever observe absent or complete
  entries.
* **race-tolerant** — *any* read failure (missing, truncated,
  corrupt, wrong schema) is a miss; the broken entry is best-effort
  dropped and healed by the next store. Two workers racing on the
  same key write identical bytes; last writer wins.

The graph itself is **never** serialized: the pickler persists every
:class:`~repro.graph.graph.Graph` reference as its dataset name, and
the unpickler reattaches the loading process's graph object (the
shard grids then rebuild their sorted edge views with one O(|E|)
gather — see ``ShardGrid.__getstate__``). Entries therefore stay
orders of magnitude smaller than the feature matrices they index, and
a memory-mapped million-edge feature matrix is never pulled through
pickle. Workloads whose graph cannot be fingerprinted (real Planetoid
files on disk) bypass the store entirely rather than risk stale keys.

Disabled by pointing :data:`PROGRAM_CACHE_ENV` at ``0``/``off``/
``none`` (or per-call: ``Harness(program_store=None)``,
``repro perf --no-program-cache``); cleared by deleting the directory.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import itertools
from pathlib import Path

from typing import IO, TYPE_CHECKING

from repro.graph.graph import Graph

if TYPE_CHECKING:
    from repro.compiler.program import Program

#: Bump when the pickled layout (or anything about how entries are
#: produced) changes incompatibly; old entries become misses.
PROGRAM_SCHEMA = 1

#: Environment variable pointing at the store; ``0``/``off``/``none``/
#: empty disables it (mirrors the dataset cache's contract).
PROGRAM_CACHE_ENV = "REPRO_PROGRAM_CACHE"

#: Default on-disk location, next to ``.dataset-cache``/``.sweep-cache``.
DEFAULT_PROGRAM_CACHE = ".program-cache"

#: Uniquifies temp names when several threads of one process put at once.
_PUT_SEQUENCE = itertools.count()


def default_program_store() -> "ProgramStore | None":
    """The environment-configured store, or None when disabled."""
    value = os.environ.get(PROGRAM_CACHE_ENV)
    if value is None:
        value = DEFAULT_PROGRAM_CACHE
    elif value.strip().lower() in ("", "0", "off", "none"):
        return None
    return ProgramStore(value)


def program_key_payload(*, dataset_fingerprint: str, network: str,
                        hidden_dim: int, traversal: str,
                        feature_block: int | None,
                        params_seed: int,
                        config_projection: tuple[tuple[str, object], ...],
                        ) -> dict[str, object]:
    """The canonical JSON-able key payload for one compiled program.

    Everything compilation depends on, and nothing it does not:

    * ``dataset_fingerprint`` — graph content, including the generator
      source hash (:func:`repro.graph.datasets.dataset_fingerprint`);
    * the workload: network name, hidden dim, traversal, resolved
      feature block (an int or None — never the ``"config"`` sentinel);
    * ``params_seed`` — parameters are ``init_parameters(model, seed)``,
      so the seed stands in for the weight values;
    * ``config_projection`` — the compile-relevant config slice
      (:func:`repro.config.overrides.compile_relevant_config`).

    The compiler-source hash and schema version are mixed in by
    :meth:`ProgramStore.key`, not here.
    """
    return {
        "dataset": dataset_fingerprint,
        "network": network,
        "hidden_dim": hidden_dim,
        "traversal": traversal,
        "feature_block": feature_block,
        "params_seed": params_seed,
        "config": [list(pair) for pair in config_projection],
    }


class _GraphPickler(pickle.Pickler):
    """Persists ``Graph`` references as dataset ids instead of bytes."""

    def __init__(self, handle: IO[bytes], graph: Graph) -> None:
        super().__init__(handle, protocol=5)
        self._graph = graph

    def persistent_id(self, obj: object) -> tuple[str, str] | None:
        if obj is self._graph:
            return ("repro-graph", self._graph.name)
        if isinstance(obj, Graph):
            # A foreign graph object inside a program would deserialize
            # against the wrong dataset; refuse to cache it.
            raise pickle.PicklingError(
                f"program references a graph ({obj.name!r}) other than "
                f"the one it was keyed under ({self._graph.name!r})")
        return None


class _GraphUnpickler(pickle.Unpickler):
    """Resolves persisted dataset ids back to the caller's graph."""

    def __init__(self, handle: IO[bytes], graph: Graph) -> None:
        super().__init__(handle)
        self._graph = graph

    def persistent_load(self, pid: object) -> Graph:
        if (not isinstance(pid, tuple) or len(pid) != 2
                or pid[0] != "repro-graph"
                or pid[1] != self._graph.name):
            raise pickle.UnpicklingError(
                f"unexpected persistent id {pid!r} for graph "
                f"{self._graph.name!r}")
        return self._graph


class ProgramStore:
    """On-disk compiled-program cache, keyed by content.

    Mirrors :class:`repro.sweep.cache.ResultCache`: the code version is
    resolved at construction, ``code_root`` narrows the hashed tree so
    tests can exercise key invalidation without touching the real
    package, and ``hits``/``misses`` count this instance's lookups.
    """

    def __init__(self, root: str | os.PathLike,
                 code_version: str | None = None,
                 code_root: str | os.PathLike | None = None) -> None:
        from repro.sweep.cache import code_version_hash

        self.root = Path(root)
        self.code_version = (code_version if code_version is not None
                             else code_version_hash(code_root))
        self.hits = 0
        self.misses = 0

    def key(self, payload: dict[str, object]) -> str:
        """Content address of one program under this code version."""
        blob = json.dumps(
            {"schema": PROGRAM_SCHEMA, "code": self.code_version,
             "program": payload},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str, graph: Graph) -> "Program | None":
        """The stored program for ``key`` rebuilt against ``graph``,
        or None.

        Fully race-tolerant: any failure to read or deserialize — a
        missing file, a truncated write from a crashed worker, a
        corrupt or incompatible pickle — is a miss, and the broken
        entry is best-effort removed so the next compile heals it.
        Loaded shard grids are registered in the graph's grid memo, so
        a later cold compile against a different compute config still
        reuses the scatter.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                program = _GraphUnpickler(handle, graph).load()
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            try:
                os.remove(path)
            except OSError:
                pass  # a sibling worker already removed it — fine
            self.misses += 1
            return None
        self.hits += 1
        self._seed_grid_cache(program, graph)
        return program

    @staticmethod
    def _seed_grid_cache(program: "Program", graph: Graph) -> None:
        """Register loaded grids under the graph's plan_shards memo."""
        cache = getattr(graph, "_shard_grid_cache", None)
        if cache is None:
            cache = graph._shard_grid_cache = {}
        for grid in program.grids.values():
            cache.setdefault(("interval", grid.interval_size), grid)

    def put(self, key: str, program: "Program", graph: Graph) -> bool:
        """Atomically persist ``program`` under ``key`` (best-effort).

        Returns False (leaving no partial file behind) when the entry
        cannot be written — an unpicklable program, a read-only cache
        directory — since caching must never fail the compile that
        produced the program.
        """
        path = self._path(key)
        tmp = path.parent / (f".{key}.{os.getpid()}"
                             f".{next(_PUT_SEQUENCE)}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            buffer = io.BytesIO()
            _GraphPickler(buffer, graph).dump(program)
            with open(tmp, "wb") as handle:
                handle.write(buffer.getvalue())
            os.replace(tmp, path)
            return True
        except Exception:
            return False
        finally:
            try:
                os.remove(tmp)
            except OSError:
                pass  # already replaced into place (or never created)

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.rglob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.pkl"))

    @property
    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}
