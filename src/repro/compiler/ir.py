"""Accelerator instruction set.

A compiled :class:`~repro.compiler.program.Program` holds one FIFO
operation queue per hardware unit:

=================  ====================================================
Unit               Role (paper Sec III)
=================  ====================================================
``graph.fetch``    Shard Edge Fetch + Shard Feature Fetch Units
``graph.compute``  Shard Compute Unit (GPEs: Apply/Reduce lanes)
``graph.writeback``Shard Writeback Unit
``dense.fetch``    Dense Engine input/weight scratchpad fill (own
                   memory controller)
``dense.compute``  systolic array + activation unit
``dense.store``    Dense Engine output drain
=================  ====================================================

Synchronisation uses two mechanisms, both resolved by the GNNerator
Controller at simulation time:

* **tokens** (named one-shot events) express cross-unit data
  dependencies — e.g. the Dense Engine's input fetch for a destination
  interval waits on the Graph Engine's writeback token for that
  interval/block (dense-first stalls are the mirror image);
* **credits** (counting semaphores per channel, initialised to 2)
  express double buffering: a fetch unit acquires a buffer half before
  filling it, the consumer releases it when done, so fetch runs at most
  one shard ahead of compute — exactly the paper's double-buffered
  prefetch pipeline.

Every operation carries its timing payload (DMA bytes or compute
cycles), computed at lowering time from the platform configuration. The
functional runtime interprets the same operations over numpy arrays and
ignores timing.
"""

from __future__ import annotations

from dataclasses import dataclass

UNITS = (
    "graph.fetch",
    "graph.compute",
    "graph.writeback",
    "dense.fetch",
    "dense.compute",
    "dense.store",
)

#: Double-buffer credit channels (producer unit -> consumer unit).
CHANNELS = ("graph", "dense")


class CompileError(ValueError):
    """Raised when a workload cannot be lowered onto the platform."""


@dataclass(kw_only=True)
class Operation:
    """Base class: every op runs on one unit, after its ``wait`` tokens,
    and signals its ``signal`` tokens on completion."""

    unit: str
    wait: tuple[str, ...] = ()
    signal: tuple[str, ...] = ()
    label: str = ""

    def add_signal(self, token: str) -> None:
        self.signal = self.signal + (token,)

    def add_wait(self, token: str) -> None:
        self.wait = self.wait + (token,)


@dataclass(kw_only=True)
class DmaOp(Operation):
    """A DRAM burst issued by an engine's memory controller.

    ``purpose`` tags the traffic class for reports: ``edges``,
    ``src-features``, ``self-features``, ``dst-partials``, ``weights``,
    ``input``, ``partial-out``, ``output``.
    """

    direction: str  # "load" | "store"
    num_bytes: int
    array: str
    rows: tuple[int, int]
    dims: tuple[int, int]
    purpose: str

    def __post_init__(self) -> None:
        if self.direction not in ("load", "store"):
            raise CompileError(f"bad DMA direction {self.direction!r}")
        if self.num_bytes < 0:
            raise CompileError("negative DMA size")


@dataclass(kw_only=True)
class AcquireOp(Operation):
    """Take one double-buffer credit on ``channel`` (blocks when both
    halves are in use)."""

    channel: str


@dataclass(kw_only=True)
class ReleaseOp(Operation):
    """Return a double-buffer credit on ``channel``."""

    channel: str


@dataclass(kw_only=True)
class PushOp(Operation):
    """Hand a filled buffer descriptor to the consumer unit."""

    channel: str
    step: int = 0


@dataclass(kw_only=True)
class PopOp(Operation):
    """Wait for the next filled buffer descriptor."""

    channel: str


@dataclass(kw_only=True)
class InitAccumulatorOp(Operation):
    """Materialise a destination interval's accumulators for one block.

    ``mode`` is ``"self"`` (seed with ``s(v) * h[v]``, the ∪-self term of
    Eq 1/2), ``"zero"`` (sum identity) or ``"neginf"`` (max identity).
    """

    layer: int
    stage: int
    rows: tuple[int, int]
    dims: tuple[int, int]
    acc_array: str
    src_array: str
    mode: str
    cycles: int

    def __post_init__(self) -> None:
        if self.mode not in ("self", "zero", "neginf"):
            raise CompileError(f"bad init mode {self.mode!r}")


@dataclass(kw_only=True)
class ShardAggregateOp(Operation):
    """Process one shard's edges for one feature block on the GPEs."""

    layer: int
    stage: int
    shard: tuple[int, int]
    dims: tuple[int, int]
    reduce: str
    acc_array: str
    src_array: str
    num_edges: int
    max_gpe_edges: int
    cycles: int


@dataclass(kw_only=True)
class SelfApplyOp(Operation):
    """Fold the ∪-self term into a destination interval's accumulators.

    Emitted at the diagonal shard visit ``(j, j)``, where the resident
    source-feature block *is* the destination interval's own features —
    so the self term costs Apply/Reduce cycles but no extra DRAM traffic.
    """

    layer: int
    stage: int
    rows: tuple[int, int]
    dims: tuple[int, int]
    acc_array: str
    src_array: str
    reduce: str
    cycles: int


@dataclass(kw_only=True)
class AccumWritebackOp(Operation):
    """Store a destination interval's accumulators to feature memory.

    ``partial`` writebacks spill in-flight partial sums (src-stationary
    walks); final writebacks (``partial=False``) publish the finished
    aggregation and apply the max-identity fixup when needed.
    """

    layer: int
    stage: int
    rows: tuple[int, int]
    dims: tuple[int, int]
    acc_array: str
    num_bytes: int
    partial: bool
    fixup_neginf: bool = False


@dataclass(kw_only=True)
class GemmOp(Operation):
    """One systolic-array pass: ``out[rows] (+)= x[rows, src_dims] @
    W[weight_rows, :]``.

    ``weight_rows`` selects the contraction slice of the (possibly
    concatenated) weight matrix; ``accumulate`` distinguishes the first
    block (assign) from partial-sum accumulation (Sec IV-B's reload of
    partial computed accumulations).
    """

    layer: int
    stage: int
    rows: tuple[int, int]
    src_array: str
    src_dims: tuple[int, int]
    weight_rows: tuple[int, int]
    out_array: str
    accumulate: bool
    m: int
    k: int
    n: int
    cycles: int


@dataclass(kw_only=True)
class ActivationOp(Operation):
    """Bias + activation over a finished output interval (the Dense
    Engine's 1-D activation unit)."""

    layer: int
    stage: int
    rows: tuple[int, int]
    out_array: str
    activation: str
    has_bias: bool
    cycles: int


#: Operations whose ``cycles`` occupy a compute unit.
COMPUTE_OPS = (InitAccumulatorOp, SelfApplyOp, ShardAggregateOp, GemmOp,
               ActivationOp)

#: Operations that move data over the shared DRAM channel.
MEMORY_OPS = (DmaOp, AccumWritebackOp)


def op_cycles(op: Operation) -> int:
    """Compute-cycle cost of an op (0 for non-compute ops)."""
    # Literal tuple (not COMPUTE_OPS) so mypy narrows to the classes
    # that actually declare ``cycles``.
    if isinstance(op, (InitAccumulatorOp, SelfApplyOp, ShardAggregateOp,
                       GemmOp, ActivationOp)):
        return op.cycles
    return 0


def op_bytes(op: Operation) -> int:
    """DRAM bytes moved by an op (0 for non-memory ops)."""
    if isinstance(op, DmaOp):
        return op.num_bytes
    if isinstance(op, AccumWritebackOp):
        return op.num_bytes
    return 0
