"""Static program validation: schedulability and token sanity.

The DES would simply deadlock on a mis-compiled token graph; this module
gives a *compile-time* answer instead, by running a Kahn-style abstract
scheduler over the unit queues: a unit's head operation may retire when
its wait tokens are signalled, its credit is available (Acquire), or its
channel has a pending descriptor (Pop). If no head can retire and work
remains, the program is unschedulable and the offending heads are
reported.

Used by tests (every compiled program must validate) and available to
users via :func:`validate_program`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.ir import (
    CHANNELS,
    AcquireOp,
    CompileError,
    Operation,
    PopOp,
    PushOp,
    ReleaseOp,
)
from repro.compiler.program import Program

#: Double-buffer depth per channel (two halves).
CREDITS_PER_CHANNEL = 2


class ValidationError(CompileError):
    """Raised when a compiled program cannot be scheduled."""


@dataclass
class ValidationReport:
    """Outcome of abstract scheduling."""

    retired_ops: int = 0
    signalled_tokens: set[str] = field(default_factory=set)
    max_channel_depth: dict[str, int] = field(default_factory=dict)
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def validate_program(program: Program, *,
                     raise_on_failure: bool = True) -> ValidationReport:
    """Abstractly schedule the program.

    With ``raise_on_failure`` (the default) a deadlock or a token waited
    on but never signalled raises :class:`ValidationError`; otherwise
    the problems are collected on ``report.failures`` and the report is
    returned with ``ok`` false.
    """
    report = ValidationReport()
    signalled: set[str] = set()
    all_signals: set[str] = set()
    for op in program.order:
        all_signals.update(op.signal)
    for op in program.order:
        for token in op.wait:
            if token not in all_signals:
                report.failures.append(
                    f"op {op.label or type(op).__name__!r} waits on "
                    f"{token!r}, which nothing signals")
                if raise_on_failure:
                    raise ValidationError(report.failures[-1])
    if report.failures:
        # Unsignalled waits guarantee the scheduler would stall on a
        # misleading head; report the root cause instead.
        return report

    heads = {unit: 0 for unit in program.queues}
    credits = {channel: CREDITS_PER_CHANNEL for channel in CHANNELS}
    pending = {channel: 0 for channel in CHANNELS}
    report.max_channel_depth = {channel: 0 for channel in CHANNELS}

    def runnable(op: Operation) -> bool:
        if any(token not in signalled for token in op.wait):
            return False
        if isinstance(op, AcquireOp):
            return credits[op.channel] > 0
        if isinstance(op, PopOp):
            return pending[op.channel] > 0
        return True

    def retire(op: Operation) -> None:
        if isinstance(op, AcquireOp):
            credits[op.channel] -= 1
        elif isinstance(op, ReleaseOp):
            credits[op.channel] += 1
        elif isinstance(op, PushOp):
            pending[op.channel] += 1
            report.max_channel_depth[op.channel] = max(
                report.max_channel_depth[op.channel], pending[op.channel])
        elif isinstance(op, PopOp):
            pending[op.channel] -= 1
        signalled.update(op.signal)
        report.retired_ops += 1

    total = sum(len(ops) for ops in program.queues.values())
    while report.retired_ops < total:
        progressed = False
        for unit, ops in program.queues.items():
            while heads[unit] < len(ops) and runnable(ops[heads[unit]]):
                retire(ops[heads[unit]])
                heads[unit] += 1
                progressed = True
        if not progressed:
            stuck = {
                unit: repr(ops[heads[unit]])
                for unit, ops in program.queues.items()
                if heads[unit] < len(ops)
            }
            report.failures.append(
                f"program deadlocks; blocked unit heads: {stuck}")
            if raise_on_failure:
                raise ValidationError(report.failures[-1])
            report.signalled_tokens = signalled
            return report
    report.signalled_tokens = signalled
    return report
