"""Compile-time residency tracking for the on-chip buffers.

The compiler walks the shard grid in execution order and consults these
small state machines to decide which DMA operations are actually needed —
serpentine reuse, edge-buffer hits and partial-sum spills all fall out of
the replay. The empirical Table I counts of
:func:`repro.graph.traversal.simulate_residency` are reproduced by
construction (property-tested).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.compiler.ir import CompileError


class SrcBufferState:
    """One resident source-interval feature block (read-only)."""

    def __init__(self) -> None:
        self._resident: tuple[str, int, int] | None = None
        self.loads = 0
        self.hits = 0

    def access(self, array: str, interval: int, block: int) -> bool:
        """Returns True when a DMA load must be emitted."""
        key = (array, interval, block)
        if self._resident == key:
            self.hits += 1
            return False
        self._resident = key
        self.loads += 1
        return True

    def invalidate(self) -> None:
        self._resident = None


@dataclass(frozen=True)
class DstAction:
    """What switching the destination accumulator requires."""

    spill_previous: tuple[int, int] | None  # (col, block) to write back
    reload: bool  # partials must be read back from memory
    init: bool  # fresh accumulator must be materialised


class DstBufferState:
    """One resident destination-interval accumulator block (read-write).

    Mirrors the hardware policy of
    :func:`repro.graph.traversal.simulate_residency`: leaving a column
    with visits remaining spills partial sums; re-entering a previously
    spilled column reloads them; the final visit writes back and frees
    the buffer.
    """

    def __init__(self, visits: dict[tuple[int, int], int]) -> None:
        #: Remaining shard visits per (col, block) key.
        self._remaining = dict(visits)
        self._resident: tuple[int, int] | None = None
        self._started: set[tuple[int, int]] = set()

    def access(self, col: int, block: int) -> DstAction:
        key = (col, block)
        if key not in self._remaining:
            raise CompileError(f"unplanned column visit {key}")
        spill = None
        reload = False
        init = False
        if self._resident != key:
            if (self._resident is not None
                    and self._remaining[self._resident] > 0):
                spill = self._resident
            if key in self._started:
                reload = True
            else:
                init = True
                self._started.add(key)
            self._resident = key
        return DstAction(spill_previous=spill, reload=reload, init=init)

    def visit_done(self, col: int, block: int) -> bool:
        """Record one visit; returns True when the column-block is
        complete (final writeback due)."""
        key = (col, block)
        self._remaining[key] -= 1
        if self._remaining[key] < 0:
            raise CompileError(f"column {key} visited too many times")
        if self._remaining[key] == 0:
            self._resident = None
            return True
        return False

    def unfinished(self) -> list[tuple[int, int]]:
        return [key for key, left in self._remaining.items() if left > 0]


class LruResidency:
    """Byte-budgeted LRU residency tracker for an on-chip buffer.

    ``access(key, bytes)`` returns True when a fetch must be emitted
    (miss), evicting least-recently-used entries to make room.
    """

    def __init__(self, capacity_bytes: int, name: str = "buffer") -> None:
        if capacity_bytes <= 0:
            raise CompileError(f"{name} capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.name = name
        self._entries: OrderedDict[object, int] = OrderedDict()
        self.loads = 0
        self.hits = 0

    @property
    def used_bytes(self) -> int:
        return sum(self._entries.values())

    def access(self, key: object, num_bytes: int) -> bool:
        if num_bytes > self.capacity_bytes:
            raise CompileError(
                f"{self.name}: entry {key!r} ({num_bytes} B) exceeds "
                f"capacity ({self.capacity_bytes} B)")
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return False
        while self.used_bytes + num_bytes > self.capacity_bytes:
            self._entries.popitem(last=False)
        self._entries[key] = num_bytes
        self.loads += 1
        return True


class EdgeBufferLru(LruResidency):
    """LRU cache of shard edge lists in the (double-buffered) edge buffer.

    With dimension blocking the same shard's edges are re-walked once per
    block (Algorithm 1 lines 3-4); when they are still resident the
    re-walk costs only on-chip accesses, not DRAM traffic — the overhead
    trade-off of Sec IV-B.
    """

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes, name="edge buffer")


@dataclass(frozen=True)
class OutAction:
    """What a Dense Engine output-interval visit requires."""

    spill_previous: int | None  # interval whose partials must spill
    reload: bool  # this interval's partials must be read back
    first: bool  # first visit ever: assign instead of accumulate


class OutBufferState:
    """Dense Engine output-buffer residency (partial-sum reloads).

    When the whole per-stage output working set fits the (half) output
    buffer, partial sums never leave the chip and the only bookkeeping is
    the first-visit flag. Otherwise one interval's accumulators are
    resident at a time and block-loop revisits pay a spill + reload —
    the partial-sum cost dimension-blocking introduces (Sec IV-B), which
    the paper notes is mitigated by increased weight reuse.

    ``visits`` counts the GEMM visits each interval will receive; an
    interval whose visits are exhausted frees the buffer without a spill
    (its activation + final store follow immediately).
    """

    def __init__(self, spilling: bool, visits: dict[int, int]) -> None:
        self.spilling = spilling
        self._remaining = dict(visits)
        self._resident: int | None = None
        self._started: set[int] = set()

    def access(self, interval: int) -> OutAction:
        if interval not in self._remaining:
            raise CompileError(f"unplanned output interval {interval}")
        first = interval not in self._started
        self._started.add(interval)
        if not self.spilling:
            return OutAction(spill_previous=None, reload=False, first=first)
        spill = None
        reload = False
        if self._resident != interval:
            if (self._resident is not None
                    and self._remaining[self._resident] > 0):
                spill = self._resident
            reload = not first
            self._resident = interval
        return OutAction(spill_previous=spill, reload=reload, first=first)

    def visit_done(self, interval: int) -> bool:
        """Record one visit; True when the interval's output is final."""
        self._remaining[interval] -= 1
        if self._remaining[interval] < 0:
            raise CompileError(
                f"output interval {interval} visited too many times")
        if self._remaining[interval] == 0:
            if self._resident == interval:
                self._resident = None
            return True
        return False
