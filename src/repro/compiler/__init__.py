"""Prototype compiler and runtime for the GNNerator accelerator."""

from repro.compiler.ir import (
    CHANNELS,
    COMPUTE_OPS,
    MEMORY_OPS,
    UNITS,
    AccumWritebackOp,
    AcquireOp,
    ActivationOp,
    CompileError,
    DmaOp,
    GemmOp,
    InitAccumulatorOp,
    Operation,
    PopOp,
    PushOp,
    ReleaseOp,
    SelfApplyOp,
    ShardAggregateOp,
    op_bytes,
    op_cycles,
)
from repro.compiler.lowering import Coverage, ValueRef, compile_workload
from repro.compiler.program import Program
from repro.compiler.runtime import (
    FunctionalState,
    run_functional,
    run_functional_with_state,
)
from repro.compiler.validation import (
    ValidationError,
    ValidationReport,
    validate_program,
)

__all__ = [
    "CHANNELS",
    "COMPUTE_OPS",
    "MEMORY_OPS",
    "UNITS",
    "AccumWritebackOp",
    "AcquireOp",
    "ActivationOp",
    "CompileError",
    "DmaOp",
    "GemmOp",
    "InitAccumulatorOp",
    "Operation",
    "PopOp",
    "PushOp",
    "ReleaseOp",
    "SelfApplyOp",
    "ShardAggregateOp",
    "op_bytes",
    "op_cycles",
    "Coverage",
    "ValueRef",
    "compile_workload",
    "Program",
    "FunctionalState",
    "run_functional",
    "run_functional_with_state",
    "ValidationError",
    "ValidationReport",
    "validate_program",
]
