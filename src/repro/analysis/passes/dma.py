"""DMA byte conservation.

Three independent accountings of the program's DRAM traffic must
agree: a fresh walk over the op queues (computed here), the program's
memoized :meth:`~repro.compiler.program.Program.dram_bytes_by_purpose`
breakdown, and the coalesced plan's prewarmed static accounting
(per-unit byte/transaction counters, channel busy cycles, and the
``dma_meta`` burst table the telemetry probe consumes). A cached plan
or memo that drifted from the queues — a corrupted store entry, a
mutation after compile — fails here before it can mis-report traffic.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, cast

from repro.analysis.report import PassResult
from repro.compiler.ir import UNITS, AccumWritebackOp, DmaOp
from repro.compiler.program import Program
from repro.config.accelerator import GNNeratorConfig

if TYPE_CHECKING:
    from repro.sim.coalesce import CoalescedPlan


def check_dma_conservation(program: Program,
                           config: GNNeratorConfig) -> PassResult:
    from repro.sim.coalesce import _occupancy

    result = PassResult("dma-conservation")
    plan = cast("CoalescedPlan", program.coalesced_plan(config.dram))

    by_purpose: dict[str, int] = defaultdict(int)
    dma_ops = 0
    for op in program.order:
        if isinstance(op, DmaOp):
            by_purpose[op.purpose] += op.num_bytes
            dma_ops += 1
        elif isinstance(op, AccumWritebackOp):
            tag = "agg-partial" if op.partial else "agg-writeback"
            by_purpose[tag] += op.num_bytes
            dma_ops += 1

    memo = program.dram_bytes_by_purpose()
    if dict(by_purpose) != memo:
        result.fail(f"dram_bytes_by_purpose memo {memo} disagrees with "
                    f"a fresh per-op sum {dict(by_purpose)}")
    total = sum(by_purpose.values())
    if total != program.total_dram_bytes:
        result.fail(f"purpose sums total {total} B but "
                    f"total_dram_bytes says {program.total_dram_bytes} B")

    bpc = config.dram.bytes_per_cycle
    busy = 0
    for unit_index, unit in enumerate(UNITS):
        ops = program.queues.get(unit, [])
        reads = writes = read_tx = write_tx = 0
        meta: list[tuple[bool, int]] = []
        for op in ops:
            if isinstance(op, DmaOp) and op.direction == "load":
                reads += op.num_bytes
                read_tx += 1
                is_load = True
            elif isinstance(op, (DmaOp, AccumWritebackOp)):
                writes += op.num_bytes
                write_tx += 1
                is_load = False
            else:
                continue
            if op.num_bytes:
                busy += _occupancy(op.num_bytes, bpc)
                meta.append((is_load, op.num_bytes))
        got = plan.dram_traffic.get(unit)
        want = (reads, writes, read_tx, write_tx)
        if got != want:
            result.fail(f"{unit}: plan DRAM counters {got} != program "
                        f"queue sums {want} "
                        f"(read_bytes, write_bytes, read_tx, write_tx)")
        if plan.dma_meta[unit_index] != meta:
            result.fail(f"{unit}: plan dma_meta disagrees with the "
                        f"queue's burst sequence "
                        f"({len(plan.dma_meta[unit_index])} vs "
                        f"{len(meta)} bursts)")
    if busy != plan.dram_busy_cycles:
        result.fail(f"plan dram_busy_cycles {plan.dram_busy_cycles} != "
                    f"recomputed burst occupancy sum {busy}")

    result.counts = {
        "memory_ops": dma_ops,
        "total_bytes": total,
        "purposes": len(by_purpose),
        "dram_busy_cycles": busy,
    }
    return result
