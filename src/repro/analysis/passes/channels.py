"""Channel-protocol checking.

The double-buffer protocol (DESIGN.md §4, ir.py docstring) is rigid:
per channel, one producer unit alternates Acquire -> Push and one
consumer unit alternates Pop -> Release, with
:data:`~repro.compiler.validation.CREDITS_PER_CHANNEL` credits in
flight at most. This pass proves the protocol holds on *every*
abstract interleaving by checking per-unit alternation (a unit's queue
is its serial order on any schedule), global pairing counts, and the
emission-order credit balance — plus that the compiler's credit
constant agrees with the simulators'
:data:`~repro.engines.controller.DOUBLE_BUFFER_CREDITS`.
"""

from __future__ import annotations

from repro.analysis.report import PassResult
from repro.compiler.ir import (
    CHANNELS,
    AcquireOp,
    PopOp,
    PushOp,
    ReleaseOp,
)
from repro.compiler.program import Program
from repro.compiler.validation import CREDITS_PER_CHANNEL
from repro.config.accelerator import GNNeratorConfig
from repro.engines.controller import DOUBLE_BUFFER_CREDITS


def check_channel_protocol(program: Program,
                           config: GNNeratorConfig) -> PassResult:
    result = PassResult("channel-protocol")
    if CREDITS_PER_CHANNEL != DOUBLE_BUFFER_CREDITS:
        result.fail(f"validation CREDITS_PER_CHANNEL "
                    f"({CREDITS_PER_CHANNEL}) != controller "
                    f"DOUBLE_BUFFER_CREDITS ({DOUBLE_BUFFER_CREDITS})")

    counts = {channel: {"acquire": 0, "release": 0, "push": 0, "pop": 0}
              for channel in CHANNELS}
    producers: dict[str, set[str]] = {channel: set()
                                      for channel in CHANNELS}
    consumers: dict[str, set[str]] = {channel: set()
                                      for channel in CHANNELS}

    for unit, ops in program.queues.items():
        #: Buffer halves this unit holds per channel: acquired-not-yet-
        #: pushed on the producer side, popped-not-yet-released on the
        #: consumer side. The lowering's step pattern keeps both in
        #: {0, 1} — two unmatched holds on one unit can starve the
        #: whole channel.
        held_credit = {channel: 0 for channel in CHANNELS}
        held_descriptor = {channel: 0 for channel in CHANNELS}
        for index, op in enumerate(ops):
            where = f"{unit}[{index}]"
            if isinstance(op, AcquireOp):
                counts[op.channel]["acquire"] += 1
                producers[op.channel].add(unit)
                if held_credit[op.channel]:
                    result.fail(f"{where}: Acquire on {op.channel!r} "
                                f"while already holding an unpushed "
                                f"buffer")
                held_credit[op.channel] += 1
            elif isinstance(op, PushOp):
                counts[op.channel]["push"] += 1
                producers[op.channel].add(unit)
                if not held_credit[op.channel]:
                    result.fail(f"{where}: Push on {op.channel!r} "
                                f"without a preceding Acquire")
                else:
                    held_credit[op.channel] -= 1
            elif isinstance(op, PopOp):
                counts[op.channel]["pop"] += 1
                consumers[op.channel].add(unit)
                if held_descriptor[op.channel]:
                    result.fail(f"{where}: Pop on {op.channel!r} while "
                                f"already holding an unreleased buffer")
                held_descriptor[op.channel] += 1
            elif isinstance(op, ReleaseOp):
                counts[op.channel]["release"] += 1
                consumers[op.channel].add(unit)
                if not held_descriptor[op.channel]:
                    result.fail(f"{where}: Release on {op.channel!r} "
                                f"without a preceding Pop")
                else:
                    held_descriptor[op.channel] -= 1
        for channel in CHANNELS:
            if held_credit[channel]:
                result.fail(f"{unit}: ends holding "
                            f"{held_credit[channel]} unpushed "
                            f"buffer(s) on {channel!r}")
            if held_descriptor[channel]:
                result.fail(f"{unit}: ends holding "
                            f"{held_descriptor[channel]} unreleased "
                            f"buffer(s) on {channel!r}")

    for channel in CHANNELS:
        tally = counts[channel]
        if tally["acquire"] != tally["release"]:
            result.fail(f"channel {channel!r}: {tally['acquire']} "
                        f"Acquire vs {tally['release']} Release "
                        f"(credits leak)")
        if tally["push"] != tally["pop"]:
            result.fail(f"channel {channel!r}: {tally['push']} Push vs "
                        f"{tally['pop']} Pop (descriptors leak)")
        overlap = producers[channel] & consumers[channel]
        if overlap:
            result.fail(f"channel {channel!r}: unit(s) "
                        f"{sorted(overlap)} act as both producer and "
                        f"consumer")

    # Emission order is a dependency-correct serial schedule; on it the
    # in-flight credit count must stay within the channel's budget.
    balance = {channel: 0 for channel in CHANNELS}
    for position, op in enumerate(program.order):
        if isinstance(op, AcquireOp):
            balance[op.channel] += 1
            if balance[op.channel] > CREDITS_PER_CHANNEL:
                result.fail(
                    f"order[{position}]: {balance[op.channel]} credits "
                    f"in flight on {op.channel!r} exceeds "
                    f"CREDITS_PER_CHANNEL={CREDITS_PER_CHANNEL}")
        elif isinstance(op, ReleaseOp):
            balance[op.channel] -= 1
            if balance[op.channel] < 0:
                result.fail(f"order[{position}]: Release on "
                            f"{op.channel!r} before any Acquire in "
                            f"emission order")

    result.counts = {
        f"{channel}_{kind}": counts[channel][kind]
        for channel in CHANNELS for kind in ("acquire", "push")
    }
    return result
