"""Edge-coverage conservation.

Every aggregate stage lowers each non-empty shard exactly once per
feature block — one :class:`~repro.compiler.ir.ShardAggregateOp` per
``(shard, block)`` pair, whose ``num_edges`` matches the shard. The
pass proves the lowering dropped no edges and aggregated none twice:
summed over a stage, the ops cover ``num_blocks x grid.num_edges``
edge visits, and the grid itself partitions the graph's edge list
(:meth:`~repro.graph.partition.ShardGrid.validate`).
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.report import PassResult
from repro.compiler.ir import ShardAggregateOp
from repro.compiler.program import Program
from repro.config.accelerator import GNNeratorConfig
from repro.graph.graph import GraphError


def check_edge_coverage(program: Program,
                        config: GNNeratorConfig) -> PassResult:
    result = PassResult("edge-coverage")
    ops_by_stage: dict[tuple[int, int], list[ShardAggregateOp]] = (
        defaultdict(list))
    for op in program.order:
        if isinstance(op, ShardAggregateOp):
            ops_by_stage[(op.layer, op.stage)].append(op)

    for key in ops_by_stage:
        if key not in program.grids:
            result.fail(f"ShardAggregateOp for stage {key} but the "
                        f"program has no shard grid for it")

    covered_edges = 0
    for key, grid in sorted(program.grids.items()):
        layer, stage = key
        try:
            grid.validate()
        except GraphError as exc:
            result.fail(f"stage {key}: shard grid invalid: {exc}")
            continue
        plan = program.plans.get((layer, stage, "main"))
        if plan is None:
            result.fail(f"stage {key}: no block plan")
            continue
        block_dims = {}
        for block in range(plan.num_blocks):
            sl = plan.block_slice(block)
            block_dims[(sl.start, sl.stop)] = block
        shard_edges = {(shard.row, shard.col): shard.num_edges
                       for shard in grid.iter_shards()}
        seen: dict[tuple[tuple[int, int], tuple[int, int]], int] = (
            defaultdict(int))
        for op in ops_by_stage.get(key, ()):
            where = f"stage {key} op {op.label or op.shard!r}"
            expected = shard_edges.get(op.shard)
            if expected is None:
                result.fail(f"{where}: aggregates empty/unknown shard "
                            f"{op.shard}")
                continue
            if op.num_edges != expected:
                result.fail(
                    f"{where}: shard {op.shard} carries "
                    f"{op.num_edges} edges, grid says {expected}")
            if op.dims not in block_dims:
                result.fail(f"{where}: dims {op.dims} match no feature "
                            f"block of the stage plan")
                continue
            seen[(op.shard, op.dims)] += 1
            covered_edges += op.num_edges
        for (shard_key, dims), count in sorted(seen.items()):
            if count != 1:
                result.fail(f"stage {key}: shard {shard_key} block "
                            f"{dims} aggregated {count} times "
                            f"(must be exactly once)")
        expected_pairs = len(shard_edges) * plan.num_blocks
        if len(seen) != expected_pairs:
            missing = expected_pairs - len(seen)
            result.fail(f"stage {key}: {missing} (shard, block) "
                        f"pair(s) never aggregated")
        stage_total = sum(op.num_edges for op in ops_by_stage.get(key, ()))
        want_total = plan.num_blocks * grid.num_edges
        if stage_total != want_total:
            result.fail(f"stage {key}: ops cover {stage_total} edge "
                        f"visits, expected {plan.num_blocks} blocks x "
                        f"{grid.num_edges} edges = {want_total}")

    result.counts = {
        "aggregate_stages": len(program.grids),
        "aggregate_ops": sum(len(ops) for ops in ops_by_stage.values()),
        "covered_edge_visits": covered_edges,
    }
    return result
