"""Verifier pass registry.

Each pass is a pure function ``(program, config) -> PassResult`` that
inspects the compiled program (and, where relevant, its coalesced plan
for ``config.dram``) without simulating. The pipeline driver
(:func:`repro.analysis.verify.verify_program`) runs them in registry
order; to add a pass, implement the function in a module here and
append a ``(name, fn)`` entry below (and document it in DESIGN.md §9).
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.passes.channels import check_channel_protocol
from repro.analysis.passes.dma import check_dma_conservation
from repro.analysis.passes.edges import check_edge_coverage
from repro.analysis.passes.plan import check_plan_agreement
from repro.analysis.passes.tokens import (
    check_schedulability,
    check_token_liveness,
)
from repro.analysis.report import PassResult
from repro.compiler.program import Program
from repro.config.accelerator import GNNeratorConfig

PassFn = Callable[[Program, GNNeratorConfig], PassResult]

#: The pipeline, in execution order. Cheap structural passes run
#: first so a badly corrupted program fails with the most direct
#: diagnosis before the heavier abstract-scheduling pass.
PASSES: tuple[tuple[str, PassFn], ...] = (
    ("edge-coverage", check_edge_coverage),
    ("dma-conservation", check_dma_conservation),
    ("channel-protocol", check_channel_protocol),
    ("token-liveness", check_token_liveness),
    ("schedulability", check_schedulability),
    ("plan-agreement", check_plan_agreement),
)

PASS_NAMES = tuple(name for name, _ in PASSES)

__all__ = ["PASSES", "PASS_NAMES", "PassFn"]
