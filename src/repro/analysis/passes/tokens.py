"""Token liveness and abstract schedulability.

Tokens are one-shot: each may be signalled by exactly one op, and a
wait on a token nothing signals can never clear. ``token-liveness``
proves both properties structurally; ``schedulability`` then runs the
Kahn-style abstract scheduler from
:mod:`repro.compiler.validation` to prove every wait is actually
*reachable* — signalled before (or concurrently with) the op that
blocks on it — and that no credit/descriptor cycle deadlocks the
units.
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.report import PassResult
from repro.compiler.program import Program
from repro.compiler.validation import (
    CREDITS_PER_CHANNEL,
    validate_program,
)
from repro.config.accelerator import GNNeratorConfig


def check_token_liveness(program: Program,
                         config: GNNeratorConfig) -> PassResult:
    result = PassResult("token-liveness")
    signallers: dict[str, list[str]] = defaultdict(list)
    waiters: dict[str, list[str]] = defaultdict(list)
    for op in program.order:
        where = op.label or f"{op.unit}:{type(op).__name__}"
        for token in op.signal:
            signallers[token].append(where)
        for token in op.wait:
            waiters[token].append(where)

    for token, sites in sorted(waiters.items()):
        if token not in signallers:
            result.fail(f"token {token!r} is waited on by {sites[0]} "
                        f"but nothing signals it")
    for token, sites in sorted(signallers.items()):
        if len(sites) > 1:
            result.fail(f"token {token!r} signalled {len(sites)} times "
                        f"({sites[0]} and {sites[1]}{'...' if len(sites) > 2 else ''}); "
                        f"tokens are one-shot")

    # Signalled-but-never-waited tokens are legitimate (final-layer
    # cover tokens have no downstream consumer) — surface the count so
    # a sudden jump is visible, but do not fail on them.
    dead = sum(1 for token in signallers if token not in waiters)
    result.counts = {
        "tokens": len(signallers),
        "waited_tokens": len(waiters),
        "dead_signals": dead,
    }
    return result


def check_schedulability(program: Program,
                         config: GNNeratorConfig) -> PassResult:
    result = PassResult("schedulability")
    report = validate_program(program, raise_on_failure=False)
    result.failures.extend(report.failures)
    for channel, depth in sorted(report.max_channel_depth.items()):
        if depth > CREDITS_PER_CHANNEL:
            result.fail(f"channel {channel!r} reaches queue depth "
                        f"{depth} > CREDITS_PER_CHANNEL="
                        f"{CREDITS_PER_CHANNEL}")
    result.counts = {"retired_ops": report.retired_ops}
    for channel, depth in sorted(report.max_channel_depth.items()):
        result.counts[f"{channel}_max_depth"] = depth
    return result
