"""Plan/program cross-agreement.

:func:`repro.sim.coalesce.build_plan` lowers the op queues into packed
per-unit action chains; this pass *re-derives* that lowering with an
independent decoder and checks the cached plan matches action by
action — token interning (first appearance in ``UNITS`` order must be
bijective with the program's token set), channel operands, occupancy
and latency arguments, busy-cycle sums, and the ``seq_bits`` sizing of
the scheduler's packed heap entries. A stale or corrupted cached plan
(e.g. a store entry whose program was edited) cannot silently replay
the wrong chains.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, cast

from repro.analysis.report import PassResult
from repro.compiler.ir import (
    CHANNELS,
    UNITS,
    AccumWritebackOp,
    AcquireOp,
    DmaOp,
    Operation,
    PopOp,
    PushOp,
    ReleaseOp,
    op_cycles,
)
from repro.compiler.program import Program
from repro.config.accelerator import GNNeratorConfig

if TYPE_CHECKING:
    from repro.sim.coalesce import CoalescedPlan


def _expected_actions(op: Operation, channel_ids: dict[str, int],
                      bytes_per_cycle: float, latency: int
                      ) -> list[tuple[int, int]]:
    """The ``(kind, arg)`` sequence ``build_plan`` emits for one op,
    excluding the token WAIT/SIGNAL bracketing (handled by the caller
    because token ids need the interning map)."""
    from repro.sim.coalesce import (
        CREDIT_SIGNAL,
        CREDIT_WAIT,
        DRAM_REL,
        DRAM_REQ,
        GET,
        PUT,
        TIMEOUT,
        _occupancy,
    )

    if isinstance(op, AcquireOp):
        return [(CREDIT_WAIT, channel_ids[op.channel])]
    if isinstance(op, PopOp):
        return [(GET, channel_ids[op.channel])]
    if isinstance(op, ReleaseOp):
        return [(CREDIT_SIGNAL, channel_ids[op.channel])]
    if isinstance(op, PushOp):
        return [(PUT, channel_ids[op.channel])]
    if isinstance(op, (DmaOp, AccumWritebackOp)):
        if not op.num_bytes:
            return []
        occ = _occupancy(op.num_bytes, bytes_per_cycle)
        return [(DRAM_REQ, 0), (TIMEOUT, occ), (DRAM_REL, latency)]
    cycles = op_cycles(op)
    return [(TIMEOUT, cycles)] if cycles else []


class _ChainDecoder:
    """Cursor over one unit's packed chain, failing onto a shared
    :class:`PassResult`. The token-interning map is shared across the
    decoders of all six units (build_plan interns in UNITS order)."""

    def __init__(self, unit: str, chain: list[int],
                 token_ids: dict[str, int], result: PassResult) -> None:
        self.unit = unit
        self.chain = chain
        self.token_ids = token_ids
        self.result = result
        self.pc = 0
        self.checked = 0
        self.timeout_cycles = 0

    def take(self, want_kind: int, want_arg: int | None,
             what: str) -> bool:
        if self.pc >= len(self.chain):
            self.result.fail(f"{self.unit}: chain ends early; "
                             f"expected {what}")
            return False
        action = self.chain[self.pc]
        kind, arg = action & 15, action >> 4
        if kind != want_kind or (want_arg is not None
                                 and arg != want_arg):
            self.result.fail(f"{self.unit}: chain[{self.pc}] is "
                             f"(kind={kind}, arg={arg}), expected "
                             f"{what}")
            return False
        self.pc += 1
        self.checked += 1
        return True

    def take_token(self, want_kind: int, token: str,
                   what: str) -> bool:
        expected = self.token_ids.get(token)
        if expected is None:
            # First appearance anywhere (in UNITS order) interns the
            # next id; record it, then verify the plan agrees.
            expected = self.token_ids[token] = len(self.token_ids)
        return self.take(want_kind, expected,
                         f"{what} token {token!r} (id {expected})")


def check_plan_agreement(program: Program,
                         config: GNNeratorConfig) -> PassResult:
    from repro.sim.coalesce import (
        DRAM_REL,
        END,
        SIGNAL,
        TIMEOUT,
        WAIT,
        _occupancy,
    )

    result = PassResult("plan-agreement")
    plan = cast("CoalescedPlan", program.coalesced_plan(config.dram))
    channel_ids = {channel: i for i, channel in enumerate(CHANNELS)}
    bpc = config.dram.bytes_per_cycle
    latency = config.dram.burst_latency_cycles
    token_ids: dict[str, int] = {}
    checked_actions = 0

    for unit_index, unit in enumerate(UNITS):
        ops = program.queues.get(unit, [])
        decoder = _ChainDecoder(unit, plan.unit_actions[unit_index],
                                token_ids, result)
        mismatched = False
        for op_index, op in enumerate(ops):
            where = f"op {op_index} ({op.label or type(op).__name__})"
            expected = _expected_actions(op, channel_ids, bpc, latency)
            ok = all(decoder.take_token(WAIT, token, f"{where}: WAIT")
                     for token in op.wait)
            ok = ok and all(
                decoder.take(kind, arg, f"{where}: (kind={kind}, "
                                        f"arg={arg})")
                for kind, arg in expected)
            ok = ok and all(
                decoder.take_token(SIGNAL, token, f"{where}: SIGNAL")
                for token in op.signal)
            if not ok:
                mismatched = True
                break
            decoder.timeout_cycles += sum(
                arg for kind, arg in expected if kind == TIMEOUT)
        checked_actions += decoder.checked
        if mismatched:
            continue
        if not decoder.take(END, None, "END sentinel"):
            continue
        if decoder.pc != len(decoder.chain):
            result.fail(f"{unit}: {len(decoder.chain) - decoder.pc} "
                        f"trailing action(s) after the END sentinel")
        # DRAM occupancies count toward channel busy (dma pass), not
        # unit busy; subtract them out of the decoder's TIMEOUT sum.
        dma_occ = sum(
            _occupancy(op.num_bytes, bpc) for op in ops
            if isinstance(op, (DmaOp, AccumWritebackOp))
            and op.num_bytes)
        recomputed = decoder.timeout_cycles - dma_occ
        if recomputed != plan.unit_busy_cycles.get(unit, 0):
            result.fail(f"{unit}: plan says "
                        f"{plan.unit_busy_cycles.get(unit, 0)} busy "
                        f"cycles, decoder recomputes {recomputed}")

    if len(token_ids) != plan.num_tokens:
        result.fail(f"plan interned {plan.num_tokens} tokens, decoder "
                    f"found {len(token_ids)}")
    timed = sum(
        1 for chain in plan.unit_actions for action in chain
        if (action & 15) == TIMEOUT
        or ((action & 15) == DRAM_REL and action >> 4))
    seq_bits = max(timed, 1).bit_length() + 1
    if seq_bits != plan.seq_bits:
        result.fail(f"plan seq_bits {plan.seq_bits} != recomputed "
                    f"{seq_bits} for {timed} timed actions")

    result.counts = {
        "chain_actions": sum(len(c) for c in plan.unit_actions),
        "checked_actions": checked_actions,
        "interned_tokens": len(token_ids),
        "timed_actions": timed,
    }
    return result
