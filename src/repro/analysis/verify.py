"""Verifier pipeline driver.

Runs every registered pass (:data:`repro.analysis.passes.PASSES`) over
a compiled :class:`~repro.compiler.program.Program` and collects the
results into a :class:`~repro.analysis.report.VerifyReport`. No pass
simulates anything; total cost is a few linear walks over the op
queues plus one abstract scheduling run, so verification is cheap
enough to run on every compile (set ``REPRO_VERIFY=1``; the test suite
turns it on unconditionally).
"""

from __future__ import annotations

import os

from repro.analysis.report import VerifyReport
from repro.compiler.ir import CompileError
from repro.compiler.program import Program
from repro.config.accelerator import GNNeratorConfig


class VerificationError(CompileError):
    """A compiled program failed one or more verifier passes."""

    def __init__(self, report: VerifyReport) -> None:
        failures = report.failures
        shown = "; ".join(failures[:3])
        if len(failures) > 3:
            shown += f"; ... ({len(failures) - 3} more)"
        super().__init__(
            f"program verification failed for {report.workload!r}: "
            f"{shown}")
        self.report = report


def verify_program(program: Program, config: GNNeratorConfig, *,
                   workload: str = "",
                   raise_on_failure: bool = False) -> VerifyReport:
    """Run all verifier passes; returns the report.

    With ``raise_on_failure``, a failing report raises
    :class:`VerificationError` carrying the full report (this is what
    the ``REPRO_VERIFY`` compile hook uses).
    """
    from repro.analysis.passes import PASSES

    report = VerifyReport(workload=workload or "<program>")
    for _name, pass_fn in PASSES:
        report.passes.append(pass_fn(program, config))
    if raise_on_failure and not report.ok:
        raise VerificationError(report)
    return report


def verify_enabled() -> bool:
    """Whether the ``REPRO_VERIFY`` compile-time hook is switched on."""
    return os.environ.get("REPRO_VERIFY", "0") not in ("", "0")
