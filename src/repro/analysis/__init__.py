"""Static analysis: machine-checked contracts over programs and code.

Two halves (DESIGN.md §9):

* :mod:`repro.analysis.verify` — IR verifier passes over a compiled
  :class:`~repro.compiler.program.Program` and its coalesced plan.
  Every invariant the simulators rely on dynamically (edge coverage,
  DMA byte conservation, channel protocol, token liveness,
  plan/program agreement) is checked statically, without simulating.
* :mod:`repro.analysis.lint` — an AST linter over the repository
  itself, encoding the codebase contracts written down in DESIGN.md
  §§4–8 (wallclock-free kernels, probe-gated purity, atomic cache
  writes, locked memo mutation, registry-only metrics, layering).
"""

from repro.analysis.lint import LintFinding, lint_paths, lint_repo
from repro.analysis.report import PassResult, VerifyReport
from repro.analysis.verify import VerificationError, verify_program

__all__ = [
    "LintFinding",
    "PassResult",
    "VerificationError",
    "VerifyReport",
    "lint_paths",
    "lint_repo",
    "verify_program",
]
