"""Result containers for the verifier pass pipeline.

A :class:`VerifyReport` is the machine-readable unit ``repro verify
--json`` emits and the serve daemon / distributed workers can gate on:
one :class:`PassResult` per pass, each carrying its failure messages
(empty = pass) plus the counts it established while checking — the
counts double as evidence that a green pass actually inspected
something (an "ok" edge-coverage pass over zero aggregate ops would be
vacuous).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PassResult:
    """Outcome of one verifier pass over one program."""

    name: str
    failures: list[str] = field(default_factory=list)
    counts: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def status(self) -> str:
        return "ok" if self.ok else "fail"

    def fail(self, message: str) -> None:
        self.failures.append(message)

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "status": self.status,
            "failures": list(self.failures),
            "counts": dict(self.counts),
        }


@dataclass
class VerifyReport:
    """Aggregate outcome of the verifier pipeline for one program."""

    workload: str
    passes: list[PassResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.passes)

    @property
    def failures(self) -> list[str]:
        return [f"{result.name}: {message}"
                for result in self.passes for message in result.failures]

    def result(self, name: str) -> PassResult:
        for candidate in self.passes:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no pass named {name!r} in this report")

    def to_dict(self) -> dict[str, object]:
        return {
            "workload": self.workload,
            "status": "ok" if self.ok else "fail",
            "passes": [result.to_dict() for result in self.passes],
        }

    def describe(self) -> str:
        """Human-readable per-pass summary (the default CLI output)."""
        width = max((len(result.name) for result in self.passes),
                    default=0)
        lines = [f"{self.workload}: "
                 f"{'ok' if self.ok else 'FAILED'}"]
        for result in self.passes:
            counts = ", ".join(f"{key}={value}"
                               for key, value in result.counts.items())
            lines.append(f"  {result.name:<{width}}  {result.status:<4}"
                         f"  {counts}")
            lines.extend(f"    {message}" for message in result.failures)
        return "\n".join(lines)
