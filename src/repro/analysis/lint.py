"""Codebase contract linter.

The simulator's correctness rests on a handful of conventions that
ordinary tests cannot see — determinism (no wall-clock reads on the
simulation path), probe purity (telemetry recording must not perturb
scheduler state), crash-safe caches (tmp + ``os.replace``), lock
discipline on shared memos, metric construction through the registry,
and a declared import layering. This module machine-checks them with
AST rules over the source tree; ``repro lint`` runs in CI so a
violation fails the build with a file:line finding instead of
surfacing as a heisenbug.

Rules are pure functions ``rule(src) -> iterator of findings`` over a
parsed :class:`SourceFile`; each declares which relative paths it
applies to, so tests can feed synthetic sources under fake paths.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

#: Modules that may never import wall-clock/randomness sources: the
#: deterministic simulation core. ``compiler/runtime.py`` is listed
#: by file because the rest of ``compiler/`` legitimately uses
#: ``time`` for compile-wall telemetry.
_KERNEL_PREFIXES = ("sim/", "engines/")
_KERNEL_FILES = ("compiler/runtime.py",)
_WALLCLOCK_MODULES = ("time", "random", "datetime")

#: Cache modules whose on-disk writes must be atomic (tmp file +
#: ``os.replace``): a concurrent reader must never observe a torn
#: entry (see DESIGN.md on the content-addressed store).
_CACHE_FILES = (
    "compiler/store.py",
    "graph/datasets.py",
    "sweep/cache.py",
    "sweep/dist/queue.py",
    "eval/hostperf.py",
    "serve/loadtest.py",
)

#: Shared-memo lock discipline: per module, which top-level names (or
#: ``self.`` attributes) may only be mutated inside ``with <lock>:``.
#: ``__init__`` bodies and module level are exempt (construction
#: precedes sharing).
_LOCKED_MEMOS: dict[str, tuple[tuple[str, ...], str]] = {
    "compiler/lowering.py": (
        ("_STATIC_WEIGHTS_MEMO", "_ATTENTION_WEIGHTS_MEMO",
         "_FULL_LOWERINGS"),
        "_MEMO_LOCK"),
    "graph/partition.py": (("_GRID_LOCKS",), "_GRID_LOCKS_GUARD"),
    "eval/harness.py": (
        ("self._params", "self._programs", "self._fingerprints",
         "self._memo_hits", "self._memo_misses", "self._compile_locks"),
        "self._lock"),
}

_MUTATING_METHODS = frozenset({
    "append", "extend", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "insert",
})

#: Raw metric instruments; construct through
#: :class:`repro.obs.metrics.MetricRegistry` so every instrument is
#: registered (and named) exactly once.
_INSTRUMENT_NAMES = ("Counter", "Gauge", "Histogram", "_Instrument")

#: The import layering. Key: first path component of a module inside
#: the ``repro`` package (or the module name for top-level files).
#: Value: ``repro.*`` import targets the package may name at module
#: level — matched on the first dotted component, or on an exact
#: dotted entry for sanctioned deep imports (e.g. ``sim`` may see the
#: IR's op dataclasses but not the compiler pipeline). Imports inside
#: functions or under ``if TYPE_CHECKING:`` are exempt — they express
#: a runtime collaboration, not an architectural dependency.
_LAYERS: dict[str, frozenset[str]] = {
    "config": frozenset({"config"}),
    "obs": frozenset({"obs"}),
    "graph": frozenset({"graph", "config", "obs"}),
    "models": frozenset({"models", "graph", "config"}),
    "dataflow": frozenset({"dataflow", "graph", "config"}),
    "sim": frozenset({"sim", "config", "obs", "compiler.ir",
                      "engines.controller"}),
    "engines": frozenset({"engines", "sim", "config", "graph", "obs",
                          "compiler.ir"}),
    "compiler": frozenset({"compiler", "config", "obs", "graph",
                           "models", "dataflow", "engines.controller",
                           "engines.dense.systolic",
                           "engines.graph.gpe"}),
    "analysis": frozenset({"analysis", "compiler", "config", "obs",
                           "graph", "models", "dataflow", "sim",
                           "engines.controller"}),
    "accelerator": frozenset({"accelerator", "compiler", "config",
                              "engines", "graph", "models", "obs",
                              "sim", "dataflow", "analysis"}),
    "baselines": frozenset({"baselines", "config", "graph", "models",
                            "dataflow"}),
    "sweep": frozenset({"sweep", "config", "graph", "models", "obs"}),
    "eval": frozenset({"eval", "accelerator", "analysis", "baselines",
                       "compiler", "config", "dataflow", "graph",
                       "models", "obs", "sweep", "sim"}),
    "dse": frozenset({"dse", "config", "sweep", "eval", "obs"}),
    "serve": frozenset({"serve", "config", "eval", "graph", "models",
                        "obs", "sweep"}),
}
#: Entry points see everything.
_UNLAYERED = ("cli", "__init__", "__main__")


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {"path": self.path, "line": self.line, "rule": self.rule,
                "message": self.message}


@dataclass
class SourceFile:
    """A parsed module plus the relative path rules dispatch on."""

    path: Path          #: absolute path on disk
    rel: str            #: posix path relative to the repro package
    tree: ast.Module

    @classmethod
    def parse(cls, path: Path, rel: str) -> "SourceFile":
        tree = ast.parse(path.read_text(encoding="utf-8"),
                         filename=str(path))
        return cls(path=path, rel=rel, tree=tree)


RuleFn = Callable[[SourceFile], Iterator[LintFinding]]


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _root_name(node: ast.expr) -> str | None:
    """The base Name of an arbitrary Attribute/Subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


# -- no-wallclock-in-kernel ---------------------------------------------

def rule_no_wallclock_in_kernel(src: SourceFile) -> Iterator[LintFinding]:
    """The simulation core may not read wall clocks or entropy: cycle
    counts must be a pure function of (program, config)."""
    if (not src.rel.startswith(_KERNEL_PREFIXES)
            and src.rel not in _KERNEL_FILES):
        return
    for node in ast.walk(src.tree):
        names: list[str] = []
        if isinstance(node, ast.Import):
            names = [alias.name.split(".")[0] for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.module:
            names = [node.module.split(".")[0]]
        for name in names:
            if name in _WALLCLOCK_MODULES:
                yield LintFinding(
                    src.rel, node.lineno, "no-wallclock-in-kernel",
                    f"import of {name!r} in the deterministic "
                    f"simulation core")


# -- probe-gated-purity --------------------------------------------------

def _is_probe_guard(test: ast.expr, flags: set[str]) -> bool:
    """``probe is not None`` / ``rec`` where rec holds that compare."""
    if (isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.IsNot)
            and isinstance(test.left, ast.Name)
            and test.left.id == "probe"
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None):
        return True
    return isinstance(test, ast.Name) and test.id in flags


def _gated_violations(body: list[ast.stmt], local: set[str],
                      src: SourceFile) -> Iterator[LintFinding]:
    """Check the statements under a probe guard.

    ``local`` is the set of probe-local names — names whose binding
    itself lives under a guard, so mutating them cannot be observed by
    an unprobed run. Allowed: binding/mutating probe-locals, and calls
    rooted at ``probe`` or a probe-local.
    """
    for stmt in body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            for target in targets:
                if isinstance(target, ast.Name):
                    local.add(target.id)
                    continue
                if (isinstance(target, (ast.Tuple, ast.List))
                        and all(isinstance(el, ast.Name)
                                for el in target.elts)):
                    local.update(el.id for el in target.elts)
                    continue
                root = _root_name(target)
                if root == "probe" or root in local:
                    continue
                yield LintFinding(
                    src.rel, stmt.lineno, "probe-gated-purity",
                    f"store to non-probe-local "
                    f"{ast.unparse(target)!r} under a probe guard "
                    f"(recording must not perturb scheduler state)")
        elif isinstance(stmt, ast.Expr):
            call = stmt.value
            if not isinstance(call, ast.Call):
                continue
            root = _root_name(call.func)
            if root == "probe" or root in local:
                continue
            yield LintFinding(
                src.rel, stmt.lineno, "probe-gated-purity",
                f"call to {ast.unparse(call.func)!r} under a probe "
                f"guard is not rooted at the probe")
        elif isinstance(stmt, (ast.If, ast.For, ast.While, ast.With)):
            yield from _gated_violations(
                stmt.body + getattr(stmt, "orelse", []), local, src)
        else:
            yield LintFinding(
                src.rel, stmt.lineno, "probe-gated-purity",
                f"{type(stmt).__name__} statement under a probe guard")


def rule_probe_gated_purity(src: SourceFile) -> Iterator[LintFinding]:
    """Statements guarded by ``probe is not None`` may only record onto
    the probe (or names bound under such guards) — a probed run must be
    cycle-identical to an unprobed one by construction."""
    if not src.rel.startswith(("sim/", "engines/")):
        return
    for func in ast.walk(src.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        flags: set[str] = set()
        local: set[str] = set()
        for node in ast.walk(func):
            if (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and _is_probe_guard(node.value, flags)):
                flags.add(node.targets[0].id)
        for node in ast.walk(func):
            if isinstance(node, ast.If) and _is_probe_guard(node.test,
                                                            flags):
                yield from _gated_violations(node.body, local, src)


# -- atomic-writes -------------------------------------------------------

def _is_file_write(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open":
        for arg in node.args[1:2]:
            if (isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and any(flag in arg.value for flag in "wxa")):
                return True
        for kw in node.keywords:
            if (kw.arg == "mode" and isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, str)
                    and any(flag in kw.value.value for flag in "wxa")):
                return True
        return False
    return (isinstance(func, ast.Attribute)
            and func.attr in ("write_text", "write_bytes"))


def rule_atomic_writes(src: SourceFile) -> Iterator[LintFinding]:
    """Cache modules must publish files atomically: any function that
    writes must finish with ``os.replace`` (write-to-tmp-then-rename)
    or ``os.link`` (exclusive create from a tmp), so concurrent
    readers never see a torn entry."""
    if src.rel not in _CACHE_FILES:
        return
    for func in ast.walk(src.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        writes = [node for node in ast.walk(func)
                  if isinstance(node, ast.Call) and _is_file_write(node)]
        if not writes:
            continue
        replaces = any(
            isinstance(node, ast.Call)
            and _dotted(node.func) in ("os.replace", "os.rename",
                                       "os.link")
            for node in ast.walk(func))
        if not replaces:
            for node in writes:
                yield LintFinding(
                    src.rel, node.lineno, "atomic-writes",
                    f"file write in {func.name!r} without an "
                    f"os.replace in the same function (write to a "
                    f"tmp path, then replace)")


# -- locked-memo-mutation ------------------------------------------------

def _target_key(node: ast.expr) -> str | None:
    """``name`` or ``self.attr`` for the root of a mutation target."""
    while isinstance(node, (ast.Subscript,)):
        node = node.value
    dotted = _dotted(node)
    if dotted is None:
        return None
    if dotted.startswith("self."):
        return ".".join(dotted.split(".")[:2])
    return dotted.split(".")[0]


def _lock_key(item: ast.expr) -> str | None:
    return _dotted(item)


class _LockedMemoVisitor(ast.NodeVisitor):
    def __init__(self, src: SourceFile, targets: tuple[str, ...],
                 lock: str) -> None:
        self.src = src
        self.targets = targets
        self.lock = lock
        self.lock_depth = 0
        self.exempt_depth = 0
        self.findings: list[LintFinding] = []

    def _flag(self, node: ast.stmt | ast.expr, key: str) -> None:
        if self.lock_depth or self.exempt_depth:
            return
        self.findings.append(LintFinding(
            self.src.rel, node.lineno, "locked-memo-mutation",
            f"mutation of shared memo {key!r} outside "
            f"`with {self.lock}:`"))

    # -- scope tracking
    def visit_With(self, node: ast.With) -> None:
        locked = any(_lock_key(item.context_expr) == self.lock
                     for item in node.items)
        self.lock_depth += locked
        self.generic_visit(node)
        self.lock_depth -= locked

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        exempt = node.name == "__init__"
        self.exempt_depth += exempt
        self.generic_visit(node)
        self.exempt_depth -= exempt

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    # -- mutation sites
    def _check_store(self, target: ast.expr, node: ast.stmt) -> None:
        key = _target_key(target)
        if key in self.targets:
            self._flag(node, key)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_store(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_store(target, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS):
            key = _target_key(func.value)
            if key in self.targets:
                self._flag(node, key)
        self.generic_visit(node)


def rule_locked_memo_mutation(src: SourceFile) -> Iterator[LintFinding]:
    """Declared shared memos may only be mutated under their lock;
    construction (module level, ``__init__``) is exempt."""
    config = _LOCKED_MEMOS.get(src.rel)
    if config is None:
        return
    targets, lock = config
    visitor = _LockedMemoVisitor(src, targets, lock)
    # Visit function bodies only: module-level statements are the
    # initial bindings.
    for node in src.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            visitor.visit(node)
    yield from visitor.findings


# -- metric-naming -------------------------------------------------------

def rule_metric_naming(src: SourceFile) -> Iterator[LintFinding]:
    """Instruments are created through the registry
    (``MetricRegistry.counter(...)`` etc.) so every metric is named and
    exported exactly once; importing the raw classes outside ``obs/``
    bypasses registration."""
    if src.rel.startswith("obs/"):
        return
    for node in ast.walk(src.tree):
        if (isinstance(node, ast.ImportFrom) and node.module
                and node.module.startswith("repro.obs")):
            for alias in node.names:
                if alias.name in _INSTRUMENT_NAMES:
                    yield LintFinding(
                        src.rel, node.lineno, "metric-naming",
                        f"raw instrument {alias.name!r} imported from "
                        f"{node.module}; construct via MetricRegistry")


# -- layering ------------------------------------------------------------

def _package_key(rel: str) -> str:
    first = rel.split("/", 1)[0]
    if first.endswith(".py"):
        return first[:-3]
    return first


def _import_targets(node: ast.stmt) -> list[str]:
    """``repro``-internal dotted targets named by an import statement,
    relative to the package (``repro.sim.kernel`` -> ``sim.kernel``)."""
    targets: list[str] = []
    if isinstance(node, ast.Import):
        targets = [alias.name for alias in node.names]
    elif isinstance(node, ast.ImportFrom) and node.level == 0:
        targets = [node.module] if node.module else []
    out = []
    for target in targets:
        if target == "repro":
            out.append("")
        elif target.startswith("repro."):
            out.append(target[len("repro."):])
    return out


def _module_level_imports(tree: ast.Module) -> Iterator[ast.stmt]:
    """Imports that create architectural dependencies: module level,
    including under plain ``if`` — but not inside functions and not
    under ``if TYPE_CHECKING:``."""
    stack: list[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            yield node
        elif isinstance(node, ast.If):
            test = node.test
            is_tc = ((isinstance(test, ast.Name)
                      and test.id == "TYPE_CHECKING")
                     or _dotted(test) == "typing.TYPE_CHECKING")
            if not is_tc:
                stack.extend(node.body)
            stack.extend(node.orelse)
        elif isinstance(node, ast.Try):
            stack.extend(node.body + node.orelse + node.finalbody)
            for handler in node.handlers:
                stack.extend(handler.body)


def rule_layering(src: SourceFile) -> Iterator[LintFinding]:
    """Module-level imports must follow the declared layering DAG
    (``_LAYERS``); runtime collaborations go through function-local
    imports, which are exempt by design."""
    key = _package_key(src.rel)
    if key in _UNLAYERED:
        return
    allowed = _LAYERS.get(key)
    if allowed is None:
        yield LintFinding(src.rel, 1, "layering",
                          f"package {key!r} has no layering entry; "
                          f"declare one in repro.analysis.lint")
        return
    for node in _module_level_imports(src.tree):
        for target in _import_targets(node):
            if target == "":
                yield LintFinding(
                    src.rel, node.lineno, "layering",
                    "import of the bare `repro` package re-enters "
                    "the CLI layer")
                continue
            first = target.split(".", 1)[0]
            if first in allowed:
                continue
            if any(target == entry or target.startswith(entry + ".")
                   for entry in allowed if "." in entry):
                continue
            yield LintFinding(
                src.rel, node.lineno, "layering",
                f"{key!r} may not import repro.{target} at module "
                f"level (allowed: {', '.join(sorted(allowed))})")


RULES: tuple[RuleFn, ...] = (
    rule_no_wallclock_in_kernel,
    rule_probe_gated_purity,
    rule_atomic_writes,
    rule_locked_memo_mutation,
    rule_metric_naming,
    rule_layering,
)

RULE_NAMES = tuple(
    fn.__name__.removeprefix("rule_").replace("_", "-") for fn in RULES)


def lint_source(src: SourceFile) -> list[LintFinding]:
    """All findings for one parsed source file."""
    findings: list[LintFinding] = []
    for rule in RULES:
        findings.extend(rule(src))
    return findings


def lint_paths(paths: Iterable[Path], root: Path) -> list[LintFinding]:
    """Lint the given files; ``root`` is the repro package directory
    the rule-dispatch paths are computed against."""
    findings: list[LintFinding] = []
    for path in sorted(paths):
        rel = path.relative_to(root).as_posix()
        findings.extend(lint_source(SourceFile.parse(path, rel)))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def lint_repo(root: Path | None = None) -> list[LintFinding]:
    """Lint the whole ``repro`` package (the default for ``repro
    lint`` and CI)."""
    if root is None:
        import repro
        root = Path(repro.__file__).resolve().parent
    return lint_paths(root.rglob("*.py"), root)
