"""Top-level GNNerator model (Fig 2): two engines, one controller, one
shared feature memory.

:func:`simulate` is the main timing entry point: it compiles (or takes a
precompiled program), spawns the six unit processes on a fresh DES, runs
to completion and returns an :class:`ExecutionResult` with end-to-end
cycles, per-unit busy time, and DRAM traffic — everything the evaluation
harness needs for Figs 3-5 and Tables I/V.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.lowering import compile_workload
from repro.compiler.program import Program
from repro.config.accelerator import GNNeratorConfig
from repro.config.workload import DST_STATIONARY
from repro.engines.controller import Controller
from repro.engines.dense.engine import DenseEngine
from repro.engines.executor import DeadlockError
from repro.engines.graph.engine import GraphEngine
from repro.graph.graph import Graph
from repro.models.layers import Parameters
from repro.models.stages import GNNModel
from repro.obs.spans import span
from repro.sim.coalesce import DeadlockSuspension, run_plan
from repro.sim.kernel import Environment, SimulationError
from repro.sim.memory import DramChannel
from repro.sim.trace import Tracer


@dataclass
class ExecutionResult:
    """Outcome of one timed run."""

    cycles: int
    frequency_ghz: float
    unit_busy_cycles: dict[str, int] = field(default_factory=dict)
    dram_bytes_by_unit: dict[str, int] = field(default_factory=dict)
    dram_bytes_by_purpose: dict[str, int] = field(default_factory=dict)
    dram_busy_cycles: int = 0
    num_operations: int = 0

    @property
    def seconds(self) -> float:
        return self.cycles / (self.frequency_ghz * 1e9)

    @property
    def total_dram_bytes(self) -> int:
        return sum(self.dram_bytes_by_unit.values())

    def utilization(self, unit: str) -> float:
        if self.cycles <= 0:
            return 0.0
        return min(self.unit_busy_cycles.get(unit, 0) / self.cycles, 1.0)

    @property
    def dram_utilization(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return min(self.dram_busy_cycles / self.cycles, 1.0)

    def describe(self) -> str:
        busy = {unit: f"{self.utilization(unit):.0%}"
                for unit in sorted(self.unit_busy_cycles)}
        return (f"{self.cycles} cycles ({self.seconds * 1e6:.1f} us), "
                f"DRAM {self.total_dram_bytes / 1e6:.1f} MB "
                f"({self.dram_utilization:.0%} busy), unit busy {busy}")


class GNNerator:
    """The assembled accelerator: compile workloads and simulate them."""

    def __init__(self, config: GNNeratorConfig | None = None) -> None:
        self.config = config if config is not None else GNNeratorConfig()

    def compile(self, graph: Graph, model: GNNModel,
                params: Parameters | None = None,
                traversal: str = DST_STATIONARY,
                feature_block: int | None | str = "config") -> Program:
        return compile_workload(graph, model, self.config, params=params,
                                traversal=traversal,
                                feature_block=feature_block)

    def simulate(self, program: Program,
                 tracer: Tracer | None = None,
                 coalesce: bool | None = None,
                 probe=None) -> ExecutionResult:
        """Replay a compiled program on the discrete-event machine.

        By default the coalesced kernel (:mod:`repro.sim.coalesce`)
        replays the program's precompiled action chains — identical
        cycle counts, an order of magnitude less host time on big
        programs. Pass a :class:`~repro.sim.trace.Tracer` to collect
        per-unit busy windows (see :func:`repro.sim.trace.render_gantt`)
        — tracing needs the per-operation event kernel, so it implies
        ``coalesce=False``; pass ``coalesce=False`` explicitly to force
        the process-based kernel (the two are locked cycle-identical by
        ``tests/test_coalesce.py``).

        ``probe`` (:class:`repro.obs.hwtel.HwProbe`) collects the raw
        hardware-telemetry stream — compute busy windows, DRAM bursts,
        port-queue depth — from *either* kernel; the two streams are
        identical for the same program (``tests/test_obs.py``), and
        probing never changes cycle counts.
        """
        if coalesce is None:
            coalesce = tracer is None
        if coalesce and tracer is not None:
            raise SimulationError(
                "tracing requires the per-operation kernel; pass "
                "coalesce=False (or omit it) when using a tracer")
        if coalesce:
            return self._simulate_coalesced(program, probe)
        with span("simulate", kernel="event",
                  graph=program.graph_name):
            env = Environment()
            controller = Controller(env)
            dram = DramChannel(env, self.config.dram, probe=probe)
            graph_engine = GraphEngine(env, self.config.graph,
                                       controller, dram)
            dense_engine = DenseEngine(env, self.config.dense,
                                       controller, dram)
            graph_engine.launch(program.queues, tracer, probe)
            dense_engine.launch(program.queues, tracer, probe)
            env.run()
        if not (graph_engine.finished() and dense_engine.finished()):
            stuck = [name for engine in (graph_engine, dense_engine)
                     for name, proc in engine.processes.items()
                     if not proc.triggered]
            raise DeadlockError(
                f"simulation deadlocked; unfinished units: {stuck}")
        busy = {}
        for engine in (graph_engine, dense_engine):
            for unit, tracker in engine.trackers.items():
                busy[unit] = tracker.busy_cycles
        return ExecutionResult(
            cycles=env.now,
            frequency_ghz=self.config.graph.frequency_ghz,
            unit_busy_cycles=busy,
            dram_bytes_by_unit={
                unit: counter.total_bytes
                for unit, counter in dram.counters.items()},
            dram_bytes_by_purpose=program.dram_bytes_by_purpose(),
            dram_busy_cycles=dram.busy_cycles,
            num_operations=program.num_operations,
        )

    def _simulate_coalesced(self, program: Program,
                            probe=None) -> ExecutionResult:
        """Replay the program's precompiled action chains.

        Every field of the result except the cycle count is a static
        function of the program (each operation executes exactly once),
        so only the chain replay runs; the accounting comes off the
        cached :class:`~repro.sim.coalesce.CoalescedPlan`.
        """
        plan = program.coalesced_plan(self.config.dram)
        try:
            with span("simulate", kernel="coalesced",
                      graph=program.graph_name):
                cycles = run_plan(plan, probe)
        except DeadlockSuspension as exc:
            raise DeadlockError(
                f"simulation deadlocked; unfinished units: "
                f"{exc.stuck}") from None
        return ExecutionResult(
            cycles=cycles,
            frequency_ghz=self.config.graph.frequency_ghz,
            unit_busy_cycles=dict(plan.unit_busy_cycles),
            dram_bytes_by_unit={
                unit: reads + writes
                for unit, (reads, writes, read_tx, write_tx)
                in plan.dram_traffic.items() if read_tx or write_tx},
            dram_bytes_by_purpose=program.dram_bytes_by_purpose(),
            dram_busy_cycles=plan.dram_busy_cycles,
            num_operations=program.num_operations,
        )

    def run(self, graph: Graph, model: GNNModel,
            params: Parameters | None = None,
            traversal: str = DST_STATIONARY,
            feature_block: int | None | str = "config") -> ExecutionResult:
        """Compile + simulate in one call."""
        program = self.compile(graph, model, params=params,
                               traversal=traversal,
                               feature_block=feature_block)
        return self.simulate(program)
