"""Shard-grid traversal orders (Sec IV-A).

The 2-D shard grid can be walked in a *source-stationary* (row-major) or
*destination-stationary* (column-major) order. Both use an S-pattern
(serpentine): consecutive rows/columns are walked in opposite directions
so the shard at a row/column boundary is reused, saving one reload.

:func:`simulate_residency` replays an order against a one-interval-per-
buffer residency model and counts interval loads/stores — the empirical
counterpart of the analytic Table I formulas in
:mod:`repro.dataflow.costs`, and the ground truth the compiler's
residency analysis is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.config.workload import (
    DST_STATIONARY,
    SRC_STATIONARY,
    TRAVERSAL_ORDERS,
)
from repro.graph.graph import GraphError


def serpentine(major: int, minor: int) -> Iterator[tuple[int, int]]:
    """Walk a ``major x minor`` grid serpentine-wise, yielding (maj, min)."""
    for outer in range(major):
        inner = range(minor) if outer % 2 == 0 else range(minor - 1, -1, -1)
        for item in inner:
            yield outer, item


def src_stationary_order(grid_side: int) -> list[tuple[int, int]]:
    """Row-major S-pattern: hold a source interval, sweep destinations."""
    if grid_side <= 0:
        raise GraphError("grid_side must be positive")
    return [(row, col) for row, col in serpentine(grid_side, grid_side)]


def dst_stationary_order(grid_side: int) -> list[tuple[int, int]]:
    """Column-major S-pattern: hold a destination interval, sweep sources.

    This is the order of Algorithm 1 (``dst`` is the outer shard loop).
    """
    if grid_side <= 0:
        raise GraphError("grid_side must be positive")
    return [(row, col) for col, row in serpentine(grid_side, grid_side)]


def traversal_order(name: str, grid_side: int) -> list[tuple[int, int]]:
    """Dispatch by traversal name (see ``config.workload``)."""
    if name == SRC_STATIONARY:
        return src_stationary_order(grid_side)
    if name == DST_STATIONARY:
        return dst_stationary_order(grid_side)
    raise GraphError(
        f"unknown traversal {name!r}; expected one of {TRAVERSAL_ORDERS}")


@dataclass
class ResidencyCounts:
    """Interval-granularity transfer counts for one grid walk.

    Attributes mirror Table I's cost structure:

    * ``src_loads`` — source-interval feature loads (each moves ``I``
      input features on-chip);
    * ``dst_loads`` — destination-accumulator reloads (partial sums read
      back from DRAM; zero-valued accumulators are materialised on-chip
      and never read);
    * ``dst_stores`` — destination-accumulator writebacks (spills when the
      walk leaves a column plus the final writebacks).
    """

    src_loads: int = 0
    dst_loads: int = 0
    dst_stores: int = 0

    @property
    def total_reads(self) -> int:
        return self.src_loads + self.dst_loads

    @property
    def total_writes(self) -> int:
        return self.dst_stores


def simulate_residency(order: list[tuple[int, int]],
                       grid_side: int) -> ResidencyCounts:
    """Replay a walk with single-interval src/dst buffers and count DMAs.

    The model matches the hardware of Sec III-B: one resident source
    interval (features, read-only) and one resident destination interval
    (accumulators, read-write). Swapping the destination interval spills
    its partial sums; re-entering a column whose partials were spilled
    reloads them. Every destination interval is written back exactly once
    more at the end of its final visit.
    """
    counts = ResidencyCounts()
    resident_src: int | None = None
    resident_dst: int | None = None
    started: set[int] = set()  # dst intervals whose partials exist
    remaining = [0] * grid_side  # visits left per dst column
    for _, col in order:
        remaining[col] += 1

    for row, col in order:
        if not (0 <= row < grid_side and 0 <= col < grid_side):
            raise GraphError(f"shard {(row, col)} outside grid")
        if resident_src != row:
            counts.src_loads += 1
            resident_src = row
        if resident_dst != col:
            if resident_dst is not None and remaining[resident_dst] > 0:
                # Leaving a column with work left: spill partial sums.
                counts.dst_stores += 1
            if col in started:
                counts.dst_loads += 1
            started.add(col)
            resident_dst = col
        remaining[col] -= 1
        if remaining[col] == 0:
            counts.dst_stores += 1
            resident_dst = None
    return counts
