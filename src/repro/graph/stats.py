"""Graph statistics used to sanity-check synthetic datasets and to
reason about Graph Engine load balance.

Citation networks have heavy-tailed degree distributions; the generator
must reproduce that skew because hub destinations concentrate edges on
single GPEs (see :mod:`repro.engines.graph.gpe`) and hub sources drive
HyGCN's sparsity-elimination arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.graph.partition import ShardGrid


@dataclass(frozen=True)
class DegreeStats:
    """Summary of one degree distribution."""

    mean: float
    maximum: int
    p99: float
    gini: float  # 0 = perfectly even, -> 1 = all edges on one node

    def describe(self) -> str:
        return (f"mean {self.mean:.1f}, max {self.maximum}, "
                f"p99 {self.p99:.0f}, gini {self.gini:.2f}")


def _gini(values: np.ndarray) -> float:
    if values.sum() == 0:
        return 0.0
    sorted_values = np.sort(values.astype(np.float64))
    n = sorted_values.size
    ranks = np.arange(1, n + 1)
    return float((2 * ranks - n - 1).dot(sorted_values)
                 / (n * sorted_values.sum()))


def degree_stats(graph: Graph, direction: str = "in") -> DegreeStats:
    """Degree-distribution summary (``direction`` in {"in", "out"})."""
    if direction == "in":
        degrees = graph.in_degrees()
    elif direction == "out":
        degrees = graph.out_degrees()
    else:
        raise ValueError(f"direction must be 'in' or 'out', "
                         f"got {direction!r}")
    return DegreeStats(
        mean=float(degrees.mean()) if degrees.size else 0.0,
        maximum=int(degrees.max()) if degrees.size else 0,
        p99=float(np.percentile(degrees, 99)) if degrees.size else 0.0,
        gini=_gini(degrees),
    )


@dataclass(frozen=True)
class ShardOccupancy:
    """How evenly edges fill a shard grid."""

    grid_side: int
    nonempty_cells: int
    total_cells: int
    max_edges: int
    mean_edges: float

    @property
    def fill_fraction(self) -> float:
        if self.total_cells == 0:
            return 0.0
        return self.nonempty_cells / self.total_cells


def shard_occupancy(grid: ShardGrid) -> ShardOccupancy:
    """Occupancy summary of one shard grid."""
    shards = grid.nonempty_shards()
    side = grid.grid_side
    counts = [s.num_edges for s in shards]
    return ShardOccupancy(
        grid_side=side,
        nonempty_cells=len(shards),
        total_cells=side * side,
        max_edges=max(counts, default=0),
        mean_edges=float(np.mean(counts)) if counts else 0.0,
    )
