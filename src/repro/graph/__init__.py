"""Graph substrate: containers, generators, datasets, sharding, traversal."""

from repro.graph.datasets import (
    DATASETS,
    DatasetStats,
    dataset_stats,
    dataset_table,
    load_dataset,
)
from repro.graph.generators import (
    citation_network,
    erdos_renyi,
    path_graph,
    preferential_attachment_edges,
    sparse_binary_features,
    star_graph,
)
from repro.graph.graph import Graph, GraphError
from repro.graph.stats import (
    DegreeStats,
    ShardOccupancy,
    degree_stats,
    shard_occupancy,
)
from repro.graph.partition import (
    NodeInterval,
    Shard,
    ShardGrid,
    plan_interval_size,
    plan_shards,
)
from repro.graph.traversal import (
    ResidencyCounts,
    dst_stationary_order,
    serpentine,
    simulate_residency,
    src_stationary_order,
    traversal_order,
)

__all__ = [
    "DATASETS",
    "DatasetStats",
    "dataset_stats",
    "dataset_table",
    "load_dataset",
    "citation_network",
    "erdos_renyi",
    "path_graph",
    "preferential_attachment_edges",
    "sparse_binary_features",
    "star_graph",
    "Graph",
    "GraphError",
    "DegreeStats",
    "ShardOccupancy",
    "degree_stats",
    "shard_occupancy",
    "NodeInterval",
    "Shard",
    "ShardGrid",
    "plan_interval_size",
    "plan_shards",
    "ResidencyCounts",
    "dst_stationary_order",
    "serpentine",
    "simulate_residency",
    "src_stationary_order",
    "traversal_order",
]
