"""Benchmark dataset registry (Table II).

Three citation datasets drive the paper's evaluation:

========  ========  =======  ============  =======
Dataset   Vertices  Edges    Feature Dim.  Size
========  ========  =======  ============  =======
CORA      2708      10556    1433          15.6 MB
CITESEER  3327      9104     3703          49 MB
PUBMED    19717     88648    500           40.5 MB
========  ========  =======  ============  =======

("Size" is the fp32 feature matrix; edge counts are directed message
edges of the symmetrised graph, as DGL reports them.)

Real Planetoid files cannot be downloaded here, so :func:`load_dataset`
synthesises deterministic equivalents with exactly these statistics (see
:mod:`repro.graph.generators` and DESIGN.md §3 for why that preserves the
behaviour being measured). If a real Planetoid ``<name>.content`` /
``<name>.cites`` pair is found under ``data_dir`` it is used instead.
"""

from __future__ import annotations

import functools
import hashlib
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

import repro.graph.generators as _generators
from repro.graph.generators import citation_network, powerlaw_graph
from repro.graph.graph import Graph, GraphError


@dataclass(frozen=True)
class DatasetStats:
    """Published statistics of one benchmark dataset (one Table II row).

    ``degree_exponent`` documents the degree structure the synthesiser
    reproduces: ``None`` means a citation-style graph grown by
    preferential attachment and symmetrised (the Planetoid trio);
    a float is the Zipf exponent of the in-degree tail of a directed
    power-law multigraph (the million-edge workloads), whose out-degree
    tail uses half that exponent — see
    :func:`repro.graph.generators.powerlaw_graph`.
    """

    name: str
    num_nodes: int
    num_edges: int
    feature_dim: int
    num_classes: int
    #: Bag-of-words density used when synthesising features.
    feature_density: float
    #: In-degree Zipf exponent (power-law datasets) or None
    #: (citation-style preferential attachment).
    degree_exponent: float | None = None

    @property
    def feature_megabytes(self) -> float:
        """The Table II "Size" column (fp32 features, MB = 1e6 bytes)."""
        return self.num_nodes * self.feature_dim * 4 / 1e6


DATASETS: dict[str, DatasetStats] = {
    "cora": DatasetStats(
        name="cora", num_nodes=2708, num_edges=10556, feature_dim=1433,
        num_classes=7, feature_density=0.0127),
    "citeseer": DatasetStats(
        name="citeseer", num_nodes=3327, num_edges=9104, feature_dim=3703,
        num_classes=6, feature_density=0.0085),
    "pubmed": DatasetStats(
        name="pubmed", num_nodes=19717, num_edges=88648, feature_dim=500,
        num_classes=3, feature_density=0.10),
    # Not a Table II dataset: a deliberately small citation-style graph
    # for CI smoke runs and design-space-exploration searches, where
    # hundreds of candidate configs must each simulate in milliseconds.
    "tiny": DatasetStats(
        name="tiny", num_nodes=64, num_edges=256, feature_dim=32,
        num_classes=4, feature_density=0.25),
    # Million-edge scale-up workloads (not Table II): synthetic stand-ins
    # with the published |V| / |E| / feature dimension of the graphs the
    # accelerator literature evaluates on (GraphSAINT's Flickr; Reddit at
    # GenGNN's node count). Directed power-law multigraphs — see
    # ``degree_exponent`` above for the documented degree structure.
    "flickr": DatasetStats(
        name="flickr", num_nodes=89250, num_edges=899756, feature_dim=500,
        num_classes=7, feature_density=0.046, degree_exponent=1.2),
    "reddit-s": DatasetStats(
        name="reddit-s", num_nodes=232965, num_edges=11606920,
        feature_dim=602, num_classes=41, feature_density=0.05,
        degree_exponent=1.1),
}

#: Seeds fixed per dataset so every run sees the same synthetic graph.
_DATASET_SEEDS = {"cora": 11, "citeseer": 23, "pubmed": 37, "tiny": 53,
                  "flickr": 71, "reddit-s": 89}

#: Datasets large enough that loads should never hold two copies of the
#: feature matrix: their cached features are memory-mapped on load, so
#: pages fault in only when (and if) a consumer actually reads them —
#: a cycle-accurate compile+simulate of a non-attention network never
#: touches feature *values* at all.
LARGE_DATASETS = ("flickr", "reddit-s")


def dataset_stats(name: str) -> DatasetStats:
    """Published statistics for ``name`` (KeyError lists known names)."""
    try:
        return DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise GraphError(
            f"unknown dataset {name!r}; known datasets: {known}") from None


@functools.lru_cache(maxsize=None)
def _load_planetoid(stats: DatasetStats, data_dir: str) -> Graph:
    """Parse real Planetoid ``.content`` / ``.cites`` files if present.

    Cached per (dataset, directory) like the synthetic path, so new
    Harness instances in one process never re-parse the files."""
    content = os.path.join(data_dir, f"{stats.name}.content")
    cites = os.path.join(data_dir, f"{stats.name}.cites")
    ids: list[str] = []
    rows: list[np.ndarray] = []
    with open(content) as handle:
        for line in handle:
            parts = line.strip().split()
            if not parts:
                continue
            ids.append(parts[0])
            rows.append(np.asarray(parts[1:-1], dtype=np.float32))
    index = {paper: i for i, paper in enumerate(ids)}
    edges = []
    with open(cites) as handle:
        for line in handle:
            parts = line.strip().split()
            if len(parts) != 2:
                continue
            cited, citing = parts
            if cited in index and citing in index:
                edges.append((index[citing], index[cited]))
    graph = Graph.from_edges(len(ids), edges, name=stats.name)
    graph = graph.with_reverse_edges()
    graph.features = np.stack(rows)
    return graph


#: Environment variable pointing at the persistent synthetic-graph
#: cache; set to ``0``/``off``/empty-string handling below to disable.
DATASET_CACHE_ENV = "REPRO_DATASET_CACHE"

#: Default on-disk location for synthesized graphs (npz per dataset).
DEFAULT_DATASET_CACHE = ".dataset-cache"


def _dataset_cache_dir() -> Path | None:
    value = os.environ.get(DATASET_CACHE_ENV)
    if value is None:
        return Path(DEFAULT_DATASET_CACHE)
    if value.strip().lower() in ("", "0", "off", "none"):
        return None
    return Path(value)


@functools.lru_cache(maxsize=1)
def _generator_fingerprint() -> str:
    """Hash of the generator source: any edit to the synthesis algorithm
    invalidates every cached graph (same contract as the sweep cache's
    code version, scoped to the one module that shapes the graphs)."""
    source = Path(_generators.__file__).read_bytes()
    return hashlib.sha256(source).hexdigest()[:16]


#: Bumped when the on-disk layout changes; old entries become misses.
_CACHE_FORMAT = "v2"

#: Process-wide disk-cache accounting (the in-process ``_synthesize``
#: memo sits above this layer, so each counter moves at most once per
#: dataset per process unless the memo is cleared).
_DISK_CACHE_STATS = {"hits": 0, "misses": 0}


def disk_cache_stats() -> dict[str, int]:
    """Hit/miss counters of the persistent dataset cache (this process)."""
    return dict(_DISK_CACHE_STATS)


def dataset_fingerprint(name: str, data_dir: str | None = None
                        ) -> str | None:
    """Stable content fingerprint of the graph ``load_dataset(name)``
    returns, or ``None`` when it cannot be fingerprinted cheaply.

    Covers everything that shapes the synthetic graph — published
    stats, the per-dataset seed, the on-disk format version, and the
    generator-source hash — so downstream caches (the compiled-program
    store) can key on graph *content* without hashing hundreds of MB of
    features. Returns ``None`` when real Planetoid files would be
    loaded instead of the synthetic equivalent: their content is not
    covered by this fingerprint, so callers must treat the workload as
    uncacheable rather than risk a stale key.
    """
    stats = dataset_stats(name)
    for directory in [data_dir, os.environ.get("REPRO_DATA_DIR"), "data"]:
        if not directory:
            continue
        if (os.path.exists(os.path.join(directory, f"{stats.name}.content"))
                and os.path.exists(
                    os.path.join(directory, f"{stats.name}.cites"))):
            return None
    seed = _DATASET_SEEDS.get(name, 0)
    return (f"{stats.name}|{stats.num_nodes}|{stats.num_edges}|"
            f"{stats.feature_dim}|{stats.feature_density}|"
            f"{stats.degree_exponent}|{seed}|{_CACHE_FORMAT}|"
            f"{_generator_fingerprint()}")


def _dataset_cache_path(stats: DatasetStats, seed: int) -> Path | None:
    root = _dataset_cache_dir()
    if root is None:
        return None
    blob = (f"{stats.name}|{stats.num_nodes}|{stats.num_edges}|"
            f"{stats.feature_dim}|{stats.feature_density}|"
            f"{stats.degree_exponent}|{seed}|{_CACHE_FORMAT}|"
            f"{_generator_fingerprint()}")
    digest = hashlib.sha256(blob.encode()).hexdigest()[:16]
    return root / f"{stats.name}-{digest}.npz"


def _features_path(path: Path) -> Path:
    """The sidecar ``.npy`` holding the feature matrix.

    Features live outside the structure npz so they can be loaded with
    ``mmap_mode`` — ``np.load`` cannot memory-map members of a zip
    archive — and so a load never materialises a second in-memory copy
    of the matrix while the archive is being decoded."""
    return path.with_suffix(".features.npy")


def _dataset_cache_load(path: Path | None, stats: DatasetStats) -> Graph | None:
    """A cached graph, or None; any read or validation error — missing
    sidecar, truncated zip, short-mapped ``.npy``, stat mismatch — is
    treated as a miss and the entry is rewritten by the next store
    (mirroring ``ResultCache.get``'s race-tolerant contract)."""
    if path is None:
        return None
    mmap_mode = "r" if stats.name in LARGE_DATASETS else None
    try:
        features = np.load(_features_path(path), mmap_mode=mmap_mode)
        if features.shape != (stats.num_nodes, stats.feature_dim):
            return None
        with np.load(path) as data:
            graph = Graph(int(data["num_nodes"]), data["src"], data["dst"],
                          features=features, name=stats.name)
    except Exception:
        return None
    if (graph.num_nodes != stats.num_nodes
            or graph.num_edges != stats.num_edges):
        return None
    return graph


def _atomic_write(path: Path, write) -> None:
    """Write via tmp + ``os.replace`` so racing workers never observe a
    half-written file."""
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    try:
        with open(tmp, "wb") as handle:
            write(handle)
        os.replace(tmp, path)
    finally:
        try:
            os.remove(tmp)
        except OSError:
            pass  # already replaced into place


def _dataset_cache_store(path: Path | None, graph: Graph) -> None:
    """Persist the graph: features sidecar first, then the structure npz
    (loads require both, so a crash between the writes reads as a miss,
    never as a torn graph)."""
    if path is None:
        return
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write(_features_path(path),
                      lambda handle: np.save(handle, graph.features))
        _atomic_write(path,
                      lambda handle: np.savez(
                          handle, num_nodes=np.int64(graph.num_nodes),
                          src=graph.src, dst=graph.dst))
    except OSError:
        pass  # caching is best-effort; synthesis already succeeded


@functools.lru_cache(maxsize=None)
def _synthesize(name: str) -> Graph:
    stats = dataset_stats(name)
    seed = _DATASET_SEEDS.get(name, 0)
    cache_path = _dataset_cache_path(stats, seed)
    cached = _dataset_cache_load(cache_path, stats)
    if cached is not None:
        _DISK_CACHE_STATS["hits"] += 1
        return cached
    if cache_path is not None:
        _DISK_CACHE_STATS["misses"] += 1
    if stats.degree_exponent is not None:
        graph = powerlaw_graph(
            num_nodes=stats.num_nodes,
            num_edges=stats.num_edges,
            feature_dim=stats.feature_dim,
            exponent=stats.degree_exponent,
            density=stats.feature_density,
            seed=seed,
            name=stats.name,
        )
    else:
        graph = citation_network(
            num_nodes=stats.num_nodes,
            num_undirected_edges=stats.num_edges,
            feature_dim=stats.feature_dim,
            density=stats.feature_density,
            seed=seed,
            name=stats.name,
        )
    _dataset_cache_store(cache_path, graph)
    return graph


def load_dataset(name: str, data_dir: str | None = None) -> Graph:
    """Load a benchmark graph by name.

    Prefers real Planetoid files under ``data_dir`` (or ``$REPRO_DATA_DIR``
    or ``./data``); falls back to the deterministic synthetic equivalent.
    The synthetic graphs are cached, so repeated loads are cheap — callers
    must not mutate the returned object (copy features first).
    """
    stats = dataset_stats(name)
    candidates = [data_dir, os.environ.get("REPRO_DATA_DIR"), "data"]
    for directory in candidates:
        if not directory:
            continue
        content = os.path.join(directory, f"{stats.name}.content")
        cites = os.path.join(directory, f"{stats.name}.cites")
        if os.path.exists(content) and os.path.exists(cites):
            return _load_planetoid(stats, directory)
    return _synthesize(name)


#: The datasets the paper's Table II actually lists; synthetic smoke
#: extensions like "tiny" stay out of the rendered paper table.
PAPER_DATASETS = ("cora", "citeseer", "pubmed")


def dataset_table() -> list[dict[str, str]]:
    """Render Table II as report rows (paper datasets only)."""
    rows = []
    for stats in (DATASETS[name] for name in PAPER_DATASETS):
        rows.append({
            "Dataset": stats.name.upper(),
            "Vertices": str(stats.num_nodes),
            "Edges": str(stats.num_edges),
            "Feature Dim.": str(stats.feature_dim),
            "Size": f"{stats.feature_megabytes:.1f} MB",
        })
    return rows
