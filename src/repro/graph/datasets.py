"""Benchmark dataset registry (Table II).

Three citation datasets drive the paper's evaluation:

========  ========  =======  ============  =======
Dataset   Vertices  Edges    Feature Dim.  Size
========  ========  =======  ============  =======
CORA      2708      10556    1433          15.6 MB
CITESEER  3327      9104     3703          49 MB
PUBMED    19717     88648    500           40.5 MB
========  ========  =======  ============  =======

("Size" is the fp32 feature matrix; edge counts are directed message
edges of the symmetrised graph, as DGL reports them.)

Real Planetoid files cannot be downloaded here, so :func:`load_dataset`
synthesises deterministic equivalents with exactly these statistics (see
:mod:`repro.graph.generators` and DESIGN.md §3 for why that preserves the
behaviour being measured). If a real Planetoid ``<name>.content`` /
``<name>.cites`` pair is found under ``data_dir`` it is used instead.
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass

import numpy as np

from repro.graph.generators import citation_network
from repro.graph.graph import Graph, GraphError


@dataclass(frozen=True)
class DatasetStats:
    """Published statistics of one benchmark dataset (one Table II row)."""

    name: str
    num_nodes: int
    num_edges: int
    feature_dim: int
    num_classes: int
    #: Bag-of-words density used when synthesising features.
    feature_density: float

    @property
    def feature_megabytes(self) -> float:
        """The Table II "Size" column (fp32 features, MB = 1e6 bytes)."""
        return self.num_nodes * self.feature_dim * 4 / 1e6


DATASETS: dict[str, DatasetStats] = {
    "cora": DatasetStats(
        name="cora", num_nodes=2708, num_edges=10556, feature_dim=1433,
        num_classes=7, feature_density=0.0127),
    "citeseer": DatasetStats(
        name="citeseer", num_nodes=3327, num_edges=9104, feature_dim=3703,
        num_classes=6, feature_density=0.0085),
    "pubmed": DatasetStats(
        name="pubmed", num_nodes=19717, num_edges=88648, feature_dim=500,
        num_classes=3, feature_density=0.10),
    # Not a Table II dataset: a deliberately small citation-style graph
    # for CI smoke runs and design-space-exploration searches, where
    # hundreds of candidate configs must each simulate in milliseconds.
    "tiny": DatasetStats(
        name="tiny", num_nodes=64, num_edges=256, feature_dim=32,
        num_classes=4, feature_density=0.25),
}

#: Seeds fixed per dataset so every run sees the same synthetic graph.
_DATASET_SEEDS = {"cora": 11, "citeseer": 23, "pubmed": 37, "tiny": 53}


def dataset_stats(name: str) -> DatasetStats:
    """Published statistics for ``name`` (KeyError lists known names)."""
    try:
        return DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise GraphError(
            f"unknown dataset {name!r}; known datasets: {known}") from None


@functools.lru_cache(maxsize=None)
def _load_planetoid(stats: DatasetStats, data_dir: str) -> Graph:
    """Parse real Planetoid ``.content`` / ``.cites`` files if present.

    Cached per (dataset, directory) like the synthetic path, so new
    Harness instances — and forked sweep workers pre-warmed by the
    parent — never re-parse the files."""
    content = os.path.join(data_dir, f"{stats.name}.content")
    cites = os.path.join(data_dir, f"{stats.name}.cites")
    ids: list[str] = []
    rows: list[np.ndarray] = []
    with open(content) as handle:
        for line in handle:
            parts = line.strip().split()
            if not parts:
                continue
            ids.append(parts[0])
            rows.append(np.asarray(parts[1:-1], dtype=np.float32))
    index = {paper: i for i, paper in enumerate(ids)}
    edges = []
    with open(cites) as handle:
        for line in handle:
            parts = line.strip().split()
            if len(parts) != 2:
                continue
            cited, citing = parts
            if cited in index and citing in index:
                edges.append((index[citing], index[cited]))
    graph = Graph.from_edges(len(ids), edges, name=stats.name)
    graph = graph.with_reverse_edges()
    graph.features = np.stack(rows)
    return graph


@functools.lru_cache(maxsize=None)
def _synthesize(name: str) -> Graph:
    stats = dataset_stats(name)
    return citation_network(
        num_nodes=stats.num_nodes,
        num_undirected_edges=stats.num_edges,
        feature_dim=stats.feature_dim,
        density=stats.feature_density,
        seed=_DATASET_SEEDS.get(name, 0),
        name=stats.name,
    )


def load_dataset(name: str, data_dir: str | None = None) -> Graph:
    """Load a benchmark graph by name.

    Prefers real Planetoid files under ``data_dir`` (or ``$REPRO_DATA_DIR``
    or ``./data``); falls back to the deterministic synthetic equivalent.
    The synthetic graphs are cached, so repeated loads are cheap — callers
    must not mutate the returned object (copy features first).
    """
    stats = dataset_stats(name)
    candidates = [data_dir, os.environ.get("REPRO_DATA_DIR"), "data"]
    for directory in candidates:
        if not directory:
            continue
        content = os.path.join(directory, f"{stats.name}.content")
        cites = os.path.join(directory, f"{stats.name}.cites")
        if os.path.exists(content) and os.path.exists(cites):
            return _load_planetoid(stats, directory)
    return _synthesize(name)


#: The datasets the paper's Table II actually lists; synthetic smoke
#: extensions like "tiny" stay out of the rendered paper table.
PAPER_DATASETS = ("cora", "citeseer", "pubmed")


def dataset_table() -> list[dict[str, str]]:
    """Render Table II as report rows (paper datasets only)."""
    rows = []
    for stats in (DATASETS[name] for name in PAPER_DATASETS):
        rows.append({
            "Dataset": stats.name.upper(),
            "Vertices": str(stats.num_nodes),
            "Edges": str(stats.num_edges),
            "Feature Dim.": str(stats.feature_dim),
            "Size": f"{stats.feature_megabytes:.1f} MB",
        })
    return rows
