"""Graph container used throughout the framework.

A :class:`Graph` is a directed graph in COO form (parallel ``src``/``dst``
arrays) with optional dense node features. CSR/CSC adjacency views are
built lazily and cached; they are the representations the functional
reference models aggregate with, while the sharder consumes the COO view.

Edges are interpreted as *messages*: an edge ``(u, v)`` means node ``u``'s
feature is aggregated into node ``v``. Citation datasets are undirected in
the GNN literature, so loaders insert both directions explicitly.
"""

from __future__ import annotations

import numpy as np

from repro.config.accelerator import EDGE_BYTES, ELEM_BYTES


class GraphError(ValueError):
    """Raised for malformed graph construction arguments."""


def segment_starts(sorted_keys: np.ndarray) -> np.ndarray:
    """``reduceat`` boundaries of a sorted key array: index 0 plus every
    position where the key changes (empty for empty input). Shared by
    the graph- and shard-level segment views."""
    if not sorted_keys.size:
        return np.empty(0, dtype=np.int64)
    boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
    return np.concatenate([np.zeros(1, dtype=np.int64), boundaries])


class Graph:
    """A directed graph with optional node features.

    Parameters
    ----------
    num_nodes:
        Number of nodes; node ids are ``0 .. num_nodes - 1``.
    src, dst:
        Parallel integer arrays of edge endpoints (messages flow src->dst).
    features:
        Optional ``(num_nodes, feature_dim)`` float32 array.
    name:
        Human-readable dataset name for reports.
    """

    def __init__(self, num_nodes: int, src, dst, features=None,
                 name: str = "graph") -> None:
        if num_nodes < 0:
            raise GraphError("num_nodes cannot be negative")
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.ndim != 1 or dst.ndim != 1:
            raise GraphError("src and dst must be 1-D arrays")
        if src.shape != dst.shape:
            raise GraphError(
                f"src and dst must have equal length, got "
                f"{src.shape[0]} and {dst.shape[0]}")
        if src.size and (src.min() < 0 or src.max() >= num_nodes):
            raise GraphError("src ids out of range")
        if dst.size and (dst.min() < 0 or dst.max() >= num_nodes):
            raise GraphError("dst ids out of range")
        self.num_nodes = int(num_nodes)
        self.src = src
        self.dst = dst
        self.name = name
        self._features: np.ndarray | None = None
        if features is not None:
            self.features = features
        self._csr: tuple[np.ndarray, np.ndarray] | None = None
        self._csc: tuple[np.ndarray, np.ndarray] | None = None
        self._dst_segments: tuple[np.ndarray, np.ndarray,
                                  np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, num_nodes: int, edges, features=None,
                   name: str = "graph") -> "Graph":
        """Build from an iterable of ``(src, dst)`` pairs."""
        edges = list(edges)
        if edges:
            src, dst = zip(*edges)
        else:
            src, dst = [], []
        return cls(num_nodes, np.asarray(src), np.asarray(dst),
                   features=features, name=name)

    # ------------------------------------------------------------------
    # Features
    # ------------------------------------------------------------------
    @property
    def features(self) -> np.ndarray:
        if self._features is None:
            raise GraphError(f"graph {self.name!r} has no node features")
        return self._features

    @features.setter
    def features(self, value) -> None:
        value = np.asarray(value, dtype=np.float32)
        if value.ndim != 2:
            raise GraphError("features must be a 2-D (nodes x dim) array")
        if value.shape[0] != self.num_nodes:
            raise GraphError(
                f"features have {value.shape[0]} rows for "
                f"{self.num_nodes} nodes")
        self._features = value

    @property
    def has_features(self) -> bool:
        return self._features is not None

    @property
    def feature_dim(self) -> int:
        return int(self.features.shape[1])

    @property
    def num_edges(self) -> int:
        return int(self.src.size)

    @property
    def feature_bytes(self) -> int:
        """Size of the feature matrix (the Table II "Size" column)."""
        return self.num_nodes * self.feature_dim * ELEM_BYTES

    @property
    def edge_bytes(self) -> int:
        """Size of the edge list in accelerator memory."""
        return self.num_edges * EDGE_BYTES

    # ------------------------------------------------------------------
    # Adjacency views
    # ------------------------------------------------------------------
    def _build_index(self, keys: np.ndarray,
                     values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        order = np.argsort(keys, kind="stable")
        sorted_values = values[order]
        indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        counts = np.bincount(keys, minlength=self.num_nodes)
        np.cumsum(counts, out=indptr[1:])
        return indptr, sorted_values

    @property
    def csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Out-adjacency ``(indptr, dst_indices)`` indexed by source node."""
        if self._csr is None:
            self._csr = self._build_index(self.src, self.dst)
        return self._csr

    @property
    def csc(self) -> tuple[np.ndarray, np.ndarray]:
        """In-adjacency ``(indptr, src_indices)`` indexed by destination."""
        if self._csc is None:
            self._csc = self._build_index(self.dst, self.src)
        return self._csc

    @property
    def dst_segments(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(order, starts, segment_dst)`` — the destination-segment view
        of the edge list, cached for segment reductions.

        ``order`` is the stable permutation sorting edges by ``dst``;
        ``starts`` are ``reduceat`` boundaries into the sorted arrays;
        ``segment_dst`` holds each segment's destination node. The stable
        sort keeps edges of one destination in original edge order, so
        per-destination accumulation through this view adds values in
        exactly the same sequence a direct edge-order walk would.
        """
        if self._dst_segments is None:
            order = np.argsort(self.dst, kind="stable")
            dst_sorted = self.dst[order]
            starts = segment_starts(dst_sorted)
            self._dst_segments = (order, starts, dst_sorted[starts])
        return self._dst_segments

    def out_degrees(self) -> np.ndarray:
        return np.bincount(self.src, minlength=self.num_nodes)

    def in_degrees(self) -> np.ndarray:
        return np.bincount(self.dst, minlength=self.num_nodes)

    def in_neighbors(self, node: int) -> np.ndarray:
        """Source ids of all edges arriving at ``node``."""
        indptr, indices = self.csc
        return indices[indptr[node]:indptr[node + 1]]

    def out_neighbors(self, node: int) -> np.ndarray:
        """Destination ids of all edges leaving ``node``."""
        indptr, indices = self.csr
        return indices[indptr[node]:indptr[node + 1]]

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_reverse_edges(self) -> "Graph":
        """Return a copy with every edge mirrored (symmetrise).

        Duplicate edges are removed, so applying this twice is idempotent.
        """
        forward = np.stack([self.src, self.dst], axis=1)
        backward = np.stack([self.dst, self.src], axis=1)
        both = np.unique(np.concatenate([forward, backward], axis=0), axis=0)
        return Graph(self.num_nodes, both[:, 0], both[:, 1],
                     features=self._features, name=self.name)

    def with_self_loops(self) -> "Graph":
        """Return a copy with a self loop on every node (deduplicated)."""
        loops = np.arange(self.num_nodes, dtype=np.int64)
        src = np.concatenate([self.src, loops])
        dst = np.concatenate([self.dst, loops])
        stacked = np.unique(np.stack([src, dst], axis=1), axis=0)
        return Graph(self.num_nodes, stacked[:, 0], stacked[:, 1],
                     features=self._features, name=self.name)

    def without_self_loops(self) -> "Graph":
        keep = self.src != self.dst
        return Graph(self.num_nodes, self.src[keep], self.dst[keep],
                     features=self._features, name=self.name)

    def edge_subset(self, mask) -> "Graph":
        """Return a copy keeping only edges where ``mask`` is true."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.src.shape:
            raise GraphError("mask length must equal the number of edges")
        return Graph(self.num_nodes, self.src[mask], self.dst[mask],
                     features=self._features, name=self.name)

    def has_duplicate_edges(self) -> bool:
        stacked = np.stack([self.src, self.dst], axis=1)
        return len(np.unique(stacked, axis=0)) != self.num_edges

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dim = self.feature_dim if self.has_features else 0
        return (f"Graph(name={self.name!r}, nodes={self.num_nodes}, "
                f"edges={self.num_edges}, feature_dim={dim})")
