"""Two-dimensional graph sharding (Sec II-B, Fig 1).

Following GridGraph, node ids are cut into ``S`` contiguous intervals and
the edge list is scattered into an ``S x S`` grid of shards: shard
``(i, j)`` holds every edge whose source lies in interval ``i`` and whose
destination lies in interval ``j``. Processing a shard only requires the
source-interval features, the destination-interval accumulators, and the
shard's edges to be resident on-chip.

The interval width ``n`` is chosen from the Graph Engine's buffer budget
(:func:`plan_interval_size`): with feature blocks of ``B`` dimensions each
node costs ``B * 4`` bytes of scratchpad, so *smaller blocks mean larger
intervals and a smaller grid* — the mechanism behind the paper's
dimension-blocking win (Sec IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config.accelerator import (
    EDGE_BYTES,
    ELEM_BYTES,
    GraphEngineConfig,
)
from repro.graph.graph import Graph, GraphError, segment_starts


@dataclass(frozen=True)
class NodeInterval:
    """A contiguous range of node ids ``[start, stop)``."""

    index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise GraphError(f"bad interval [{self.start}, {self.stop})")

    @property
    def size(self) -> int:
        return self.stop - self.start

    def contains(self, nodes: np.ndarray) -> np.ndarray:
        return (nodes >= self.start) & (nodes < self.stop)


@dataclass
class Shard:
    """One cell of the shard grid: edges from interval ``row`` to ``col``.

    Edges are stored sorted by destination (so segment reductions are
    cheap) and ``edge_ids`` maps each back to its index in the parent
    graph's COO arrays — per-edge aggregation weights are aligned through
    this mapping.
    """

    row: int
    col: int
    src_interval: NodeInterval
    dst_interval: NodeInterval
    #: Global node ids of the shard's edges (sorted by ``dst``).
    src: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    dst: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    #: Indices of these edges in the parent graph's edge arrays.
    edge_ids: np.ndarray = field(
        default_factory=lambda: np.empty(0, np.int64))
    # Lazily computed views, reused across feature blocks and across
    # compiles that share this shard grid (never part of equality).
    _segments: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, init=False, repr=False, compare=False)
    _gpe_loads: dict[int, int] = field(
        default_factory=dict, init=False, repr=False, compare=False)
    _distinct_sources: int | None = field(
        default=None, init=False, repr=False, compare=False)

    @property
    def num_edges(self) -> int:
        return int(self.src.size)

    @property
    def dst_segments(self) -> tuple[np.ndarray, np.ndarray]:
        """``(starts, segment_dst)`` reduceat boundaries of the
        (dst-sorted) edge list — the per-shard index arrays segment
        reductions run over, computed once per shard."""
        if self._segments is None:
            starts = segment_starts(self.dst)
            self._segments = (starts, self.dst[starts])
        return self._segments

    def distinct_sources(self) -> int:
        """Distinct source rows the shard references (sparsity
        elimination's gather size), cached."""
        if self._distinct_sources is None:
            self._distinct_sources = int(np.unique(self.src).size)
        return self._distinct_sources

    @property
    def local_src(self) -> np.ndarray:
        """Source ids relative to the source interval's start."""
        return self.src - self.src_interval.start

    @property
    def local_dst(self) -> np.ndarray:
        """Destination ids relative to the destination interval's start."""
        return self.dst - self.dst_interval.start

    @property
    def edge_bytes(self) -> int:
        return self.num_edges * EDGE_BYTES

    def feature_bytes(self, block: int) -> int:
        """Scratchpad bytes for this shard's source-interval feature block."""
        return self.src_interval.size * block * ELEM_BYTES


class ShardGrid:
    """An ``S x S`` grid of :class:`Shard` over a shared interval partition."""

    def __init__(self, graph: Graph, interval_size: int) -> None:
        if interval_size <= 0:
            raise GraphError("interval_size must be positive")
        self.graph = graph
        self.interval_size = int(interval_size)
        starts = list(range(0, max(graph.num_nodes, 1), self.interval_size))
        self.intervals = [
            NodeInterval(index=i, start=start,
                         stop=min(start + self.interval_size,
                                  graph.num_nodes))
            for i, start in enumerate(starts)
        ]
        self.num_intervals = len(self.intervals)
        self._shards = self._scatter()

    def _scatter(self) -> dict[tuple[int, int], Shard]:
        src_bin = self.graph.src // self.interval_size
        dst_bin = self.graph.dst // self.interval_size
        # Sort by (shard row, shard col, destination) in one pass; the
        # within-shard dst order makes segment reductions cheap downstream.
        order = np.lexsort((self.graph.dst, dst_bin, src_bin))
        src_sorted = self.graph.src[order]
        dst_sorted = self.graph.dst[order]
        keys = src_bin[order] * self.num_intervals + dst_bin[order]
        shards: dict[tuple[int, int], Shard] = {}
        boundaries = np.flatnonzero(np.diff(keys)) + 1
        segments = np.split(np.arange(keys.size), boundaries)
        for segment in segments:
            if segment.size == 0:
                continue
            key = int(keys[segment[0]])
            row, col = divmod(key, self.num_intervals)
            shards[(row, col)] = Shard(
                row=row, col=col,
                src_interval=self.intervals[row],
                dst_interval=self.intervals[col],
                src=src_sorted[segment],
                dst=dst_sorted[segment],
                edge_ids=order[segment])
        return shards

    # ------------------------------------------------------------------
    @property
    def grid_side(self) -> int:
        """``S``, the width/height of the (square) shard grid."""
        return self.num_intervals

    def shard(self, row: int, col: int) -> Shard:
        """The shard at ``(row, col)`` — empty cells return an empty Shard."""
        if not (0 <= row < self.num_intervals
                and 0 <= col < self.num_intervals):
            raise GraphError(f"shard ({row}, {col}) outside "
                             f"{self.num_intervals}x{self.num_intervals} grid")
        existing = self._shards.get((row, col))
        if existing is not None:
            return existing
        return Shard(row=row, col=col,
                     src_interval=self.intervals[row],
                     dst_interval=self.intervals[col])

    def nonempty_shards(self) -> list[Shard]:
        """All shards holding at least one edge, in (row, col) order."""
        return [self._shards[key] for key in sorted(self._shards)]

    @property
    def num_edges(self) -> int:
        return sum(s.num_edges for s in self._shards.values())

    @property
    def max_shard_edges(self) -> int:
        if not self._shards:
            return 0
        return max(s.num_edges for s in self._shards.values())

    def validate(self) -> None:
        """Check the partition invariants; raises GraphError on violation.

        * every edge lands in exactly one shard (counts match and each
          shard's edges respect its interval bounds);
        * intervals tile ``[0, num_nodes)`` without gaps or overlap.
        """
        if self.num_edges != self.graph.num_edges:
            raise GraphError(
                f"shards hold {self.num_edges} edges but the graph has "
                f"{self.graph.num_edges}")
        cursor = 0
        for interval in self.intervals:
            if interval.start != cursor:
                raise GraphError("intervals do not tile the node range")
            cursor = interval.stop
        if self.graph.num_nodes and cursor != self.graph.num_nodes:
            raise GraphError("intervals do not cover all nodes")
        for shard in self._shards.values():
            if not shard.src_interval.contains(shard.src).all():
                raise GraphError(
                    f"shard {(shard.row, shard.col)} has out-of-interval "
                    f"sources")
            if not shard.dst_interval.contains(shard.dst).all():
                raise GraphError(
                    f"shard {(shard.row, shard.col)} has out-of-interval "
                    f"destinations")


def plan_interval_size(config: GraphEngineConfig, block: int) -> int:
    """Nodes per interval that fit the double-buffered scratchpads.

    With ``block`` feature dimensions on-chip per node, an interval of
    ``n`` nodes needs ``n * block * 4`` bytes in the source-feature buffer
    and the same in the destination-accumulator buffer; the binding
    constraint is the smaller buffer. This is the lever dimension-blocking
    pulls: halving ``block`` doubles ``n`` and shrinks the grid side
    ``S = ceil(V / n)``.
    """
    if block <= 0:
        raise GraphError("block must be positive")
    per_node = block * ELEM_BYTES
    src_cap = config.usable_src_bytes // per_node
    dst_cap = config.usable_dst_bytes // per_node
    capacity = min(src_cap, dst_cap)
    if capacity == 0:
        raise GraphError(
            f"a {block}-dimension feature block does not fit even one node "
            f"in the Graph Engine scratchpads")
    return int(capacity)


#: Grids kept per graph by :func:`plan_shards`; bounds worst-case memory
#: when a DSE search walks many scratchpad geometries over one graph.
_GRID_CACHE_MAX_ENTRIES = 8


def plan_shards(graph: Graph, config: GraphEngineConfig,
                block: int) -> ShardGrid:
    """Build the shard grid for ``graph`` under a feature block of ``block``.

    Starts from the buffer-capacity interval size and halves it until
    every shard's edge list also fits the (double-buffered) edge buffer.

    Grids are memoized on the graph object, keyed by exactly the config
    inputs the geometry depends on — the usable buffer budgets and the
    block size — so every compile of the same workload shape reuses the
    scatter, the per-shard segment boundaries, and the GPE load
    statistics. DSE candidates that vary only compute knobs (GPE count,
    SIMD width, frequency, dense-engine shape) share one grid; the
    per-shard GPE-load cache is itself keyed by GPE count, so sharing
    a grid across those candidates stays sound.
    """
    cache: dict = getattr(graph, "_shard_grid_cache", None)
    if cache is None:
        cache = {}
        graph._shard_grid_cache = cache
    key = (config.usable_src_bytes, config.usable_dst_bytes,
           config.usable_edge_bytes, block)
    cached = cache.get(key)
    if cached is not None:
        return cached
    interval = min(plan_interval_size(config, block),
                   max(graph.num_nodes, 1))
    edge_capacity = config.usable_edge_bytes // EDGE_BYTES
    while True:
        grid = ShardGrid(graph, interval)
        if grid.max_shard_edges <= edge_capacity or interval == 1:
            if len(cache) >= _GRID_CACHE_MAX_ENTRIES:
                cache.pop(next(iter(cache)))
            cache[key] = grid
            return grid
        interval = max(interval // 2, 1)
