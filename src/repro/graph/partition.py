"""Two-dimensional graph sharding (Sec II-B, Fig 1).

Following GridGraph, node ids are cut into ``S`` contiguous intervals and
the edge list is scattered into an ``S x S`` grid of shards: shard
``(i, j)`` holds every edge whose source lies in interval ``i`` and whose
destination lies in interval ``j``. Processing a shard only requires the
source-interval features, the destination-interval accumulators, and the
shard's edges to be resident on-chip.

The interval width ``n`` is chosen from the Graph Engine's buffer budget
(:func:`plan_interval_size`): with feature blocks of ``B`` dimensions each
node costs ``B * 4`` bytes of scratchpad, so *smaller blocks mean larger
intervals and a smaller grid* — the mechanism behind the paper's
dimension-blocking win (Sec IV-B).
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field

import numpy as np

from repro.config.accelerator import (
    EDGE_BYTES,
    ELEM_BYTES,
    GraphEngineConfig,
)
from repro.graph.graph import Graph, GraphError, segment_starts


@dataclass(frozen=True)
class NodeInterval:
    """A contiguous range of node ids ``[start, stop)``."""

    index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise GraphError(f"bad interval [{self.start}, {self.stop})")

    @property
    def size(self) -> int:
        return self.stop - self.start

    def contains(self, nodes: np.ndarray) -> np.ndarray:
        return (nodes >= self.start) & (nodes < self.stop)


@dataclass
class Shard:
    """One cell of the shard grid: edges from interval ``row`` to ``col``.

    Edges are stored sorted by destination (so segment reductions are
    cheap) and ``edge_ids`` maps each back to its index in the parent
    graph's COO arrays — per-edge aggregation weights are aligned through
    this mapping.
    """

    row: int
    col: int
    src_interval: NodeInterval
    dst_interval: NodeInterval
    #: Global node ids of the shard's edges (sorted by ``dst``).
    src: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    dst: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    #: Indices of these edges in the parent graph's edge arrays.
    edge_ids: np.ndarray = field(
        default_factory=lambda: np.empty(0, np.int64))
    # Lazily computed views, reused across feature blocks and across
    # compiles that share this shard grid (never part of equality).
    _segments: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, init=False, repr=False, compare=False)
    _gpe_loads: dict[int, int] = field(
        default_factory=dict, init=False, repr=False, compare=False)
    _distinct_sources: int | None = field(
        default=None, init=False, repr=False, compare=False)

    @property
    def num_edges(self) -> int:
        return int(self.src.size)

    @property
    def dst_segments(self) -> tuple[np.ndarray, np.ndarray]:
        """``(starts, segment_dst)`` reduceat boundaries of the
        (dst-sorted) edge list — the per-shard index arrays segment
        reductions run over, computed once per shard."""
        if self._segments is None:
            starts = segment_starts(self.dst)
            self._segments = (starts, self.dst[starts])
        return self._segments

    def distinct_sources(self) -> int:
        """Distinct source rows the shard references (sparsity
        elimination's gather size), cached."""
        if self._distinct_sources is None:
            self._distinct_sources = int(np.unique(self.src).size)
        return self._distinct_sources

    @property
    def local_src(self) -> np.ndarray:
        """Source ids relative to the source interval's start."""
        return self.src - self.src_interval.start

    @property
    def local_dst(self) -> np.ndarray:
        """Destination ids relative to the destination interval's start."""
        return self.dst - self.dst_interval.start

    @property
    def edge_bytes(self) -> int:
        return self.num_edges * EDGE_BYTES

    def feature_bytes(self, block: int) -> int:
        """Scratchpad bytes for this shard's source-interval feature block."""
        return self.src_interval.size * block * ELEM_BYTES


def shard_sort_order(src: np.ndarray, dst: np.ndarray,
                     interval_size: int, num_intervals: int) -> np.ndarray:
    """The stable permutation sorting edges by (row, col, dst).

    Semantically this is ``np.lexsort((dst, dst // n, src // n))`` — the
    order every shard golden depends on — but for graphs where the
    composite key fits an int64 it is computed as a single stable
    argsort over ``(row * S + col) * N + dst``, which is substantially
    faster on multi-million-edge lists. Both forms are stable sorts over
    the same key equivalence classes, so the permutations are identical.
    """
    src_bin = src // interval_size
    dst_bin = dst // interval_size
    num_nodes_bound = max(int(dst.max()) + 1 if dst.size else 1, 1)
    if (num_intervals * num_intervals * num_nodes_bound) < 2 ** 62:
        key = (src_bin * num_intervals + dst_bin) * num_nodes_bound + dst
        return np.argsort(key, kind="stable")
    return np.lexsort((dst, dst_bin, src_bin))


class ShardGrid:
    """An ``S x S`` grid of :class:`Shard` over a shared interval partition.

    The grid is *streaming*: ``_scatter`` keeps exactly one sorted copy
    of the edge arrays (the shared CSR-like view) plus a table of
    ``(start, stop)`` offsets per non-empty cell. :meth:`shard` hands out
    :class:`Shard` objects whose ``src``/``dst``/``edge_ids`` are slice
    *views* into the shared arrays — building a shard is O(1) and peak
    memory is O(|E|) for the whole grid instead of O(|E|) *per copy* of
    the old fully materialized shard list. Cell contents and ordering
    are bit-identical to the old per-shard copies.
    """

    def __init__(self, graph: Graph, interval_size: int) -> None:
        if interval_size <= 0:
            raise GraphError("interval_size must be positive")
        self.graph = graph
        self.interval_size = int(interval_size)
        starts = list(range(0, max(graph.num_nodes, 1), self.interval_size))
        self.intervals = [
            NodeInterval(index=i, start=start,
                         stop=min(start + self.interval_size,
                                  graph.num_nodes))
            for i, start in enumerate(starts)
        ]
        self.num_intervals = len(self.intervals)
        self._scatter()
        #: Lazily materialized Shard views, keyed by (row, col); only
        #: non-empty cells are cached (empty cells are throwaway).
        self._shard_views: dict[tuple[int, int], Shard] = {}

    def _scatter(self) -> None:
        # Sort by (shard row, shard col, destination) in one pass; the
        # within-shard dst order makes segment reductions cheap downstream.
        order = shard_sort_order(self.graph.src, self.graph.dst,
                                 self.interval_size, self.num_intervals)
        self._order = order
        self._src_sorted = self.graph.src[order]
        self._dst_sorted = self.graph.dst[order]
        keys_sorted = ((self._src_sorted // self.interval_size)
                       * self.num_intervals
                       + self._dst_sorted // self.interval_size)
        starts = segment_starts(keys_sorted)
        stops = np.append(starts[1:], keys_sorted.size)
        self._bounds: dict[int, tuple[int, int]] = {
            int(keys_sorted[start]): (int(start), int(stop))
            for start, stop in zip(starts, stops)
        }

    # -- pickling ------------------------------------------------------
    # A grid is a pure function of (graph, interval_size); what makes
    # rebuilding expensive is the O(|E| log |E|) sort hiding in
    # ``_scatter``. Serialisation therefore keeps exactly the sort's
    # outputs — the permutation and the per-cell offsets — and
    # recomputes everything derivable by a cheap O(|E|) gather on load.
    # The parent graph rides along *by reference*: the program store's
    # pickler persists it as a dataset id (never its feature matrix),
    # and the unpickler reattaches the loading process's graph object.
    def __getstate__(self) -> dict:
        return {"graph": self.graph,
                "interval_size": self.interval_size,
                "_order": self._order,
                "_bounds": self._bounds}

    #: Attributes rebuilt from (graph, _order) after unpickling.
    _DERIVED = ("intervals", "num_intervals",
                "_src_sorted", "_dst_sorted", "_shard_views")

    def __setstate__(self, state: dict) -> None:
        # Stash the persisted fields only. The derived state cannot be
        # rebuilt here: when the graph itself is being unpickled and
        # its ``_shard_grid_cache`` references this grid back (a
        # reference cycle), pickle invokes ``__setstate__`` while
        # ``state["graph"]`` is still an empty shell whose own state
        # has not been applied yet. ``__getattr__`` finishes the job
        # on first access, by which point the graph is whole.
        self.__dict__.update(state)

    def __getattr__(self, name: str):
        if name in ShardGrid._DERIVED and "_order" in self.__dict__:
            self._rebuild_derived()
            return self.__dict__[name]
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}")

    def _rebuild_derived(self) -> None:
        """O(|E|) gather restoring everything ``__getstate__`` dropped."""
        graph = self.graph
        starts = list(range(0, max(graph.num_nodes, 1),
                            self.interval_size))
        self.intervals = [
            NodeInterval(index=i, start=start,
                         stop=min(start + self.interval_size,
                                  graph.num_nodes))
            for i, start in enumerate(starts)
        ]
        self.num_intervals = len(self.intervals)
        self._src_sorted = graph.src[self._order]
        self._dst_sorted = graph.dst[self._order]
        self._shard_views = {}

    # ------------------------------------------------------------------
    @property
    def grid_side(self) -> int:
        """``S``, the width/height of the (square) shard grid."""
        return self.num_intervals

    def shard(self, row: int, col: int) -> Shard:
        """The shard at ``(row, col)`` — empty cells return an empty Shard."""
        if not (0 <= row < self.num_intervals
                and 0 <= col < self.num_intervals):
            raise GraphError(f"shard ({row}, {col}) outside "
                             f"{self.num_intervals}x{self.num_intervals} grid")
        existing = self._shard_views.get((row, col))
        if existing is not None:
            return existing
        bounds = self._bounds.get(row * self.num_intervals + col)
        if bounds is None:
            return Shard(row=row, col=col,
                         src_interval=self.intervals[row],
                         dst_interval=self.intervals[col])
        start, stop = bounds
        shard = Shard(row=row, col=col,
                      src_interval=self.intervals[row],
                      dst_interval=self.intervals[col],
                      src=self._src_sorted[start:stop],
                      dst=self._dst_sorted[start:stop],
                      edge_ids=self._order[start:stop])
        self._shard_views[(row, col)] = shard
        return shard

    def iter_shards(self):
        """Stream the non-empty shards in (row, col) order.

        Each shard is a lightweight view materialized on demand, so
        iterating never holds more than the shared sorted arrays plus
        the shards the caller keeps alive."""
        for key in sorted(self._bounds):
            yield self.shard(*divmod(key, self.num_intervals))

    def nonempty_shards(self) -> list[Shard]:
        """All shards holding at least one edge, in (row, col) order."""
        return list(self.iter_shards())

    @property
    def num_edges(self) -> int:
        return sum(stop - start for start, stop in self._bounds.values())

    @property
    def max_shard_edges(self) -> int:
        if not self._bounds:
            return 0
        return max(stop - start for start, stop in self._bounds.values())

    def validate(self) -> None:
        """Check the partition invariants; raises GraphError on violation.

        * every edge lands in exactly one shard (counts match and each
          shard's edges respect its interval bounds);
        * intervals tile ``[0, num_nodes)`` without gaps or overlap.
        """
        if self.num_edges != self.graph.num_edges:
            raise GraphError(
                f"shards hold {self.num_edges} edges but the graph has "
                f"{self.graph.num_edges}")
        cursor = 0
        for interval in self.intervals:
            if interval.start != cursor:
                raise GraphError("intervals do not tile the node range")
            cursor = interval.stop
        if self.graph.num_nodes and cursor != self.graph.num_nodes:
            raise GraphError("intervals do not cover all nodes")
        for shard in self.iter_shards():
            if not shard.src_interval.contains(shard.src).all():
                raise GraphError(
                    f"shard {(shard.row, shard.col)} has out-of-interval "
                    f"sources")
            if not shard.dst_interval.contains(shard.dst).all():
                raise GraphError(
                    f"shard {(shard.row, shard.col)} has out-of-interval "
                    f"destinations")


def plan_interval_size(config: GraphEngineConfig, block: int) -> int:
    """Nodes per interval that fit the double-buffered scratchpads.

    With ``block`` feature dimensions on-chip per node, an interval of
    ``n`` nodes needs ``n * block * 4`` bytes in the source-feature buffer
    and the same in the destination-accumulator buffer; the binding
    constraint is the smaller buffer. This is the lever dimension-blocking
    pulls: halving ``block`` doubles ``n`` and shrinks the grid side
    ``S = ceil(V / n)``.
    """
    if block <= 0:
        raise GraphError("block must be positive")
    per_node = block * ELEM_BYTES
    src_cap = config.usable_src_bytes // per_node
    dst_cap = config.usable_dst_bytes // per_node
    capacity = min(src_cap, dst_cap)
    if capacity == 0:
        raise GraphError(
            f"a {block}-dimension feature block does not fit even one node "
            f"in the Graph Engine scratchpads")
    return int(capacity)


#: Grid-cache entries kept per graph by :func:`plan_shards` (each grid
#: occupies up to two slots: its interval key plus a block-key alias);
#: bounds worst-case memory when a DSE search walks many scratchpad
#: geometries over one graph.
_GRID_CACHE_MAX_ENTRIES = 16

#: Guards lazy creation of each graph's grid lock — the only
#: cross-graph state here; the per-graph lock itself serializes grid
#: building so concurrent compiles of one graph (the serve daemon's
#: request threads) build each grid once. Locks live in a side table
#: (not on the graph): graphs ride inside pickled grids, and a
#: ``threading.Lock`` attribute would make them unpicklable.
_GRID_LOCKS_GUARD = threading.Lock()
_GRID_LOCKS: "weakref.WeakKeyDictionary[Graph, threading.Lock]" = (
    weakref.WeakKeyDictionary())


def _graph_grid_lock(graph: Graph) -> threading.Lock:
    lock = _GRID_LOCKS.get(graph)
    if lock is None:
        with _GRID_LOCKS_GUARD:
            lock = _GRID_LOCKS.setdefault(graph, threading.Lock())
    return lock


def plan_shards(graph: Graph, config: GraphEngineConfig,
                block: int) -> ShardGrid:
    """Build the shard grid for ``graph`` under a feature block of ``block``.

    Starts from the buffer-capacity interval size and halves it until
    every shard's edge list also fits the (double-buffered) edge buffer.

    Grids are memoized on the graph object, keyed by exactly the config
    inputs the geometry depends on — the usable buffer budgets and the
    block size — so every compile of the same workload shape reuses the
    scatter, the per-shard segment boundaries, and the GPE load
    statistics. DSE candidates that vary only compute knobs (GPE count,
    SIMD width, frequency, dense-engine shape) share one grid; the
    per-shard GPE-load cache is itself keyed by GPE count, so sharing
    a grid across those candidates stays sound.

    Holds the graph's grid lock for the whole plan: concurrent
    compiles of the same graph (serve daemon request threads) get one
    grid build and identical grid *objects* — two structurally equal
    grids would defeat every identity-keyed per-shard cache downstream.
    """
    with _graph_grid_lock(graph):
        cache: dict = getattr(graph, "_shard_grid_cache", None)
        if cache is None:
            cache = {}
            graph._shard_grid_cache = cache
        key = (config.usable_src_bytes, config.usable_dst_bytes,
               config.usable_edge_bytes, block)
        cached = cache.get(key)
        if cached is not None:
            return cached
        interval = min(plan_interval_size(config, block),
                       max(graph.num_nodes, 1))
        edge_capacity = config.usable_edge_bytes // EDGE_BYTES
        # Probe candidate interval sizes with an O(|E|) per-cell edge
        # count instead of building (and sorting) a full grid per
        # candidate — the accepted interval is exactly the one the old
        # build-and-check loop chose, the grid is just constructed
        # once, at the end. Probe results are memoized per graph: a
        # multi-layer model (or a DSE sweep walking buffer budgets)
        # re-asks about the same candidate intervals, and the answer
        # is a pure function of (graph, interval).
        probes: dict = getattr(graph, "_cell_edge_cache", None)
        if probes is None:
            probes = {}
            graph._cell_edge_cache = probes
        while interval > 1:
            cells = probes.get(interval)
            if cells is None:
                cells = probes[interval] = _max_cell_edges(graph,
                                                           interval)
            if cells <= edge_capacity:
                break
            interval = max(interval // 2, 1)
        # A grid depends only on (graph, interval): different feature
        # blocks that resolve to the same interval — e.g. a wide input
        # layer halved down to the interval a narrow hidden layer gets
        # from capacity alone — share one scatter. The per-shard
        # caches (segment boundaries, GPE loads) are block-independent,
        # so the sharing is sound.
        interval_key = ("interval", interval)
        grid = cache.get(interval_key)
        if grid is None:
            grid = ShardGrid(graph, interval)
            if len(cache) >= _GRID_CACHE_MAX_ENTRIES:
                cache.pop(next(iter(cache)))
            cache[interval_key] = grid
        if len(cache) >= _GRID_CACHE_MAX_ENTRIES:
            cache.pop(next(iter(cache)))
        cache[key] = grid
        return grid


def _max_cell_edges(graph: Graph, interval: int) -> int:
    """Edge count of the fullest grid cell at this interval size."""
    if graph.num_edges == 0:
        return 0
    num_intervals = -(-max(graph.num_nodes, 1) // interval)
    keys = (graph.src // interval) * num_intervals + (graph.dst // interval)
    _, counts = np.unique(keys, return_counts=True)
    return int(counts.max())
