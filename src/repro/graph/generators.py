"""Deterministic synthetic graph generators.

No network access is available in this environment, so the Planetoid
citation graphs (Cora, Citeseer, Pubmed) are replaced by synthetic
equivalents with the *published* statistics of Table II. The performance
of every platform modelled in this repository depends on |V|, |E|, the
feature dimension, and the locality/degree structure of the edge list —
all of which the generator reproduces:

* citation networks have heavy-tailed in-degree -> we grow the graph by
  seeded preferential attachment, then symmetrise (Planetoid graphs are
  used undirected);
* features are sparse bag-of-words -> we generate sparse 0/1 rows with a
  configurable density.

All generators take an explicit ``seed`` and are deterministic for a given
(seed, parameters) pair.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph, GraphError


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence(seed))


def preferential_attachment_edges(num_nodes: int, num_edges: int,
                                  seed: int = 0) -> np.ndarray:
    """Grow a citation-style edge list by preferential attachment.

    Nodes arrive one at a time and cite ``m ~ num_edges/num_nodes``
    earlier papers, chosen proportionally to their current degree (with
    one unit of smoothing so isolated papers can still be cited). Returns
    a ``(num_edges, 2)`` array of directed ``(citing, cited)`` pairs with
    no duplicates and no self loops.

    The RNG call sequence is load-bearing: every dataset golden depends
    on the exact graph this produces, so the per-node ``rng.choice``
    draws must stay exactly as they are. Everything around them (degree
    bookkeeping, edge collection, the final sort) is vectorized, since
    duplicate tracking only matters in the top-up phase — the main loop
    can never produce the same ``(citing, cited)`` pair twice.
    """
    if num_nodes < 2:
        raise GraphError("need at least two nodes")
    if num_edges < 0:
        raise GraphError("num_edges cannot be negative")
    max_edges = num_nodes * (num_nodes - 1) // 2
    if num_edges > max_edges:
        raise GraphError(
            f"{num_edges} edges do not fit in a simple graph "
            f"on {num_nodes} nodes")
    rng = _rng(seed)

    degree = np.ones(num_nodes, dtype=np.float64)  # +1 smoothing
    # Average citations per arriving paper; remainder distributed randomly.
    quota = np.full(num_nodes, num_edges // max(num_nodes - 1, 1),
                    dtype=np.int64)
    remainder = num_edges - int(quota[1:].sum())
    if remainder > 0:
        extra = rng.choice(np.arange(1, num_nodes), size=remainder,
                           replace=True)
        np.add.at(quota, extra, 1)
    quota[0] = 0

    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    grown = 0
    for node in range(1, num_nodes):
        cites = min(int(quota[node]), node)
        if cites == 0:
            continue
        weights = degree[:node]
        probability = weights / weights.sum()
        targets = rng.choice(node, size=cites, replace=False, p=probability)
        # Targets are distinct (replace=False) and each iteration has a
        # fresh ``node``, so these batched updates match the old
        # one-edge-at-a-time bookkeeping exactly.
        degree[node] += float(cites)
        degree[targets] += 1.0
        src_parts.append(np.full(cites, node, dtype=np.int64))
        dst_parts.append(targets.astype(np.int64, copy=False))
        grown += cites

    src = (np.concatenate(src_parts) if src_parts
           else np.empty(0, dtype=np.int64))
    dst = (np.concatenate(dst_parts) if dst_parts
           else np.empty(0, dtype=np.int64))

    # Preferential choice without replacement can fall short when a node's
    # quota exceeded its candidates; top up with random non-duplicates.
    if grown < num_edges:
        edges = set(zip(src.tolist(), dst.tolist()))
        extra_src: list[int] = []
        extra_dst: list[int] = []
        while len(edges) < num_edges:
            u = int(rng.integers(1, num_nodes))
            v = int(rng.integers(0, u))
            if (u, v) not in edges:
                edges.add((u, v))
                degree[u] += 1.0
                degree[v] += 1.0
                extra_src.append(u)
                extra_dst.append(v)
        src = np.concatenate([src, np.asarray(extra_src, dtype=np.int64)])
        dst = np.concatenate([dst, np.asarray(extra_dst, dtype=np.int64)])

    # Same order the old sorted-set assembly produced: lexicographic by
    # (citing, cited).
    order = np.lexsort((dst, src))
    result = np.stack([src[order], dst[order]], axis=1)
    return result[:num_edges]


def sparse_binary_features(num_nodes: int, feature_dim: int,
                           density: float = 0.0127,
                           seed: int = 0) -> np.ndarray:
    """Sparse bag-of-words rows: each entry is 1 with probability ``density``.

    The default density matches Cora's published word-per-document rate
    (~18 words out of 1433). Rows are guaranteed non-empty so degree
    normalisation never divides a zero vector.
    """
    if not 0.0 < density <= 1.0:
        raise GraphError("density must be in (0, 1]")
    rng = _rng(seed + 1)
    features = (rng.random((num_nodes, feature_dim)) < density)
    features = features.astype(np.float32)
    empty = features.sum(axis=1) == 0
    if empty.any():
        cols = rng.integers(0, feature_dim, size=int(empty.sum()))
        features[np.flatnonzero(empty), cols] = 1.0
    return features


def citation_network(num_nodes: int, num_undirected_edges: int,
                     feature_dim: int, density: float = 0.0127,
                     seed: int = 0, name: str = "citation") -> Graph:
    """A synthetic Planetoid-style citation network.

    ``num_undirected_edges`` counts *directed* message edges after
    symmetrisation, matching how Table II (and DGL) count Planetoid edges;
    it must therefore be even.
    """
    if num_undirected_edges % 2 != 0:
        raise GraphError(
            "edge count is directed-after-symmetrisation and must be even")
    base = preferential_attachment_edges(
        num_nodes, num_undirected_edges // 2, seed=seed)
    graph = Graph(num_nodes, base[:, 0], base[:, 1], name=name)
    graph = graph.with_reverse_edges()
    graph.features = sparse_binary_features(
        num_nodes, feature_dim, density=density, seed=seed)
    return graph


#: Edges drawn per chunk by :func:`powerlaw_graph`. The chunk size is
#: part of the drawing procedure (each chunk owns a child RNG seeded by
#: its index), so the generated graph is a pure function of
#: ``(seed, parameters, POWERLAW_CHUNK_EDGES)`` — a host may process
#: chunks one at a time or all at once and always get the same edges.
#: Changing this constant changes every power-law dataset (the on-disk
#: cache fingerprint covers it, since it hashes this module's source).
POWERLAW_CHUNK_EDGES = 1 << 20

#: Node rows synthesised per chunk by :func:`chunked_binary_features`;
#: bounds the float64 uniform temporary to ~chunk x dim x 8 bytes.
FEATURE_CHUNK_ROWS = 8192


def _chunk_rng(seed: int, chunk: int) -> np.random.Generator:
    """Deterministic per-chunk RNG: independent of how many chunks the
    caller draws and of any draws made for other chunks."""
    return np.random.default_rng(np.random.SeedSequence([seed, chunk]))


#: Zipf head smoothing: rank *r* carries weight ``(r + OFFSET)^-a``.
#: A pure Zipf head (OFFSET=0) would hand rank 1 over 10% of all edges
#: — far beyond any crawled graph — while 128 lands the maximum
#: in-degree near the published hubs (reddit ~20k, flickr ~2-5k) and
#: keeps a clean power-law tail.
POWERLAW_HEAD_OFFSET = 128


def _powerlaw_cdf(num_nodes: int, exponent: float,
                  rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """``(cdf, permutation)`` for Zipf-like node sampling.

    Node *ranks* carry weight ``(rank + POWERLAW_HEAD_OFFSET) **
    -exponent``; a seeded permutation scatters the heavy ranks across
    the id space so no single node interval concentrates the whole tail
    (which would force the shard planner into tiny intervals)."""
    ranks = np.arange(1, num_nodes + 1, dtype=np.float64)
    weights = (ranks + POWERLAW_HEAD_OFFSET) ** -exponent
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    permutation = rng.permutation(num_nodes)
    return cdf, permutation


def powerlaw_graph(num_nodes: int, num_edges: int, feature_dim: int,
                   exponent: float = 1.1, density: float = 0.05,
                   seed: int = 0, name: str = "powerlaw") -> Graph:
    """A large synthetic graph with heavy-tailed in/out degrees.

    Built for the million-edge workloads (flickr / reddit-s scale),
    where :func:`preferential_attachment_edges`'s node-at-a-time growth
    loop is unusable: edges are drawn in fixed-size chunks
    (:data:`POWERLAW_CHUNK_EDGES`), each chunk fully vectorized from its
    own child RNG, so synthesis is O(|E|) with O(chunk) temporaries.

    Destinations follow a Zipf-like law with the given ``exponent``
    (the in-degree tail); sources use ``exponent / 2`` (a milder
    out-degree tail), each through an independent seeded permutation.
    The result is a directed *multigraph* — duplicate edges are kept,
    exactly as repeated interactions appear in the crawled datasets
    these stand in for — and self loops are redirected to the next node
    id so every drawn pair stays a real message edge.
    """
    if num_nodes < 2:
        raise GraphError("need at least two nodes")
    if num_edges < 0:
        raise GraphError("num_edges cannot be negative")
    setup = _rng(seed)
    dst_cdf, dst_perm = _powerlaw_cdf(num_nodes, exponent, setup)
    src_cdf, src_perm = _powerlaw_cdf(num_nodes, exponent / 2.0, setup)
    src = np.empty(num_edges, dtype=np.int64)
    dst = np.empty(num_edges, dtype=np.int64)
    for chunk, start in enumerate(range(0, num_edges,
                                        POWERLAW_CHUNK_EDGES)):
        stop = min(start + POWERLAW_CHUNK_EDGES, num_edges)
        rng = _chunk_rng(seed, chunk)
        draw = stop - start
        chunk_src = src_perm[np.searchsorted(src_cdf,
                                             rng.random(draw))]
        chunk_dst = dst_perm[np.searchsorted(dst_cdf,
                                             rng.random(draw))]
        loops = chunk_src == chunk_dst
        if loops.any():
            chunk_dst[loops] = (chunk_dst[loops] + 1) % num_nodes
        src[start:stop] = chunk_src
        dst[start:stop] = chunk_dst
    graph = Graph(num_nodes, src, dst, name=name)
    graph.features = chunked_binary_features(num_nodes, feature_dim,
                                             density=density, seed=seed)
    return graph


def chunked_binary_features(num_nodes: int, feature_dim: int,
                            density: float = 0.05,
                            seed: int = 0) -> np.ndarray:
    """Sparse bag-of-words rows, synthesised chunk-by-chunk.

    Same distribution as :func:`sparse_binary_features` but written
    directly into one preallocated float32 matrix in row chunks of
    :data:`FEATURE_CHUNK_ROWS`, so peak temporary memory is one chunk's
    float64 uniforms instead of a second full-size matrix. Each chunk
    draws from its own child RNG, so the matrix does not depend on how
    a host schedules the chunks (it *is* a different RNG sequence than
    the legacy generator — only new datasets use this path).
    """
    if not 0.0 < density <= 1.0:
        raise GraphError("density must be in (0, 1]")
    features = np.empty((num_nodes, feature_dim), dtype=np.float32)
    for chunk, start in enumerate(range(0, num_nodes, FEATURE_CHUNK_ROWS)):
        stop = min(start + FEATURE_CHUNK_ROWS, num_nodes)
        rng = _chunk_rng(seed + 1, chunk)
        block = rng.random((stop - start, feature_dim)) < density
        view = features[start:stop]
        np.copyto(view, block, casting="unsafe")
        empty = view.sum(axis=1) == 0
        if empty.any():
            cols = rng.integers(0, feature_dim, size=int(empty.sum()))
            view[np.flatnonzero(empty), cols] = 1.0
    return features


def erdos_renyi(num_nodes: int, num_edges: int, feature_dim: int = 8,
                seed: int = 0, name: str = "er") -> Graph:
    """A uniform random directed graph (no self loops), for tests."""
    if num_edges > num_nodes * (num_nodes - 1):
        raise GraphError("too many edges for a simple directed graph")
    rng = _rng(seed)
    edges: set[tuple[int, int]] = set()
    while len(edges) < num_edges:
        u = int(rng.integers(0, num_nodes))
        v = int(rng.integers(0, num_nodes))
        if u != v:
            edges.add((u, v))
    array = np.array(sorted(edges), dtype=np.int64)
    if array.size == 0:
        array = array.reshape(0, 2)
    graph = Graph(num_nodes, array[:, 0], array[:, 1], name=name)
    graph.features = rng.standard_normal(
        (num_nodes, feature_dim)).astype(np.float32)
    return graph


def star_graph(num_leaves: int, feature_dim: int = 4,
               seed: int = 0) -> Graph:
    """Leaves all point at hub node 0 — a worst case for one accumulator."""
    src = np.arange(1, num_leaves + 1, dtype=np.int64)
    dst = np.zeros(num_leaves, dtype=np.int64)
    graph = Graph(num_leaves + 1, src, dst, name="star")
    rng = _rng(seed)
    graph.features = rng.standard_normal(
        (num_leaves + 1, feature_dim)).astype(np.float32)
    return graph


def path_graph(num_nodes: int, feature_dim: int = 4, seed: int = 0) -> Graph:
    """A directed path 0 -> 1 -> ... -> n-1, for hand-checkable tests."""
    src = np.arange(0, num_nodes - 1, dtype=np.int64)
    dst = np.arange(1, num_nodes, dtype=np.int64)
    graph = Graph(num_nodes, src, dst, name="path")
    rng = _rng(seed)
    graph.features = rng.standard_normal(
        (num_nodes, feature_dim)).astype(np.float32)
    return graph
