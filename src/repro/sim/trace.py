"""Execution tracing: per-unit operation timelines.

A :class:`Tracer` collects ``(unit, label, issue, complete)`` events as
the unit processes retire operations; from the trace one can render an
ASCII Gantt chart of the pipeline and *measure* the overlap the
GNNerator Controller is supposed to deliver — e.g. that in a
graph-first layer the Dense Engine starts consuming aggregated blocks
long before the Graph Engine finishes the layer (Sec III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceEvent:
    """One retired operation."""

    unit: str
    label: str
    issue: int  # cycle the op reached the head of its queue
    complete: int  # cycle it finished

    @property
    def duration(self) -> int:
        return self.complete - self.issue


@dataclass
class Tracer:
    """Event sink handed to the unit processes."""

    events: list[TraceEvent] = field(default_factory=list)

    def record(self, unit: str, label: str, issue: int,
               complete: int) -> None:
        self.events.append(TraceEvent(unit=unit, label=label, issue=issue,
                                      complete=complete))

    def for_unit(self, unit: str) -> list[TraceEvent]:
        return [e for e in self.events if e.unit == unit]

    def busy_intervals(self, unit: str) -> list[tuple[int, int]]:
        """Merged [start, end) busy windows of one unit."""
        intervals = sorted((e.issue, e.complete)
                           for e in self.for_unit(unit) if e.duration > 0)
        merged: list[tuple[int, int]] = []
        for start, end in intervals:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged

    def first_activity(self, unit: str) -> int | None:
        events = [e for e in self.for_unit(unit) if e.duration > 0]
        return min((e.issue for e in events), default=None)

    def last_activity(self, unit: str) -> int | None:
        events = [e for e in self.for_unit(unit) if e.duration > 0]
        return max((e.complete for e in events), default=None)


def overlap_cycles(tracer: Tracer, unit_a: str, unit_b: str) -> int:
    """Cycles during which both units were busy simultaneously."""
    total = 0
    intervals_b = tracer.busy_intervals(unit_b)
    for start_a, end_a in tracer.busy_intervals(unit_a):
        for start_b, end_b in intervals_b:
            total += max(0, min(end_a, end_b) - max(start_a, start_b))
    return total


def render_gantt(tracer: Tracer, width: int = 72) -> str:
    """ASCII Gantt chart: one row per unit, '#' where busy."""
    units = sorted({e.unit for e in tracer.events})
    if not units:
        return "(empty trace)"
    horizon = max(e.complete for e in tracer.events)
    if horizon == 0:
        return "(zero-length trace)"
    scale = horizon / width
    name_width = max(len(u) for u in units)
    lines = [f"{'cycles'.rjust(name_width)} 0{'-' * (width - 8)}{horizon}"]
    for unit in units:
        row = [" "] * width
        for start, end in tracer.busy_intervals(unit):
            lo = min(int(start / scale), width - 1)
            hi = min(max(int(end / scale), lo + 1), width)
            for i in range(lo, hi):
                row[i] = "#"
        lines.append(f"{unit.rjust(name_width)} {''.join(row)}")
    return "\n".join(lines)
