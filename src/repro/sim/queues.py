"""Synchronisation primitives built on the DES kernel.

* :class:`Resource` — mutual exclusion with FIFO arbitration (the shared
  DRAM channel, the systolic array, ...).
* :class:`Store` — a bounded FIFO of items; the double-buffer handoff
  between a Fetch unit and a Compute unit is a ``Store`` of capacity 1
  (one shard in flight while the next is prefetched).
* :class:`Semaphore` — counting tokens; the GNNerator Controller's
  producer/consumer state signals are semaphores keyed by name.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.sim.kernel import Environment, Event, SimulationError


class Resource:
    """A server with ``capacity`` concurrent slots and a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiting: deque[Event] = deque()

    def request(self) -> Event:
        """Returns an event that triggers when a slot is granted."""
        grant = self.env.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            grant.trigger()
        else:
            self._waiting.append(grant)
        return grant

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError("release without matching request")
        if self._waiting:
            grant = self._waiting.popleft()
            grant.trigger()
        else:
            self.in_use -= 1

    @property
    def queue_length(self) -> int:
        return len(self._waiting)


class Store:
    """A bounded FIFO channel of items between producer/consumer processes.

    ``put`` blocks when full; ``get`` blocks when empty. Capacity 1
    between a prefetcher and a consumer models double buffering: the
    consumer works out of one half while the producer fills the other.
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def put(self, item: Any) -> Event:
        """Event that triggers once the item is accepted."""
        done = self.env.event()
        if self._getters:
            getter = self._getters.popleft()
            getter.trigger(item)
            done.trigger()
        elif len(self._items) < self.capacity:
            self._items.append(item)
            done.trigger()
        else:
            self._putters.append((done, item))
        return done

    def get(self) -> Event:
        """Event that triggers with the next item."""
        ready = self.env.event()
        if self._items:
            item = self._items.popleft()
            if self._putters:
                done, queued = self._putters.popleft()
                self._items.append(queued)
                done.trigger()
            ready.trigger(item)
        else:
            self._getters.append(ready)
        return ready

    def __len__(self) -> int:
        return len(self._items)


class Semaphore:
    """Counting semaphore: ``signal`` adds tokens, ``wait`` consumes one."""

    def __init__(self, env: Environment, initial: int = 0) -> None:
        if initial < 0:
            raise SimulationError("initial count cannot be negative")
        self.env = env
        self.count = initial
        self._waiting: deque[Event] = deque()

    def signal(self, amount: int = 1) -> None:
        for _ in range(amount):
            if self._waiting:
                self._waiting.popleft().trigger()
            else:
                self.count += 1

    def wait(self) -> Event:
        """Event that triggers once a token is available (and consumed)."""
        acquired = self.env.event()
        if self.count > 0:
            self.count -= 1
            acquired.trigger()
        else:
            self._waiting.append(acquired)
        return acquired


class TokenTable:
    """Named one-shot completion tokens (the Controller's state registers).

    A producer ``signal``-s a token name once; any number of consumers can
    ``wait`` on it, before or after the signal. Unlike a semaphore, a
    token is level-sensitive: once signalled it stays signalled, matching
    "the controller reads the state of the Dense Engine" (Sec III-C).
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._events: dict[str, Event] = {}

    def _event(self, name: str) -> Event:
        if name not in self._events:
            self._events[name] = self.env.event()
        return self._events[name]

    def signal(self, name: str) -> None:
        event = self._event(name)
        if not event.triggered:
            event.trigger()

    def wait(self, name: str) -> Event:
        return self._event(name)

    def is_signalled(self, name: str) -> bool:
        return name in self._events and self._events[name].triggered
