"""Discrete-event simulation kernel with cycle-granularity time.

A lightweight, dependency-free process-based DES in the style of SimPy:
processes are generators that ``yield`` events; the environment advances
simulated time (integer cycles) from event to event. This replaces the
PyMTL3 framework the paper used — see DESIGN.md §3 for why transaction-
level cycle accounting preserves the behaviour the evaluation measures.

Example
-------
>>> env = Environment()
>>> def worker(env, results):
...     yield env.timeout(10)
...     results.append(env.now)
>>> results = []
>>> env.process(worker(env, results))    # doctest: +ELLIPSIS
<Process ...>
>>> env.run()
>>> results
[10]
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Generator, Iterable


class SimulationError(RuntimeError):
    """Raised for kernel misuse (negative delays, double triggers, ...)."""


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* with an optional value; every process waiting
    on it resumes with that value. Triggering twice is an error.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.triggered = False
        self.value: Any = None
        self._waiters: list["Process"] = []

    def trigger(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        for process in self._waiters:
            self.env._schedule_resume(process, value)
        self._waiters.clear()
        return self

    def succeed(self, value: Any = None) -> "Event":
        """Alias for :meth:`trigger` (SimPy-compatible spelling)."""
        return self.trigger(value)

    def _wait(self, process: "Process") -> None:
        if self.triggered:
            self.env._schedule_resume(process, self.value)
        else:
            self._waiters.append(process)


class Timeout(Event):
    """An event that triggers ``delay`` cycles after creation."""

    def __init__(self, env: "Environment", delay: int,
                 value: Any = None) -> None:
        super().__init__(env)
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.delay = int(delay)
        env._schedule_trigger(self, self.delay, value)


class AllOf(Event):
    """Triggers once every child event has triggered."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._pending = 0
        events = list(events)
        for event in events:
            if event.triggered:
                continue
            self._pending += 1
            event._waiters.append(_Notifier(self))
        if self._pending == 0:
            self.trigger([e.value for e in events])
        else:
            self._children = events

    def _child_done(self) -> None:
        self._pending -= 1
        if self._pending == 0 and not self.triggered:
            self.trigger([e.value for e in self._children])


class AnyOf(Event):
    """Triggers as soon as one child event triggers."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        events = list(events)
        for event in events:
            if event.triggered:
                self.trigger(event.value)
                return
        for event in events:
            event._waiters.append(_Notifier(self, any_mode=True))


class _Notifier:
    """Adapter letting composite events sit in a child's waiter list."""

    def __init__(self, parent: Event, any_mode: bool = False) -> None:
        self.parent = parent
        self.any_mode = any_mode

    def _resume(self, value: Any) -> None:
        if self.any_mode:
            if not self.parent.triggered:
                self.parent.trigger(value)
        else:
            self.parent._child_done()


class Process(Event):
    """A running generator; also an event that triggers on completion."""

    def __init__(self, env: "Environment",
                 generator: Generator[Event, Any, Any],
                 name: str = "process") -> None:
        super().__init__(env)
        self.generator = generator
        self.name = name
        env._schedule_resume(self, None)

    def _resume(self, value: Any) -> None:
        try:
            target = self.generator.send(value)
        except StopIteration as stop:
            self.trigger(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, not an Event")
        target._wait(self)

    def __repr__(self) -> str:
        state = "done" if self.triggered else "running"
        return f"<Process {self.name} ({state})>"


class Environment:
    """Owns the event queue and simulated time (integer cycles).

    Scheduling is split into two lanes: a heap for future timestamps and
    a FIFO deque for zero-delay actions (the bulk of DES traffic —
    every resume and token signal). FIFO order is exactly what the old
    single-heap (time, sequence) ordering gave these actions, because a
    zero-delay action scheduled at time ``t`` always carries a larger
    sequence number than any heap entry that matures at ``t`` (those
    were pushed before ``t`` was reached): heap entries for the current
    timestamp drain first, then the deque, with appends landing at the
    back exactly as rising sequence numbers used to.
    """

    def __init__(self) -> None:
        self.now = 0
        self._queue: list[tuple[int, int, Any, Any]] = []
        self._fast: deque[tuple[Any, Any]] = deque()
        self._sequence = 0

    # -- scheduling internals ------------------------------------------
    def _push(self, delay: int, action: Any, value: Any) -> None:
        if delay == 0:
            self._fast.append((action, value))
            return
        self._sequence += 1
        heapq.heappush(self._queue,
                       (self.now + delay, self._sequence, action, value))

    def _schedule_resume(self, process: Process, value: Any) -> None:
        self._push(0, ("resume", process), value)

    def _schedule_trigger(self, event: Event, delay: int,
                          value: Any) -> None:
        self._push(delay, ("trigger", event), value)

    # -- public API ----------------------------------------------------
    def process(self, generator: Generator[Event, Any, Any],
                name: str = "process") -> Process:
        """Register a generator as a process; returns it (an Event)."""
        return Process(self, generator, name=name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self) -> Event:
        return Event(self)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def run(self, until: int | None = None) -> None:
        """Process events until the queues drain (or ``until`` cycles).

        Raises :class:`SimulationError` on deadlock if processes remain
        suspended when the queue empties — detected by callers via
        un-triggered process events.
        """
        queue, fast = self._queue, self._fast
        while queue or fast:
            # Heap entries maturing *now* precede the zero-delay lane
            # (they were scheduled earlier); otherwise the zero-delay
            # lane runs before time may advance.
            if queue and (not fast or queue[0][0] <= self.now):
                time, _, action, value = queue[0]
                if until is not None and time > until:
                    self.now = until
                    return
                heapq.heappop(queue)
                self.now = time
            else:
                action, value = fast.popleft()
            kind, target = action
            if kind == "trigger":
                if not target.triggered:
                    target.trigger(value)
            else:  # "resume"
                target._resume(value)
        if until is not None:
            self.now = until
