"""Memory-system models: shared DRAM channel and on-chip scratchpads.

The paper's platforms share one off-chip feature memory (Table IV). We
model it as a bandwidth server: each burst occupies the channel for
``bytes / bytes_per_cycle`` cycles after a fixed access latency, and
concurrent requesters (the engines' independent memory controllers)
arbitrate FIFO. Per-requester byte counters feed the evaluation reports.

Scratchpads are capacity bookkeepers: allocation beyond capacity is a
simulation error (the compiler's residency planning must have sized shard
working sets to fit — tests rely on this tripwire).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator

from repro.config.accelerator import DramConfig
from repro.sim.kernel import Environment, Event, SimulationError
from repro.sim.queues import Resource

if TYPE_CHECKING:
    from repro.obs.hwtel import HwProbe


@dataclass
class TrafficCounter:
    """Bytes and transactions by direction for one requester."""

    read_bytes: int = 0
    write_bytes: int = 0
    read_transactions: int = 0
    write_transactions: int = 0

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    def record(self, direction: str, num_bytes: int) -> None:
        if direction == "read":
            self.read_bytes += num_bytes
            self.read_transactions += 1
        elif direction == "write":
            self.write_bytes += num_bytes
            self.write_transactions += 1
        else:
            raise SimulationError(f"unknown direction {direction!r}")


class DramChannel:
    """Shared off-chip memory channel with FIFO arbitration.

    ``transfer`` is a process helper: ``yield from channel.transfer(...)``
    suspends the caller for the queueing + service time of the burst.
    """

    def __init__(self, env: Environment, config: DramConfig,
                 probe: HwProbe | None = None) -> None:
        self.env = env
        self.config = config
        self._port = Resource(env, capacity=1)
        self.counters: dict[str, TrafficCounter] = {}
        self.busy_cycles = 0
        #: Optional :class:`repro.obs.hwtel.HwProbe`: records queue
        #: depth at each request's arrival and the burst (grant cycle,
        #: occupancy, bytes) — appends only, never read here, so a
        #: probed run is cycle-identical to an unprobed one.
        self.probe = probe

    def counter(self, requester: str) -> TrafficCounter:
        if requester not in self.counters:
            self.counters[requester] = TrafficCounter()
        return self.counters[requester]

    def transfer(self, requester: str, direction: str,
                 num_bytes: int) -> Generator[Event, Any, None]:
        """Generator: arbitrate, occupy the channel for the burst's
        bandwidth time, then pay the access latency off-channel.

        Holding the port only for the occupancy (not the latency) lets
        independent requesters pipeline their bursts, as a real memory
        controller does.
        """
        if num_bytes < 0:
            raise SimulationError("negative transfer size")
        self.counter(requester).record(direction, num_bytes)
        if num_bytes == 0:
            return
        occupancy = max(
            int(round(num_bytes / self.config.bytes_per_cycle)), 1)
        probe = self.probe
        if probe is not None:
            probe.queue.append(
                (self.env.now,
                 self._port.in_use + self._port.queue_length))
        yield self._port.request()
        if probe is not None:
            probe.dram.append((requester, direction, self.env.now,
                               occupancy, num_bytes))
        self.busy_cycles += occupancy
        try:
            yield self.env.timeout(occupancy)
        finally:
            self._port.release()
        if self.config.burst_latency_cycles:
            yield self.env.timeout(self.config.burst_latency_cycles)

    @property
    def total_bytes(self) -> int:
        return sum(c.total_bytes for c in self.counters.values())

    @property
    def total_read_bytes(self) -> int:
        return sum(c.read_bytes for c in self.counters.values())

    @property
    def total_write_bytes(self) -> int:
        return sum(c.write_bytes for c in self.counters.values())

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of elapsed time the channel was moving data."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(self.busy_cycles / elapsed_cycles, 1.0)


@dataclass
class Scratchpad:
    """Capacity-checked on-chip buffer with named allocations."""

    name: str
    capacity_bytes: int
    allocations: dict[str, int] = field(default_factory=dict)
    peak_bytes: int = 0

    def allocate(self, key: str, num_bytes: int) -> None:
        if num_bytes < 0:
            raise SimulationError("negative allocation")
        current = self.allocations.get(key, 0)
        new_total = self.used_bytes - current + num_bytes
        if new_total > self.capacity_bytes:
            raise SimulationError(
                f"scratchpad {self.name!r} overflow: {new_total} bytes "
                f"requested, capacity {self.capacity_bytes} "
                f"(allocating {key!r})")
        self.allocations[key] = num_bytes
        self.peak_bytes = max(self.peak_bytes, new_total)

    def free(self, key: str) -> None:
        self.allocations.pop(key, None)

    @property
    def used_bytes(self) -> int:
        return sum(self.allocations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes


class BusyTracker:
    """Accumulates busy cycles for a unit, for utilisation reports."""

    def __init__(self) -> None:
        self.busy_cycles = 0
        self.operations = 0

    def record(self, cycles: int) -> None:
        if cycles < 0:
            raise SimulationError("negative busy time")
        self.busy_cycles += cycles
        self.operations += 1

    def utilization(self, elapsed_cycles: int) -> float:
        if elapsed_cycles <= 0:
            return 0.0
        return min(self.busy_cycles / elapsed_cycles, 1.0)
