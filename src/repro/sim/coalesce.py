"""Coalesced-event simulation: the DES without the generator ping-pong.

The process-based kernel (:mod:`repro.sim.kernel`) resumes a Python
generator for every operation of every unit — creating an ``Event``,
bouncing through the zero-delay deque, and re-entering ``execute_op``
several times per op. All of that machinery exists to compute exactly
one dynamic quantity: the end-to-end cycle count (every other field of
an ``ExecutionResult`` — busy cycles, DRAM bytes, op counts — is a
static function of the program, because every operation executes
exactly once). This module therefore splits simulation into:

* :func:`build_plan` — a one-time pass over the compiled queues that
  precomputes each unit's *serial action chain*: the exact sequence of
  kernel interactions ``execute_op`` would perform (token waits, credit
  acquires, buffer handoffs, DRAM bursts, compute occupancies), with
  adjacent compute occupancies merged into single timeouts, plus all
  the static accounting (per-unit busy cycles, DRAM byte counters,
  channel busy time);
* :func:`run_plan` — a bespoke scheduler that replays the six chains,
  entering its event structures only at cross-unit synchronisation
  points: buffer handoffs (credits / handoff stores), DRAM-channel
  arbitration, controller tokens, and time advances.

Order-equivalence argument (the §4 cycle-neutrality obligation)
---------------------------------------------------------------

Cycle counts out of :func:`run_plan` are identical to the process-based
kernel's because the scheduler is an *operational mirror* of it —
every kernel interaction the generators would perform appears in the
precompiled chains, in the same per-unit order — plus one provably
order-preserving reduction, applied in two places:

**Inline continuation on an empty ready set.** In the process kernel,
yielding an already-available event (a signalled token, a free credit,
a ready store slot, an idle DRAM port) still costs one trip through
the zero-delay deque, which matters only for *fairness*: it lets other
already-scheduled actions interleave first. The bespoke scheduler
performs that round trip **unless** the ready deque is empty and no
heap entry has matured (``heap[0].time > now``) — in which case the
trip would pop the very entry it just pushed, with nothing able to run
in between, so continuing inline is literally the same execution. The
same test gates running a freshly matured timer's unit directly
instead of parking it in the ready lane first. The reduction is a
runtime no-op, not a reordering, so every interleaving — DRAM
arbitration order included — is preserved exactly. This extends PR 4's
zero-delay FIFO argument: PR 4 moved zero-delay actions from the heap
to a FIFO lane because their (time, sequence) order degenerates to
FIFO; this module additionally skips the lane when it is provably
empty.

**Inline time advance.** The same argument applies to the heap: when a
unit starts a ``c``-cycle sleep while the ready lane is empty and every
pending timer matures strictly *after* ``now + c``, the entry it would
push is guaranteed to be the very next one popped (a timer maturing
*at* ``now + c`` would have been pushed earlier, carry a smaller
sequence number, and win the tie — hence the strict inequality).
Nothing can run in between, so the scheduler advances ``now`` by ``c``
and keeps executing the unit's chain without touching the heap at all.
In an uncontended stretch — one engine streaming shards while the
other sits blocked on a controller token — this collapses the entire
intra-shard serial chain (compute occupancy, DRAM burst occupancy,
burst latency) into straight-line arithmetic on ``now``, which is what
"only enter the event kernel at cross-unit synchronization points"
means operationally: the heap and ready lane are touched only when
another unit could actually observe or interleave.

A tempting further reduction — summing a unit's run of back-to-back
compute occupancies ``c1, c2`` into one ``c1 + c2`` timeout — is
**unsound** and deliberately not performed: heap entries tie-break on
insertion sequence, and the second hop's entry is inserted at
``t + c1`` in the mirrored kernel but at ``t`` when merged. If another
unit's timer matures on the same cycle ``t + c1 + c2``, merging flips
which unit wakes first and (through DRAM arbitration) can move the
final cycle count — observed as a ±1-cycle drift on the self-loop
differential workloads. Intra-chain hops instead stay as individual
heap entries, each woken through the (cheap) inline path.

Everything else is a one-to-one translation: tokens keep their
level-sensitive one-shot semantics and FIFO waiter order; credits
mirror ``Semaphore`` (signal hands the token straight to the oldest
waiter); handoffs mirror ``Store`` including the wake order of a
blocked putter vs. the getter that unblocked it; the DRAM port mirrors
``Resource`` FIFO arbitration with the release happening after the
occupancy and before the latency sleep. ``tests/test_coalesce.py``
locks the equivalence by running both kernels over the differential
suite and asserting exact cycle equality.

Compile-product dependency key
------------------------------

A :class:`CoalescedPlan` is a pure function of ``(program op queues,
DramConfig)`` and nothing else — no graph data, no clock frequency, no
Dense/Graph-Engine knobs beyond what is already baked into the ops'
cycle fields. Plans are therefore cached on the program per DramConfig
(``Program.coalesced_plan``) and, being plain containers of ints
(``__slots__`` of lists/dicts), serialized *with* the program by the
persistent store (:mod:`repro.compiler.store`): a warm-store load gets
the chains for free, and a DSE candidate that differs only in DRAM
knobs reuses the shared program while lazily building its own plan.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush

from typing import TYPE_CHECKING

from repro.compiler.ir import (
    CHANNELS,
    UNITS,
    AccumWritebackOp,
    AcquireOp,
    DmaOp,
    Operation,
    PopOp,
    PushOp,
    ReleaseOp,
    op_cycles,
)
from repro.config.accelerator import DramConfig
from repro.engines.controller import DOUBLE_BUFFER_CREDITS
from repro.sim.kernel import SimulationError

if TYPE_CHECKING:
    from repro.obs.hwtel import HwProbe

# Action opcodes, numbered roughly by execution frequency (the
# scheduler dispatches through an if-chain in this order). Each chain
# is one flat list of packed integers ``kind | (arg << 4)``; the
# scheduler's inner loop dispatches on the low nibble. Token and
# channel operands are interned to ints at build time so the hot loop
# never hashes a string. A compute occupancy and a DRAM burst
# occupancy have identical kernel behaviour (sleep ``arg`` cycles), so
# both lower to ``TIMEOUT``.
TIMEOUT = 0         # arg: cycles              occupy the unit / the burst
DRAM_REQ = 1        # arg: unused              arbitrate for the DRAM port
DRAM_REL = 2        # arg: latency cycles      release port, pay latency
CREDIT_WAIT = 3     # arg: channel id          acquire a double-buffer credit
CREDIT_SIGNAL = 4   # arg: channel id          release a credit (synchronous)
PUT = 5             # arg: channel id          hand off a filled buffer
GET = 6             # arg: channel id          wait for a filled buffer
WAIT = 7            # arg: token id            wait on a controller token
SIGNAL = 8          # arg: token id            signal a token (synchronous)
END = 9             # chain terminator sentinel

#: A timestamp later than any simulation reaches; stands in for "the
#: heap is empty" in the hoisted next-deadline register.
_NEVER = 1 << 62


def _pack(kind: int, arg: int = 0) -> int:
    return kind | (arg << 4)


class CoalescedPlan:
    """Precompiled per-unit action chains plus all static accounting."""

    __slots__ = ("unit_actions", "num_tokens", "seq_bits",
                 "unit_busy_cycles", "dram_traffic", "dram_busy_cycles",
                 "dma_meta")

    def __init__(self, unit_actions: list[list[int]], num_tokens: int,
                 seq_bits: int, unit_busy_cycles: dict[str, int],
                 dram_traffic: dict[str, tuple[int, int, int, int]],
                 dram_busy_cycles: int,
                 dma_meta: list[list[tuple[bool, int]]] | None = None
                 ) -> None:
        #: Flat packed action chains, indexed like ``UNITS``; each ends
        #: with an ``END`` sentinel.
        self.unit_actions = unit_actions
        self.num_tokens = num_tokens
        #: Bits reserved for the timer-insertion sequence number in the
        #: scheduler's packed heap entries — sized to the total number
        #: of timed actions, which bounds how many pushes can happen.
        self.seq_bits = seq_bits
        self.unit_busy_cycles = unit_busy_cycles
        #: per unit: (read_bytes, write_bytes, read_tx, write_tx)
        self.dram_traffic = dram_traffic
        self.dram_busy_cycles = dram_busy_cycles
        #: Per unit, in chain order: ``(is_read, num_bytes)`` of each
        #: emitted DRAM burst. Pure static accounting consumed by the
        #: telemetry probe (:mod:`repro.obs.hwtel`) to attribute bytes
        #: and direction to the bursts it observes during replay —
        #: never read on the unprobed hot path.
        self.dma_meta = (dma_meta if dma_meta is not None
                         else [[] for _ in unit_actions])


def _occupancy(num_bytes: int, bytes_per_cycle: float) -> int:
    """Mirror of ``DramChannel.transfer``'s burst occupancy."""
    return max(int(round(num_bytes / bytes_per_cycle)), 1)


def build_plan(queues: dict[str, list[Operation]],
               dram: DramConfig) -> CoalescedPlan:
    """Lower per-unit operation queues into primitive action chains.

    Emits, for each operation, exactly the kernel interactions
    ``repro.engines.executor.execute_op`` performs, in the same order.
    All once-per-run accounting (busy cycles, DRAM byte counters,
    channel busy time) is summed here instead of at run time — every
    action executes exactly once, so it is a static property of the
    program.
    """
    bpc = dram.bytes_per_cycle
    latency = dram.burst_latency_cycles
    channel_ids = {channel: i for i, channel in enumerate(CHANNELS)}
    token_ids: dict[str, int] = {}

    def token_id(token: str) -> int:
        existing = token_ids.get(token)
        if existing is None:
            existing = token_ids[token] = len(token_ids)
        return existing

    unit_actions: list[list[int]] = []
    busy: dict[str, int] = {}
    traffic: dict[str, tuple[int, int, int, int]] = {}
    dma_meta: list[list[tuple[bool, int]]] = []
    dram_busy = 0
    for unit in UNITS:
        ops = queues.get(unit, [])
        chain: list[int] = []
        meta: list[tuple[bool, int]] = []
        unit_busy = 0
        reads = writes = read_tx = write_tx = 0
        for op in ops:
            for token in op.wait:
                chain.append(_pack(WAIT, token_id(token)))
            if isinstance(op, AcquireOp):
                chain.append(_pack(CREDIT_WAIT, channel_ids[op.channel]))
            elif isinstance(op, PopOp):
                chain.append(_pack(GET, channel_ids[op.channel]))
            elif isinstance(op, ReleaseOp):
                chain.append(_pack(CREDIT_SIGNAL, channel_ids[op.channel]))
            elif isinstance(op, PushOp):
                chain.append(_pack(PUT, channel_ids[op.channel]))
            elif isinstance(op, (DmaOp, AccumWritebackOp)):
                is_load = isinstance(op, DmaOp) and op.direction == "load"
                if is_load:
                    reads += op.num_bytes
                    read_tx += 1
                else:
                    writes += op.num_bytes
                    write_tx += 1
                if op.num_bytes:
                    occ = _occupancy(op.num_bytes, bpc)
                    dram_busy += occ
                    chain.append(_pack(DRAM_REQ))
                    chain.append(_pack(TIMEOUT, occ))
                    chain.append(_pack(DRAM_REL, latency))
                    meta.append((is_load, op.num_bytes))
            else:
                cycles = op_cycles(op)
                if cycles:
                    unit_busy += cycles
                    # Deliberately NOT merged with an adjacent TIMEOUT:
                    # see the module docstring — the second hop's heap
                    # insertion order is part of the observable
                    # semantics when another unit's timer matures on
                    # the same cycle.
                    chain.append(_pack(TIMEOUT, cycles))
            for token in op.signal:
                chain.append(_pack(SIGNAL, token_id(token)))
        chain.append(_pack(END))
        unit_actions.append(chain)
        dma_meta.append(meta)
        busy[unit] = unit_busy
        traffic[unit] = (reads, writes, read_tx, write_tx)
    timed_actions = sum(
        1 for chain in unit_actions for action in chain
        if (action & 15) == TIMEOUT
        or ((action & 15) == DRAM_REL and action >> 4))
    seq_bits = max(timed_actions, 1).bit_length() + 1
    return CoalescedPlan(unit_actions, len(token_ids), seq_bits,
                         busy, traffic, dram_busy, dma_meta)


def run_plan(plan: CoalescedPlan, probe: HwProbe | None = None) -> int:
    """Replay the action chains; returns the end-to-end cycle count.

    Operationally mirrors ``Environment.run`` driving six
    ``unit_process`` generators (see the module docstring for the
    order-equivalence argument). Raises :class:`DeadlockSuspension`
    when the event structures drain with chains unfinished.

    ``probe`` (an :class:`repro.obs.hwtel.HwProbe`) records the raw
    hardware-telemetry event stream: compute-occupancy windows, DRAM
    bursts (direction/bytes resolved through the plan's static
    ``dma_meta``, consumed in per-unit chain order), and port-queue
    depth at each request's arrival. Recording is append-only and
    reads no scheduler state, so a probed replay is cycle-identical
    to an unprobed one by construction; an unprobed replay pays one
    predictable branch per action.

    The branch structure below is deliberately flat and local-heavy:
    this loop *is* the simulator, and on a million-edge program it
    executes a few tens of thousands of actions per run.
    """
    chains = plan.unit_actions
    num_units = len(chains)
    pcs = [0] * num_units
    #: Units whose chain reached its END sentinel (a blocked unit can
    #: share a finished unit's pc, so completion is tracked explicitly).
    done = [False] * num_units

    now = 0
    seq = 0
    # Heap entries are single packed ints ``(wake << time_shift) |
    # (seq << 4) | unit`` — integer comparison is exactly the process
    # kernel's (time, sequence) lexicographic order because the fields
    # occupy disjoint bit ranges and ``seq`` cannot overflow its field
    # (``seq_bits`` covers the total number of timed actions).
    time_shift = plan.seq_bits + 4
    heap: list[int] = []
    #: Maturity of the earliest pending timer (the hoisted ``heap[0]``
    #: deadline); ``_NEVER`` when the heap is empty.
    next_wake = _NEVER
    # Zero-delay ready lane; seeded in launch order exactly as
    # ``GNNerator.simulate`` spawns the unit processes.
    fast: deque[int] = deque(range(num_units))
    fast_append = fast.append
    fast_popleft = fast.popleft

    rec = probe is not None
    if rec:
        probe_busy = probe.busy
        probe_dram = probe.dram
        probe_queue = probe.queue
        dma_meta = plan.dma_meta
        #: Next unconsumed ``dma_meta`` entry per unit; bursts execute
        #: in chain order within a unit, so a running index suffices.
        meta_idx = [0] * num_units

    # None = never referenced, True = signalled, list = FIFO waiters.
    tokens: list[object] = [None] * plan.num_tokens
    num_channels = len(CHANNELS)
    credits = [DOUBLE_BUFFER_CREDITS] * num_channels
    credit_waiters = [deque() for _ in range(num_channels)]
    store_items = [0] * num_channels
    store_capacity = [max(DOUBLE_BUFFER_CREDITS, 1)] * num_channels
    store_getters = [deque() for _ in range(num_channels)]
    store_putters = [deque() for _ in range(num_channels)]
    dram_free = True
    dram_waiters: deque[int] = deque()

    while True:
        if heap and (not fast or next_wake <= now):
            entry = heappop(heap)
            unit = entry & 15
            now = entry >> time_shift
            next_wake = (heap[0] >> time_shift) if heap else _NEVER
            # A matured timer wakes its unit via the ready lane unless
            # nothing else is pending (inline continuation: the
            # park-and-pop would be a no-op, so run the unit directly).
            if fast or next_wake <= now:
                fast_append(unit)
                continue
        elif fast:
            unit = fast_popleft()
        else:
            break

        chain = chains[unit]
        pc = pcs[unit]
        while True:
            action = chain[pc]
            kind = action & 15
            arg = action >> 4
            if kind == TIMEOUT:
                pc += 1
                wake = now + arg
                if rec:
                    # A timeout followed by DRAM_REL is a burst
                    # occupancy (DMA lowers to REQ/TIMEOUT/REL and
                    # nothing else emits that pair); anything else is
                    # compute occupancy.
                    if (chain[pc] & 15) == DRAM_REL:
                        index = meta_idx[unit]
                        meta_idx[unit] = index + 1
                        is_read, num_bytes = dma_meta[unit][index]
                        probe_dram.append(
                            (UNITS[unit],
                             "read" if is_read else "write",
                             now, arg, num_bytes))
                    else:
                        probe_busy.append((UNITS[unit], now, wake))
                # Inline time advance: if nothing is ready and every
                # pending timer matures strictly later, the entry we
                # would push is the next one popped — skip the heap and
                # keep executing (see the module docstring).
                if not fast and next_wake > wake:
                    now = wake
                    continue
                seq += 1
                heappush(heap, (wake << time_shift) | (seq << 4) | unit)
                if wake < next_wake:
                    next_wake = wake
                break
            if kind == DRAM_REQ:
                if rec:
                    # Queue depth at arrival: holders + waiters, the
                    # event kernel's in_use + queue_length.
                    probe_queue.append(
                        (now, (0 if dram_free else 1)
                         + len(dram_waiters)))
                if dram_free:
                    if not fast and next_wake > now:
                        # The grant round trip is elidable; try the
                        # whole burst inline (grant, occupy, release —
                        # nothing else can run before the occupancy
                        # ends when every pending timer matures after
                        # it, so holding the port is unobservable).
                        wake = now + (chain[pc + 1] >> 4)
                        if rec:
                            index = meta_idx[unit]
                            meta_idx[unit] = index + 1
                            is_read, num_bytes = dma_meta[unit][index]
                            probe_dram.append(
                                (UNITS[unit],
                                 "read" if is_read else "write",
                                 now, chain[pc + 1] >> 4, num_bytes))
                        if next_wake > wake:
                            latency = chain[pc + 2] >> 4
                            pc += 3
                            now = wake
                            if latency:
                                wake = now + latency
                                if next_wake > wake:
                                    now = wake
                                    continue
                                seq += 1
                                heappush(heap, (wake << time_shift)
                                         | (seq << 4) | unit)
                                if wake < next_wake:
                                    next_wake = wake
                                break
                            continue
                        # Grant inline, but the occupancy must sleep on
                        # the heap (a timer matures during the burst).
                        dram_free = False
                        pc += 2
                        seq += 1
                        heappush(heap, (wake << time_shift)
                                 | (seq << 4) | unit)
                        if wake < next_wake:
                            next_wake = wake
                        break
                    dram_free = False
                    pc += 1
                    fast_append(unit)
                    break
                dram_waiters.append(unit)
                pc += 1
                break
            if kind == DRAM_REL:
                # Mirror DramChannel.transfer: release the port (the
                # oldest waiter inherits it) before the latency sleep.
                if dram_waiters:
                    fast_append(dram_waiters.popleft())
                else:
                    dram_free = True
                pc += 1
                if arg:
                    wake = now + arg
                    if not fast and next_wake > wake:
                        now = wake
                        continue
                    seq += 1
                    heappush(heap,
                             (wake << time_shift) | (seq << 4) | unit)
                    if wake < next_wake:
                        next_wake = wake
                    break
                continue
            if kind == CREDIT_WAIT:
                if credits[arg] > 0:
                    credits[arg] -= 1
                    pc += 1
                    if fast or next_wake <= now:
                        fast_append(unit)
                        break
                    continue
                credit_waiters[arg].append(unit)
                pc += 1
                break
            if kind == CREDIT_SIGNAL:
                waiters = credit_waiters[arg]
                if waiters:
                    fast_append(waiters.popleft())
                else:
                    credits[arg] += 1
                pc += 1
                continue
            if kind == PUT:
                getters = store_getters[arg]
                if getters:
                    # Mirror Store.put: the waiting getter's resume is
                    # scheduled first, then the putter's own (its done
                    # event was triggered synchronously, so its yield
                    # costs one ready-lane trip — never inline, the
                    # getter is already queued ahead of it).
                    fast_append(getters.popleft())
                    fast_append(unit)
                    pc += 1
                    break
                if store_items[arg] < store_capacity[arg]:
                    store_items[arg] += 1
                    pc += 1
                    if fast or next_wake <= now:
                        fast_append(unit)
                        break
                    continue
                store_putters[arg].append(unit)
                pc += 1
                break
            if kind == GET:
                if store_items[arg]:
                    putters = store_putters[arg]
                    if putters:
                        # Mirror Store.get: the blocked putter's item
                        # takes the freed slot and its resume precedes
                        # the getter's own ready-lane trip.
                        fast_append(putters.popleft())
                        fast_append(unit)
                        pc += 1
                        break
                    store_items[arg] -= 1
                    pc += 1
                    if fast or next_wake <= now:
                        fast_append(unit)
                        break
                    continue
                store_getters[arg].append(unit)
                pc += 1
                break
            if kind == WAIT:
                state = tokens[arg]
                if state is None:
                    tokens[arg] = [unit]
                    pc += 1
                    break
                if state is True:
                    pc += 1
                    if fast or next_wake <= now:
                        fast_append(unit)
                        break
                    continue
                state.append(unit)
                pc += 1
                break
            if kind == SIGNAL:
                state = tokens[arg]
                if state is not True:
                    if state:
                        fast.extend(state)
                    tokens[arg] = True
                pc += 1
                continue
            if kind == END:
                done[unit] = True
                break
            raise SimulationError(f"unknown action kind {kind!r}")
        pcs[unit] = pc

    if not all(done):
        stuck = [UNITS[i] for i in range(num_units) if not done[i]]
        raise DeadlockSuspension(stuck, now)
    return now


class DeadlockSuspension(SimulationError):
    """Raised by :func:`run_plan` when chains remain unfinished; carries
    the stuck unit names so callers can re-raise their usual error."""

    def __init__(self, stuck: list[str], cycles: int) -> None:
        super().__init__(f"coalesced simulation deadlocked; unfinished "
                         f"units: {stuck}")
        self.stuck = stuck
        self.cycles = cycles
