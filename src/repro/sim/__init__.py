"""Discrete-event simulation substrate (kernel, queues, memory models)."""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.memory import (
    BusyTracker,
    DramChannel,
    Scratchpad,
    TrafficCounter,
)
from repro.sim.queues import Resource, Semaphore, Store, TokenTable

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Process",
    "SimulationError",
    "Timeout",
    "BusyTracker",
    "DramChannel",
    "Scratchpad",
    "TrafficCounter",
    "Resource",
    "Semaphore",
    "Store",
    "TokenTable",
]
