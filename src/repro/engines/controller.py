"""The GNNerator Controller (Sec III-C).

Coordinates the Dense and Graph Engines so *either* can be the producer:

* **dense-first** (GraphSAGE-Pool): Graph Engine fetches stall on the
  ``out:`` tokens the Dense Engine signals per finished source interval;
* **graph-first** (GCN, GraphSAGE): Dense Engine fetches stall on the
  ``agg:`` tokens the Graph Engine's writeback signals per finished
  destination-interval block.

The controller also owns the double-buffer credit semaphores and the
fetch-to-compute handoff channels of both engines. Tokens are
level-sensitive one-shot events ("the controller reads the state of the
respective computing engines"), credits count buffer halves.
"""

from __future__ import annotations

from repro.compiler.ir import CHANNELS
from repro.sim.kernel import Environment, SimulationError
from repro.sim.queues import Semaphore, Store, TokenTable

#: Two buffer halves per double-buffered pipeline.
DOUBLE_BUFFER_CREDITS = 2


class Controller:
    """Synchronisation fabric shared by all six unit processes."""

    def __init__(self, env: Environment,
                 credits: int = DOUBLE_BUFFER_CREDITS) -> None:
        if credits <= 0:
            raise SimulationError("need at least one buffer credit")
        self.env = env
        self.tokens = TokenTable(env)
        self._credits = {channel: Semaphore(env, initial=credits)
                         for channel in CHANNELS}
        self._channels = {channel: Store(env, capacity=max(credits, 1))
                          for channel in CHANNELS}

    def credit(self, channel: str) -> Semaphore:
        try:
            return self._credits[channel]
        except KeyError:
            raise SimulationError(f"unknown channel {channel!r}") from None

    def channel(self, channel: str) -> Store:
        try:
            return self._channels[channel]
        except KeyError:
            raise SimulationError(f"unknown channel {channel!r}") from None

    def signal(self, token: str) -> None:
        self.tokens.signal(token)

    def wait(self, token: str):
        return self.tokens.wait(token)
