"""Hardware engine models: Dense Engine, Graph Engine, Controller."""

from repro.engines.controller import DOUBLE_BUFFER_CREDITS, Controller
from repro.engines.executor import DeadlockError, execute_op, unit_process

__all__ = [
    "DOUBLE_BUFFER_CREDITS",
    "Controller",
    "DeadlockError",
    "execute_op",
    "unit_process",
]
