"""Generic unit executor: replays one unit's operation queue on the DES.

Every hardware unit — fetch, compute, writeback/store, on either engine —
follows the same contract: take the next operation, stall on its wait
tokens (and credits/handoffs), perform it (a DRAM burst or a compute
occupancy), then signal its tokens. The per-op semantics differ only in
*where the time goes*, which is what this module encodes.

An optional :class:`~repro.sim.trace.Tracer` records each operation's
busy window (after stalls, i.e. actual execution) for pipeline-overlap
analysis and Gantt rendering.
"""

from __future__ import annotations

from repro.compiler.ir import (
    AccumWritebackOp,
    AcquireOp,
    DmaOp,
    Operation,
    PopOp,
    PushOp,
    ReleaseOp,
    op_cycles,
)
from repro.engines.controller import Controller
from repro.sim.kernel import Environment, SimulationError
from repro.sim.memory import BusyTracker, DramChannel
from repro.sim.trace import Tracer


def execute_op(env: Environment, unit: str, op: Operation,
               controller: Controller, dram: DramChannel,
               tracker: BusyTracker, tracer: Tracer | None = None,
               probe=None):
    """Generator performing one operation's timing behaviour.

    ``probe`` (:class:`repro.obs.hwtel.HwProbe`) records compute
    occupancy windows; DRAM bursts are recorded by the channel itself
    (:class:`~repro.sim.memory.DramChannel`). Append-only — a probed
    run is cycle-identical to an unprobed one.
    """
    for token in op.wait:
        yield controller.wait(token)
    if isinstance(op, AcquireOp):
        yield controller.credit(op.channel).wait()
    elif isinstance(op, PopOp):
        yield controller.channel(op.channel).get()

    start = env.now
    if isinstance(op, ReleaseOp):
        controller.credit(op.channel).signal()
    elif isinstance(op, PushOp):
        yield controller.channel(op.channel).put(op.step)
    elif isinstance(op, DmaOp):
        yield from dram.transfer(unit, "read" if op.direction == "load"
                                 else "write", op.num_bytes)
    elif isinstance(op, AccumWritebackOp):
        yield from dram.transfer(unit, "write", op.num_bytes)
    elif not isinstance(op, (AcquireOp, PopOp)):
        cycles = op_cycles(op)
        if cycles:
            tracker.record(cycles)
            if probe is not None:
                probe.busy.append((unit, env.now, env.now + cycles))
            yield env.timeout(cycles)
    if tracer is not None:
        tracer.record(unit, op.label or type(op).__name__, start, env.now)
    for token in op.signal:
        controller.signal(token)


def unit_process(env: Environment, unit: str, ops: list[Operation],
                 controller: Controller, dram: DramChannel,
                 tracker: BusyTracker, tracer: Tracer | None = None,
                 probe=None):
    """Process body running a whole unit queue to completion."""
    for op in ops:
        yield from execute_op(env, unit, op, controller, dram, tracker,
                              tracer, probe)


class DeadlockError(SimulationError):
    """Raised when the event queue drains with unit queues unfinished."""
