"""Graph Processing Element cycle model (Sec III-B).

A Shard Compute Unit holds ``num_gpes`` GPEs; each GPE owns an Edge
Fetcher, Input/Modified Feature Fetchers, and SIMD Apply + Reduce units
``simd_width`` lanes wide. Edges of a shard are distributed over GPEs by
destination node, so several destinations aggregate concurrently
(inter-node parallelism) while the lanes sweep the feature block
(intra-node parallelism).

The shard's latency is set by the most-loaded GPE: each edge occupies a
GPE for ``ceil(block_width / simd_width)`` Apply/Reduce slots, plus the
pipeline fill. Load imbalance across GPEs is therefore a first-class
effect — a power-law hub column concentrates edges on one GPE and the
model charges for it.
"""

from __future__ import annotations

import numpy as np

from repro.config.accelerator import GraphEngineConfig
from repro.graph.partition import Shard


def lane_slots(width: int, simd_width: int) -> int:
    """SIMD passes needed to cover ``width`` feature dimensions."""
    if width <= 0:
        return 0
    return -(-width // simd_width)


def gpe_edge_distribution(shard: Shard, num_gpes: int) -> np.ndarray:
    """Edges assigned to each GPE (destination-hashed distribution)."""
    if shard.num_edges == 0:
        return np.zeros(num_gpes, dtype=np.int64)
    return np.bincount(shard.local_dst % num_gpes, minlength=num_gpes)


def max_gpe_edges(shard: Shard, num_gpes: int) -> int:
    """Edge count on the most-loaded GPE (the latency determinant).

    Cached on the shard per GPE count: shard grids are memoized across
    compiles (see :func:`repro.graph.partition.plan_shards`), so sweeps
    and DSE candidates sharing a grid never re-reduce the distribution.
    """
    cached = shard._gpe_loads.get(num_gpes)
    if cached is None:
        cached = int(gpe_edge_distribution(shard, num_gpes).max())
        shard._gpe_loads[num_gpes] = cached
    return cached


def shard_compute_cycles(worst_gpe_edges: int, width: int,
                         config: GraphEngineConfig,
                         attention: bool = False) -> int:
    """Cycles for the Shard Compute Unit to process one shard block.

    ``attention`` charges the extra per-edge work of computed weights:
    the Apply units sweep the feature block once more to reduce the
    logit dot products, plus one slot per edge for the softmax
    scale — static weights arrive precomputed with the edge data and
    cost nothing extra.
    """
    if worst_gpe_edges == 0:
        return 0
    slots = lane_slots(width, config.simd_width)
    if attention:
        slots += lane_slots(width, config.simd_width) + 1
    return config.pipeline_depth + worst_gpe_edges * slots


def interval_touch_cycles(num_rows: int, width: int,
                          config: GraphEngineConfig) -> int:
    """Cycles to touch every row of an interval once (accumulator init /
    self-term application), rows spread across GPEs."""
    per_gpe = -(-num_rows // config.num_gpes)
    return (config.pipeline_depth
            + per_gpe * lane_slots(width, config.simd_width))


def gpe_utilization(shard: Shard, num_gpes: int) -> float:
    """Achieved / ideal edge parallelism for one shard (1.0 = balanced)."""
    if shard.num_edges == 0:
        return 0.0
    ideal = -(-shard.num_edges // num_gpes)
    return ideal / max_gpe_edges(shard, num_gpes)
