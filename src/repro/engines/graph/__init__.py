"""Graph Engine: GPE cycle model and DES component."""

from repro.engines.graph.engine import GraphEngine
from repro.engines.graph.gpe import (
    gpe_edge_distribution,
    gpe_utilization,
    interval_touch_cycles,
    lane_slots,
    max_gpe_edges,
    shard_compute_cycles,
)

__all__ = [
    "GraphEngine",
    "gpe_edge_distribution",
    "gpe_utilization",
    "interval_touch_cycles",
    "lane_slots",
    "max_gpe_edges",
    "shard_compute_cycles",
]
