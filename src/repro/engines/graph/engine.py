"""Graph Engine (Sec III-B): shard pipeline over four unit groups.

Three unit processes realise the paper's four units (edge fetch and
feature fetch are lowered into one ``graph.fetch`` queue — they run in
parallel in hardware and their DMA bursts are serialised only by the
shared channel, which the queue models):

* ``graph.fetch`` — Shard Edge Fetch + Shard Feature Fetch Units,
  prefetching shard ``k+1`` into the spare buffer halves while shard
  ``k`` computes (credit-gated double buffering);
* ``graph.compute`` — the Shard Compute Unit's GPEs
  (:mod:`repro.engines.graph.gpe` provides the cycle model);
* ``graph.writeback`` — the Shard Writeback Unit, publishing finished
  (and spilled) accumulator intervals to the shared feature memory.
"""

from __future__ import annotations

from repro.compiler.ir import Operation
from repro.config.accelerator import GraphEngineConfig
from repro.engines.controller import Controller
from repro.engines.executor import unit_process
from repro.sim.kernel import Environment, Process
from repro.sim.memory import BusyTracker, DramChannel
from repro.sim.trace import Tracer

UNIT_NAMES = ("graph.fetch", "graph.compute", "graph.writeback")


class GraphEngine:
    """Spawns the Graph Engine's unit processes over compiled queues."""

    def __init__(self, env: Environment, config: GraphEngineConfig,
                 controller: Controller, dram: DramChannel) -> None:
        self.env = env
        self.config = config
        self.controller = controller
        self.dram = dram
        self.trackers = {unit: BusyTracker() for unit in UNIT_NAMES}
        self.processes: dict[str, Process] = {}

    def launch(self, queues: dict[str, list[Operation]],
               tracer: Tracer | None = None, probe=None) -> None:
        for unit in UNIT_NAMES:
            self.processes[unit] = self.env.process(
                unit_process(self.env, unit, queues.get(unit, []),
                             self.controller, self.dram,
                             self.trackers[unit], tracer, probe),
                name=unit)

    @property
    def compute_busy_cycles(self) -> int:
        return self.trackers["graph.compute"].busy_cycles

    def finished(self) -> bool:
        return all(p.triggered for p in self.processes.values())
