"""Analytical systolic-array GEMM timing (the SCALE-Sim substitute).

Models an ``R x C`` MAC array computing ``out[M, N] = in[M, K] @ W[K, N]``
under the two classic dataflows SCALE-Sim supports:

* **weight-stationary (ws)** — a ``K x N`` weight tile is pinned on the
  array (``K`` along rows, ``N`` along columns) and the ``M`` input rows
  stream through. Folds: ``ceil(K/R) * ceil(N/C)`` tiles; each tile costs
  the weight-load time (``R`` cycles, rows shifted in), the ``M``-cycle
  stream, and the ``R + C - 2`` skew fill/drain.
* **output-stationary (os)** — an ``M x N`` block of outputs is pinned
  (``M`` along rows, ``N`` along columns) and the ``K`` contraction
  streams through: ``ceil(M/R) * ceil(N/C)`` tiles of ``K + R + C - 2``
  cycles.

The paper's Fig 4 observation — a feature block smaller than the array
width of 64 under-utilises the Dense Engine — falls out of the ws
mapping: ``K = B`` maps to the row dimension, so ``B = 32`` fills half
the rows but still pays full per-tile overheads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.accelerator import ConfigError, DenseEngineConfig


@dataclass(frozen=True)
class GemmShape:
    """Dimensions of one GEMM: ``out[M, N] = in[M, K] @ W[K, N]``."""

    m: int
    k: int
    n: int

    def __post_init__(self) -> None:
        if self.m <= 0 or self.k <= 0 or self.n <= 0:
            raise ConfigError(f"GEMM dims must be positive, got {self}")

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n

    @property
    def flops(self) -> int:
        return 2 * self.macs


@dataclass(frozen=True)
class GemmTiming:
    """Cycle cost and efficiency of one GEMM on a given array."""

    shape: GemmShape
    cycles: int
    tiles: int
    utilization: float  # achieved MACs / (cycles * array MACs)

    @property
    def macs(self) -> int:
        return self.shape.macs


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def ws_gemm_cycles(shape: GemmShape, rows: int, cols: int) -> GemmTiming:
    """Weight-stationary timing: K on rows, N on columns, M streamed."""
    fold_k = _ceil_div(shape.k, rows)
    fold_n = _ceil_div(shape.n, cols)
    tiles = fold_k * fold_n
    per_tile = rows + shape.m + rows + cols - 2
    cycles = tiles * per_tile
    utilization = shape.macs / (cycles * rows * cols)
    return GemmTiming(shape=shape, cycles=cycles, tiles=tiles,
                      utilization=min(utilization, 1.0))


def os_gemm_cycles(shape: GemmShape, rows: int, cols: int) -> GemmTiming:
    """Output-stationary timing: M on rows, N on columns, K streamed."""
    fold_m = _ceil_div(shape.m, rows)
    fold_n = _ceil_div(shape.n, cols)
    tiles = fold_m * fold_n
    per_tile = shape.k + rows + cols - 2
    cycles = tiles * per_tile
    utilization = shape.macs / (cycles * rows * cols)
    return GemmTiming(shape=shape, cycles=cycles, tiles=tiles,
                      utilization=min(utilization, 1.0))


def gemm_timing(shape: GemmShape,
                config: DenseEngineConfig) -> GemmTiming:
    """Timing under the configured dataflow.

    ``"auto"`` (the default) picks the cheaper of the two mappings per
    GEMM, as a SCALE-Sim-style mapper would: weight-stationary wins for
    the blocked regime (small K shared across thousands of node rows —
    Sec IV-B's "increases reuse for the Dense Engine"), output-stationary
    wins for the conventional unblocked regime (huge K streamed through
    pinned output tiles, partial sums never leaving the array).
    """
    if config.dataflow == "ws":
        return ws_gemm_cycles(shape, config.rows, config.cols)
    if config.dataflow == "os":
        return os_gemm_cycles(shape, config.rows, config.cols)
    ws = ws_gemm_cycles(shape, config.rows, config.cols)
    os_ = os_gemm_cycles(shape, config.rows, config.cols)
    return ws if ws.cycles <= os_.cycles else os_


def activation_cycles(rows: int, cols: int,
                      config: DenseEngineConfig) -> int:
    """The 1-D activation unit processes one output row per cycle as
    results drain; cost is the drain length plus pipeline fill."""
    del cols  # the unit is as wide as the array's column count
    return rows + config.cols
