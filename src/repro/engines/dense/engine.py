"""Dense Engine (Sec III-A): systolic array + scratchpads + activation.

At simulation time the Dense Engine is three unit processes sharing the
accelerator's controller and DRAM channel:

* ``dense.fetch`` — fills the double-buffered input and weight
  scratchpads through the engine's *own* memory controller (the feature
  HyGCN's combination engine lacks, and the reason GNNerator's Dense
  Engine can act as a producer);
* ``dense.compute`` — the systolic array (GEMM passes timed by
  :mod:`repro.engines.dense.systolic`) and the 1-D activation unit;
* ``dense.store`` — drains outputs and partial-sum spills.
"""

from __future__ import annotations

from repro.compiler.ir import Operation
from repro.config.accelerator import DenseEngineConfig
from repro.engines.controller import Controller
from repro.engines.executor import unit_process
from repro.sim.kernel import Environment, Process
from repro.sim.memory import BusyTracker, DramChannel
from repro.sim.trace import Tracer

UNIT_NAMES = ("dense.fetch", "dense.compute", "dense.store")


class DenseEngine:
    """Spawns the Dense Engine's unit processes over compiled queues."""

    def __init__(self, env: Environment, config: DenseEngineConfig,
                 controller: Controller, dram: DramChannel) -> None:
        self.env = env
        self.config = config
        self.controller = controller
        self.dram = dram
        self.trackers = {unit: BusyTracker() for unit in UNIT_NAMES}
        self.processes: dict[str, Process] = {}

    def launch(self, queues: dict[str, list[Operation]],
               tracer: Tracer | None = None, probe=None) -> None:
        for unit in UNIT_NAMES:
            self.processes[unit] = self.env.process(
                unit_process(self.env, unit, queues.get(unit, []),
                             self.controller, self.dram,
                             self.trackers[unit], tracer, probe),
                name=unit)

    @property
    def compute_busy_cycles(self) -> int:
        return self.trackers["dense.compute"].busy_cycles

    def finished(self) -> bool:
        return all(p.triggered for p in self.processes.values())
