"""Dense Engine: systolic GEMM timing model and DES component."""

from repro.engines.dense.engine import DenseEngine
from repro.engines.dense.systolic import (
    GemmShape,
    GemmTiming,
    activation_cycles,
    gemm_timing,
    os_gemm_cycles,
    ws_gemm_cycles,
)

__all__ = [
    "DenseEngine",
    "GemmShape",
    "GemmTiming",
    "activation_cycles",
    "gemm_timing",
    "os_gemm_cycles",
    "ws_gemm_cycles",
]
