"""Workload descriptions: (dataset, network, dataflow knobs).

A :class:`WorkloadSpec` names everything needed to reproduce one bar of
Fig 3 / one cell of Table V: which graph dataset, which GNN, and the
dataflow parameters (feature-block size, shard traversal order).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.accelerator import ConfigError

#: Traversal orders for the 2-D shard grid (Sec IV-A, Table I).
SRC_STATIONARY = "src-stationary"
DST_STATIONARY = "dst-stationary"
TRAVERSAL_ORDERS = (SRC_STATIONARY, DST_STATIONARY)


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark point: a network run on a dataset with dataflow knobs.

    ``feature_block`` of ``None`` selects the conventional dataflow
    (B = D). ``traversal`` picks how the shard grid is walked; the paper's
    default (and Algorithm 1) is destination-major.
    """

    dataset: str
    network: str
    feature_block: int | None = 64
    traversal: str = DST_STATIONARY
    hidden_dim: int = 16

    def __post_init__(self) -> None:
        if self.traversal not in TRAVERSAL_ORDERS:
            raise ConfigError(
                f"traversal must be one of {TRAVERSAL_ORDERS}, "
                f"got {self.traversal!r}")
        if self.feature_block is not None and self.feature_block <= 0:
            raise ConfigError("feature_block must be positive or None")
        if self.hidden_dim <= 0:
            raise ConfigError("hidden_dim must be positive")

    @property
    def label(self) -> str:
        """Short benchmark label in the paper's Fig 3 style.

        Examples: ``cora-gcn``, ``citeseer-gsage-max``, ``pub-gcn``.
        """
        short_dataset = {"pubmed": "pub"}.get(self.dataset, self.dataset)
        short_network = {
            "gcn": "gcn",
            "graphsage": "gsage",
            "graphsage-pool": "gsage-max",
        }.get(self.network, self.network)  # gat / gin pass through
        return f"{short_dataset}-{short_network}"

    def with_block(self, block: int | None) -> "WorkloadSpec":
        import dataclasses
        return dataclasses.replace(self, feature_block=block)

    def with_hidden_dim(self, hidden_dim: int) -> "WorkloadSpec":
        import dataclasses
        return dataclasses.replace(self, hidden_dim=hidden_dim)


#: The nine Fig 3 benchmark points: 3 datasets x 3 networks (Table II x III).
FIG3_DATASETS = ("cora", "citeseer", "pubmed")
FIG3_NETWORKS = ("gcn", "graphsage", "graphsage-pool")

#: Zoo extensions beyond the paper's Table III, runnable through every
#: Fig-3-style grid via the ``networks`` parameter / ``--network`` flag.
EXTENSION_NETWORKS = ("gat", "gin")


def fig3_workloads(feature_block: int | None = 64,
                   networks: tuple[str, ...] = FIG3_NETWORKS
                   ) -> list[WorkloadSpec]:
    """A Fig-3-style benchmark suite, in the paper's plotting order.

    The default is the paper's nine workloads; pass ``networks`` to run
    the same (dataset x network) grid over zoo extensions, e.g.
    ``("gat",)`` or ``("gin",)``.
    """
    return [
        WorkloadSpec(dataset=dataset, network=network,
                     feature_block=feature_block)
        for dataset in FIG3_DATASETS
        for network in networks
    ]


def fig4_workloads() -> list[WorkloadSpec]:
    """The Fig 4 sweep suite: the Fig 3 nine plus wider-hidden variants
    ("a large number of various networks and datasets", Sec VI-A)."""
    specs = fig3_workloads()
    for dataset in FIG3_DATASETS:
        for network in ("gcn", "graphsage"):
            specs.append(WorkloadSpec(dataset=dataset, network=network,
                                      hidden_dim=128))
    return specs


def fig5_workloads(hidden_dims: tuple[int, ...] = (16, 128, 1024),
                   network: str = "gcn") -> list[WorkloadSpec]:
    """The Fig 5 scaling-study points: datasets x hidden dimensions."""
    return [
        WorkloadSpec(dataset=dataset, network=network, hidden_dim=hidden)
        for hidden in hidden_dims
        for dataset in FIG3_DATASETS
    ]


#: Paper Fig 4 block sizes swept (B = 64 is the baseline).
FIG4_BLOCKS = (32, 64, 128, 256, 1024, 2048, 4096)

#: Paper Fig 5 hidden dimensions swept.
FIG5_HIDDEN_DIMS = (16, 128, 1024)
