"""Configuration layer: hardware platforms and workload specifications."""

from repro.config.accelerator import (
    EDGE_BYTES,
    ELEM_BYTES,
    KIB,
    MIB,
    ConfigError,
    DenseEngineConfig,
    DramConfig,
    GNNeratorConfig,
    GraphEngineConfig,
)
from repro.config.overrides import (
    apply_overrides,
    freeze_overrides,
    knob_paths,
    overrides_between,
)
from repro.config.platforms import (
    GpuConfig,
    HyGCNConfig,
    gnnerator_config,
    hygcn_config,
    next_generation_variants,
    platform_table,
    rtx_2080_ti_config,
)
from repro.config.workload import (
    DST_STATIONARY,
    FIG3_DATASETS,
    FIG3_NETWORKS,
    SRC_STATIONARY,
    TRAVERSAL_ORDERS,
    WorkloadSpec,
    fig3_workloads,
    fig5_workloads,
)

__all__ = [
    "EDGE_BYTES",
    "ELEM_BYTES",
    "KIB",
    "MIB",
    "ConfigError",
    "DenseEngineConfig",
    "DramConfig",
    "GNNeratorConfig",
    "GraphEngineConfig",
    "apply_overrides",
    "freeze_overrides",
    "knob_paths",
    "overrides_between",
    "GpuConfig",
    "HyGCNConfig",
    "gnnerator_config",
    "hygcn_config",
    "next_generation_variants",
    "platform_table",
    "rtx_2080_ti_config",
    "DST_STATIONARY",
    "FIG3_DATASETS",
    "FIG3_NETWORKS",
    "SRC_STATIONARY",
    "TRAVERSAL_ORDERS",
    "WorkloadSpec",
    "fig3_workloads",
    "fig5_workloads",
]
