"""Hardware configuration dataclasses for GNNerator and its baselines.

All cycle arithmetic in the simulator is done in core clock cycles. The
configurations below record physical parameters (sizes in bytes, bandwidth
in bytes/second, clock in GHz) and expose derived quantities (bytes per
cycle, peak FLOP/s) as properties so every consumer derives them the same
way.

The default values reproduce Table IV of the paper:

* Dense Engine: 64x64 MAC systolic array @ 1 GHz (8.2 TFLOP/s), 6 MiB of
  double-buffered scratchpad split between input/weight/output buffers.
* Graph Engine: 32 GPEs x 32 SIMD lanes @ 1 GHz (2.0 TFLOP/s), 24 MiB of
  double-buffered scratchpad split between source-feature, destination-
  feature (accumulator) and edge buffers.
* Shared feature memory: 256 GB/s DRAM.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Bytes per scalar feature element (fp32 end to end, as in Table II sizes).
ELEM_BYTES = 4

#: Bytes per edge record: 32-bit source id + 32-bit destination id.
EDGE_BYTES = 8


class ConfigError(ValueError):
    """Raised when a configuration is internally inconsistent."""


@dataclass(frozen=True)
class DenseEngineConfig:
    """Systolic-array feature-extraction engine (Sec III-A).

    The engine is a ``rows x cols`` grid of MAC units fed by double-buffered
    input and weight scratchpads, draining through a 1-D activation unit
    into a double-buffered output scratchpad. ``dataflow`` selects the
    systolic schedule modelled by :mod:`repro.engines.dense.systolic`.
    """

    rows: int = 64
    cols: int = 64
    input_buffer_bytes: int = 2 * MIB
    weight_buffer_bytes: int = 2 * MIB
    output_buffer_bytes: int = 2 * MIB
    # "auto" lets the mapper choose weight- or output-stationary per
    # GEMM; mapping the contraction (feature block) onto the array's
    # rows under ws is what makes B >= array width the efficient
    # operating point (Fig 4).
    dataflow: str = "auto"  # "ws", "os", or "auto"
    frequency_ghz: float = 1.0

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ConfigError("systolic array dimensions must be positive")
        if self.dataflow not in ("os", "ws", "auto"):
            raise ConfigError(f"unknown dense dataflow {self.dataflow!r}")
        if self.frequency_ghz <= 0:
            raise ConfigError("dense frequency_ghz must be positive")
        for name in ("input_buffer_bytes", "weight_buffer_bytes",
                     "output_buffer_bytes"):
            if getattr(self, name) < 2 * ELEM_BYTES:
                raise ConfigError(
                    f"dense {name} of {getattr(self, name)} B cannot "
                    f"double-buffer even one fp32 element "
                    f"(needs >= {2 * ELEM_BYTES} B)")

    @property
    def macs(self) -> int:
        """Number of MAC units in the array."""
        return self.rows * self.cols

    @property
    def peak_flops(self) -> float:
        """Peak FLOP/s (each MAC is 2 FLOPs per cycle)."""
        return self.macs * 2 * self.frequency_ghz * 1e9

    @property
    def total_buffer_bytes(self) -> int:
        return (self.input_buffer_bytes + self.weight_buffer_bytes
                + self.output_buffer_bytes)

    def scaled(self, factor: int) -> "DenseEngineConfig":
        """Return a copy with both array dimensions scaled by ``factor``.

        Used by the Fig 5 "more DNN Engine compute" next-generation variant,
        which doubles both the height and the width of the array.
        """
        return dataclasses.replace(
            self, rows=self.rows * factor, cols=self.cols * factor)


@dataclass(frozen=True)
class GraphEngineConfig:
    """Shard-oriented aggregation engine (Sec III-B).

    ``num_gpes`` Graph Processing Elements each own ``simd_width`` Apply /
    Reduce lanes; edges of a shard are distributed over GPEs so multiple
    destination nodes are processed concurrently (inter-node parallelism)
    while the SIMD lanes cover feature dimensions (intra-node parallelism).

    The scratchpad is split three ways and every buffer is double-buffered:
    while shard *k* is being computed, shard *k+1* is prefetched into the
    other half. Capacity planning therefore uses half of each buffer.
    """

    num_gpes: int = 32
    simd_width: int = 32
    src_feature_buffer_bytes: int = 11 * MIB
    dst_feature_buffer_bytes: int = 11 * MIB
    edge_buffer_bytes: int = 2 * MIB
    frequency_ghz: float = 1.0
    #: Pipeline fill latency of a GPE (edge decode -> fetch -> apply -> reduce).
    pipeline_depth: int = 4

    def __post_init__(self) -> None:
        if self.num_gpes <= 0 or self.simd_width <= 0:
            raise ConfigError("GPE and SIMD dimensions must be positive")
        if self.frequency_ghz <= 0:
            raise ConfigError("graph frequency_ghz must be positive")
        if self.pipeline_depth < 0:
            raise ConfigError("pipeline_depth cannot be negative")
        # A zero-sized *half* deadlocks shard planning even when the
        # whole buffer is nominally positive, so validate the split the
        # double-buffered datapath actually sees.
        for name, grain in (("src_feature_buffer_bytes", ELEM_BYTES),
                            ("dst_feature_buffer_bytes", ELEM_BYTES),
                            ("edge_buffer_bytes", EDGE_BYTES)):
            if getattr(self, name) < 2 * grain:
                raise ConfigError(
                    f"graph {name} of {getattr(self, name)} B cannot "
                    f"double-buffer even one record "
                    f"(needs >= {2 * grain} B)")

    @property
    def lanes(self) -> int:
        """Total SIMD lanes across all GPEs."""
        return self.num_gpes * self.simd_width

    @property
    def peak_flops(self) -> float:
        """Peak FLOP/s (each lane does one MAC = 2 FLOPs per cycle)."""
        return self.lanes * 2 * self.frequency_ghz * 1e9

    @property
    def total_buffer_bytes(self) -> int:
        return (self.src_feature_buffer_bytes + self.dst_feature_buffer_bytes
                + self.edge_buffer_bytes)

    @property
    def usable_src_bytes(self) -> int:
        """Source-feature bytes available to one shard (double buffering)."""
        return self.src_feature_buffer_bytes // 2

    @property
    def usable_dst_bytes(self) -> int:
        """Destination-accumulator bytes available to one shard."""
        return self.dst_feature_buffer_bytes // 2

    @property
    def usable_edge_bytes(self) -> int:
        """Edge-record bytes available to one shard."""
        return self.edge_buffer_bytes // 2

    def scaled_memory(self, factor: int) -> "GraphEngineConfig":
        """Return a copy with all scratchpads scaled by ``factor``.

        Used by the Fig 5 "more Graph Engine memory" variant.
        """
        return dataclasses.replace(
            self,
            src_feature_buffer_bytes=self.src_feature_buffer_bytes * factor,
            dst_feature_buffer_bytes=self.dst_feature_buffer_bytes * factor,
            edge_buffer_bytes=self.edge_buffer_bytes * factor)


@dataclass(frozen=True)
class DramConfig:
    """Shared feature-memory DRAM channel.

    Modelled as a bandwidth server: a burst of ``n`` bytes occupies the
    channel for ``n / bytes_per_cycle`` cycles after an initial
    ``burst_latency_cycles`` access latency.
    """

    bandwidth_bytes_per_s: float = 256e9
    burst_latency_cycles: int = 100
    frequency_ghz: float = 1.0

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigError(
                f"DRAM bandwidth must be positive, got "
                f"{self.bandwidth_bytes_per_s!r}")
        if self.burst_latency_cycles < 0:
            raise ConfigError("burst latency cannot be negative")
        if self.frequency_ghz <= 0:
            raise ConfigError("DRAM frequency_ghz must be positive")

    @property
    def bytes_per_cycle(self) -> float:
        """Sustained bytes transferred per core clock cycle."""
        return self.bandwidth_bytes_per_s / (self.frequency_ghz * 1e9)

    def transfer_cycles(self, num_bytes: int) -> int:
        """Cycles for one burst of ``num_bytes`` (latency + occupancy)."""
        if num_bytes < 0:
            raise ConfigError("cannot transfer a negative byte count")
        if num_bytes == 0:
            return 0
        occupancy = int(round(num_bytes / self.bytes_per_cycle))
        return self.burst_latency_cycles + max(occupancy, 1)

    def scaled(self, factor: int) -> "DramConfig":
        """Return a copy with bandwidth scaled by ``factor`` (Fig 5)."""
        return dataclasses.replace(
            self,
            bandwidth_bytes_per_s=self.bandwidth_bytes_per_s * factor)


@dataclass(frozen=True)
class GNNeratorConfig:
    """Complete GNNerator platform: both engines plus the shared DRAM."""

    name: str = "gnnerator"
    dense: DenseEngineConfig = dataclasses.field(
        default_factory=DenseEngineConfig)
    graph: GraphEngineConfig = dataclasses.field(
        default_factory=GraphEngineConfig)
    dram: DramConfig = dataclasses.field(default_factory=DramConfig)
    #: Default feature-block size; ``None`` means "disable blocking"
    #: (equivalently B = D, the conventional dataflow of Sec IV-A).
    feature_block: int | None = 64
    #: HyGCN-style window sparsity elimination: gather only the source
    #: features each shard actually touches instead of whole intervals.
    #: The paper notes this optimisation "is orthogonal to our work and
    #: can be added to GNNerator" (Sec VI-A) — off by default to match
    #: the evaluated configuration.
    sparsity_elimination: bool = False

    def __post_init__(self) -> None:
        if self.feature_block is not None and self.feature_block <= 0:
            raise ConfigError("feature_block must be positive or None")
        if self.feature_block is not None:
            # Shard planning needs at least one node's block per
            # scratchpad half; rejecting the mismatch here (with the
            # numbers) beats a GraphError deep inside a sweep worker.
            per_node = self.feature_block * ELEM_BYTES
            for name, usable in (
                    ("src_feature_buffer_bytes", self.graph.usable_src_bytes),
                    ("dst_feature_buffer_bytes",
                     self.graph.usable_dst_bytes)):
                if per_node > usable:
                    raise ConfigError(
                        f"feature_block={self.feature_block} needs "
                        f"{per_node} B per node but half of graph."
                        f"{name} holds only {usable} B — shrink the "
                        f"block or grow the buffer")

    @property
    def peak_flops(self) -> float:
        return self.dense.peak_flops + self.graph.peak_flops

    @property
    def on_chip_bytes(self) -> int:
        return self.dense.total_buffer_bytes + self.graph.total_buffer_bytes

    def with_feature_block(self, block: int | None) -> "GNNeratorConfig":
        """Return a copy using a different feature-block size."""
        return dataclasses.replace(self, feature_block=block)

    def describe(self) -> str:
        """One-line summary used by reports (mirrors a Table IV column)."""
        return (f"{self.name}: {self.peak_flops / 1e12:.1f} TFLOP/s "
                f"({self.graph.peak_flops / 1e12:.0f} Graph / "
                f"{self.dense.peak_flops / 1e12:.0f} Dense), "
                f"{self.on_chip_bytes / MIB:.0f} MiB on-chip, "
                f"{self.dram.bandwidth_bytes_per_s / 1e9:.0f} GB/s DRAM")
