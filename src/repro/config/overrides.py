"""Flat knob overrides over the nested GNNerator configuration.

Design-space exploration needs to express "the Table IV baseline, but
with a 128-wide systolic array and half the DRAM bandwidth" as *data* —
hashable, JSON-able and picklable — so a candidate design can ride
inside a :class:`~repro.sweep.plan.SweepPoint` and the persistent
result cache can tell candidates apart. This module defines that
format: a flat mapping from dotted knob paths (``"dense.rows"``,
``"graph.num_gpes"``, ``"dram.bandwidth_bytes_per_s"``, or the
top-level ``"feature_block"``) to numeric values, applied on top of a
base :class:`GNNeratorConfig` with :func:`dataclasses.replace` — so
every ``__post_init__`` validity check fires on the assembled
candidate and degenerate designs are rejected with a
:class:`ConfigError` before any simulation starts.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Mapping

from repro.config.accelerator import ConfigError, GNNeratorConfig

#: The nested config sections knob paths may address.
SECTIONS = ("dense", "graph", "dram")

#: Per-section field names only the *simulator* reads. Lowering bakes
#: every op's cycle cost from structural config (array shape, GPE
#: count, SIMD width, pipeline depth, buffer budgets) but clock
#: frequencies enter only when cycles are converted to seconds, and
#: the whole DRAM section enters only through the event kernel /
#: coalesced chains (see ``Program.coalesced_plan``). Anything listed
#: here can change without invalidating a compiled program.
_SIMULATE_ONLY_FIELDS = ("frequency_ghz",)

#: Compile-product families a knob invalidates — see
#: :func:`knob_dependencies`. Ordered roughly from cheapest to
#: recompute ("simulate" invalidates nothing compiled) to most
#: expensive ("grid" forces a fresh shard scatter).
KNOB_FAMILIES = ("simulate", "dense", "graph-compute", "grid")

#: Graph Engine fields that determine shard-grid *geometry* (interval
#: size, scatter, per-shard edge lists) rather than just op cycles.
_GRID_FIELDS = ("src_feature_buffer_bytes", "dst_feature_buffer_bytes",
                "edge_buffer_bytes")

#: Frozen, canonical override form: sorted ``(path, value)`` pairs.
FrozenOverrides = tuple[tuple[str, float], ...]


def _numeric_fields(section_obj: Any) -> dict[str, float]:
    """Numeric (int/float, non-bool) fields of one config section."""
    out: dict[str, float] = {}
    for f in dataclasses.fields(section_obj):
        value = getattr(section_obj, f.name)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[f.name] = value
    return out


def knob_paths(base: GNNeratorConfig | None = None) -> tuple[str, ...]:
    """Every overridable knob path of ``base`` (default Table IV)."""
    if base is None:
        base = GNNeratorConfig()
    paths = ["feature_block"]
    for section in SECTIONS:
        for name in _numeric_fields(getattr(base, section)):
            paths.append(f"{section}.{name}")
    return tuple(paths)


def _coerce(path: str, current: object, value: object) -> float:
    """Type-check an override value against the field it replaces."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError(
            f"override {path!r} must be numeric, got {value!r}")
    if isinstance(current, int) and isinstance(value, float):
        if not value.is_integer():
            raise ConfigError(
                f"override {path!r} must be an integer, got {value!r}")
        return int(value)
    return value


def apply_overrides(base: GNNeratorConfig,
                    overrides: Mapping[str, float] | FrozenOverrides
                    ) -> GNNeratorConfig:
    """Build the candidate config ``base`` + ``overrides``.

    Raises :class:`ConfigError` for unknown paths, non-numeric values,
    or any candidate the config dataclasses themselves reject (zero
    buffers, dead DRAM channels, blocks that overflow a scratchpad
    half, ...) — the caller gets one clear message per bad candidate
    instead of a crash mid-search.
    """
    if not isinstance(overrides, Mapping):
        overrides = dict(overrides)
    sections: dict[str, dict[str, float]] = {}
    top: dict[str, float] = {}
    for path, value in overrides.items():
        if "." in path:
            section, field = path.split(".", 1)
            if section not in SECTIONS:
                raise ConfigError(
                    f"unknown config section {section!r} in override "
                    f"{path!r}; sections: {', '.join(SECTIONS)}")
            section_obj = getattr(base, section)
            known = _numeric_fields(section_obj)
            if field not in known:
                raise ConfigError(
                    f"unknown knob {path!r}; {section} knobs: "
                    f"{', '.join(sorted(known))}")
            sections.setdefault(section, {})[field] = _coerce(
                path, known[field], value)
        elif path == "feature_block":
            top[path] = _coerce(path, 1, value)
        else:
            raise ConfigError(
                f"unknown knob {path!r}; top-level knobs: feature_block")
    replacements: dict[str, object] = dict(top)
    for section, fields in sections.items():
        replacements[section] = dataclasses.replace(
            getattr(base, section), **fields)
    return dataclasses.replace(base, **replacements)


def freeze_overrides(overrides: Mapping[str, float]
                     | Iterable[tuple[str, float]]) -> FrozenOverrides:
    """Canonical hashable form: ``(path, value)`` pairs sorted by path."""
    if isinstance(overrides, Mapping):
        items = overrides.items()
    else:
        items = list(overrides)
    return tuple(sorted((str(path), value) for path, value in items))


def overrides_between(base: GNNeratorConfig,
                      other: GNNeratorConfig) -> dict[str, float]:
    """Express ``other`` as knob overrides on ``base``.

    Walks every numeric knob path and records the differing values —
    how the Fig 5 next-generation variants are mapped into the DSE
    candidate format for frontier comparison. Differences the override
    format cannot carry — ``feature_block=None``, or any non-numeric
    field other than the cosmetic ``name`` — raise instead of being
    silently dropped, so a config is never mislabelled as another.
    """
    diff: dict[str, float] = {}
    if other.feature_block != base.feature_block:
        if other.feature_block is None:
            raise ConfigError(
                "cannot express feature_block=None as a numeric override")
        diff["feature_block"] = other.feature_block
    inexpressible = []
    for f in dataclasses.fields(base):
        if f.name in ("name", "feature_block") or f.name in SECTIONS:
            continue
        if getattr(base, f.name) != getattr(other, f.name):
            inexpressible.append(f.name)
    for section in SECTIONS:
        base_section = getattr(base, section)
        other_section = getattr(other, section)
        base_fields = _numeric_fields(base_section)
        other_fields = _numeric_fields(other_section)
        for name, value in other_fields.items():
            if value != base_fields.get(name):
                diff[f"{section}.{name}"] = value
        for f in dataclasses.fields(base_section):
            if f.name in other_fields:
                continue
            if getattr(base_section, f.name) != getattr(other_section,
                                                        f.name):
                inexpressible.append(f"{section}.{f.name}")
    if inexpressible:
        raise ConfigError(
            f"configs differ in non-numeric fields {inexpressible}, "
            f"which knob overrides cannot express")
    return diff


def knob_dependencies(base: GNNeratorConfig | None = None
                      ) -> dict[str, str]:
    """Map every knob path to the compile-product family it invalidates.

    The families (:data:`KNOB_FAMILIES`) tag what moving a knob forces
    the compiler to redo — the contract incremental recompilation is
    built on:

    * ``"simulate"`` — nothing compiled: DRAM knobs and clock
      frequencies are read only at simulation time, so two candidates
      differing solely in these share one :class:`Program` outright
      (each DRAM config lazily gets its own coalesced action chains).
    * ``"dense"`` — Dense Engine op emission (GEMM tiling, residency)
      changes; shard grids and baked aggregation weights survive.
    * ``"graph-compute"`` — Graph Engine op *cycles* change (GPE count,
      SIMD width, pipeline depth) but the shard grid geometry does not;
      the memoized grid and its per-shard statistics are reused.
    * ``"grid"`` — buffer budgets or the feature block move the
      interval size: a fresh scatter may be needed (still memoized per
      resolved interval on the graph).
    """
    deps: dict[str, str] = {"feature_block": "grid"}
    for path in knob_paths(base):
        if path == "feature_block":
            continue
        section, name = path.split(".", 1)
        if section == "dram" or name in _SIMULATE_ONLY_FIELDS:
            deps[path] = "simulate"
        elif section == "dense":
            deps[path] = "dense"
        elif name in _GRID_FIELDS:
            deps[path] = "grid"
        else:
            deps[path] = "graph-compute"
    return deps


def compile_relevant_config(config: GNNeratorConfig
                            ) -> tuple[tuple[str, object], ...]:
    """Canonical projection of the config fields compilation reads.

    Two configs with equal projections produce byte-identical compiled
    programs for the same workload — the key both the in-process
    program memo (``Harness._compiled``) and the persistent program
    store (:mod:`repro.compiler.store`) hash instead of the full
    config, so DSE candidates differing only in simulate-only knobs
    (the DRAM section, clock frequencies, the cosmetic ``name``) map to
    one compile. Returned as sorted ``(path, value)`` pairs: hashable,
    JSON-able, order-stable.
    """
    entries: list[tuple[str, object]] = [
        ("feature_block", config.feature_block),
        ("sparsity_elimination", config.sparsity_elimination),
    ]
    for section in ("dense", "graph"):
        section_obj = getattr(config, section)
        for f in dataclasses.fields(section_obj):
            if f.name in _SIMULATE_ONLY_FIELDS:
                continue
            entries.append((f"{section}.{f.name}",
                            getattr(section_obj, f.name)))
    return tuple(sorted(entries))
