"""Platform presets reproducing Table IV of the paper.

Three compute platforms are evaluated:

* **GNNerator** — 10 TFLOP/s (2 Graph + 8 Dense), 30 MiB on-chip
  (24 Graph + 6 Dense), 256 GB/s DRAM.
* **NVIDIA RTX 2080 Ti** — 13.45 TFLOP/s, 29.5 MiB on-chip, 616 GB/s.
* **HyGCN** — 9 TFLOP/s (1 Aggregation + 8 Combination), 24 MiB, 256 GB/s.

The Fig 5 "next-generation" variants are provided by
:func:`next_generation_variants`: one doubles Graph Engine memory, one
doubles the Dense Engine array in both dimensions, one doubles feature
DRAM bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.accelerator import (
    MIB,
    ConfigError,
    DenseEngineConfig,
    DramConfig,
    GNNeratorConfig,
    GraphEngineConfig,
)


def gnnerator_config(feature_block: int | None = 64,
                     name: str = "gnnerator") -> GNNeratorConfig:
    """The baseline GNNerator platform of Table IV.

    ``feature_block=None`` yields the "GNNerator w/o Feature Blocking"
    variant of Fig 3 (conventional dataflow, B = D).
    """
    return GNNeratorConfig(
        name=name,
        dense=DenseEngineConfig(),
        graph=GraphEngineConfig(),
        dram=DramConfig(),
        feature_block=feature_block,
    )


@dataclass(frozen=True)
class GpuConfig:
    """Analytic model parameters for the RTX 2080 Ti baseline.

    The GPU runs DGL-on-PyTorch; its latency on small citation graphs is
    dominated not by peak FLOPs but by per-kernel launch/framework overhead
    and by the low efficiency of gather/scatter aggregation kernels. Those
    mechanisms are explicit parameters here (see
    :mod:`repro.baselines.gpu` for how they are applied).
    """

    name: str = "rtx-2080-ti"
    peak_flops: float = 13.45e12
    dram_bandwidth_bytes_per_s: float = 616e9
    on_chip_bytes: int = int(29.5 * MIB)
    num_sms: int = 68
    #: Achievable fraction of peak FLOPs for dense GEMM at full occupancy.
    gemm_efficiency: float = 0.60
    #: Achievable fraction of peak DRAM bandwidth for regular streams.
    stream_efficiency: float = 0.75
    #: Achievable fraction of peak DRAM bandwidth for irregular
    #: gather/scatter (sparse aggregation); literature reports 10-25%.
    gather_efficiency: float = 0.12
    #: Fixed host-side cost per launched kernel (DGL/PyTorch dispatch,
    #: launch, sync) in seconds. Measured DGL forward passes on Cora-sized
    #: graphs are dominated by this term.
    kernel_overhead_s: float = 60e-6
    #: Minimum rows of work per SM wave; smaller launches underutilise.
    threads_per_sm: int = 1024

    def __post_init__(self) -> None:
        for name in ("gemm_efficiency", "stream_efficiency",
                     "gather_efficiency"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ConfigError(f"{name} must be in (0, 1]")


@dataclass(frozen=True)
class HyGCNConfig:
    """Analytic model parameters for the HyGCN baseline (HPCA 2020).

    HyGCN couples an Aggregation Engine (SIMD cores that process a *single
    vertex's* feature across all cores — intra-node parallelism only) to a
    systolic Combination Engine, with aggregation always the producer.
    """

    name: str = "hygcn"
    #: Aggregation engine: 32 SIMD cores x 16 lanes @ 1 GHz = 1 TFLOP/s.
    num_simd_cores: int = 32
    simd_lanes_per_core: int = 16
    #: Combination engine: 8 systolic modules of 128x4 MACs = 8 TFLOP/s.
    systolic_modules: int = 8
    systolic_rows: int = 128
    systolic_cols: int = 4
    frequency_ghz: float = 1.0
    on_chip_bytes: int = 24 * MIB
    #: Input/edge/output buffer split of the 24 MiB (aggregation side).
    agg_buffer_bytes: int = 16 * MIB
    dram: DramConfig = field(default_factory=DramConfig)
    #: Window-based sparsity elimination (Sec VI-A of the GNNerator paper
    #: reports it is worth ~1.1x on Cora/Pubmed and ~3x on Citeseer).
    sparsity_elimination: bool = True

    @property
    def agg_lanes(self) -> int:
        return self.num_simd_cores * self.simd_lanes_per_core

    @property
    def agg_peak_flops(self) -> float:
        return self.agg_lanes * 2 * self.frequency_ghz * 1e9

    @property
    def comb_macs(self) -> int:
        return self.systolic_modules * self.systolic_rows * self.systolic_cols

    @property
    def comb_peak_flops(self) -> float:
        return self.comb_macs * 2 * self.frequency_ghz * 1e9

    @property
    def peak_flops(self) -> float:
        return self.agg_peak_flops + self.comb_peak_flops


def rtx_2080_ti_config() -> GpuConfig:
    """The GPU baseline column of Table IV."""
    return GpuConfig()


def hygcn_config(sparsity_elimination: bool = True) -> HyGCNConfig:
    """The HyGCN baseline column of Table IV."""
    return HyGCNConfig(sparsity_elimination=sparsity_elimination)


def next_generation_variants(
        base: GNNeratorConfig | None = None) -> dict[str, GNNeratorConfig]:
    """The three scaled-up GNNerator designs studied in Fig 5.

    Returns a mapping from variant name to configuration:

    * ``"more-graph-memory"`` — 2x Graph Engine scratchpad (larger shards);
    * ``"more-dense-compute"`` — 2x height and width of the Dense Engine;
    * ``"more-feature-bandwidth"`` — 2x shared feature DRAM bandwidth.
    """
    import dataclasses

    if base is None:
        base = gnnerator_config()
    scaled_dense = base.dense.scaled(2)
    # The paper sets B equal to the Dense Engine width, so the scaled-up
    # engine runs with a matching (doubled) feature block.
    dense_block = (None if base.feature_block is None
                   else base.feature_block * 2)
    return {
        "more-graph-memory": dataclasses.replace(
            base, name=f"{base.name}+graphmem",
            graph=base.graph.scaled_memory(2)),
        "more-dense-compute": dataclasses.replace(
            base, name=f"{base.name}+densecompute",
            dense=scaled_dense, feature_block=dense_block),
        "more-feature-bandwidth": dataclasses.replace(
            base, name=f"{base.name}+dram",
            dram=base.dram.scaled(2)),
    }


def platform_table() -> list[dict[str, str]]:
    """Render Table IV as a list of row dictionaries (for reports)."""
    gnn = gnnerator_config()
    gpu = rtx_2080_ti_config()
    hygcn = hygcn_config()
    return [
        {
            "Platform": "RTX 2080 Ti",
            "Peak Compute": f"{gpu.peak_flops / 1e12:.2f} TFLOP/s",
            "On-chip Memory": f"{gpu.on_chip_bytes / MIB:.1f} MiB",
            "Off-chip Bandwidth":
                f"{gpu.dram_bandwidth_bytes_per_s / 1e9:.0f} GB/s",
        },
        {
            "Platform": "GNNerator",
            "Peak Compute": (
                f"{gnn.peak_flops / 1e12:.1f} TFLOP/s "
                f"({gnn.graph.peak_flops / 1e12:.0f} Graph, "
                f"{gnn.dense.peak_flops / 1e12:.0f} Dense)"),
            "On-chip Memory": (
                f"{gnn.on_chip_bytes / MIB:.0f} MiB "
                f"({gnn.graph.total_buffer_bytes / MIB:.0f} Graph, "
                f"{gnn.dense.total_buffer_bytes / MIB:.0f} Dense)"),
            "Off-chip Bandwidth":
                f"{gnn.dram.bandwidth_bytes_per_s / 1e9:.0f} GB/s",
        },
        {
            "Platform": "HyGCN",
            "Peak Compute": (
                f"{hygcn.peak_flops / 1e12:.1f} TFLOP/s "
                f"({hygcn.agg_peak_flops / 1e12:.0f} Graph, "
                f"{hygcn.comb_peak_flops / 1e12:.0f} Dense)"),
            "On-chip Memory": f"{hygcn.on_chip_bytes / MIB:.0f} MiB",
            "Off-chip Bandwidth":
                f"{hygcn.dram.bandwidth_bytes_per_s / 1e9:.0f} GB/s",
        },
    ]
