"""Deterministic fault-injection harness for the fleet.

``run_chaos`` stages one small campaign and injects every failure mode
the lease protocol claims to survive, at deterministic points:

* **Worker SIGKILLed mid-point** — two victim workers started with
  ``--chaos-kill-after 1`` each claim one task and kill themselves
  while holding the lease (no handler runs, nothing is released).
* **Corrupted lease file** — one victim's orphaned lease is
  overwritten with garbage bytes, so the reaper must take the
  quarantine-and-re-enqueue path instead of the expiry path.
* **Corrupted task file** — one pending task file is truncated to
  garbage before any worker starts; the first claimant must move it
  aside and the coordinator must re-enqueue the id.
* **Writer crashed between tmp-write and replace** — an orphan
  ``.*.tmp`` file is pre-seeded in ``pending/``; every scan must
  ignore it.
* **Poison point** — one point references an unknown dataset, fails
  on every attempt, and must end quarantined in ``failed/`` with its
  traceback instead of wedging the campaign.

The harness then asserts the three properties the subsystem is for:
every valid point completes with metrics *byte-identical* to a serial
``SweepRunner(jobs=1)`` baseline; each injected failure is visible as
a dedicated ``repro_fleet_*`` metric scraped through the obs
registry; and a restarted coordinator on the warm cache recomputes
zero points. Failures are collected into a :class:`ChaosReport`
rather than raised, so ``repro chaos-sweep`` can print the full
picture before exiting non-zero.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.metrics import (
    MetricRegistry,
    parse_prometheus,
    render_prometheus,
    series_value,
)
from repro.sweep.cache import ResultCache
from repro.sweep.dist.metrics import register_fleet_metrics
from repro.sweep.dist.queue import FileQueue, _read_json
from repro.sweep.dist.scheduler import FileQueueScheduler
from repro.sweep.plan import SweepPlan, SweepPoint
from repro.sweep.runner import SweepRunner

#: Unknown-dataset point that must quarantine, never complete.
POISON_DATASET = "chaos-poison"


def chaos_plan() -> tuple[SweepPlan, SweepPlan]:
    """``(full, valid)`` plans: a tiny-gcn grid plus one poison point.

    The grid is deliberately small (sub-second per point) so the
    harness's wall-clock is dominated by the faults it waits out, not
    the compute.
    """
    valid = [
        SweepPoint(dataset="tiny", network="gcn", hidden_dim=8,
                   feature_block=8),
        SweepPoint(dataset="tiny", network="gcn", hidden_dim=8,
                   feature_block=None),
        SweepPoint(dataset="tiny", network="gcn", hidden_dim=16,
                   feature_block=8),
        SweepPoint(dataset="tiny", network="graphsage", hidden_dim=8,
                   feature_block=8),
    ]
    poison = SweepPoint(dataset=POISON_DATASET, network="gcn",
                        hidden_dim=8, feature_block=8)
    return (SweepPlan("chaos", tuple(valid + [poison])),
            SweepPlan("chaos-valid", tuple(valid)))


@dataclass
class ChaosReport:
    """Everything one campaign observed, plus the verdict."""

    problems: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    metrics_text: str = ""
    elapsed_s: float = 0.0
    points: int = 0
    restart_misses: int = -1

    @property
    def ok(self) -> bool:
        return not self.problems

    def check(self, condition: bool, problem: str) -> None:
        if not condition:
            self.problems.append(problem)

    def render(self) -> str:
        lines = [f"chaos campaign: {self.points} point(s) in "
                 f"{self.elapsed_s:.1f}s"]
        for name in ("expiries", "retries", "failures", "quarantined",
                     "corrupt"):
            lines.append(f"  {name}: {self.stats.get(name, '?')}")
        lines.append(f"  restart recomputed: {self.restart_misses} "
                     f"point(s)")
        if self.ok:
            lines.append("chaos: OK — every fault survived, results "
                         "cycle-identical to the serial run")
        else:
            lines.append(f"chaos: FAILED ({len(self.problems)} "
                         f"problem(s))")
            lines.extend(f"  - {problem}" for problem in self.problems)
        return "\n".join(lines)


def _worker_command(queue_dir: str, worker_id: str,
                    kill_after: int | None = None) -> list:
    command = [sys.executable, "-m", "repro", "worker",
               "--queue-dir", queue_dir, "--worker-id", worker_id,
               "--poll", "0.05"]
    if kill_after is not None:
        command += ["--chaos-kill-after", str(kill_after)]
    return command


def _worker_env() -> dict:
    """Subprocess env that can ``import repro`` even when the package
    is run from a source tree rather than installed."""
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parents[3])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (package_root if not existing
                         else package_root + os.pathsep + existing)
    return env


def _spawn_worker(queue_dir: str, worker_id: str,
                  kill_after: int | None = None) -> subprocess.Popen:
    return subprocess.Popen(
        _worker_command(queue_dir, worker_id, kill_after),
        env=_worker_env(),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)


def _await_victims(victims: list, report: ChaosReport,
                   timeout_s: float) -> None:
    """Victim workers SIGKILL themselves after their first claim; a
    victim exiting any other way means the fault was not injected."""
    for worker_id, process in victims:
        try:
            process.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()
            report.problems.append(
                f"victim {worker_id} did not die within {timeout_s}s")
            continue
        if process.returncode != -9:
            report.problems.append(
                f"victim {worker_id} exited {process.returncode}, "
                f"expected SIGKILL (-9): "
                f"{(process.stderr.read() or '')[-300:]}")


def run_chaos(workdir: str, *, lease_ttl_s: float = 1.5,
              stall_timeout_s: float = 120.0) -> ChaosReport:
    """Run the full fault-injection campaign under ``workdir``."""
    start = time.monotonic()
    report = ChaosReport()
    workdir_path = Path(workdir)
    queue_dir = str(workdir_path / "queue")
    chaos_cache = str(workdir_path / "chaos-cache")
    baseline_cache = str(workdir_path / "baseline-cache")
    full_plan, valid_plan = chaos_plan()
    report.points = len(full_plan.points)

    # Serial ground truth, fully isolated cache.
    baseline = SweepRunner(jobs=1,
                           cache=ResultCache(baseline_cache)).run(valid_plan)
    report.check(baseline.ok, "serial baseline failed — environment "
                              "problem, not a fleet problem")

    # Stage the queue before any worker exists, so faults can be
    # injected at exact protocol states.
    queue = FileQueue(queue_dir, lease_ttl_s=lease_ttl_s,
                      max_attempts=3, backoff_base_s=0.05,
                      backoff_cap_s=0.2, cache_dir=chaos_cache)
    keyer = ResultCache(chaos_cache)
    payloads = {keyer.key_for(point.payload()): point.payload()
                for point in full_plan.points}
    queue.ensure(payloads)

    # Fault: torn writer — an orphan tmp the scans must never match.
    orphan = queue.pending_dir / ".deadbeef.json.12345.1.tmp"
    orphan.write_text('{"schema": 1, "id": "dead')

    # Fault: corrupted task file (first valid task in scan order).
    victim_task = sorted(queue.pending_dir.glob("*.json"))[0]
    victim_task.write_text("not json {{{")

    # Fault: two workers die holding leases.
    victims = [("victim-a", _spawn_worker(queue_dir, "victim-a",
                                          kill_after=1)),
               ("victim-b", _spawn_worker(queue_dir, "victim-b",
                                          kill_after=1))]
    _await_victims(victims, report, timeout_s=60.0)

    # Fault: one orphaned lease is corrupted (reaper must quarantine
    # it); the other is left intact (reaper must expire it).
    leases = {path: _read_json(path)
              for path in sorted(queue.leases_dir.glob("*.json"))}
    report.check(len(leases) == 2,
                 f"expected 2 orphaned leases, found {len(leases)}")
    corrupted_lease = next(
        (path for path, record in leases.items()
         if record and record.get("worker") == "victim-b"), None)
    if corrupted_lease is not None:
        corrupted_lease.write_bytes(b"\x00garbage\x00" * 3)
    else:
        report.problems.append("victim-b left no readable lease to "
                               "corrupt")

    # Recovery: one survivor plus the coordinator (jobs=0 — every
    # point is computed by the external fleet, i.e. the survivor).
    survivor = _spawn_worker(queue_dir, "survivor")
    scheduler = FileQueueScheduler(jobs=0, queue_dir=queue_dir,
                                   cache_dir=chaos_cache,
                                   poll_s=0.05,
                                   stall_timeout_s=stall_timeout_s)
    runner = SweepRunner(cache=ResultCache(chaos_cache),
                         scheduler=scheduler)
    try:
        result = runner.run(full_plan)
    finally:
        try:
            survivor.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            survivor.kill()
            survivor.wait()
            report.problems.append("survivor did not exit after the "
                                   "queue closed")

    # Verdict 1: completeness + cycle-identical results.
    for point in valid_plan.points:
        outcome = result.result_for(point)
        if not outcome.ok:
            report.problems.append(
                f"point {point.label} failed under chaos: "
                f"{(outcome.error or '').splitlines()[0]}")
            continue
        expected = baseline.result_for(point).metrics
        if (json.dumps(outcome.metrics, sort_keys=True)
                != json.dumps(expected, sort_keys=True)):
            report.problems.append(
                f"cycle drift on {point.label}: fleet "
                f"{outcome.metrics} != serial {expected}")
    poison = full_plan.points[-1]
    poison_outcome = result.result_for(poison)
    report.check(not poison_outcome.ok,
                 "poison point unexpectedly succeeded")
    report.check(queue.state_of(keyer.key_for(poison.payload()))
                 == "failed",
                 "poison point is not quarantined in failed/")

    # Verdict 2: every fault is visible as a repro_ metric.
    registry = MetricRegistry()
    register_fleet_metrics(registry, queue)
    report.metrics_text = render_prometheus(registry)
    parsed = parse_prometheus(report.metrics_text)
    report.stats = queue.stats()
    checks = (("repro_fleet_lease_expiries_total", 1,
               "no lease expiry observed (reaper never fired?)"),
              ("repro_fleet_retries_total", 1,
               "no retry observed"),
              ("repro_fleet_failures_total", 1,
               "no worker failure observed"),
              ("repro_fleet_quarantined_total", 1,
               "poison point not counted as quarantined"),
              ("repro_fleet_corrupt_files_total", 2,
               "corrupted task+lease files not both quarantined"))
    for name, minimum, problem in checks:
        value = series_value(parsed, name)
        if value < minimum:
            report.problems.append(f"{problem} ({name}={value})")
    for state, want_zero in (("pending", True), ("leased", True)):
        value = series_value(parsed, "repro_fleet_tasks", state=state)
        if want_zero and value != 0:
            report.problems.append(
                f"{value:.0f} task(s) left {state} after completion")
    report.check(orphan.exists(),
                 "orphan tmp file was consumed by a scan (atomicity "
                 "leak: scans must only match *.json)")

    # Verdict 3: a restarted coordinator recomputes nothing.
    restart = SweepRunner(
        cache=ResultCache(chaos_cache),
        scheduler=FileQueueScheduler(jobs=0, queue_dir=queue_dir,
                                     cache_dir=chaos_cache,
                                     poll_s=0.05,
                                     stall_timeout_s=stall_timeout_s),
    ).run(valid_plan)
    report.restart_misses = restart.misses
    report.check(restart.misses == 0,
                 f"restarted coordinator recomputed {restart.misses} "
                 f"point(s), expected 0")
    report.check(restart.ok, "restarted coordinator lost results")

    report.elapsed_s = time.monotonic() - start
    return report
