"""FileQueueScheduler: the crash-tolerant distributed sweep backend.

Implements the :class:`~repro.sweep.runner.Scheduler` contract —
``run(points) -> list[PointResult]`` in input order — on top of the
shared-directory :class:`~repro.sweep.dist.queue.FileQueue`. The
coordinator enqueues every point as a content-addressed task (ids are
:meth:`ResultCache.key_for` of the point payload, so a task id *is*
the result-cache key), optionally spawns local worker processes, and
then drives a supervision loop: reap expired leases, re-enqueue ids
that vanished (corrupt-file recovery), respawn dead local workers
while work remains, and detect stalls. External workers joined with
``repro worker --queue-dir ...`` participate identically — ``jobs=0``
runs a coordinator with no local workers at all.

Resume is free: the queue directory *is* the campaign state. A
restarted coordinator re-ensures the same task ids, finds the
completed ones already in ``done/``, and only the unfinished points
ever reach a worker.
"""

from __future__ import annotations

import multiprocessing
import shutil
import tempfile
import time
from dataclasses import dataclass, field

from repro.sweep.cache import NullCache, ResultCache
from repro.sweep.dist.queue import FileQueue
from repro.sweep.dist.worker import run_worker
from repro.sweep.runner import (
    PointResult,
    SweepError,
    _preload_datasets,
    _spawn_context,
)

#: Scheduler backends selectable via ``repro sweep/dse --scheduler``.
SCHEDULER_NAMES = ("pool", "filequeue")


def _spawned_worker(queue_dir: str, worker_id: str) -> None:
    """Module-level target for the spawn context (must be picklable)."""
    run_worker(queue_dir, worker_id=worker_id)


@dataclass
class FleetStats:
    """Coordinator-side accounting for one ``run`` call."""

    spawned: int = 0
    respawned: int = 0
    reaped: int = 0
    reenqueued: int = 0
    supervision_rounds: int = 0
    worker_ids: list = field(default_factory=list)


class FileQueueScheduler:
    """Run sweep points through a shared-directory work queue.

    ``jobs`` local workers are spawned per ``run`` call (``jobs=0``
    coordinates an external fleet only). ``queue_dir=None`` uses a
    private temporary queue torn down afterwards; pass a real path to
    make the campaign resumable and joinable by other hosts.
    """

    name = "filequeue"

    def __init__(self, jobs: int = 2, *,
                 queue_dir: str | None = None,
                 cache_dir: str | None = None,
                 lease_ttl_s: float = 30.0,
                 max_attempts: int = 3,
                 backoff_base_s: float = 0.25,
                 backoff_cap_s: float = 30.0,
                 poll_s: float = 0.05,
                 stall_timeout_s: float = 600.0,
                 max_respawns: int | None = None) -> None:
        if jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {jobs}")
        self.jobs = jobs
        self.queue_dir = queue_dir
        self.cache_dir = cache_dir
        self.lease_ttl_s = lease_ttl_s
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.poll_s = poll_s
        self.stall_timeout_s = stall_timeout_s
        # Enough budget to replace every seat through max_attempts
        # crash rounds, but finite so a crash-looping fleet terminates.
        self.max_respawns = (max_respawns if max_respawns is not None
                             else jobs * max_attempts)
        self.stats = FleetStats()

    # -- Scheduler contract -------------------------------------------
    def run(self, points) -> list[PointResult]:
        points = list(points)
        if not points:
            return []
        self.stats = FleetStats()
        queue_dir = self.queue_dir
        cleanup = queue_dir is None
        if cleanup:
            queue_dir = tempfile.mkdtemp(prefix="repro-fleet-")
        queue = FileQueue(queue_dir,
                          lease_ttl_s=self.lease_ttl_s,
                          max_attempts=self.max_attempts,
                          backoff_base_s=self.backoff_base_s,
                          backoff_cap_s=self.backoff_cap_s,
                          cache_dir=self.cache_dir)
        # A previous run over this directory left its campaign-complete
        # marker behind (run() closes the queue on exit). Clear it, or
        # every worker — freshly spawned or externally attached — sees
        # is_closed() and exits before claiming, and any new cache-miss
        # point stalls the coordinator until stall_timeout_s.
        queue.reopen()
        keyer = (ResultCache(self.cache_dir) if self.cache_dir
                 else NullCache())
        order = [(keyer.key_for(point.payload()), point)
                 for point in points]
        payloads = {task_id: point.payload() for task_id, point in order}
        queue.ensure(payloads)
        if self.jobs:
            _preload_datasets(points)
        workers = [self._start(queue_dir, f"fleet-w{index}")
                   for index in range(min(self.jobs, len(points)))]
        try:
            self._drive(queue, payloads, workers, queue_dir)
        finally:
            queue.close()
            self._join(workers)
        results = self._collect(queue, order)
        if cleanup:
            shutil.rmtree(queue_dir, ignore_errors=True)
        return results

    # -- fleet management ---------------------------------------------
    def _start(self, queue_dir: str, worker_id: str):
        context = _spawn_context() or multiprocessing
        process = context.Process(target=_spawned_worker,
                                  args=(queue_dir, worker_id),
                                  daemon=False)
        process.start()
        self.stats.spawned += 1
        self.stats.worker_ids.append(worker_id)
        return process

    def _join(self, workers, timeout: float = 10.0) -> None:
        deadline = time.monotonic() + timeout
        for process in workers:
            if process is None:
                continue
            process.join(timeout=max(deadline - time.monotonic(), 0.1))
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
            if process.is_alive():
                # SIGTERM is a graceful drain — a worker mid-point can
                # outlive the grace period. Escalate so no live child
                # leaks past run() (the temp-queue path deletes the
                # queue directory right after this).
                process.kill()
                process.join(timeout=5.0)

    def _drive(self, queue: FileQueue, payloads: dict,
               workers: list, queue_dir: str) -> None:
        """Supervise until every task id is terminal.

        Progress (any new terminal task, or a reaped lease) resets the
        stall clock; a fleet making none for ``stall_timeout_s`` —
        e.g. ``jobs=0`` with no external worker attached — raises
        instead of spinning forever.
        """
        ids = sorted(payloads)
        stall_deadline = time.monotonic() + self.stall_timeout_s
        last_terminal = -1
        while True:
            self.stats.supervision_rounds += 1
            reaped = queue.reap()
            self.stats.reaped += reaped
            states = queue.states()
            terminal = sum(1 for task_id in ids
                           if states.get(task_id) in ("done", "failed"))
            if terminal == len(ids):
                return
            if terminal != last_terminal or reaped:
                last_terminal = terminal
                stall_deadline = time.monotonic() + self.stall_timeout_s
            missing = {task_id: payloads[task_id] for task_id in ids
                       if task_id not in states}
            if missing:  # task file quarantined as corrupt: re-enqueue
                self.stats.reenqueued += queue.ensure(missing)
            self._respawn_dead(workers, queue, queue_dir)
            if time.monotonic() > stall_deadline:
                stuck = [task_id[:12] for task_id in ids
                         if states.get(task_id) not in ("done", "failed")]
                raise SweepError(
                    f"fleet stalled: {len(stuck)} point(s) made no "
                    f"progress for {self.stall_timeout_s:.0f}s "
                    f"(queue {queue_dir}, stuck ids {stuck[:5]}...); "
                    f"attach workers with: repro worker --queue-dir "
                    f"{queue_dir}")
            time.sleep(self.poll_s)

    def _respawn_dead(self, workers: list, queue: FileQueue,
                      queue_dir: str) -> None:
        for index, process in enumerate(workers):
            if process is None or process.is_alive():
                continue
            process.join()
            workers[index] = None
            if self.stats.respawned < self.max_respawns:
                self.stats.respawned += 1
                workers[index] = self._start(
                    queue_dir, f"fleet-w{index}r{self.stats.respawned}")

    # -- result collection --------------------------------------------
    def _collect(self, queue: FileQueue, order) -> list[PointResult]:
        results = []
        for task_id, point in order:
            state, record = queue.result(task_id)
            if state == "done":
                results.append(PointResult(point,
                                           metrics=record["metrics"]))
            elif state == "failed":
                results.append(PointResult(
                    point, status="error",
                    error=record.get("error") or "quarantined"))
            else:  # unreachable once _drive returned; belt and braces
                results.append(PointResult(
                    point, status="error",
                    error=f"point never reached a terminal state "
                          f"(task {task_id[:12]})"))
        return results
