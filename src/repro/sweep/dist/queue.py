"""Shared-directory work queue with leases, retries, and quarantine.

The queue is a directory tree that any number of processes — on one
host or many, via a shared filesystem — mutate concurrently with no
server and no locks. Every task is a single JSON file whose *location*
encodes its state::

    <root>/queue.json        protocol parameters (manifest)
    <root>/pending/<id>.json waiting to be claimed
    <root>/leases/<id>.json  claimed; mtime is the lease heartbeat
    <root>/done/<id>.json    completed, metrics attached
    <root>/failed/<id>.json  quarantined after max_attempts claims
    <root>/corrupt/          unreadable files moved aside, kept for audit
    <root>/closed            campaign-complete marker (workers exit;
                             the next campaign's coordinator reopens)

Correctness rests on two filesystem guarantees only: ``os.replace`` is
atomic within a directory tree, and a file's mtime can be refreshed
with ``os.utime``. Three rules follow:

* **Claims are atomic moves.** A worker claims a task by
  ``os.replace(pending/<id>, leases/<id>)``; exactly one racer wins,
  the losers see ``FileNotFoundError`` and move on.
* **Publishes are tmp + replace.** Every record write lands in a
  hidden ``.*.tmp`` sibling first and is renamed into place, so a
  writer crashing mid-write leaves an orphan the scans never match
  (state scans glob ``*.json`` only) — never a torn record.
* **Transitions write the destination before removing the source.**
  ``complete``/``fail``/``reap`` may therefore leave a task briefly
  visible in two directories if the writer dies in between; a task is
  *never* in zero directories. Readers resolve duplicates by
  precedence (done > failed > leased > pending) and ``claim`` deletes
  a stale pending copy of an already-terminal task.

The scheme is exactly-once-*effective*, not exactly-once-executed: a
lease that expires while its worker is merely slow (not dead) lets a
second worker recompute the same point. That is safe because points
are deterministic functions of their payload and results land in the
content-addressed :class:`~repro.sweep.cache.ResultCache` — duplicate
execution wastes cycles but cannot change any answer. See DESIGN.md
§10 for the full crash matrix.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

#: Task-record layout version; bumped on incompatible change.
RECORD_SCHEMA = 1

#: The four task states a scan can report, in claim-precedence order
#: (later entries win when a crash window leaves a duplicate).
TASK_STATES = ("pending", "leased", "failed", "done")


class QueueError(RuntimeError):
    """A malformed queue directory or protocol violation."""


_WRITE_SEQUENCE = 0


def _write_json(path: Path, record: dict) -> None:
    """Publish ``record`` at ``path`` atomically (tmp + ``os.replace``).

    The tmp name starts with a dot and ends in ``.tmp`` so directory
    scans (``*.json``) never see half-written records, and carries the
    pid plus a process-local sequence number so concurrent writers
    never collide on the tmp file itself.
    """
    global _WRITE_SEQUENCE
    _WRITE_SEQUENCE += 1
    tmp = path.parent / f".{path.name}.{os.getpid()}.{_WRITE_SEQUENCE}.tmp"
    tmp.write_text(json.dumps(record, sort_keys=True))
    os.replace(tmp, path)


def _publish_exclusive(path: Path, record: dict) -> bool:
    """Create ``path`` atomically only if nothing exists there yet.

    Hard-linking a fully-written tmp either publishes the complete
    record or fails with ``FileExistsError`` — unlike ``os.replace``
    it never overwrites, so two racing creators cannot each install
    their own copy. Returns True if this call published."""
    global _WRITE_SEQUENCE
    _WRITE_SEQUENCE += 1
    tmp = path.parent / f".{path.name}.{os.getpid()}.{_WRITE_SEQUENCE}.tmp"
    tmp.write_text(json.dumps(record, sort_keys=True))
    try:
        os.link(tmp, path)
    except FileExistsError:
        return False
    finally:
        os.unlink(tmp)
    return True


def _read_json(path: Path) -> dict | None:
    """Read a task record; any failure — missing file, torn or
    truncated JSON, wrong schema — reads as None (the caller
    quarantines or skips)."""
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(record, dict):
        return None
    if record.get("schema") != RECORD_SCHEMA:
        return None
    if not isinstance(record.get("point"), dict):
        return None
    return record


@dataclass(frozen=True)
class Task:
    """A claimed task: the payload to compute plus claim accounting."""

    id: str
    payload: dict
    attempts: int


class FileQueue:
    """One campaign's task files under a shared directory.

    The first process to construct the queue writes the manifest;
    every later construction **adopts the manifest's parameters** (the
    directory owns the protocol — lease TTL, retry budget, backoff,
    cache location — so a fleet never runs with mixed settings).
    """

    def __init__(self, root: str | os.PathLike, *,
                 lease_ttl_s: float = 30.0,
                 max_attempts: int = 3,
                 backoff_base_s: float = 0.25,
                 backoff_cap_s: float = 30.0,
                 cache_dir: str | None = None) -> None:
        if lease_ttl_s <= 0:
            raise QueueError(f"lease_ttl_s must be > 0, got {lease_ttl_s}")
        if max_attempts < 1:
            raise QueueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.root = Path(root)
        self.pending_dir = self.root / "pending"
        self.leases_dir = self.root / "leases"
        self.done_dir = self.root / "done"
        self.failed_dir = self.root / "failed"
        self.corrupt_dir = self.root / "corrupt"
        for directory in (self.pending_dir, self.leases_dir, self.done_dir,
                          self.failed_dir, self.corrupt_dir):
            directory.mkdir(parents=True, exist_ok=True)
        manifest_path = self.root / "queue.json"
        manifest = _read_json_manifest(manifest_path)
        if manifest is None:
            candidate = {
                "schema": RECORD_SCHEMA,
                "lease_ttl_s": float(lease_ttl_s),
                "max_attempts": int(max_attempts),
                "backoff_base_s": float(backoff_base_s),
                "backoff_cap_s": float(backoff_cap_s),
                "cache_dir": cache_dir,
            }
            # Exclusive create: exactly one racing creator publishes;
            # every loser re-reads and adopts the winner's parameters,
            # so the fleet can never run with mixed TTLs or budgets.
            if _publish_exclusive(manifest_path, candidate):
                manifest = candidate
            else:
                manifest = _read_json_manifest(manifest_path)
        if manifest is None:
            raise QueueError(
                f"unreadable queue manifest at {manifest_path} — the "
                f"directory's protocol parameters are unknown; move "
                f"the file aside or start a fresh queue directory")
        self.lease_ttl_s = float(manifest["lease_ttl_s"])
        self.max_attempts = int(manifest["max_attempts"])
        self.backoff_base_s = float(manifest["backoff_base_s"])
        self.backoff_cap_s = float(manifest["backoff_cap_s"])
        self.cache_dir = manifest.get("cache_dir")

    @classmethod
    def open(cls, root: str | os.PathLike) -> "FileQueue":
        """Attach to an existing queue; raise if no manifest yet."""
        manifest = _read_json_manifest(Path(root) / "queue.json")
        if manifest is None:
            raise QueueError(
                f"no queue manifest at {os.path.join(root, 'queue.json')} "
                f"(start the coordinator first, or pass its --queue-dir)")
        return cls(root)

    # -- enqueue -------------------------------------------------------
    def _base_record(self, task_id: str, payload: dict) -> dict:
        return {"schema": RECORD_SCHEMA, "id": task_id, "point": payload,
                "attempts": 0, "failures": 0, "expiries": 0,
                "not_before": 0.0, "worker": None, "error": None}

    def enqueue(self, task_id: str, payload: dict) -> bool:
        """Add a task unless it already exists in any state."""
        if self.state_of(task_id) is not None:
            return False
        _write_json(self.pending_dir / f"{task_id}.json",
                    self._base_record(task_id, payload))
        return True

    def ensure(self, payloads: dict[str, dict]) -> int:
        """Enqueue every task id not present anywhere (resume /
        corrupt-file recovery); returns how many were (re-)enqueued."""
        states = self.states()
        added = 0
        for task_id, payload in sorted(payloads.items()):
            if task_id not in states:
                _write_json(self.pending_dir / f"{task_id}.json",
                            self._base_record(task_id, payload))
                added += 1
        return added

    # -- claim / heartbeat --------------------------------------------
    def claim(self, worker: str) -> Task | None:
        """Atomically claim one eligible pending task, or None.

        Eligible means readable, past its retry backoff, and not
        already terminal (a stale pending duplicate left by a
        crash-window transition is deleted here instead of re-run).
        """
        now = time.time()
        for path in self._scan(self.pending_dir):
            task_id = path.stem
            if self._is_terminal(task_id):
                try:
                    os.remove(path)
                except FileNotFoundError:
                    pass
                continue
            record = _read_json(path)
            if record is None:
                self._quarantine_corrupt(path)
                continue
            if record.get("not_before", 0) > now:
                continue
            lease = self.leases_dir / path.name
            try:
                os.replace(path, lease)
            except FileNotFoundError:
                continue  # lost the claim race; try the next task
            # os.replace preserves mtime: without this touch a task
            # that sat pending longer than the TTL would be reaped the
            # instant it was claimed.
            try:
                os.utime(lease)
            except FileNotFoundError:
                continue  # reaped between replace and utime (tiny TTL)
            # The file we just moved is the authoritative record:
            # between our pending read and winning the replace, a racer
            # can claim, fail, and re-enqueue the task, and writing the
            # stale pre-claim copy back would roll back its
            # attempts/failures accounting — letting a poison point
            # outlive the quarantine budget. Keep the earlier read only
            # if the lease is unreadable.
            record = _read_json(lease) or record
            record["attempts"] = int(record.get("attempts", 0)) + 1
            record["worker"] = worker
            _write_json(lease, record)
            return Task(id=task_id, payload=record["point"],
                        attempts=record["attempts"])
        return None

    def renew(self, task_id: str) -> bool:
        """Heartbeat: refresh the lease mtime. False = lease lost
        (expired and reaped, or completed elsewhere)."""
        try:
            os.utime(self.leases_dir / f"{task_id}.json")
        except FileNotFoundError:
            return False
        return True

    # -- transitions ---------------------------------------------------
    def complete(self, task: Task, metrics: dict, *,
                 cached: bool = False, worker: str | None = None) -> None:
        """Publish the result, then release the lease.

        Destination-before-source: a crash between the two writes
        leaves the task both done and leased; ``done`` wins every scan
        and the stale lease is reaped harmlessly later.
        """
        # Preserve the lease record's accumulated counters (attempts,
        # failures, expiries) — stats() reconstructs fleet history from
        # terminal records, so completion must not zero them.
        record = _read_json(self.leases_dir / f"{task.id}.json")
        if record is None:  # lease reaped or corrupted mid-compute
            record = self._base_record(task.id, task.payload)
            record["attempts"] = task.attempts
        record.update(worker=worker, status="ok", metrics=metrics,
                      cached=cached)
        _write_json(self.done_dir / f"{task.id}.json", record)
        self._release(task.id)

    def fail(self, task: Task, error: str, *,
             worker: str | None = None) -> str:
        """Record a failed attempt: requeue with capped exponential
        backoff, or quarantine once the claim budget is spent.

        Returns ``"retry"`` or ``"quarantined"``.
        """
        lease = self.leases_dir / f"{task.id}.json"
        record = _read_json(lease)
        if record is None:  # lease corrupted or reaped mid-compute
            record = self._base_record(task.id, task.payload)
            record["attempts"] = task.attempts
        record["failures"] = int(record.get("failures", 0)) + 1
        record["worker"] = worker
        record["error"] = error
        if record["attempts"] >= self.max_attempts:
            record["status"] = "failed"
            _write_json(self.failed_dir / f"{task.id}.json", record)
            self._release(task.id)
            return "quarantined"
        delay = min(self.backoff_cap_s,
                    self.backoff_base_s * 2 ** (record["failures"] - 1))
        record["not_before"] = time.time() + delay
        _write_json(self.pending_dir / f"{task.id}.json", record)
        self._release(task.id)
        return "retry"

    def _release(self, task_id: str) -> None:
        try:
            os.remove(self.leases_dir / f"{task_id}.json")
        except FileNotFoundError:
            pass  # reaped (or released by a racing reaper) already

    # -- reaping -------------------------------------------------------
    def reap(self) -> int:
        """Return expired leases to pending (or quarantine them).

        A lease whose mtime is older than the TTL belongs to a worker
        that died — or stalled past its heartbeat, which the protocol
        treats identically (see module docstring on duplicate
        execution being safe). Unreadable lease files are moved to
        ``corrupt/``; their task ids resurface via :meth:`ensure`.
        """
        now = time.time()
        reaped = 0
        for path in self._scan(self.leases_dir):
            try:
                age = now - path.stat().st_mtime
            except FileNotFoundError:
                continue  # released while we scanned
            if age <= self.lease_ttl_s:
                continue
            record = _read_json(path)
            if record is None:
                self._quarantine_corrupt(path)
                continue
            record["expiries"] = int(record.get("expiries", 0)) + 1
            record["worker"] = None
            if record.get("attempts", 0) >= self.max_attempts:
                record["status"] = "failed"
                record["error"] = record.get("error") or (
                    f"lease expired after {record['attempts']} claim(s) "
                    f"with no recorded worker error (worker killed?)")
                _write_json(self.failed_dir / path.name, record)
            else:
                record["not_before"] = now  # eligible immediately
                _write_json(self.pending_dir / path.name, record)
            try:
                os.remove(path)
            except FileNotFoundError:
                pass  # the worker completed in the race window
            reaped += 1
        return reaped

    def _quarantine_corrupt(self, path: Path) -> None:
        """Move an unreadable file aside (unique, non-``.json`` name so
        no scan ever matches it again)."""
        global _WRITE_SEQUENCE
        _WRITE_SEQUENCE += 1
        target = (self.corrupt_dir /
                  f"{path.name}.{os.getpid()}.{_WRITE_SEQUENCE}.quarantined")
        try:
            os.replace(path, target)
        except FileNotFoundError:
            pass  # a racing process quarantined or transitioned it

    # -- inspection ----------------------------------------------------
    def _scan(self, directory: Path) -> list[Path]:
        try:
            return sorted(directory.glob("*.json"))
        except OSError:
            return []

    def _is_terminal(self, task_id: str) -> bool:
        return ((self.done_dir / f"{task_id}.json").exists()
                or (self.failed_dir / f"{task_id}.json").exists())

    def state_of(self, task_id: str) -> str | None:
        name = f"{task_id}.json"
        for state, directory in (("done", self.done_dir),
                                 ("failed", self.failed_dir),
                                 ("leased", self.leases_dir),
                                 ("pending", self.pending_dir)):
            if (directory / name).exists():
                return state
        return None

    def states(self) -> dict[str, str]:
        """Every known task id -> state, duplicates resolved by
        precedence (done > failed > leased > pending)."""
        out: dict[str, str] = {}
        for state, directory in (("pending", self.pending_dir),
                                 ("leased", self.leases_dir),
                                 ("failed", self.failed_dir),
                                 ("done", self.done_dir)):
            for path in self._scan(directory):
                out[path.stem] = state
        return out

    def result(self, task_id: str) -> tuple[str | None, dict | None]:
        """Terminal record for a task: ``("done"|"failed", record)`` or
        ``(None, None)`` while still in flight."""
        for state, directory in (("done", self.done_dir),
                                 ("failed", self.failed_dir)):
            record = _read_json(directory / f"{task_id}.json")
            if record is not None:
                return state, record
        return None, None

    def stats(self) -> dict[str, int]:
        """Scan-derived fleet counters (valid across processes and
        coordinator restarts — nothing here lives in memory).

        ``retries`` counts extra claims beyond the first, whatever
        their cause; ``failures`` counts worker-reported errors;
        ``expiries`` counts lease reaps; ``quarantined`` is the poison
        pile; ``corrupt`` counts files moved aside as unreadable.
        """
        counts = {"pending": 0, "leased": 0, "done": 0, "failed": 0,
                  "retries": 0, "failures": 0, "expiries": 0}
        states = self.states()
        for task_id, state in states.items():
            counts[state] += 1
        for directory in (self.pending_dir, self.leases_dir,
                          self.done_dir, self.failed_dir):
            for path in self._scan(directory):
                if states.get(path.stem) != {
                        self.pending_dir: "pending",
                        self.leases_dir: "leased",
                        self.done_dir: "done",
                        self.failed_dir: "failed"}[directory]:
                    continue  # stale duplicate: count the winner only
                record = _read_json(path)
                if record is None:
                    continue
                counts["retries"] += max(int(record.get("attempts", 0)) - 1, 0)
                counts["failures"] += int(record.get("failures", 0))
                counts["expiries"] += int(record.get("expiries", 0))
        counts["quarantined"] = counts["failed"]
        try:
            counts["corrupt"] = sum(1 for entry in self.corrupt_dir.iterdir()
                                    if entry.is_file())
        except OSError:
            counts["corrupt"] = 0
        return counts

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Mark the campaign terminal; workers exit their poll loops."""
        _write_json(self.root / "closed", {"schema": RECORD_SCHEMA,
                                           "point": {}, "closed": True})

    def is_closed(self) -> bool:
        return (self.root / "closed").exists()

    def reopen(self) -> None:
        """Remove the campaign-complete marker so a new campaign can
        dispatch fresh work over the same directory. Without this,
        every worker spawned or attached after a completed run sees
        ``is_closed()`` and exits before claiming anything."""
        try:
            os.remove(self.root / "closed")
        except FileNotFoundError:
            pass


def _read_json_manifest(path: Path) -> dict | None:
    """Manifest reader: like :func:`_read_json` but without the task
    ``point`` requirement."""
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(record, dict) or record.get("schema") != RECORD_SCHEMA:
        return None
    return record
